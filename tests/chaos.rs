//! Deterministic chaos harness: random interleaved serving traffic with a
//! random seeded [`FaultPlan`], asserting the fault-tolerance contract
//! end to end:
//!
//! - **No hang**: every handle resolves within a bounded wait, whatever
//!   faults fired.
//! - **Typed failures**: a request only ever fails with a typed
//!   [`ServeError`] — injected panics surface as `BatchPanicked`, injected
//!   pool exhaustion as `KvBudgetExhausted` at admission; nothing else.
//! - **Isolation + recovery**: requests that succeed are **bit-identical**
//!   to fault-free solo computation against a host-side model of each
//!   session's cache at submission time — including every request served
//!   *after* a panic poisoned an earlier batch.
//! - **Reconciliation**: after closing every session, lifetime counters
//!   balance (`kv_pages_allocated == kv_pages_freed`) and the stats agree
//!   with the per-handle outcomes.

use dfss::prelude::*;
use dfss_serve::{AttentionServer, BatchPolicy, DecodeRequest, FaultKind, FaultPlan, ServeError};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Bounded wait: long enough that a live batcher always answers, short
/// enough that a hang fails the test instead of wedging CI.
const NO_HANG: Duration = Duration::from_secs(30);

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chaos_faults_stay_isolated_typed_and_reconciled(
        seed in 0u64..10_000,
        ops in proptest::collection::vec(0usize..8, 24),
        // Fault schedule: front-door ordinals (two ops per stream element
        // at most, so they land in 0..48) paired positionally with kinds —
        // panic / slow-launch / pool exhaustion. KillServer has its own
        // targeted unit test; here the server must stay *up*.
        fault_ops in proptest::collection::vec(0u64..48, 6),
        fault_kinds in proptest::collection::vec(0usize..3, 6),
    ) {
        let mech_dfss = DfssAttention::new(NmPattern::P1_2);
        let mech_full = FullAttention;
        let mech: Arc<dyn Attention<f32> + Send + Sync> = if seed % 3 == 0 {
            Arc::new(mech_full)
        } else {
            Arc::new(mech_dfss)
        };
        let mut plan = FaultPlan::new();
        for (&op, &kind) in fault_ops.iter().zip(&fault_kinds) {
            let kind = match kind {
                0 => FaultKind::PanicInBatch,
                1 => FaultKind::SlowLaunch(Duration::from_millis(1)),
                _ => FaultKind::ExhaustPool,
            };
            plan = plan.inject(op, kind);
        }
        let server = AttentionServer::start_with_faults(
            Arc::clone(&mech),
            BatchPolicy::batched(3, Duration::from_millis(2)),
            plan,
        );
        let (d, d_v) = (8usize, 8usize);
        let mut rng = Rng::new(seed);
        // Host-side model of every open session's cache, updated only on
        // session ops the server admitted (a synchronous Ok) — injected
        // exhaustion leaves both the server cache and the model untouched.
        let mut model: Vec<(dfss_serve::SessionId, Matrix<f32>, Matrix<f32>)> = Vec::new();
        let mut prefills = Vec::new();
        let mut decodes = Vec::new();
        for &op in &ops {
            match op {
                // Open + prime a session; either admission call may be
                // refused by an injected ExhaustPool.
                0 | 1 => {
                    let len = 1 + rng.below(7);
                    let k = Matrix::<f32>::random_normal(len, d, 0.0, 1.0, &mut rng);
                    let v = Matrix::<f32>::random_normal(len, d_v, 0.0, 1.0, &mut rng);
                    let Ok(s) = server.open_session(d, d_v) else { continue };
                    if server.extend(s, k.clone(), v.clone()).is_ok() {
                        model.push((s, k, v));
                    } else {
                        // Primed nothing: retire the empty session.
                        server.close_session(s).expect("open session closes");
                    }
                }
                // Append one row to a random open session.
                2 | 3 => {
                    if model.is_empty() { continue; }
                    let i = rng.below(model.len());
                    let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                    let v_row: Vec<f32> = (0..d_v).map(|_| rng.normal(0.0, 1.0)).collect();
                    if server.append(model[i].0, k_row.clone(), v_row.clone()).is_ok() {
                        let (_, k, v) = &mut model[i];
                        *k = k.vstack(&Matrix::from_vec(1, d, k_row));
                        *v = v.vstack(&Matrix::from_vec(1, d_v, v_row));
                    }
                }
                // Decode on a random open session; the expected output is a
                // fault-free solo decode over the model's cache snapshot.
                4..=6 => {
                    if model.is_empty() { continue; }
                    let i = rng.below(model.len());
                    let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                    let (s, k, v) = &model[i];
                    let mut sctx = GpuCtx::a100();
                    let want =
                        mech.decode(&mut sctx, &Matrix::from_vec(1, d, q_row.clone()), k, v);
                    let handle = server
                        .submit_decode(DecodeRequest { session: *s, q_row })
                        .expect("admission has no injected failure mode for decode");
                    decodes.push((handle, want, k.rows()));
                }
                // A prefill request rides the same server.
                _ => {
                    let n = 16;
                    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let mut sctx = GpuCtx::a100();
                    let want = mech.forward(&mut sctx, &q, &k, &v);
                    prefills.push((server.submit(q, k, v).expect("valid request"), want));
                }
            }
        }
        // No hang, typed failures, bit-identical successes — including
        // everything served after a poisoned batch.
        let mut ok_prefills = 0u64;
        let mut panicked = 0u64;
        for (i, (handle, want)) in prefills.into_iter().enumerate() {
            match handle.wait_timeout(NO_HANG) {
                Ok(served) => {
                    ok_prefills += 1;
                    prop_assert!(
                        bits_equal(served.output.as_slice(), want.as_slice()),
                        "prefill {} diverged from fault-free solo forward", i
                    );
                }
                Err(ServeError::BatchPanicked { payload }) => {
                    panicked += 1;
                    prop_assert!(payload.contains("injected kernel panic"));
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "prefill {i} failed untyped-ly for this plan: {other}"
                    )));
                }
            }
        }
        let mut ok_decodes = 0u64;
        for (i, (handle, want, len_at_submit)) in decodes.into_iter().enumerate() {
            match handle.wait_timeout(NO_HANG) {
                Ok(served) => {
                    ok_decodes += 1;
                    prop_assert_eq!(served.cached_len, len_at_submit);
                    prop_assert!(
                        bits_equal(served.output.as_slice(), want.as_slice()),
                        "decode {} diverged from fault-free solo decode", i
                    );
                }
                Err(ServeError::BatchPanicked { payload }) => {
                    panicked += 1;
                    prop_assert!(payload.contains("injected kernel panic"));
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "decode {i} failed untyped-ly for this plan: {other}"
                    )));
                }
            }
        }
        // Close everything, then the books must balance.
        for (s, _, _) in model {
            server.close_session(s).expect("close");
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.served, ok_prefills);
        prop_assert_eq!(stats.decode_steps, ok_decodes);
        prop_assert_eq!(stats.rejected, 0);
        // Pages must not leak across faults, and the handle outcomes must
        // agree with the server's panic counter.
        prop_assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
        prop_assert_eq!(panicked > 0, stats.batch_panics > 0);
    }
}
