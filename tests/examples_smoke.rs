//! Smoke tests mirroring each `examples/` program at miniature scale.
//!
//! `cargo test` already compiles every example (they are registered in the
//! facade package), so a broken example fails the build; these tests
//! additionally *execute* each example's core flow and assert that the
//! simulated `GpuCtx::a100()` timeline records nonzero SDDMM (QKᵀ), softmax
//! and SpMM (AV) stages — the three kernels of the paper's pipeline.

use dfss::prelude::*;
use dfss::tasks::protocol::{eval_classifier, eval_qa_f1, train_classifier, train_qa, TrainSpec};
use dfss::tasks::{qa, textcls};
use dfss::transformer::heads::{ClassifierHead, SpanHead};
use dfss_core::linear_baselines::NystromAttention;
use dfss_gpusim::Stage;
use dfss_kernels::{sddmm, softmax, spmm};

/// The pipeline stages every Dfss forward must charge.
fn assert_pipeline_stages(ctx: &GpuCtx, what: &str) {
    for stage in [Stage::Qk, Stage::Softmax, Stage::Av] {
        assert!(
            ctx.timeline.stage_bytes(stage) > 0,
            "{what}: stage {stage:?} recorded no traffic"
        );
    }
    assert!(ctx.latency() > 0.0, "{what}: zero simulated latency");
}

/// `examples/quickstart.rs`: Dfss as a drop-in replacement for dense
/// attention, with a timeline and a compressed-weights inspection.
#[test]
fn quickstart_flow() {
    let (n, d) = (128, 32);
    let mut rng = Rng::new(7);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);

    let mut dense_ctx = GpuCtx::a100();
    let dense_out = FullAttention.forward(&mut dense_ctx, &q, &k, &v);
    assert_pipeline_stages(&dense_ctx, "quickstart/dense");

    let mut sparse_ctx = GpuCtx::a100();
    let dfss = DfssAttention::for_dtype::<f32>();
    let sparse_out = dfss.forward(&mut sparse_ctx, &q, &k, &v);
    assert_pipeline_stages(&sparse_ctx, "quickstart/dfss");
    assert_eq!(sparse_out.shape(), dense_out.shape());

    // Sparse must beat dense on the simulator (the Figure 5 claim).
    assert!(sparse_ctx.latency() < dense_ctx.latency());
    assert!(sparse_ctx.mem.peak() < dense_ctx.mem.peak());

    // Compressed weights are real and in the device layout.
    let mut ctx = GpuCtx::a100();
    let (_, weights) = dfss.forward_with_weights(&mut ctx, &q, &k, &v);
    assert_eq!(weights.nonzeros().len(), n * n / 2); // 1:2 density
    assert!(weights.meta_bytes() > 0);
    assert!(!weights.to_device_meta().unwrap().words().is_empty());
}

/// `examples/kernel_fusion_tour.rs`: fused vs unfused SDDMM and the
/// zero-overhead claim, then the rest of the pipeline on compressed data.
#[test]
fn kernel_fusion_tour_flow() {
    let (n, d) = (128, 32);
    let mut rng = Rng::new(1);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let scale = 1.0 / (d as f32).sqrt();

    let mut fused = GpuCtx::a100();
    let mut comp = sddmm::sddmm_nm_fused(&mut fused, &q, &k, scale, NmPattern::P1_2);
    let mut unfused = GpuCtx::a100();
    let _ = sddmm::sddmm_nm_unfused(&mut unfused, &q, &k, scale, NmPattern::P1_2);

    // The unfused path moves the dense score matrix out and back in:
    // 2·n²·4 extra bytes.
    let extra = unfused.timeline.total_bytes() - fused.timeline.total_bytes();
    assert_eq!(extra, 2 * (n * n) as u64 * 4);

    softmax::softmax_nm(&mut fused, &mut comp);
    let out = spmm::spmm_nm(&mut fused, &comp, &v);
    assert_eq!(out.shape(), (n, d));
    assert_pipeline_stages(&fused, "kernel_fusion_tour");
}

/// `examples/combine_nystrom.rs`: Dfss composed with a linear mechanism
/// reduces its traffic without changing the output materially.
#[test]
fn combine_nystrom_flow() {
    let (n, d) = (256, 32);
    let mut rng = Rng::new(2);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);

    let mut plain_ctx = GpuCtx::a100();
    let plain_out = NystromAttention::new(32).forward(&mut plain_ctx, &q, &k, &v);
    let mut combo_ctx = GpuCtx::a100();
    let combo_out = NystromAttention::new(32)
        .with_dfss(NmPattern::P1_2)
        .forward(&mut combo_ctx, &q, &k, &v);

    assert!(combo_ctx.timeline.total_bytes() < plain_ctx.timeline.total_bytes());
    assert!(combo_ctx.timeline.stage_bytes(Stage::Softmax) > 0);
    // With random (unconcentrated) scores the pruned factors may differ a
    // lot from plain Nyström — the example prints the divergence rather
    // than bounding it. The smoke test checks both outputs are well-formed.
    assert_eq!(combo_out.shape(), plain_out.shape());
    assert!(combo_out.as_slice().iter().all(|x| x.is_finite()));
    assert!(plain_out.frobenius_norm() > 0.0 && combo_out.frobenius_norm() > 0.0);
}

/// `examples/long_range_arena.rs`: a tiny encoder trains on the synthetic
/// text-classification task under both dense and Dfss attention.
#[test]
fn long_range_arena_flow() {
    let tcfg = textcls::TextClsConfig {
        seq_len: 32,
        ..Default::default()
    };
    let ds = textcls::generate(&tcfg, 40, 20, 5);
    ds.sanity_check();

    for kind in [AttnKind::Full, AttnKind::Nm(NmPattern::P1_2)] {
        let cfg = EncoderConfig {
            vocab: ds.vocab,
            max_len: ds.seq_len,
            d_model: 16,
            heads: 2,
            d_ffn: 32,
            layers: 1,
            kind,
        };
        let mut rng = Rng::new(11);
        let mut enc = Encoder::new(cfg, &mut rng);
        let mut head = ClassifierHead::new(16, ds.classes, &mut rng);
        let spec = TrainSpec::quick(1, ds.train.len(), 8);
        let _ = train_classifier(&mut enc, &mut head, &ds.train, &spec);
        let acc = eval_classifier(&mut enc, &mut head, &ds.test);
        assert!((0.0..=1.0).contains(&acc), "accuracy out of range: {acc}");
    }
}

/// `examples/qa_finetune.rs`: pretrain dense on the QA task, swap in Dfss
/// without finetuning, evaluate — the §5.1 protocol.
#[test]
fn qa_finetune_flow() {
    let qcfg = qa::QaConfig {
        seq_len: 24,
        records: 2,
        ..Default::default()
    };
    let train = qa::generate(&qcfg, 30, 1);
    let test = qa::generate(&qcfg, 10, 2);

    let cfg = EncoderConfig {
        vocab: qcfg.vocab(),
        max_len: qcfg.seq_len,
        d_model: 16,
        heads: 2,
        d_ffn: 32,
        layers: 1,
        kind: AttnKind::Full,
    };
    let mut rng = Rng::new(3);
    let mut enc = Encoder::new(cfg, &mut rng);
    let mut head = SpanHead::new(16, &mut rng);
    let spec = TrainSpec::quick(1, train.len(), 8);
    let _ = train_qa(&mut enc, &mut head, &train, &spec);
    let dense_f1 = eval_qa_f1(&mut enc, &mut head, &test, qcfg.span_max);

    // The drop-in swap must evaluate without retraining.
    enc.set_attention(AttnKind::Nm(NmPattern::P1_2));
    let swap_f1 = eval_qa_f1(&mut enc, &mut head, &test, qcfg.span_max);
    assert!((0.0..=100.0).contains(&dense_f1));
    assert!((0.0..=100.0).contains(&swap_f1));
}
