//! Chaos at the wire: random serving traffic driven through the HTTP
//! front door with a random seeded [`FaultPlan`] spanning **both** fault
//! layers — batcher faults (injected panics, slow launches, pool
//! exhaustion) keyed by front-door operation ordinal, and socket faults
//! (mid-request disconnects, stalled response reads, garbage bytes)
//! keyed by wire-request ordinal and interpreted by the chaos client.
//! The contract, end to end over a real loopback socket:
//!
//! - **Typed failures only**: every response carries a status from the
//!   endpoint's documented set — never a hang, never an untyped error,
//!   never a dropped acceptor.
//! - **No acceptor hang**: after the whole fault schedule has fired, a
//!   plain `GET /healthz` on a fresh connection still answers `200`
//!   within a bounded read.
//! - **Bit-identity for untouched requests**: every `200` response is
//!   bit-identical to fault-free solo computation against a host-side
//!   model of the session state at submission time.
//! - **Reconciliation**: post-drain, `kv_pages_allocated ==
//!   kv_pages_freed` (abandoned sessions included),
//!   `http_connections_accepted` equals the connections this test
//!   opened, and `http_parse_rejects` equals the garbage streams it
//!   sent.
//!
//! A second fuzz-style proptest feeds arbitrary byte streams straight at
//! the parser: it must return typed errors, never panic.

use dfss::prelude::*;
use dfss_serve::http::{HttpConfig, HttpServer};
use dfss_serve::wire::{self, Json, RequestReader, WireLimits};
use dfss_serve::{AttentionServer, BatchPolicy, FaultKind, FaultPlan};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Bounded client-side wait: long enough that a live server always
/// answers, short enough that a hang fails the test instead of wedging
/// CI.
const NO_HANG: Duration = Duration::from_secs(10);

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn matrix_json(m: &Matrix<f32>) -> Json {
    Json::Arr(
        (0..m.rows())
            .map(|i| Json::f32_row(&m.as_slice()[i * m.cols()..(i + 1) * m.cols()]))
            .collect(),
    )
}

/// Serialise one HTTP/1.1 request with `Connection: close` (each chaos
/// exchange uses a fresh connection so accepted-connection accounting
/// stays exact).
fn request_bytes(method: &str, path: &str, body: Option<&Json>) -> Vec<u8> {
    let payload = body.map(Json::render).unwrap_or_default();
    let mut out = format!(
        "{method} {path} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        payload.len()
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// What one wire exchange produced: a parsed response, or nothing
/// (the fault destroyed the exchange before a response existed).
enum Outcome {
    Response(wire::Response),
    NoResponse,
}

/// Run one exchange on a fresh connection, applying the wire fault
/// scheduled for this ordinal (if any).
fn exchange(addr: SocketAddr, bytes: &[u8], fault: Option<FaultKind>) -> std::io::Result<Outcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(NO_HANG))?;
    stream.set_write_timeout(Some(NO_HANG))?;
    stream.set_nodelay(true)?;
    match fault {
        Some(FaultKind::DisconnectMidRequest) => {
            // Half the bytes, then a hard close: the server must drop
            // the torso silently — no response, no hung handler.
            stream.write_all(&bytes[..bytes.len() / 2])?;
            let _ = stream.shutdown(Shutdown::Both);
            return Ok(Outcome::NoResponse);
        }
        Some(FaultKind::GarbageBytes) => {
            // Not HTTP at all (TLS-handshake-looking junk): the typed
            // 400 must come back on a live connection.
            stream.write_all(b"\x16\x03\x01\x02\x00chaos-not-http\r\n\r\n")?;
        }
        Some(FaultKind::StallMidResponse(delay)) => {
            // Full request, then refuse to read for a while: the
            // response parks in the socket buffer, the server moves on.
            stream.write_all(bytes)?;
            std::thread::sleep(delay);
        }
        _ => {
            stream.write_all(bytes)?;
        }
    }
    let mut reader = RequestReader::new(stream);
    match wire::read_response(&mut reader, &WireLimits::default()) {
        Ok(resp) => Ok(Outcome::Response(resp)),
        Err(_) => Ok(Outcome::NoResponse),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn wire_chaos_stays_typed_isolated_and_reconciled(
        seed in 0u64..10_000,
        ops in proptest::collection::vec(0usize..8, 14),
        // One shared ordinal space: the batcher walks it by front-door
        // operation index, the chaos client by wire-request index. The
        // two counters drift once a wire fault eats an exchange — that
        // is fine, the schedule stays deterministic for a given input.
        fault_ops in proptest::collection::vec(0u64..28, 6),
        fault_kinds in proptest::collection::vec(0usize..6, 6),
    ) {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = if seed % 3 == 0 {
            Arc::new(FullAttention)
        } else {
            Arc::new(DfssAttention::new(NmPattern::P1_2))
        };
        let mut plan = FaultPlan::new();
        for (&op, &kind) in fault_ops.iter().zip(&fault_kinds) {
            let kind = match kind {
                0 => FaultKind::PanicInBatch,
                1 => FaultKind::SlowLaunch(Duration::from_millis(1)),
                2 => FaultKind::ExhaustPool,
                3 => FaultKind::DisconnectMidRequest,
                4 => FaultKind::StallMidResponse(Duration::from_millis(50)),
                _ => FaultKind::GarbageBytes,
            };
            plan = plan.inject(op, kind);
        }
        let att = AttentionServer::start_with_faults(
            Arc::clone(&mech),
            BatchPolicy::batched(3, Duration::from_millis(2)),
            plan.clone(),
        );
        let config = HttpConfig {
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            drain_deadline: Duration::from_secs(2),
            ..HttpConfig::default()
        };
        let server = HttpServer::bind(att, config).expect("bind loopback");
        let addr = server.local_addr();
        let (d, d_v) = (8usize, 8usize);
        let mut rng = Rng::new(seed);
        // Host-side model of each open session's cache, updated only on
        // a 200 — wire-destroyed and shed operations leave it untouched.
        let mut model: Vec<(u64, Matrix<f32>, Matrix<f32>)> = Vec::new();
        let mut connects = 0u64;
        let mut garbage_sent = 0u64;
        let mut ok_prefills = 0u64;
        let mut ok_decodes = 0u64;
        let mut saw_panic = false;
        let mut wire_op = 0u64;
        let mut run = |method: &str,
                       path: &str,
                       body: Option<&Json>,
                       connects: &mut u64,
                       garbage_sent: &mut u64|
         -> Result<Option<wire::Response>, TestCaseError> {
            let fault = plan.get(wire_op).filter(|f| f.is_wire());
            wire_op += 1;
            *connects += 1;
            if fault == Some(FaultKind::GarbageBytes) {
                *garbage_sent += 1;
            }
            let bytes = request_bytes(method, path, body);
            match exchange(addr, &bytes, fault) {
                Ok(Outcome::Response(resp)) => {
                    if fault == Some(FaultKind::GarbageBytes) {
                        prop_assert!(resp.status == 400, "garbage must answer typed 400, got {}", resp.status);
                        return Ok(None);
                    }
                    Ok(Some(resp))
                }
                Ok(Outcome::NoResponse) => {
                    prop_assert!(
                        fault == Some(FaultKind::DisconnectMidRequest),
                        "only a mid-request disconnect may end without a response"
                    );
                    Ok(None)
                }
                Err(e) => Err(TestCaseError::fail(format!("socket failure: {e}"))),
            }
        };
        for &op in &ops {
            match op {
                // Open + prime a session.
                0 | 1 => {
                    let resp = run(
                        "POST",
                        "/v1/sessions",
                        Some(&Json::obj(vec![("d", Json::Num(d as f64))])),
                        &mut connects,
                        &mut garbage_sent,
                    )?;
                    let Some(resp) = resp else { continue };
                    prop_assert!(
                        matches!(resp.status, 200 | 503),
                        "open answered {}", resp.status
                    );
                    if resp.status != 200 {
                        continue;
                    }
                    let body = Json::parse(&resp.body).expect("valid JSON body");
                    let sid = body.get("session").unwrap().as_f64().unwrap() as u64;
                    let len = 1 + rng.below(5);
                    let k = Matrix::<f32>::random_normal(len, d, 0.0, 1.0, &mut rng);
                    let v = Matrix::<f32>::random_normal(len, d_v, 0.0, 1.0, &mut rng);
                    let resp = run(
                        "POST",
                        &format!("/v1/sessions/{sid}/append"),
                        Some(&Json::obj(vec![
                            ("k", matrix_json(&k)),
                            ("v", matrix_json(&v)),
                        ])),
                        &mut connects,
                        &mut garbage_sent,
                    )?;
                    match resp {
                        Some(resp) if resp.status == 200 => model.push((sid, k, v)),
                        Some(resp) => {
                            prop_assert!(
                                matches!(resp.status, 503),
                                "extend answered {}", resp.status
                            );
                        }
                        // Wire fault ate the extend: the session stays
                        // open and empty — the drain must still reclaim
                        // it.
                        None => {}
                    }
                }
                // Append one row to a random open session.
                2 | 3 => {
                    if model.is_empty() {
                        continue;
                    }
                    let i = rng.below(model.len());
                    let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                    let v_row: Vec<f32> = (0..d_v).map(|_| rng.normal(0.0, 1.0)).collect();
                    let sid = model[i].0;
                    let resp = run(
                        "POST",
                        &format!("/v1/sessions/{sid}/append"),
                        Some(&Json::obj(vec![
                            ("k_row", Json::f32_row(&k_row)),
                            ("v_row", Json::f32_row(&v_row)),
                        ])),
                        &mut connects,
                        &mut garbage_sent,
                    )?;
                    match resp {
                        Some(resp) if resp.status == 200 => {
                            let (_, k, v) = &mut model[i];
                            *k = k.vstack(&Matrix::from_vec(1, d, k_row));
                            *v = v.vstack(&Matrix::from_vec(1, d_v, v_row));
                        }
                        Some(resp) => {
                            prop_assert!(
                                matches!(resp.status, 503),
                                "append answered {}", resp.status
                            );
                        }
                        None => {}
                    }
                }
                // Decode against the model's snapshot.
                4..=6 => {
                    if model.is_empty() {
                        continue;
                    }
                    let i = rng.below(model.len());
                    let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                    let (sid, k, v) = &model[i];
                    let mut sctx = GpuCtx::a100();
                    let want = mech.decode(&mut sctx, &Matrix::from_vec(1, d, q_row.clone()), k, v);
                    let resp = run(
                        "POST",
                        &format!("/v1/sessions/{sid}/decode"),
                        Some(&Json::obj(vec![("q_row", Json::f32_row(&q_row))])),
                        &mut connects,
                        &mut garbage_sent,
                    )?;
                    let Some(resp) = resp else { continue };
                    prop_assert!(
                        matches!(resp.status, 200 | 500),
                        "decode answered {}", resp.status
                    );
                    if resp.status == 500 {
                        saw_panic = true;
                        continue;
                    }
                    ok_decodes += 1;
                    let body = Json::parse(&resp.body).expect("valid JSON body");
                    let got = body.get("output").unwrap().to_f32_row().unwrap();
                    prop_assert!(
                        bits_equal(&got, want.as_slice()),
                        "decode diverged from fault-free solo decode over HTTP"
                    );
                    prop_assert_eq!(
                        body.get("cached_len").unwrap().as_f64().unwrap() as usize,
                        k.rows()
                    );
                }
                // A prefill request rides the same front door.
                _ => {
                    let n = 12;
                    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let mut sctx = GpuCtx::a100();
                    let want = mech.forward(&mut sctx, &q, &k, &v);
                    let resp = run(
                        "POST",
                        "/v1/prefill",
                        Some(&Json::obj(vec![
                            ("q", matrix_json(&q)),
                            ("k", matrix_json(&k)),
                            ("v", matrix_json(&v)),
                        ])),
                        &mut connects,
                        &mut garbage_sent,
                    )?;
                    let Some(resp) = resp else { continue };
                    prop_assert!(
                        matches!(resp.status, 200 | 500),
                        "prefill answered {}", resp.status
                    );
                    if resp.status == 500 {
                        saw_panic = true;
                        continue;
                    }
                    ok_prefills += 1;
                    let body = Json::parse(&resp.body).expect("valid JSON body");
                    let rows = body.get("output").unwrap().as_arr().unwrap();
                    let got: Vec<f32> = rows
                        .iter()
                        .flat_map(|r| r.to_f32_row().expect("float rows"))
                        .collect();
                    prop_assert!(
                        bits_equal(&got, want.as_slice()),
                        "prefill diverged from fault-free solo forward over HTTP"
                    );
                }
            }
        }
        // No acceptor hang: after the whole schedule fired, a fresh
        // connection gets a prompt 200 (no wire fault applies — the
        // healthz probe is outside the counted chaos ordinals).
        connects += 1;
        let health = exchange(addr, &request_bytes("GET", "/healthz", None), None)
            .expect("healthz socket");
        match health {
            Outcome::Response(resp) => {
                prop_assert_eq!(resp.status, 200);
            }
            Outcome::NoResponse => {
                return Err(TestCaseError::fail("healthz got no response"))
            }
        }
        // Sessions are deliberately left open: the drain must reclaim
        // every page anyway, and the wire counters must reconcile with
        // what this client actually did.
        let stats = server.shutdown();
        prop_assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
        prop_assert_eq!(stats.http_connections_accepted, connects);
        prop_assert_eq!(stats.http_parse_rejects, garbage_sent);
        prop_assert_eq!(stats.http_connections_shed, 0);
        prop_assert_eq!(stats.served, ok_prefills);
        prop_assert_eq!(stats.decode_steps, ok_decodes);
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(saw_panic, stats.batch_panics > 0);
    }

    /// Fuzz the request parser with arbitrary byte streams: it must
    /// answer `Ok` or a typed [`wire::WireError`] — never panic, never
    /// loop.
    #[test]
    fn request_parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255u8, 1024),
    ) {
        let limits = WireLimits {
            max_header_bytes: 256,
            max_body_bytes: 1024,
        };
        let mut reader = RequestReader::new(&bytes[..]);
        // Drain the stream through the parser; both arms are typed.
        loop {
            match reader.read_request(&limits) {
                Ok(None) => break,
                Ok(Some(_)) => {}
                Err(_) => break,
            }
        }
        // The JSON parser gets the same treatment.
        let _ = Json::parse(&bytes);
    }

    /// A valid request head with arbitrary trailing junk parses the head
    /// and types whatever the junk turns out to be.
    #[test]
    fn parser_stays_typed_after_a_valid_prefix(
        junk in proptest::collection::vec(0u8..=255u8, 256),
    ) {
        let mut stream = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n".to_vec();
        stream.extend_from_slice(&junk);
        let mut reader = RequestReader::new(&stream[..]);
        let limits = WireLimits::default();
        let first = reader.read_request(&limits).expect("valid head parses");
        prop_assert!(first.is_some());
        loop {
            match reader.read_request(&limits) {
                Ok(None) => break,
                Ok(Some(_)) => {}
                Err(_) => break,
            }
        }
    }
}
