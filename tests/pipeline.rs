//! Cross-crate integration tests: tensor → nmsparse → kernels → core.

use dfss::prelude::*;
use dfss_core::full::reference_attention;
use dfss_gpusim::Stage;
use dfss_kernels::{sddmm, softmax, spmm};

fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    let mut rng = Rng::new(seed);
    (
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
    )
}

#[test]
fn full_pipeline_composes_across_crates() {
    // sddmm (kernels) → device meta round trip (nmsparse) → softmax → spmm,
    // checked against the pure-tensor reference.
    let (q, k, v) = qkv(64, 32, 1);
    let scale = 1.0 / (32.0f32).sqrt();
    let mut ctx = GpuCtx::a100();

    let comp = sddmm::sddmm_nm_fused(&mut ctx, &q, &k, scale, NmPattern::P1_2);
    // Round trip through the swizzled device metadata before consuming.
    let dm = comp.to_device_meta().expect("hardware pattern");
    let mut comp2 =
        NmCompressed::from_device_meta(NmPattern::P1_2, 64, 64, comp.nonzeros().to_vec(), &dm)
            .expect("hardware pattern");
    assert_eq!(comp2, comp);

    softmax::softmax_nm(&mut ctx, &mut comp2);
    let out = spmm::spmm_nm(&mut ctx, &comp2, &v);

    let mut ctx2 = GpuCtx::a100();
    let direct = DfssAttention::new(NmPattern::P1_2).forward(&mut ctx2, &q, &k, &v);
    assert!(out.max_abs_diff(&direct) < 1e-5);
}

#[test]
fn dfss_tracks_full_attention_on_concentrated_scores() {
    // With concentrated scores (trained-attention regime), Dfss ≈ dense.
    let mut rng = Rng::new(2);
    let n = 96;
    let q = Matrix::<f32>::random_normal(n, 16, 0.0, 2.0, &mut rng);
    let k = q.clone(); // self-similarity concentrates the softmax
    let v = Matrix::<f32>::random_normal(n, 16, 0.0, 1.0, &mut rng);
    let mut ctx = GpuCtx::a100();
    let sparse = DfssAttention::new(NmPattern::P1_2).forward(&mut ctx, &q, &k, &v);
    let dense = reference_attention(&q, &k, &v);
    let rel = sparse.zip_with(&dense, |a, b| a - b).frobenius_norm() / dense.frobenius_norm();
    assert!(rel < 0.12, "relative error {rel}");
}

#[test]
fn charge_only_mode_matches_executed_costs() {
    // The charge-only fast path must record the identical timeline.
    let (q, k, v) = qkv(128, 64, 3);
    let mech = DfssAttention::for_dtype::<f32>();
    let mut executed = GpuCtx::a100();
    let _ = mech.forward(&mut executed, &q, &k, &v);
    let mut charged = GpuCtx::a100_charge_only();
    let _ = mech.forward(&mut charged, &q, &k, &v);
    assert_eq!(
        executed.timeline.total_bytes(),
        charged.timeline.total_bytes()
    );
    for stage in Stage::ALL {
        assert_eq!(
            executed.timeline.stage_bytes(stage),
            charged.timeline.stage_bytes(stage),
            "{stage:?}"
        );
    }
    assert!((executed.latency() - charged.latency()).abs() < 1e-12);
    assert_eq!(executed.mem.peak(), charged.mem.peak());
}

#[test]
fn bf16_pipeline_end_to_end() {
    let mut rng = Rng::new(4);
    let q = Matrix::<Bf16>::random_normal(64, 32, 0.0, 1.0, &mut rng);
    let k = Matrix::<Bf16>::random_normal(64, 32, 0.0, 1.0, &mut rng);
    let v = Matrix::<Bf16>::random_normal(64, 32, 0.0, 1.0, &mut rng);
    let mut ctx = GpuCtx::a100();
    let mech = DfssAttention::for_dtype::<Bf16>();
    assert_eq!(mech.pattern(), NmPattern::P2_4);
    let out = mech.forward(&mut ctx, &q, &k, &v);
    assert!(out.as_slice().iter().all(|x| !x.is_nan()));
    // The 2:4 bf16 pipeline must also be faster than dense on the simulator.
    let mut dense_ctx = GpuCtx::a100();
    let _ = FullAttention.forward(&mut dense_ctx, &q, &k, &v);
    assert!(ctx.timeline.total_bytes() < dense_ctx.timeline.total_bytes());
}

#[test]
fn trained_encoder_swaps_into_kernel_pipeline_consistently() {
    // The transformer's Nm attention (mask-based training path) and the
    // kernel pipeline (compressed inference path) select identical patterns:
    // prune(scores) == decompress(compress(scores)).
    let mut rng = Rng::new(5);
    let scores = Matrix::<f32>::random_normal(32, 32, 0.0, 1.0, &mut rng);
    let mask = NmPattern::P1_2.mask_matrix(&scores);
    let comp = NmCompressed::compress(&scores, NmPattern::P1_2);
    let dec = comp.decompress();
    for r in 0..32 {
        for c in 0..32 {
            let kept_by_mask = mask.get(r, c) == 1.0;
            let kept_by_comp = dec.get(r, c) != 0.0 || scores.get(r, c) == 0.0;
            assert_eq!(kept_by_mask, kept_by_comp, "({r},{c})");
        }
    }
}
