//! Sharded multi-engine serving contract, end to end:
//!
//! - **Stable routing**: a decode session is pinned to one shard at open
//!   and never moves — its KV pages live and die on that shard.
//! - **Stealing is prefill-only**: work stealing moves stateless prefill
//!   chunks between engines; decode steps always run on the session's
//!   shard. Stolen chunks are marked distinctly in the executing shard's
//!   trace, and outputs stay bit-identical to solo unsharded compute.
//! - **Per-shard reconciliation**: after chaos-style faulted traffic on a
//!   4-shard server, every shard's lifetime page counters balance
//!   (`kv_pages_allocated == kv_pages_freed`) once all sessions close.
//! - **Shard-count invariance**: the same inputs produce bitwise equal
//!   outputs on 1-shard and 4-shard servers.

use dfss::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Bounded wait: long enough that a live server always answers, short
/// enough that a hang fails the test instead of wedging CI.
const NO_HANG: Duration = Duration::from_secs(30);

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn full_server(shards: usize) -> ShardedServer<f32> {
    ShardedServer::start(
        Arc::new(FullAttention),
        BatchPolicy::per_request(),
        SchedPolicy::default(),
        KvConfig::default(),
        shards,
    )
}

#[test]
fn sessions_pin_to_one_shard_for_their_whole_lifetime() {
    let server = full_server(4);
    let d = 8usize;
    let mut rng = Rng::new(42);
    let mut sessions = Vec::new();
    for _ in 0..32 {
        let s = server.open_session(d, d).unwrap();
        sessions.push((s, server.shard_of(s).expect("open session is routed")));
    }
    // The hash spreads sessions over more than one shard.
    let mut used: Vec<usize> = sessions.iter().map(|&(_, shard)| shard).collect();
    used.sort_unstable();
    used.dedup();
    assert!(used.len() > 1, "32 sessions all hashed to one shard");
    // Appends and decode steps never move a session.
    for round in 0..3 {
        for &(s, home) in &sessions {
            let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
            let v_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
            server.append(s, k_row, v_row).unwrap();
            assert_eq!(server.shard_of(s), Some(home), "append moved the session");
            if round > 0 {
                let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                let h = server
                    .submit_decode(DecodeRequest { session: s, q_row })
                    .unwrap();
                h.wait_timeout(NO_HANG).unwrap();
                assert_eq!(server.shard_of(s), Some(home), "decode moved the session");
            }
        }
    }
    // Decode executed exactly on the pinned shards: per-shard step counts
    // match the session routing.
    let mut expected_steps = [0u64; 4];
    for &(_, home) in &sessions {
        expected_steps[home] += 2; // rounds 1 and 2
    }
    for (i, stats) in server.stats_snapshot().iter().enumerate() {
        assert_eq!(stats.decode_steps, expected_steps[i]);
    }
    for &(s, _) in &sessions {
        server.close_session(s).unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.iter().map(|s| s.sessions_opened).sum::<u64>(), 32);
    assert_eq!(stats.iter().map(|s| s.sessions_closed).sum::<u64>(), 32);
    for shard in &stats {
        assert_eq!(shard.kv_pages_allocated, shard.kv_pages_freed);
    }
}

#[test]
fn stealing_moves_prefill_chunks_only_and_preserves_bit_parity() {
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
    let server = ShardedServer::start(
        Arc::clone(&mech),
        BatchPolicy::per_request(),
        // Small chunks over big jobs: plenty of stealable work while the
        // home shard grinds.
        SchedPolicy::new(16, 32),
        KvConfig::default(),
        2,
    );
    let d = 32usize;
    let n = 512usize;
    let mut rng = Rng::new(7);
    // One decode session, pinned; its steps must never be stolen.
    let session = server.open_session(d, d).unwrap();
    let home = server.shard_of(session).unwrap();
    let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    let v_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    server.append(session, k_row, v_row).unwrap();
    // A burst of big prefills: the pool fills faster than one engine
    // drains, so the other shard steals.
    let mut inputs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..6 {
        let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        handles.push(server.submit(q.clone(), k.clone(), v.clone()).unwrap());
        inputs.push((q, k, v));
    }
    let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    let dh = server
        .submit_decode(DecodeRequest {
            session,
            q_row: q_row.clone(),
        })
        .unwrap();
    dh.wait_timeout(NO_HANG).unwrap();
    for (handle, (q, k, v)) in handles.into_iter().zip(&inputs) {
        let served = handle.wait_timeout(NO_HANG).unwrap();
        let solo = {
            let mut ctx = GpuCtx::a100();
            mech.forward(&mut ctx, q, k, v)
        };
        assert!(
            bits_equal(served.output.as_slice(), solo.as_slice()),
            "sharded (possibly stolen) output diverged from solo forward"
        );
    }
    let traces = server.sched_traces();
    server.close_session(session).unwrap();
    let stats = server.shutdown();
    let total_chunks: u64 = stats.iter().map(|s| s.prefill_chunks).sum();
    let stolen: u64 = stats.iter().map(|s| s.chunks_stolen).sum();
    // Every job needs at least ceil(n/16) chunks.
    assert!(total_chunks >= 6 * (n as u64).div_ceil(16));
    assert!(stolen <= total_chunks);
    // Decode ran only on the pinned shard.
    for (i, shard) in stats.iter().enumerate() {
        assert_eq!(shard.decode_steps, if i == home { 1 } else { 0 });
    }
    // Steal executions are marked distinctly in the executing shard's
    // trace, and the trace count reconciles with the stats counter.
    let steal_events: u64 = traces
        .iter()
        .map(|t| {
            t.render()
                .lines()
                .filter(|l| l.starts_with("steal "))
                .count() as u64
        })
        .sum();
    assert_eq!(steal_events, stolen);
}

#[test]
fn four_shard_chaos_traffic_reconciles_per_shard_page_counters() {
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
    // Per-shard fault plans: early front-door ops on each shard hit
    // injected pool exhaustion and decode-batch panics.
    let plans = (0..4)
        .map(|i| {
            FaultPlan::new()
                .inject(2 + i as u64, FaultKind::ExhaustPool)
                .inject(5 + i as u64, FaultKind::PanicInBatch)
                .inject(9, FaultKind::SlowLaunch(Duration::from_millis(1)))
        })
        .collect();
    let server = ShardedServer::start_with_faults(
        Arc::clone(&mech),
        BatchPolicy::per_request(),
        SchedPolicy::new(8, 16),
        KvConfig::default(),
        4,
        plans,
    );
    let d = 8usize;
    let mut rng = Rng::new(99);
    // Host-side model of each session's cache, updated only on admitted
    // ops — the bit-parity reference for successful decodes.
    let mut sessions: Vec<(SessionId, Matrix<f32>, Matrix<f32>)> = Vec::new();
    let mut decode_outcomes = Vec::new();
    for step in 0..60 {
        match step % 4 {
            0 => {
                if let Ok(s) = server.open_session(d, d) {
                    sessions.push((s, Matrix::zeros(0, d), Matrix::zeros(0, d)));
                }
            }
            1 | 2 => {
                if sessions.is_empty() {
                    continue;
                }
                let i = rng.below(sessions.len());
                let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                let v_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                let (s, k, v) = &mut sessions[i];
                // Injected exhaustion is a typed refusal that leaves the
                // cache (and so the model) untouched.
                if server.append(*s, k_row.clone(), v_row.clone()).is_ok() {
                    *k = k.vstack(&Matrix::from_vec(1, d, k_row));
                    *v = v.vstack(&Matrix::from_vec(1, d, v_row));
                }
            }
            _ => {
                if sessions.is_empty() {
                    continue;
                }
                let i = rng.below(sessions.len());
                let (s, k, v) = &sessions[i];
                if k.rows() == 0 {
                    continue;
                }
                let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                if let Ok(h) = server.submit_decode(DecodeRequest {
                    session: *s,
                    q_row: q_row.clone(),
                }) {
                    decode_outcomes.push((h, q_row, k.clone(), v.clone()));
                }
            }
        }
    }
    // Every handle resolves within the bound — success or typed failure.
    let mut panics = 0u64;
    for (h, q_row, k, v) in decode_outcomes {
        match h.wait_timeout(NO_HANG) {
            Ok(got) => {
                let solo = {
                    let mut ctx = GpuCtx::a100();
                    mech.decode(&mut ctx, &Matrix::from_vec(1, d, q_row), &k, &v)
                };
                assert!(
                    bits_equal(got.output.as_slice(), solo.as_slice()),
                    "faulted-traffic decode diverged from the host model"
                );
            }
            Err(ServeError::BatchPanicked { .. }) => panics += 1,
            Err(e) => panic!("untyped or unexpected decode failure: {e:?}"),
        }
    }
    for (s, _, _) in &sessions {
        server.close_session(*s).unwrap();
    }
    let stats = server.shutdown();
    // The injected panics were isolated and counted. One panicked ragged
    // launch fails *every* step packed into it typed, so the per-launch
    // counter is a lower bound, not an equality.
    let counted: u64 = stats.iter().map(|s| s.batch_panics).sum();
    assert!(
        panics == 0 || counted >= 1,
        "{panics} typed BatchPanicked replies but no shard counted a panicked launch"
    );
    // Reconciliation, per shard: all pages returned after close-all.
    for (i, shard) in stats.iter().enumerate() {
        assert_eq!(
            shard.kv_pages_allocated, shard.kv_pages_freed,
            "shard {i} leaked KV pages under faulted traffic"
        );
    }
}

#[test]
fn sharded_http_front_door_serves_and_exports_per_shard_gauges() {
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
    let fleet = ShardedServer::start(
        Arc::clone(&mech),
        BatchPolicy::per_request(),
        SchedPolicy::new(8, 16),
        KvConfig::default(),
        2,
    );
    let http = HttpServer::bind(
        {
            // bind_sharded is the sharded twin of bind; exercise it by
            // name below — this block only builds the single-engine
            // control used for the route-parity comparison.
            AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request())
        },
        HttpConfig::default(),
    )
    .unwrap();
    let control_addr = http.local_addr();
    let sharded = HttpServer::bind_sharded(fleet, HttpConfig::default()).unwrap();
    let addr = sharded.local_addr();
    let d = 8usize;
    let mut rng = Rng::new(31);
    let row_json = |row: &[f32]| WireJson::f32_row(row);
    let matrix_json = |m: &Matrix<f32>| {
        WireJson::Arr(
            (0..m.rows())
                .map(|i| row_json(&m.as_slice()[i * m.cols()..(i + 1) * m.cols()]))
                .collect(),
        )
    };
    // Prefill through both front doors must agree bitwise (the sharded
    // path chunks and may steal; the control serves whole).
    let q = Matrix::<f32>::random_normal(24, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(24, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(24, d, 0.0, 1.0, &mut rng);
    let body = WireJson::obj(vec![
        ("q", matrix_json(&q)),
        ("k", matrix_json(&k)),
        ("v", matrix_json(&v)),
    ]);
    let mut client = HttpClient::connect(addr).with_timeout(NO_HANG);
    let mut control = HttpClient::connect(control_addr).with_timeout(NO_HANG);
    let served = client.call("POST", "/v1/prefill", Some(&body)).unwrap();
    let expect = control.call("POST", "/v1/prefill", Some(&body)).unwrap();
    assert_eq!(
        served.get("output").unwrap().render(),
        expect.get("output").unwrap().render(),
        "sharded front-door prefill diverged from the single-engine route"
    );
    // Session traffic routes through the same global-id surface.
    let opened = client
        .call(
            "POST",
            "/v1/sessions",
            Some(&WireJson::obj(vec![("d", WireJson::Num(d as f64))])),
        )
        .unwrap();
    let sid = opened.get("session").unwrap().as_f64().unwrap() as u64;
    client
        .call(
            "POST",
            &format!("/v1/sessions/{sid}/append"),
            Some(&WireJson::obj(vec![
                ("k_row", row_json(&vec![1.0; d])),
                ("v_row", row_json(&vec![2.0; d])),
            ])),
        )
        .unwrap();
    let decoded = client
        .call(
            "POST",
            &format!("/v1/sessions/{sid}/decode"),
            Some(&WireJson::obj(vec![("q_row", row_json(&vec![0.5; d]))])),
        )
        .unwrap();
    assert_eq!(decoded.get("cached_len").unwrap().as_f64(), Some(1.0));
    // /metrics exports the fleet rollup and one labelled set per shard.
    let metrics = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    for gauge in [
        "dfss_served ",
        "dfss_shard_served{shard=\"0\"} ",
        "dfss_shard_served{shard=\"1\"} ",
        "dfss_shard_prefill_chunks{shard=\"0\"} ",
        "dfss_shard_kv_pages_allocated{shard=\"1\"} ",
        "dfss_shard_queue_depth_decode{shard=\"0\"} ",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(gauge)),
            "metrics missing per-shard gauge {gauge:?}\n{text}"
        );
    }
    // The rollup equals the sum of the per-shard served gauges.
    let read = |prefix: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(prefix))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparsable gauge {prefix:?}"))
    };
    assert_eq!(
        read("dfss_served "),
        read("dfss_shard_served{shard=\"0\"} ") + read("dfss_shard_served{shard=\"1\"} ")
    );
    client
        .request("DELETE", &format!("/v1/sessions/{sid}"), None)
        .unwrap();
    // Drain folds every shard: page counters reconcile fleet-wide.
    let stats = sharded.shutdown();
    assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
    http.shutdown();
}

#[test]
fn outputs_are_bit_identical_across_shard_counts() {
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(DfssAttention::new(NmPattern::P2_4));
    let d = 16usize;
    let n = 64usize;
    let make_inputs = || {
        let mut rng = Rng::new(123);
        (0..4)
            .map(|_| {
                (
                    Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng),
                    Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng),
                    Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng),
                )
            })
            .collect::<Vec<_>>()
    };
    let run = |shards: usize| {
        let server = ShardedServer::start(
            Arc::clone(&mech),
            BatchPolicy::per_request(),
            SchedPolicy::new(8, 16),
            KvConfig::default(),
            shards,
        );
        let outs: Vec<Matrix<f32>> = make_inputs()
            .into_iter()
            .map(|(q, k, v)| {
                server
                    .submit(q, k, v)
                    .unwrap()
                    .wait_timeout(NO_HANG)
                    .unwrap()
                    .output
            })
            .collect();
        server.shutdown();
        outs
    };
    let one = run(1);
    let four = run(4);
    let solo: Vec<Matrix<f32>> = make_inputs()
        .into_iter()
        .map(|(q, k, v)| {
            let mut ctx = GpuCtx::a100();
            mech.forward(&mut ctx, &q, &k, &v)
        })
        .collect();
    for ((a, b), c) in one.iter().zip(&four).zip(&solo) {
        assert!(bits_equal(a.as_slice(), c.as_slice()));
        assert!(bits_equal(b.as_slice(), c.as_slice()));
    }
}
