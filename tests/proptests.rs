//! Workspace-level property-based tests on the core invariants
//! (DESIGN.md §6).

use dfss::prelude::*;
use dfss_core::full::reference_attention;
use dfss_nmsparse::meta::DeviceMeta;
use dfss_tensor::math;
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f32>> {
    proptest::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compress_decompress_keeps_group_maxima(m in arb_matrix(8, 16)) {
        let comp = NmCompressed::compress(&m, NmPattern::P2_4);
        let dec = comp.decompress();
        // In every group, the decompressed nonzeros are the 2 largest.
        for r in 0..8 {
            for g in 0..4 {
                let vals: Vec<f32> = (0..4).map(|i| m.get(r, g * 4 + i)).collect();
                let mut sorted = vals.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
                let kept: Vec<f32> = (0..4)
                    .map(|i| dec.get(r, g * 4 + i))
                    .filter(|&v| v != 0.0)
                    .collect();
                for k in kept {
                    prop_assert!(k >= sorted[1] - 1e-6);
                }
            }
        }
    }

    #[test]
    fn device_meta_roundtrip(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let m = Matrix::<f32>::random_normal(32, 32, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&m, NmPattern::P1_2);
        let dm = comp.to_device_meta().expect("hardware pattern");
        let back = NmCompressed::from_device_meta(
            NmPattern::P1_2, 32, 32, comp.nonzeros().to_vec(), &dm)
            .expect("hardware pattern");
        prop_assert_eq!(back, comp);
    }

    #[test]
    fn device_meta_encode_decode_is_identity(
        codes in proptest::collection::vec(0usize..6, 32 * 8)
    ) {
        let valid: Vec<u8> = codes
            .iter()
            .map(|&i| dfss_nmsparse::meta::BF16_CODES[i])
            .collect();
        let dm = DeviceMeta::encode(32, 8, &valid);
        prop_assert_eq!(dm.decode(), valid);
    }

    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(6, 12)) {
        let mut x = m;
        for r in 0..x.rows() {
            math::softmax_row(x.row_mut(r));
            let s: f32 = x.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(x.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn nm_mask_density_is_exact(m in arb_matrix(8, 16)) {
        for pattern in [NmPattern::P1_2, NmPattern::P2_4] {
            let mask = pattern.mask_matrix(&m);
            let kept = mask.as_slice().iter().filter(|&&v| v == 1.0).count();
            prop_assert_eq!(kept as f64, 8.0 * 16.0 * pattern.density());
        }
    }

    #[test]
    fn spmm_equals_masked_dense_product(seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let s = Matrix::<f32>::random_normal(16, 32, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(32, 8, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&s, NmPattern::P1_2);
        let mut ctx = GpuCtx::a100();
        let fast = dfss_kernels::spmm::spmm_nm(&mut ctx, &comp, &v);
        let reference = comp.decompress().matmul_ref(&v);
        prop_assert!(fast.max_abs_diff(&reference) < 1e-2);
    }

    #[test]
    fn fused_sddmm_equals_unfused(seed in 0u64..1000) {
        let mut rng = Rng::new(seed);
        let q = Matrix::<f32>::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let k = Matrix::<f32>::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let mut c1 = GpuCtx::a100();
        let mut c2 = GpuCtx::a100();
        let a = dfss_kernels::sddmm::sddmm_nm_fused(&mut c1, &q, &k, 1.0, NmPattern::P2_4);
        let b = dfss_kernels::sddmm::sddmm_nm_unfused(&mut c2, &q, &k, 1.0, NmPattern::P2_4);
        prop_assert_eq!(a.codes(), b.codes());
        // And the fused one never moves more bytes.
        prop_assert!(c1.timeline.total_bytes() < c2.timeline.total_bytes());
    }

    #[test]
    fn qp_is_monotone_in_topk_density(seed in 0u64..500) {
        let mut rng = Rng::new(seed);
        let m = Matrix::<f32>::random_normal(24, 24, 0.0, 1.0, &mut rng);
        let q1 = dfss_core::quality::qp_quality_from_scores(
            &m, &dfss_core::quality::topk_mask(&m, 6), 2.0);
        let q2 = dfss_core::quality::qp_quality_from_scores(
            &m, &dfss_core::quality::topk_mask(&m, 12), 2.0);
        prop_assert!(q2 >= q1 - 1e-9);
    }

    #[test]
    fn bf16_roundtrip_is_idempotent(x in -1e30f32..1e30) {
        let once = Bf16::from_f32(x);
        let twice = Bf16::from_f32(once.to_f32());
        prop_assert_eq!(once.0, twice.0);
    }

    #[test]
    fn tf32_preserves_order(a in -1e6f32..1e6, b in -1e6f32..1e6) {
        let (ra, rb) = (dfss_tensor::tf32_round(a), dfss_tensor::tf32_round(b));
        if a < b {
            prop_assert!(ra <= rb);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The serving contract: pack → batched forward → unpack over randomly
    // bucketed heterogeneous requests is bit-identical to per-request solo
    // `forward`, for both the Dfss pipeline and the dense baseline. The
    // engine shape-buckets an interleaved request stream, coalesces each
    // bucket into one batched launch per op, and unpacks per-request
    // outputs; tickets come back in submission order.
    #[test]
    fn engine_pack_forward_unpack_matches_solo(
        seed in 0u64..10_000,
        picks in proptest::collection::vec(0usize..3, 8),
    ) {
        use dfss_core::engine::AttentionEngine;
        let shapes = [(16usize, 8usize), (32, 8), (32, 16)];
        let mech_dfss = DfssAttention::new(NmPattern::P1_2);
        let mech_full = dfss_core::FullAttention;
        let mech: &dyn Attention<f32> = if seed % 2 == 0 { &mech_full } else { &mech_dfss };
        let count = 2 + (seed as usize % 7); // 2..=8 requests
        let mut engine = AttentionEngine::new(mech);
        let mut rng = Rng::new(seed);
        let mut solo = Vec::new();
        for &p in picks.iter().take(count) {
            let (n, d) = shapes[p];
            let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let mut sctx = GpuCtx::a100();
            solo.push(mech.forward(&mut sctx, &q, &k, &v));
            engine.submit(q, k, v).expect("servable shapes");
        }
        let results = engine.flush();
        prop_assert_eq!(results.len(), solo.len());
        for (i, (res, want)) in results.iter().zip(&solo).enumerate() {
            prop_assert_eq!(res.ticket, dfss_core::Ticket(i as u64));
            let got = res.output.as_ref().expect("exec mode");
            prop_assert_eq!(got.shape(), want.shape());
            let same = got
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "request {} diverged from solo forward", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // When attention is fully concentrated (one dominant key per query —
    // the trained-attention regime the paper targets), pruning cannot drop
    // mass: Dfss must equal full attention up to float tolerance, at every
    // shape and for both hardware patterns.
    #[test]
    fn concentrated_scores_match_reference(
        seed in 0u64..10_000,
        shape in 0usize..4,
        pat in 0usize..2,
    ) {
        let n = [16usize, 32, 48, 64][shape];
        let pattern = [NmPattern::P1_2, NmPattern::P2_4][pat];
        let mut rng = Rng::new(seed);
        // K = 16·I and Q rows are 16·e_{t(i)}: query i's logit on its
        // dominant key t(i) is 256/√n ≥ 32, every other logit is 0, so the
        // softmax row is one up to e^{-32} — and the dominant column always
        // survives the N:M top-N selection of its group.
        let mut q = Matrix::<f32>::zeros(n, n);
        let mut k = Matrix::<f32>::zeros(n, n);
        for j in 0..n {
            k.set(j, j, 16.0);
        }
        for i in 0..n {
            let t = rng.below(n);
            q.set(i, t, 16.0);
        }
        let v = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);

        let mut ctx = GpuCtx::a100();
        let sparse = DfssAttention::new(pattern).forward(&mut ctx, &q, &k, &v);
        let dense = reference_attention(&q, &k, &v);
        let rel =
            sparse.zip_with(&dense, |a, b| a - b).frobenius_norm() / dense.frobenius_norm();
        // Tolerance: the kernel path rounds GEMM/SpMM inputs through TF32
        // (~2⁻¹⁰ relative), the host reference does not; any *pruning* loss
        // would show up orders of magnitude above this.
        prop_assert!(
            rel < 2e-3,
            "relative error {} at n={} pattern {}", rel, n, pattern.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The decode-serving contract: interleaved prefill + decode traffic
    // through one `AttentionServer`, across random session open / append /
    // close orders, stays bit-identical to solo forwards and solo decode
    // steps computed against a host-side model of each session's cache at
    // submission time. Decode steps from different sessions (with ragged,
    // often M-misaligned cached lengths) coalesce into one ragged launch
    // per op; appends racing a queued decode must not leak into it.
    #[test]
    fn server_interleaved_prefill_and_decode_matches_solo(
        seed in 0u64..10_000,
        ops in proptest::collection::vec(0usize..8, 24),
    ) {
        use dfss_serve::DecodeRequest;
        use std::sync::Arc;
        use std::time::Duration;

        let mech_dfss = DfssAttention::new(NmPattern::P1_2);
        let mech_full = FullAttention;
        let mech: Arc<dyn Attention<f32> + Send + Sync> = if seed % 3 == 0 {
            Arc::new(mech_full)
        } else {
            Arc::new(mech_dfss)
        };
        let server = dfss_serve::AttentionServer::start(
            Arc::clone(&mech),
            dfss_serve::BatchPolicy::batched(3, Duration::from_millis(2)),
        );
        let (d, d_v) = (8usize, 8usize);
        let mut rng = Rng::new(seed);
        // Host-side model: (session, K rows so far, V rows so far).
        let mut model: Vec<(dfss_serve::SessionId, Matrix<f32>, Matrix<f32>)> = Vec::new();
        let mut prefills = Vec::new();
        let mut decodes = Vec::new();
        for &op in &ops {
            match op {
                // Open a session, primed with a random (possibly odd) block.
                0 | 1 => {
                    let len = 1 + rng.below(7);
                    let k = Matrix::<f32>::random_normal(len, d, 0.0, 1.0, &mut rng);
                    let v = Matrix::<f32>::random_normal(len, d_v, 0.0, 1.0, &mut rng);
                    let s = server.open_session(d, d_v).expect("open");
                    server.extend(s, k.clone(), v.clone()).expect("extend");
                    model.push((s, k, v));
                }
                // Append one row to a random open session.
                2 | 3 => {
                    if model.is_empty() { continue; }
                    let i = rng.below(model.len());
                    let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                    let v_row: Vec<f32> = (0..d_v).map(|_| rng.normal(0.0, 1.0)).collect();
                    server
                        .append(model[i].0, k_row.clone(), v_row.clone())
                        .expect("append");
                    let (_, k, v) = &mut model[i];
                    *k = k.vstack(&Matrix::from_vec(1, d, k_row));
                    *v = v.vstack(&Matrix::from_vec(1, d_v, v_row));
                }
                // Decode on a random open session; expected output from the
                // model's snapshot of the cache.
                4..=6 => {
                    if model.is_empty() { continue; }
                    let i = rng.below(model.len());
                    let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                    let (s, k, v) = &model[i];
                    let mut sctx = GpuCtx::a100();
                    let want =
                        mech.decode(&mut sctx, &Matrix::from_vec(1, d, q_row.clone()), k, v);
                    let handle = server
                        .submit_decode(DecodeRequest { session: *s, q_row })
                        .expect("decode");
                    decodes.push((handle, want, k.rows()));
                }
                // A prefill request rides the same server.
                _ => {
                    let n = 16;
                    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
                    let mut sctx = GpuCtx::a100();
                    let want = mech.forward(&mut sctx, &q, &k, &v);
                    prefills.push((server.submit(q, k, v).expect("submit"), want));
                }
            }
            // Occasionally close the oldest session mid-stream.
            if op == 6 && !model.is_empty() {
                let (s, _, _) = model.remove(0);
                server.close_session(s).expect("close");
            }
        }
        let n_decodes = decodes.len();
        for (i, (handle, want, len_at_submit)) in decodes.into_iter().enumerate() {
            let served = handle.wait().expect("decode served");
            prop_assert_eq!(served.cached_len, len_at_submit);
            let same = served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "decode {} diverged from solo decode", i);
        }
        for (i, (handle, want)) in prefills.into_iter().enumerate() {
            let served = handle.wait().expect("prefill served");
            let same = served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "prefill {} diverged from solo forward", i);
        }
        let stats = server.shutdown();
        prop_assert_eq!(stats.decode_steps as usize, n_decodes);
        prop_assert_eq!(stats.rejected, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The paged-KV contract: page tables over a shared fixed-size block
    // pool, at random page geometries (including rows-per-page that do not
    // divide the cached lengths, so pages carry dead tails and partially
    // live last pages), through random interleaved open / append / extend /
    // decode / close orders, decode bit-identically to the PR 5 contiguous
    // slabs — and the pool's free list never leaks or double-counts a page
    // at any step along the way.
    #[test]
    fn paged_decode_matches_contiguous(
        seed in 0u64..10_000,
        page_elems in 8usize..40,
        ops in proptest::collection::vec(0usize..8, 20),
    ) {
        use dfss_core::engine::AttentionEngine;
        use dfss_serve::{KvConfig, KvPool, PagedKvCache};

        let (d, d_v) = (8usize, 8usize);
        // page_elems in 8..40 at width 8 → 1..=4 rows per page, and most
        // draws are not a multiple of the width, so pages have dead tails.
        let cfg = KvConfig { page_elems, budget_bytes: u64::MAX, evict_idle: false, ..KvConfig::default() };
        let mut pool = KvPool::<f32>::new(&cfg);
        let mech_dfss = DfssAttention::new(NmPattern::P1_2);
        let mech_full = FullAttention;
        let mech: &dyn Attention<f32> = if seed % 2 == 0 { &mech_full } else { &mech_dfss };
        let mut rng = Rng::new(seed);
        // Live sessions: the paged cache plus a host-side contiguous model
        // of exactly what it should hold.
        let mut live: Vec<(PagedKvCache<f32>, Matrix<f32>, Matrix<f32>)> = Vec::new();
        for &op in &ops {
            match op {
                // Open a session, primed with a random (often page-misaligned)
                // block.
                0 | 1 => {
                    let len = 1 + rng.below(9);
                    let k = Matrix::<f32>::random_normal(len, d, 0.0, 1.0, &mut rng);
                    let v = Matrix::<f32>::random_normal(len, d_v, 0.0, 1.0, &mut rng);
                    let mut c = PagedKvCache::<f32>::new(&cfg, d, d_v)
                        .expect("page fits a row");
                    c.extend(&mut pool, &k, &v).expect("unbounded budget");
                    live.push((c, k, v));
                }
                // Append one row to a random session.
                2 | 3 => {
                    if live.is_empty() { continue; }
                    let i = rng.below(live.len());
                    let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                    let v_row: Vec<f32> = (0..d_v).map(|_| rng.normal(0.0, 1.0)).collect();
                    let (c, k, v) = &mut live[i];
                    c.append(&mut pool, &k_row, &v_row).expect("unbounded budget");
                    *k = k.vstack(&Matrix::from_vec(1, d, k_row));
                    *v = v.vstack(&Matrix::from_vec(1, d_v, v_row));
                }
                // Extend a random session by a block.
                4 => {
                    if live.is_empty() { continue; }
                    let i = rng.below(live.len());
                    let rows = 1 + rng.below(6);
                    let dk = Matrix::<f32>::random_normal(rows, d, 0.0, 1.0, &mut rng);
                    let dv = Matrix::<f32>::random_normal(rows, d_v, 0.0, 1.0, &mut rng);
                    let (c, k, v) = &mut live[i];
                    c.extend(&mut pool, &dk, &dv).expect("unbounded budget");
                    *k = k.vstack(&dk);
                    *v = v.vstack(&dv);
                }
                // Decode over every live session: the paged page tables and
                // the contiguous model slabs must coalesce into bit-identical
                // ragged launches.
                5 | 6 => {
                    if live.is_empty() { continue; }
                    let q = Matrix::<f32>::random_normal(live.len(), d, 0.0, 1.0, &mut rng);
                    let paged_steps: Vec<DecodeStep<'_, f32>> = live
                        .iter()
                        .enumerate()
                        .map(|(s, (c, _, _))| DecodeStep {
                            q_row: q.row(s),
                            k_rows: c.k_rows(&pool),
                            v_rows: c.v_rows(&pool),
                            len: c.len(),
                            d,
                            d_v,
                        })
                        .collect();
                    let slab_steps: Vec<DecodeStep<'_, f32>> = live
                        .iter()
                        .enumerate()
                        .map(|(s, (c, k, v))| DecodeStep::contiguous(
                            q.row(s), k.as_slice(), v.as_slice(), c.len(), d, d_v,
                        ))
                        .collect();
                    let paged = AttentionEngine::new(mech)
                        .flush_decode(&paged_steps)
                        .expect("well-formed steps");
                    let slab = AttentionEngine::new(mech)
                        .flush_decode(&slab_steps)
                        .expect("well-formed steps");
                    prop_assert_eq!(paged.len(), slab.len());
                    for (s, (p, c)) in paged.iter().zip(&slab).enumerate() {
                        prop_assert_eq!(p.cached_len, c.cached_len);
                        prop_assert_eq!(p.batch_size, c.batch_size);
                        let got = p.output.as_ref().expect("exec mode");
                        let want = c.output.as_ref().expect("exec mode");
                        let same = got
                            .as_slice()
                            .iter()
                            .zip(want.as_slice())
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                        prop_assert!(same, "stream {} diverged from its contiguous slab", s);
                    }
                }
                // Close a random session, returning its pages.
                _ => {
                    if live.is_empty() { continue; }
                    let i = rng.below(live.len());
                    let (mut c, _, _) = live.remove(i);
                    c.release(&mut pool);
                    prop_assert_eq!(c.pages(), 0);
                }
            }
            // After every step: reassembled tables match the model bitwise,
            // and the pool neither leaks nor double-counts a page.
            for (c, k, v) in &live {
                prop_assert_eq!(&c.k_matrix(&pool), k);
                prop_assert_eq!(&c.v_matrix(&pool), v);
            }
            if let Err(why) = pool.check_invariants() {
                return Err(TestCaseError::fail(format!("pool invariants broken: {why}")));
            }
            let held: usize = live.iter().map(|(c, _, _)| c.pages()).sum();
            prop_assert_eq!(pool.allocated(), held);
        }
        // Closing everything drains the pool completely.
        for (mut c, _, _) in live {
            c.release(&mut pool);
        }
        prop_assert_eq!(pool.allocated(), 0);
        if let Err(why) = pool.check_invariants() {
            return Err(TestCaseError::fail(format!("pool invariants broken at drain: {why}")));
        }
    }
}
