//! The continuous-batching fairness/starvation gauntlet, pinning the
//! scheduler contract end to end:
//!
//! - **Decode never waits behind a cold prefill**: every decode step
//!   admitted before an iteration packs *into* that iteration, whatever
//!   the prefill backlog (K = 1 iteration of worst-case wait).
//! - **Prefill never starves**: whenever prefill is pending, every
//!   iteration packs at least one chunk — saturating decode load slows
//!   prefill to one chunk per iteration, never to zero.
//! - **Chunking is exact**: the chunks planned for a job partition its
//!   row range `[0, rows)` in order, each at most `prefill_chunk` rows.
//! - **Bit-parity**: outputs of the chunked, interleaved continuous
//!   server are bit-identical to solo unchunked, unsharded computation.
//! - **Trace determinism**: the same admission sequence under the same
//!   policy renders byte-identical [`SchedTrace`]s — across runs, across
//!   serial vs parallel kernel execution, and against a pure replay of
//!   the admission sequence (the property that makes the trace an
//!   executable spec for `RAYON_NUM_THREADS=1` vs default CI legs).

use dfss::prelude::*;
use dfss_serve::sched::SchedEvent;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Bounded wait: long enough that a live batcher always answers, short
/// enough that a hang fails the test instead of wedging CI.
const NO_HANG: Duration = Duration::from_secs(30);

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Solo, unchunked, unsharded reference computation.
fn solo_forward(
    mech: &(dyn Attention<f32> + Send + Sync),
    q: &Matrix<f32>,
    k: &Matrix<f32>,
    v: &Matrix<f32>,
) -> Matrix<f32> {
    let mut ctx = GpuCtx::a100();
    mech.forward(&mut ctx, q, k, v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rule 1: every ready decode step packs into the very next
    /// iteration, however deep the prefill backlog — and rule 3: an
    /// iteration with prefill pending always packs at least one chunk.
    #[test]
    fn decode_waits_at_most_one_iteration_and_prefill_never_starves(
        chunk in 1usize..32,
        budget in 1usize..64,
        jobs in proptest::collection::vec(1usize..200, 6),
        decode_bursts in proptest::collection::vec(0usize..12, 16),
    ) {
        let mut s = Scheduler::new(SchedPolicy::new(chunk, budget));
        let mut next_job = 0u64;
        let mut next_step = 0u64;
        let mut jobs_iter = jobs.iter();
        for &burst in &decode_bursts {
            // Interleave admissions: maybe one prefill job, then a burst
            // of decode steps.
            if let Some(&rows) = jobs_iter.next() {
                s.admit_prefill(next_job, rows);
                next_job += 1;
            }
            let ready: Vec<u64> = (0..burst).map(|i| next_step + i as u64).collect();
            for &step in &ready {
                s.admit_decode(step);
            }
            next_step += burst as u64;
            let had_prefill = s.pending_jobs() > 0;
            if let Some(plan) = s.next_iteration() {
                // Every step admitted before the iteration is in it.
                prop_assert_eq!(&plan.decode, &ready);
                // Prefill pending ⇒ at least one chunk packs, and the
                // first chunk ignores the budget floor.
                if had_prefill {
                    prop_assert!(!plan.chunks.is_empty());
                }
                for c in &plan.chunks {
                    prop_assert!(c.hi > c.lo);
                    prop_assert!(c.hi - c.lo <= chunk);
                }
            } else {
                prop_assert!(ready.is_empty());
                prop_assert!(!had_prefill);
            }
        }
    }

    /// Chunks planned for each job partition `[0, rows)` exactly, in row
    /// order, and every admitted job completes in bounded iterations —
    /// even under a saturating decode load that leaves zero spare budget.
    #[test]
    fn every_job_completes_with_exact_row_coverage_under_decode_saturation(
        chunk in 1usize..32,
        budget in 1usize..64,
        jobs in proptest::collection::vec(1usize..200, 4),
    ) {
        let mut s = Scheduler::new(SchedPolicy::new(chunk, budget));
        for (id, &rows) in jobs.iter().enumerate() {
            s.admit_prefill(id as u64, rows);
        }
        let mut cursors = vec![0usize; jobs.len()];
        let mut step = 0u64;
        // Worst case: one chunk per iteration for the whole backlog.
        let bound: usize = jobs.iter().map(|r| r.div_ceil(chunk)).sum();
        let mut iterations = 0usize;
        while s.pending_jobs() > 0 {
            // Saturate: fill the entire budget with fresh decode steps.
            for _ in 0..budget {
                s.admit_decode(step);
                step += 1;
            }
            let plan = s.next_iteration().unwrap();
            prop_assert!(!plan.chunks.is_empty(), "prefill starved");
            for c in &plan.chunks {
                // In-order, gap-free coverage per job.
                prop_assert_eq!(c.lo, cursors[c.job as usize]);
                cursors[c.job as usize] = c.hi;
            }
            iterations += 1;
            prop_assert!(iterations <= bound, "jobs not completing");
        }
        for (cursor, &rows) in cursors.iter().zip(&jobs) {
            prop_assert_eq!(*cursor, rows);
        }
    }

    /// Bit-parity: a continuous server with an aggressive chunk size
    /// (forcing multi-chunk prefills interleaved with decode) returns
    /// outputs bit-identical to solo unchunked computation — for the
    /// dense baseline and the paper's N:M mechanism alike.
    #[test]
    fn continuous_chunked_interleaved_outputs_match_solo_bitwise(
        seed in 0u64..1000,
        n_quads in 3usize..12,
        mech_pick in 0usize..2,
    ) {
        // N:M admission binds the key count to a multiple of m = 4; the
        // chunk size of 5 still splits every prefill unevenly.
        let n = n_quads * 4;
        let d = 16usize;
        let mech: Arc<dyn Attention<f32> + Send + Sync> = match mech_pick {
            0 => Arc::new(FullAttention),
            _ => Arc::new(DfssAttention::new(NmPattern::P2_4)),
        };
        let server = AttentionServer::start_continuous(
            Arc::clone(&mech),
            BatchPolicy::per_request(),
            SchedPolicy::new(5, 8), // chunks of 5 rows: every prefill splits
        );
        let mut rng = Rng::new(seed);
        // A decode session interleaves with the chunked prefills.
        let session = server.open_session(d, d).unwrap();
        let mut cache_k = Matrix::<f32>::zeros(0, d);
        let mut cache_v = Matrix::<f32>::zeros(0, d);
        let mut handles = Vec::new();
        let mut inputs = Vec::new();
        for _ in 0..3 {
            let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            handles.push(server.submit(q.clone(), k.clone(), v.clone()).unwrap());
            inputs.push((q, k, v));
            let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
            let v_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
            server.append(session, k_row.clone(), v_row.clone()).unwrap();
            cache_k = cache_k.vstack(&Matrix::from_vec(1, d, k_row));
            cache_v = cache_v.vstack(&Matrix::from_vec(1, d, v_row));
            let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
            let dh = server
                .submit_decode(DecodeRequest { session, q_row: q_row.clone() })
                .unwrap();
            let got = dh.wait_timeout(NO_HANG).unwrap();
            let solo = {
                let mut ctx = GpuCtx::a100();
                mech.decode(&mut ctx, &Matrix::from_vec(1, d, q_row), &cache_k, &cache_v)
            };
            prop_assert!(bits_equal(got.output.as_slice(), solo.as_slice()));
        }
        for (handle, (q, k, v)) in handles.into_iter().zip(&inputs) {
            let served = handle.wait_timeout(NO_HANG).unwrap();
            let solo = solo_forward(mech.as_ref(), q, k, v);
            prop_assert!(
                bits_equal(served.output.as_slice(), solo.as_slice()),
                "chunked continuous output diverged from solo forward"
            );
        }
        server.close_session(session).unwrap();
        let stats = server.shutdown();
        // Chunking really happened: every job needs at least ceil(n/5)
        // chunks (budget pressure can split them further).
        assert!(stats.prefill_chunks >= 3 * n.div_ceil(5) as u64);
        assert_eq!(stats.served, 3);
        assert_eq!(stats.decode_steps, 3);
    }
}

/// The same admission sequence and policy render byte-identical traces
/// across two server runs with sequential (submit-and-wait) traffic, and
/// both equal a pure [`Scheduler`] replay of the admission sequence. The
/// replay target is thread-count-independent by construction, so this
/// test pins trace stability for the `RAYON_NUM_THREADS=1` CI leg too.
#[test]
fn server_traces_are_byte_identical_across_runs_and_match_pure_replay() {
    let policy = SchedPolicy::new(7, 16);
    let rows = [23usize, 7, 40];
    let run = || {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start_continuous(mech, BatchPolicy::per_request(), policy);
        let mut rng = Rng::new(11);
        let d = 8usize;
        for &n in &rows {
            let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            // Sequential submit-and-wait: admission order (and so the
            // trace) is fully determined by this loop.
            let handle = server.submit(q, k, v).unwrap();
            handle.wait_timeout(NO_HANG).unwrap();
        }
        let trace = server.sched_trace();
        server.shutdown();
        trace.render()
    };
    let a = run();
    let b = run();
    assert_eq!(a.as_bytes(), b.as_bytes(), "trace diverged across runs");
    // Pure replay: admit each job, drain its iterations to completion —
    // exactly what sequential traffic makes the server do.
    let mut replay = Scheduler::new(policy);
    for (id, &n) in rows.iter().enumerate() {
        replay.admit_prefill(id as u64, n);
        while replay.next_iteration().is_some() {}
    }
    assert_eq!(
        a,
        replay.trace().render(),
        "server trace diverged from the pure scheduler replay"
    );
}

/// Serial vs parallel kernel execution cannot leak into the trace: the
/// same traffic under `rayon::with_serial` renders the same bytes (the
/// in-process analogue of the `test-1thread` CI leg).
#[test]
fn trace_is_identical_under_serial_kernel_execution() {
    let policy = SchedPolicy::new(4, 8);
    let run = || {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start_continuous(mech, BatchPolicy::per_request(), policy);
        let mut rng = Rng::new(3);
        for _ in 0..2 {
            let q = Matrix::<f32>::random_normal(12, 8, 0.0, 1.0, &mut rng);
            let k = Matrix::<f32>::random_normal(12, 8, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(12, 8, 0.0, 1.0, &mut rng);
            server
                .submit(q, k, v)
                .unwrap()
                .wait_timeout(NO_HANG)
                .unwrap();
        }
        let trace = server.sched_trace();
        server.shutdown();
        trace.render()
    };
    let parallel = run();
    let serial = rayon::with_serial(run);
    assert_eq!(parallel.as_bytes(), serial.as_bytes());
}

/// Mechanisms without row-separable scores (the blocked-ELL hybrid) fall
/// back to whole-prefill execution on the continuous server: outputs stay
/// bit-identical to solo forward and the trace records no chunked jobs.
#[test]
fn non_chunkable_mechanism_runs_whole_and_matches_solo() {
    let mech_concrete = DfssEllAttention::new(NmPattern::P2_4, 8, 2);
    assert!(
        !Attention::<f32>::supports_row_chunking(&mech_concrete),
        "the ELL hybrid's sliding window depends on global row indices"
    );
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(mech_concrete);
    let server = AttentionServer::start_continuous(
        Arc::clone(&mech),
        BatchPolicy::per_request(),
        SchedPolicy::new(5, 8),
    );
    let mut rng = Rng::new(5);
    let (n, d) = (32usize, 16usize);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let served = server
        .submit(q.clone(), k.clone(), v.clone())
        .unwrap()
        .wait_timeout(NO_HANG)
        .unwrap();
    let solo = solo_forward(mech.as_ref(), &q, &k, &v);
    assert!(bits_equal(served.output.as_slice(), solo.as_slice()));
    let trace = server.sched_trace();
    let stats = server.shutdown();
    assert_eq!(stats.prefill_chunks, 0, "whole-prefill fallback chunked");
    assert!(
        !trace
            .events()
            .iter()
            .any(|e| matches!(e, SchedEvent::AdmitPrefill { .. })),
        "non-chunkable prefill must bypass the chunk scheduler"
    );
}

/// The decode-before-mutation determinism rule survives the continuous
/// path: an append racing a queued decode forces a flush, recorded as a
/// distinct `forced_decode` trace event, and the step's output reflects
/// only the rows cached at its submission.
#[test]
fn forced_decode_flush_is_traced_and_preserves_decode_determinism() {
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
    let server = AttentionServer::start_continuous(
        Arc::clone(&mech),
        BatchPolicy::per_request(),
        SchedPolicy::default(),
    );
    let d = 8usize;
    let mut rng = Rng::new(9);
    let session = server.open_session(d, d).unwrap();
    let k1: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    let v1: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    server.append(session, k1.clone(), v1.clone()).unwrap();
    let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    let handle = server
        .submit_decode(DecodeRequest {
            session,
            q_row: q_row.clone(),
        })
        .unwrap();
    // Race an append right behind the queued step: the batcher must
    // flush the step before the row lands.
    let k2: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    let v2: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
    server.append(session, k2, v2).unwrap();
    let got = handle.wait_timeout(NO_HANG).unwrap();
    assert_eq!(
        got.cached_len, 1,
        "decode saw rows appended after its submission"
    );
    let solo = {
        let mut ctx = GpuCtx::a100();
        mech.decode(
            &mut ctx,
            &Matrix::from_vec(1, d, q_row),
            &Matrix::from_vec(1, d, k1),
            &Matrix::from_vec(1, d, v1),
        )
    };
    assert!(bits_equal(got.output.as_slice(), solo.as_slice()));
    server.close_session(session).unwrap();
    server.shutdown();
}
