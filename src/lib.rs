//! # dfss — Dynamic N:M Fine-grained Structured Sparse Attention
//!
//! Facade crate re-exporting the full reproduction of the PPoPP'23 paper
//! "Dynamic N:M Fine-grained Structured Sparse Attention Mechanism".
//!
//! ```
//! use dfss::prelude::*;
//!
//! let mut rng = Rng::new(0);
//! let q = Matrix::<f32>::random_normal(128, 64, 0.0, 1.0, &mut rng);
//! let k = Matrix::<f32>::random_normal(128, 64, 0.0, 1.0, &mut rng);
//! let v = Matrix::<f32>::random_normal(128, 64, 0.0, 1.0, &mut rng);
//!
//! let mut ctx = GpuCtx::a100();
//! // The drop-in replacement: FullAttention -> DfssAttention.
//! let out = DfssAttention::for_dtype::<f32>().forward(&mut ctx, &q, &k, &v);
//! assert_eq!(out.shape(), (128, 64));
//! ```

pub use dfss_core as core;
pub use dfss_gpusim as gpusim;
pub use dfss_kernels as kernels;
pub use dfss_nmsparse as nmsparse;
pub use dfss_serve as serve;
pub use dfss_tasks as tasks;
pub use dfss_tensor as tensor;
pub use dfss_transformer as transformer;

/// The items most users need.
pub mod prelude {
    pub use dfss_core::dfss::{DfssAttention, DfssEllAttention};
    pub use dfss_core::engine::{AttentionEngine, DecodeStep, KvRows};
    pub use dfss_core::full::FullAttention;
    pub use dfss_core::mechanism::{Attention, RequestError};
    pub use dfss_kernels::GpuCtx;
    pub use dfss_nmsparse::{NmBatch, NmCompressed, NmPattern, NmRagged};
    pub use dfss_serve::http::{HttpClient, HttpClientError, HttpConfig, HttpServer};
    pub use dfss_serve::retry::{with_backoff, Backoff, Transient};
    pub use dfss_serve::wire::{Json as WireJson, WireError, WireLimits};
    pub use dfss_serve::{
        AttentionServer, BatchPolicy, DecodeRequest, FaultKind, FaultPlan, KvConfig, KvPool,
        PagedKvCache, SchedPolicy, SchedTrace, Scheduler, ServeError, SessionId, ShardedServer,
    };
    pub use dfss_tensor::{BatchedMatrix, Bf16, Matrix, PagedPanel, RaggedBatch, Rng, Scalar};
    pub use dfss_transformer::{AttnKind, Encoder, EncoderConfig, Precision};
}
