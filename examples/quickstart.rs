//! Quickstart: Dfss as a drop-in replacement for full attention.
//!
//! Mirrors the paper's Figure 3 — the only change between the dense and the
//! sparse version is the mechanism object.
//!
//! Run: `cargo run --release --example quickstart`

use dfss::prelude::*;

fn main() {
    let n = 1024;
    let d = 64;
    let mut rng = Rng::new(7);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);

    // Dense baseline.
    let mut dense_ctx = GpuCtx::a100();
    let dense_out = FullAttention.forward(&mut dense_ctx, &q, &k, &v);

    // The drop-in replacement (paper Figure 3: "only requires changing a
    // few lines of code").
    let mut sparse_ctx = GpuCtx::a100();
    let dfss = DfssAttention::for_dtype::<f32>(); // 1:2 for float
    let sparse_out = dfss.forward(&mut sparse_ctx, &q, &k, &v);

    // How close is the approximation?
    let diff = sparse_out.zip_with(&dense_out, |a, b| a - b);
    let rel = diff.frobenius_norm() / dense_out.frobenius_norm();
    println!("relative output difference vs dense: {rel:.4}");

    // What did it cost on the simulated A100? (Single head, single
    // sequence — kernel-launch overhead included; the batched Figure 5
    // harness reproduces the paper's 1.27-1.89x band.)
    let speedup = dense_ctx.latency() / sparse_ctx.latency();
    let mem = dense_ctx.mem.peak() as f64 / sparse_ctx.mem.peak() as f64;
    println!("simulated attention speedup: {speedup:.2}x");
    println!("attention-buffer peak-memory reduction: {mem:.2}x");
    println!("(end-to-end model memory reduction is the Figure 16 band, 1.41-1.82x)");

    // The compressed weights are real: inspect the sparse format.
    let mut ctx = GpuCtx::a100();
    let (_, weights) = dfss.forward_with_weights(&mut ctx, &q, &k, &v);
    println!(
        "compressed attention weights: {} nonzeros + {} bytes of metadata (dense would be {} values)",
        weights.nonzeros().len(),
        weights.meta_bytes(),
        n * n
    );
    let dm = weights.to_device_meta().expect("hardware pattern");
    println!(
        "device-format metadata (CUTLASS swizzled layout): {} x u32 words",
        dm.words().len()
    );
}
