//! Train the same small encoder on an LRA-style task under several
//! attention mechanisms and compare accuracy (a one-task slice of Table 4).
//!
//! Run: `cargo run --release --example long_range_arena`

use dfss::prelude::*;
use dfss::tasks::protocol::{eval_classifier, train_classifier, TrainSpec};
use dfss::tasks::textcls;
use dfss::transformer::heads::ClassifierHead;

fn main() {
    let tcfg = textcls::TextClsConfig {
        seq_len: 64,
        ..Default::default()
    };
    let ds = textcls::generate(&tcfg, 400, 100, 5);

    for kind in [
        AttnKind::Full,
        AttnKind::Nm(NmPattern::P1_2),
        AttnKind::Nm(NmPattern::P2_4),
        AttnKind::Local(16),
        AttnKind::Linformer { proj: 16 },
        AttnKind::Performer {
            features: 64,
            seed: 9,
        },
        AttnKind::Nystrom { landmarks: 16 },
    ] {
        let cfg = EncoderConfig {
            vocab: ds.vocab,
            max_len: ds.seq_len,
            d_model: 48,
            heads: 2,
            d_ffn: 96,
            layers: 2,
            kind,
        };
        let mut rng = Rng::new(11);
        let mut enc = Encoder::new(cfg, &mut rng);
        let mut head = ClassifierHead::new(48, ds.classes, &mut rng);
        let mut spec = TrainSpec::quick(6, ds.train.len(), 16);
        spec.adam.lr = 1.5e-3;
        let _ = train_classifier(&mut enc, &mut head, &ds.train, &spec);
        let acc = 100.0 * eval_classifier(&mut enc, &mut head, &ds.test);
        println!("{:<22} accuracy {acc:.1}%", kind.label());
    }
}
