//! The §5.1 protocol end-to-end on the synthetic QA task: pretrain a dense
//! model, swap in Dfss without finetuning, then finetune for two epochs.
//!
//! Run: `cargo run --release --example qa_finetune`

use dfss::prelude::*;
use dfss::tasks::protocol::{eval_qa_f1, train_qa, TrainSpec};
use dfss::tasks::qa;
use dfss::transformer::heads::SpanHead;

fn main() {
    let qcfg = qa::QaConfig {
        seq_len: 48,
        records: 4,
        ..Default::default()
    };
    let train = qa::generate(&qcfg, 500, 1);
    let test = qa::generate(&qcfg, 100, 2);

    let cfg = EncoderConfig {
        vocab: qcfg.vocab(),
        max_len: qcfg.seq_len,
        d_model: 64,
        heads: 2,
        d_ffn: 128,
        layers: 2,
        kind: AttnKind::Full,
    };
    let mut rng = Rng::new(3);
    let mut enc = Encoder::new(cfg, &mut rng);
    let mut head = SpanHead::new(64, &mut rng);

    println!("pretraining dense model…");
    let mut spec = TrainSpec::quick(10, train.len(), 16);
    spec.adam.lr = 2e-3;
    let _ = train_qa(&mut enc, &mut head, &train, &spec);
    let dense_f1 = eval_qa_f1(&mut enc, &mut head, &test, qcfg.span_max);
    println!("dense F1:                 {dense_f1:.2}");

    // Drop-in swap, no finetuning (Table 1).
    enc.set_attention(AttnKind::Nm(NmPattern::P1_2));
    let swap_f1 = eval_qa_f1(&mut enc, &mut head, &test, qcfg.span_max);
    println!("Dfss 1:2 w/o finetune:    {swap_f1:.2}");

    // Two finetuning epochs with the sparse mechanism active (Table 2).
    let mut ft = TrainSpec::quick(2, train.len(), 16);
    ft.adam.lr = 5e-4;
    let _ = train_qa(&mut enc, &mut head, &train, &ft);
    let ft_f1 = eval_qa_f1(&mut enc, &mut head, &test, qcfg.span_max);
    println!("Dfss 1:2 w/ finetune:     {ft_f1:.2}");

    // bf16 + 2:4 evaluation (cast like the paper).
    enc.set_attention(AttnKind::Nm(NmPattern::P2_4));
    enc.set_precision(Precision::Bf16);
    let bf16_f1 = eval_qa_f1(&mut enc, &mut head, &test, qcfg.span_max);
    println!("Dfss 2:4 (bfloat16):      {bf16_f1:.2}");
}
