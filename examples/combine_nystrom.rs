//! Appendix A.7: combining Dfss with a linear attention mechanism
//! (Nyströmformer). The two n-length softmax factors are pruned 1:2 on the
//! fly, cutting their traffic while keeping the landmark approximation.
//!
//! Run: `cargo run --release --example combine_nystrom`

use dfss::core::linear_baselines::NystromAttention;
use dfss::core::mechanism::Attention;
use dfss::prelude::*;

fn main() {
    let n = 2048;
    let d = 64;
    let mut rng = Rng::new(2);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);

    let mut dense_ctx = GpuCtx::a100();
    let _ = FullAttention.forward(&mut dense_ctx, &q, &k, &v);

    let plain = NystromAttention::new(64);
    let mut plain_ctx = GpuCtx::a100();
    let plain_out = plain.forward(&mut plain_ctx, &q, &k, &v);

    let combo = NystromAttention::new(64).with_dfss(NmPattern::P1_2);
    let mut combo_ctx = GpuCtx::a100();
    let combo_out = combo.forward(&mut combo_ctx, &q, &k, &v);

    println!("simulated latency at n={n} (vs dense = 1.0):");
    let dense = dense_ctx.latency();
    println!(
        "  Nystromformer:           {:.3}",
        plain_ctx.latency() / dense
    );
    println!(
        "  Nystromformer + Dfss:    {:.3}",
        combo_ctx.latency() / dense
    );
    println!(
        "  traffic reduction from Dfss: {:.1}%",
        100.0
            * (1.0
                - combo_ctx.timeline.total_bytes() as f64
                    / plain_ctx.timeline.total_bytes() as f64)
    );
    let diff = plain_out.zip_with(&combo_out, |a, b| a - b);
    println!(
        "  output agreement (rel diff): {:.4}",
        diff.frobenius_norm() / plain_out.frobenius_norm()
    );
}
