//! A tour of the paper's kernel contribution: the fused SDDMM + N:M prune
//! epilogue, its zero-overhead claim, and the device metadata format.
//!
//! Run: `cargo run --release --example kernel_fusion_tour`

use dfss::kernels::{sddmm, softmax, spmm, GpuCtx};
use dfss::nmsparse::meta;
use dfss::prelude::*;

fn main() {
    let n = 512;
    let d = 64;
    let mut rng = Rng::new(1);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let scale = 1.0 / (d as f32).sqrt();

    // Fused: prune in the GEMM epilogue — dense scores never reach memory.
    let mut fused = GpuCtx::a100();
    let mut comp = sddmm::sddmm_nm_fused(&mut fused, &q, &k, scale, NmPattern::P1_2);

    // Unfused (what §2.3 says existing libraries do): GEMM + separate prune.
    let mut unfused = GpuCtx::a100();
    let _ = sddmm::sddmm_nm_unfused(&mut unfused, &q, &k, scale, NmPattern::P1_2);

    let extra = unfused.timeline.total_bytes() - fused.timeline.total_bytes();
    println!(
        "zero-overhead check: unfused moves {extra} extra bytes = 2 x n^2 x 4 = {}",
        2 * n * n * 4
    );

    // Continue the attention pipeline on the compressed format.
    softmax::softmax_nm(&mut fused, &mut comp);
    let out = spmm::spmm_nm(&mut fused, &comp, &v);
    println!(
        "attention output: {:?} rows x cols = {:?}",
        out.rows(),
        out.cols()
    );

    // The metadata in the exact Ampere layout (Appendix A.1.1).
    let dm = comp.to_device_meta().expect("hardware pattern");
    println!(
        "device metadata: {} u32 words ({} bytes = dense/16)",
        dm.words().len(),
        dm.bytes()
    );
    println!(
        "figure 6(b) code for keeping lanes (1,3): {:#x}",
        meta::lanes_to_code(1, 3)
    );
    println!(
        "equation (9) row interleave of rows 0..8: {:?}",
        (0..8).map(meta::interleave_row).collect::<Vec<_>>()
    );

    // Stage breakdown of the fused pipeline.
    let dev = fused.dev.clone();
    for (stage, t) in fused.timeline.breakdown(&dev) {
        if t > 0.0 {
            println!("{:<10} {:.1} us (simulated)", stage.label(), t * 1e6);
        }
    }
}
