//! A runnable HTTP front door over a batched DFSS attention server.
//!
//! Binds an ephemeral loopback port, prints the URL, serves until killed
//! (Ctrl-C) or until `--serve-secs N` elapses, then drains gracefully and
//! prints the final counters.
//!
//! Run: `cargo run --release --example http_server -- --serve-secs 30`
//!
//! Then from another shell:
//!
//! ```text
//! curl $URL/healthz
//! curl -X POST $URL/v1/prefill -d '{"q":[[1,0],[0,1]],"k":[[1,0],[0,1]],"v":[[1,2],[3,4]]}'
//! curl $URL/metrics
//! ```

use dfss::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut serve_secs: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serve-secs" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--serve-secs takes a number of seconds");
                serve_secs = Some(n);
            }
            other => {
                eprintln!("usage: http_server [--serve-secs N] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(DfssAttention::new(NmPattern::P1_2));
    let att = AttentionServer::start(
        mech,
        BatchPolicy::batched(8, Duration::from_millis(1)).with_queue_depth(64),
    );
    let server = HttpServer::bind(att, HttpConfig::default()).expect("bind loopback");
    println!("LISTENING {}", server.url());

    match serve_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }

    let stats = server.shutdown();
    println!(
        "drained: {} connections accepted, {} requests served, {} decode steps, {} shed, {} force-closed",
        stats.http_connections_accepted,
        stats.served,
        stats.decode_steps,
        stats.overload_sheds + stats.http_connections_shed,
        stats.drain_force_closed
    );
}
