//! Batched matrix stacks — the B×H volume the paper's kernels process in
//! one launch.
//!
//! A [`BatchedMatrix`] is a stack of `batch` row-major `rows × cols` panels
//! in one contiguous backing buffer (panel `b` occupies
//! `data[b·rows·cols..(b+1)·rows·cols]`). The batch axis is the *flattened*
//! batch × heads grid of a multi-head attention launch ("the batch size is
//! set to be large enough to keep the GPU busy", §5.2): kernels fan out over
//! (panel, row-tile) work items and charge the simulated device once for the
//! whole volume.
//!
//! Charge-only placeholders: latency/memory experiments sweep paper-scale
//! grids where a materialised `batch × n × n` intermediate would be
//! gigabytes that nothing ever reads (`GpuCtx::exec == false` skips the
//! numeric work). [`BatchedMatrix::charge_only`] carries the shape with an
//! empty buffer; panel accessors panic on placeholders, and exec-mode
//! kernels never produce them.

use crate::matrix::Matrix;
use crate::rng::Rng;
use crate::scalar::Scalar;

/// A contiguous stack of `batch` row-major `rows × cols` panels.
#[derive(Clone, PartialEq)]
pub struct BatchedMatrix<T> {
    batch: usize,
    rows: usize,
    cols: usize,
    /// `batch·rows·cols` elements, or empty for a charge-only placeholder.
    data: Vec<T>,
}

impl<T: Scalar> BatchedMatrix<T> {
    /// Zero-filled materialised stack.
    pub fn zeros(batch: usize, rows: usize, cols: usize) -> BatchedMatrix<T> {
        BatchedMatrix {
            batch,
            rows,
            cols,
            data: vec![T::zero(); batch * rows * cols],
        }
    }

    /// Shape-only placeholder for charge-only (`!ctx.exec`) kernel results.
    pub fn charge_only(batch: usize, rows: usize, cols: usize) -> BatchedMatrix<T> {
        BatchedMatrix {
            batch,
            rows,
            cols,
            data: Vec::new(),
        }
    }

    /// Whether the backing buffer is populated (false only for
    /// [`charge_only`](Self::charge_only) placeholders).
    #[inline]
    pub fn is_materialized(&self) -> bool {
        self.data.len() == self.batch * self.rows * self.cols
    }

    /// Build from an existing flat buffer (panel-major, row-major panels).
    pub fn from_vec(batch: usize, rows: usize, cols: usize, data: Vec<T>) -> BatchedMatrix<T> {
        assert_eq!(
            data.len(),
            batch * rows * cols,
            "buffer length {} != {batch}x{rows}x{cols}",
            data.len()
        );
        BatchedMatrix {
            batch,
            rows,
            cols,
            data,
        }
    }

    /// Stack copies of the given panels (all must share one shape).
    pub fn from_panels(panels: &[Matrix<T>]) -> BatchedMatrix<T> {
        assert!(!panels.is_empty(), "empty panel list");
        let (rows, cols) = panels[0].shape();
        let mut data = Vec::with_capacity(panels.len() * rows * cols);
        for p in panels {
            assert_eq!(p.shape(), (rows, cols), "panel shape mismatch");
            data.extend_from_slice(p.as_slice());
        }
        BatchedMatrix {
            batch: panels.len(),
            rows,
            cols,
            data,
        }
    }

    /// Gather heterogeneous same-shape panels (borrowed from anywhere — a
    /// request queue, a head split, …) into one contiguous stack. This is
    /// the serving path's *pack* step: independent requests that share a
    /// shape bucket coalesce into a single batched launch without the
    /// caller hand-assembling buffers. Inverse of
    /// [`into_panels`](Self::into_panels) up to the copy.
    pub fn gather(panels: &[&Matrix<T>]) -> BatchedMatrix<T> {
        assert!(!panels.is_empty(), "empty panel list");
        let (rows, cols) = panels[0].shape();
        let mut data = Vec::with_capacity(panels.len() * rows * cols);
        for p in panels {
            assert_eq!(p.shape(), (rows, cols), "panel shape mismatch");
            data.extend_from_slice(p.as_slice());
        }
        BatchedMatrix {
            batch: panels.len(),
            rows,
            cols,
            data,
        }
    }

    /// Scatter the stack back into per-panel matrices (the serving path's
    /// *unpack* step). Bit-preserving: panel `b` of the result holds exactly
    /// the bytes [`panel(b)`](Self::panel) held.
    pub fn into_panels(self) -> Vec<Matrix<T>> {
        self.assert_materialized();
        let (rows, cols) = (self.rows, self.cols);
        let pl = self.panel_len().max(1);
        self.data
            .chunks(pl)
            .map(|p| Matrix::from_vec(rows, cols, p.to_vec()))
            .collect()
    }

    /// Split an `n × (H·d_head)` activation into an H-panel stack of
    /// `n × d_head` head slices in one pass — the batched multi-head
    /// attention input. Inverse of [`merge_heads`](Self::merge_heads).
    pub fn split_heads(x: &Matrix<T>, heads: usize) -> BatchedMatrix<T> {
        let (n, dm) = x.shape();
        assert_eq!(dm % heads, 0, "d_model must divide into heads");
        let dh = dm / heads;
        let mut data = Vec::with_capacity(n * dm);
        for h in 0..heads {
            let lo = h * dh;
            for r in 0..n {
                data.extend_from_slice(&x.row(r)[lo..lo + dh]);
            }
        }
        BatchedMatrix {
            batch: heads,
            rows: n,
            cols: dh,
            data,
        }
    }

    /// Concatenate an H-panel stack of `n × d_head` head outputs back into
    /// one `n × (H·d_head)` activation (inverse of
    /// [`split_heads`](Self::split_heads)).
    pub fn merge_heads(&self) -> Matrix<T> {
        self.assert_materialized();
        let (heads, n, dh) = self.shape();
        let mut out = Matrix::zeros(n, heads * dh);
        for h in 0..heads {
            let lo = h * dh;
            for r in 0..n {
                out.row_mut(r)[lo..lo + dh].copy_from_slice(self.row(h, r));
            }
        }
        out
    }

    /// `batch` copies of one panel — how the figure binaries build the §5.2
    /// "large enough to keep the GPU busy" volume from a single sequence.
    pub fn broadcast(panel: &Matrix<T>, batch: usize) -> BatchedMatrix<T> {
        let (rows, cols) = panel.shape();
        let mut data = Vec::with_capacity(batch * rows * cols);
        for _ in 0..batch {
            data.extend_from_slice(panel.as_slice());
        }
        BatchedMatrix {
            batch,
            rows,
            cols,
            data,
        }
    }

    /// Build by evaluating `f(panel, row, col)`.
    pub fn from_fn(
        batch: usize,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> BatchedMatrix<T> {
        let mut data = Vec::with_capacity(batch * rows * cols);
        for b in 0..batch {
            for r in 0..rows {
                for c in 0..cols {
                    data.push(f(b, r, c));
                }
            }
        }
        BatchedMatrix {
            batch,
            rows,
            cols,
            data,
        }
    }

    /// i.i.d. N(mu, sigma) entries across every panel.
    pub fn random_normal(
        batch: usize,
        rows: usize,
        cols: usize,
        mu: f32,
        sigma: f32,
        rng: &mut Rng,
    ) -> BatchedMatrix<T> {
        BatchedMatrix::from_fn(batch, rows, cols, |_, _, _| {
            T::from_f32(rng.normal(mu, sigma))
        })
    }

    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (batch, rows, cols).
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.batch, self.rows, self.cols)
    }

    /// Elements per panel.
    #[inline]
    pub fn panel_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Total element count across the stack.
    #[inline]
    pub fn len(&self) -> usize {
        self.batch * self.rows * self.cols
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical storage footprint in bytes (placeholders report the footprint
    /// the materialised stack would have — that is what the device ledger
    /// charges).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.len() * T::BYTES
    }

    fn assert_materialized(&self) {
        assert!(
            self.data.len() == self.batch * self.rows * self.cols,
            "charge-only BatchedMatrix placeholder has no panel data"
        );
    }

    /// Contiguous slice of panel `b`.
    #[inline]
    pub fn panel(&self, b: usize) -> &[T] {
        self.assert_materialized();
        let pl = self.panel_len();
        &self.data[b * pl..(b + 1) * pl]
    }

    /// Mutable contiguous slice of panel `b`.
    #[inline]
    pub fn panel_mut(&mut self, b: usize) -> &mut [T] {
        self.assert_materialized();
        let pl = self.panel_len();
        &mut self.data[b * pl..(b + 1) * pl]
    }

    /// Copy panel `b` out as a standalone [`Matrix`].
    pub fn to_panel(&self, b: usize) -> Matrix<T> {
        Matrix::from_vec(self.rows, self.cols, self.panel(b).to_vec())
    }

    /// Contiguous row `r` of panel `b`.
    #[inline]
    pub fn row(&self, b: usize, r: usize) -> &[T] {
        self.assert_materialized();
        let start = (b * self.rows + r) * self.cols;
        &self.data[start..start + self.cols]
    }

    #[inline]
    pub fn get(&self, b: usize, r: usize, c: usize) -> T {
        self.assert_materialized();
        self.data[(b * self.rows + r) * self.cols + c]
    }

    /// Whole backing buffer (empty for placeholders).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Whole backing buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Max absolute element-wise difference against another stack.
    pub fn max_abs_diff(&self, other: &BatchedMatrix<T>) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0, f32::max)
    }
}

impl<T: Scalar> std::fmt::Debug for BatchedMatrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BatchedMatrix<{}> {}x{}x{}{}",
            T::NAME,
            self.batch,
            self.rows,
            self.cols,
            if self.is_materialized() {
                ""
            } else {
                " (charge-only)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_are_contiguous_and_ordered() {
        let m = BatchedMatrix::<f32>::from_fn(3, 2, 4, |b, r, c| (b * 100 + r * 10 + c) as f32);
        assert_eq!(m.shape(), (3, 2, 4));
        assert_eq!(
            m.panel(1),
            &[100., 101., 102., 103., 110., 111., 112., 113.]
        );
        assert_eq!(m.row(2, 1), &[210., 211., 212., 213.]);
        assert_eq!(m.get(2, 1, 3), 213.0);
        assert_eq!(m.to_panel(0).shape(), (2, 4));
    }

    #[test]
    fn from_panels_round_trips() {
        let a = Matrix::<f32>::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::<f32>::from_fn(2, 2, |r, c| (r * c) as f32);
        let s = BatchedMatrix::from_panels(&[a.clone(), b.clone()]);
        assert_eq!(s.to_panel(0), a);
        assert_eq!(s.to_panel(1), b);
    }

    #[test]
    fn broadcast_replicates_one_panel() {
        let a = Matrix::<f32>::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let s = BatchedMatrix::broadcast(&a, 4);
        assert_eq!(s.batch(), 4);
        for b in 0..4 {
            assert_eq!(s.panel(b), a.as_slice());
        }
    }

    #[test]
    fn charge_only_carries_shape_without_data() {
        let p = BatchedMatrix::<f32>::charge_only(8, 128, 128);
        assert!(!p.is_materialized());
        assert_eq!(p.shape(), (8, 128, 128));
        assert_eq!(p.bytes(), 8 * 128 * 128 * 4);
        assert!(p.as_slice().is_empty());
    }

    #[test]
    #[should_panic(expected = "charge-only")]
    fn charge_only_panel_access_panics() {
        let p = BatchedMatrix::<f32>::charge_only(2, 4, 4);
        let _ = p.panel(0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = BatchedMatrix::<f32>::from_vec(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn gather_then_into_panels_is_bit_identity() {
        let a = Matrix::<f32>::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 0.25);
        let b = Matrix::<f32>::from_fn(3, 2, |r, c| -((r + c) as f32) - 0.5);
        let stack = BatchedMatrix::gather(&[&a, &b]);
        assert_eq!(stack.shape(), (2, 3, 2));
        let back = stack.into_panels();
        assert_eq!(back.len(), 2);
        for (x, y) in back[0].as_slice().iter().zip(a.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in back[1].as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "panel shape mismatch")]
    fn gather_rejects_mixed_shapes() {
        let a = Matrix::<f32>::zeros(2, 2);
        let b = Matrix::<f32>::zeros(3, 2);
        let _ = BatchedMatrix::gather(&[&a, &b]);
    }

    #[test]
    fn split_merge_heads_round_trips() {
        let x = Matrix::<f32>::from_fn(4, 6, |r, c| (r * 10 + c) as f32);
        let stack = BatchedMatrix::split_heads(&x, 3);
        assert_eq!(stack.shape(), (3, 4, 2));
        // Head h holds columns [2h, 2h+2).
        assert_eq!(stack.row(1, 2), &[22.0, 23.0]);
        assert_eq!(stack.merge_heads(), x);
    }

    #[test]
    fn zero_sized_stack_is_materialized() {
        let m = BatchedMatrix::<f32>::zeros(0, 4, 4);
        assert!(m.is_materialized());
        assert!(m.is_empty());
    }
}
