//! Flat row-major matrices.
//!
//! Per the performance-book idiom, storage is a single `Vec<T>` (no nested
//! vectors), rows are contiguous so kernels can take `&[T]` row slices, and
//! all hot loops in `dfss-kernels` operate on slices obtained here. This
//! module deliberately contains only *reference-grade* math (naive matmul
//! etc.) used by tests to validate the optimised kernels.

use crate::rng::Rng;
use crate::scalar::Scalar;

/// A dense row-major matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix<T> {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Build from an existing flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Matrix<T> {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Matrix<T> {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// i.i.d. N(mu, sigma) entries (the distribution Proposition 4.2 assumes
    /// for attention scores).
    pub fn random_normal(
        rows: usize,
        cols: usize,
        mu: f32,
        sigma: f32,
        rng: &mut Rng,
    ) -> Matrix<T> {
        Matrix::from_fn(rows, cols, |_, _| T::from_f32(rng.normal(mu, sigma)))
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols).
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Storage footprint in bytes (used by the peak-memory tracker).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * T::BYTES
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Contiguous row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable contiguous row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Whole backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Whole backing buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Disjoint mutable row pair (for in-place row swaps in tests).
    pub fn row_pair_mut(&mut self, a: usize, b: usize) -> (&mut [T], &mut [T]) {
        assert!(a != b && a < self.rows && b < self.rows);
        let c = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * c);
        let lo_slice = &mut head[lo * c..(lo + 1) * c];
        let hi_slice = &mut tail[..c];
        if a < b {
            (lo_slice, hi_slice)
        } else {
            (hi_slice, lo_slice)
        }
    }

    /// Copy of rows `lo..hi`.
    pub fn take_rows(&self, lo: usize, hi: usize) -> Matrix<T> {
        assert!(lo <= hi && hi <= self.rows);
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Copy of the given rows, in the given order (gather).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix<T> {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &r in idx {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Stack two matrices vertically.
    pub fn vstack(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.cols, other.cols);
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Cast element type (through f32).
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| U::from_f32(v.to_f32())).collect(),
        }
    }

    /// Copy as f32 (convenience for metrics and plotting).
    pub fn to_f32(&self) -> Matrix<f32> {
        self.cast::<f32>()
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(T) -> T + Sync) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Reference (naive, f32-accumulated) matrix multiply: `self · other`.
    /// Used only by tests and tiny models; optimised GEMM lives in
    /// `dfss-kernels`.
    pub fn matmul_ref(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k).to_acc();
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow: &mut [T] = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o = T::from_acc(o.to_acc() + a * b.to_acc());
                }
            }
        }
        out
    }

    /// Frobenius norm (in f64 for accuracy).
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| {
                let x = v.to_f32() as f64;
                x * x
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Max absolute element-wise difference against another matrix.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
            .fold(0.0, f32::max)
    }
}

impl Matrix<f32> {
    /// Element-wise binary op into a new matrix.
    pub fn zip_with(&self, other: &Matrix<f32>, f: impl Fn(f32, f32) -> f32) -> Matrix<f32> {
        assert_eq!(self.shape(), other.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place scaled add: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix<f32>) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale all entries in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix<{}> {}x{} [", T::NAME, self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row
                .iter()
                .take(8)
                .map(|v| format!("{:>9.4}", v.to_f32()))
                .collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf16::Bf16;

    #[test]
    fn zeros_and_shape() {
        let m: Matrix<f32> = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_layout_row_major() {
        let m = Matrix::<f32>::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = Matrix::<f32>::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(4);
        let m = Matrix::<f32>::random_normal(7, 3, 0.0, 1.0, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 5), m.get(5, 2));
    }

    #[test]
    fn matmul_ref_identity() {
        let mut rng = Rng::new(8);
        let m = Matrix::<f32>::random_normal(4, 4, 0.0, 1.0, &mut rng);
        let eye = Matrix::<f32>::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(m.matmul_ref(&eye).max_abs_diff(&m) < 1e-6);
        assert!(eye.matmul_ref(&m).max_abs_diff(&m) < 1e-6);
    }

    #[test]
    fn matmul_ref_known_product() {
        let a = Matrix::<f32>::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::<f32>::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul_ref(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn bf16_matrix_bytes() {
        let m: Matrix<Bf16> = Matrix::zeros(8, 8);
        assert_eq!(m.bytes(), 8 * 8 * 2);
        let f: Matrix<f32> = Matrix::zeros(8, 8);
        assert_eq!(f.bytes(), 8 * 8 * 4);
    }

    #[test]
    fn cast_roundtrip_for_representable() {
        let m = Matrix::<f32>::from_fn(3, 3, |r, c| (r as f32 + 1.0) * 0.5 + c as f32);
        let b: Matrix<Bf16> = m.cast();
        let back = b.to_f32();
        // These small values are exactly representable in bf16.
        assert!(back.max_abs_diff(&m) < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::<f32>::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::<f32>::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.axpy(0.1, &b);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_pair_mut_disjoint() {
        let mut m = Matrix::<f32>::from_fn(4, 2, |r, _| r as f32);
        let (a, b) = m.row_pair_mut(3, 1);
        std::mem::swap(&mut a[0], &mut b[0]);
        assert_eq!(m.get(3, 0), 1.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn frobenius_matches_hand_value() {
        let m = Matrix::<f32>::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
