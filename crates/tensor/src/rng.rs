//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the harness is seeded, so the numbers in
//! EXPERIMENTS.md regenerate bit-for-bit. We implement xoshiro256++ (public
//! domain construction by Blackman & Vigna) seeded through SplitMix64, plus
//! the distributions the workloads need: uniform, Gaussian (Box–Muller, as
//! assumed i.i.d. N(µ,σ) in Proposition 4.2), Zipf (for the synthetic
//! language model corpus) and Fisher–Yates shuffles.

/// xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of Box–Muller.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed. Different seeds give
    /// independent-looking streams; the all-zero internal state is impossible
    /// by construction.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator (for per-worker streams).
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method
    /// (unbiased).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below(0)");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with mean `mu` and standard deviation `sigma`, as `f32`.
    #[inline]
    pub fn normal(&mut self, mu: f32, sigma: f32) -> f32 {
        (mu as f64 + sigma as f64 * self.gaussian()) as f32
    }

    /// Fill a slice with i.i.d. N(mu, sigma) values.
    pub fn fill_normal(&mut self, out: &mut [f32], mu: f32, sigma: f32) {
        for v in out {
            *v = self.normal(mu, sigma);
        }
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s > 0`, via inverse
    /// CDF over precomputed weights. For repeated sampling prefer
    /// [`ZipfTable`].
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        ZipfTable::new(n, s).sample(self)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n);
        // Partial Fisher–Yates.
        let mut p: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            p.swap(i, j);
        }
        p.truncate(k);
        p
    }
}

/// Precomputed cumulative table for fast repeated Zipf sampling.
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build the table for ranks `0..n` with exponent `s`.
    pub fn new(n: usize, s: f64) -> ZipfTable {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.uniform();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_unbiased_small_n() {
        let mut rng = Rng::new(3);
        let mut counts = [0usize; 5];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            let expected = trials / 5;
            assert!(
                (c as i64 - expected as i64).abs() < (expected as f64 * 0.05) as i64,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let z = rng.gaussian();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn zipf_monotone_frequencies() {
        let mut rng = Rng::new(5);
        let table = ZipfTable::new(50, 1.1);
        let mut counts = vec![0usize; 50];
        for _ in 0..50_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 10 must dominate rank 40.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(9);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::new(13);
        let ks = rng.sample_indices(100, 30);
        assert_eq!(ks.len(), 30);
        let mut s = ks.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(1);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
