//! Ragged batched stacks — the decode-serving volume: B streams whose
//! cached K/V panels share a column count but **differ in length**.
//!
//! A [`RaggedBatch`] is `streams` row-major panels in one contiguous backing
//! buffer, panel `i` holding `len(i) × cols` elements. Where
//! [`BatchedMatrix`](crate::BatchedMatrix) models the uniform B×H grid of a
//! prefill launch, `RaggedBatch` models the ragged grid of a **decode**
//! launch: every stream contributes one new query row against its own
//! cached K/V length, and the kernels fan out once over streams while
//! charging the simulated device a single summed profile.
//!
//! Decode scores (one row of `len(i)` scalars per stream) reuse the same
//! container with `cols == 1`: panel `i` is then the stream's score column
//! vector, one scalar per cached position.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// A contiguous stack of row-major panels with per-panel row counts and a
/// shared column count.
#[derive(Clone, Debug, PartialEq)]
pub struct RaggedBatch<T> {
    cols: usize,
    /// Rows of each panel (`lens[i]` = the stream's cached length).
    lens: Vec<usize>,
    /// Prefix row offsets; `offsets[i] * cols` is panel `i`'s element
    /// offset, `offsets.len() == streams + 1`.
    offsets: Vec<usize>,
    data: Vec<T>,
}

fn offsets_of(lens: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(lens.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &l in lens {
        acc += l;
        offsets.push(acc);
    }
    offsets
}

impl<T: Scalar> RaggedBatch<T> {
    /// Zero-filled stack with the given per-stream row counts.
    pub fn zeros(cols: usize, lens: &[usize]) -> RaggedBatch<T> {
        let offsets = offsets_of(lens);
        let total = offsets[lens.len()];
        RaggedBatch {
            cols,
            lens: lens.to_vec(),
            offsets,
            data: vec![T::zero(); total * cols],
        }
    }

    /// Pack borrowed per-stream row slices (each `lens[i] × cols` elements,
    /// row-major — e.g. a serving session's contiguous KV-cache rows) into
    /// one stack. This is the decode path's *pack* step, the ragged
    /// counterpart of `BatchedMatrix::gather`.
    pub fn from_slices(cols: usize, parts: &[&[T]]) -> RaggedBatch<T> {
        assert!(cols > 0, "cols must be positive");
        let mut lens = Vec::with_capacity(parts.len());
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            assert_eq!(
                p.len() % cols,
                0,
                "slice length {} is not a multiple of cols = {cols}",
                p.len()
            );
            lens.push(p.len() / cols);
            data.extend_from_slice(p);
        }
        let offsets = offsets_of(&lens);
        RaggedBatch {
            cols,
            lens,
            offsets,
            data,
        }
    }

    /// Pack borrowed matrices that agree on the column count but may differ
    /// in row count.
    pub fn gather(panels: &[&Matrix<T>]) -> RaggedBatch<T> {
        assert!(!panels.is_empty(), "empty panel list");
        let cols = panels[0].cols();
        for p in panels {
            assert_eq!(p.cols(), cols, "panel column mismatch");
        }
        let parts: Vec<&[T]> = panels.iter().map(|p| p.as_slice()).collect();
        RaggedBatch::from_slices(cols, &parts)
    }

    /// Number of streams (panels) in the stack.
    #[inline]
    pub fn streams(&self) -> usize {
        self.lens.len()
    }

    /// Shared column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows of panel `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i]
    }

    /// Per-stream row counts.
    #[inline]
    pub fn lens(&self) -> &[usize] {
        &self.lens
    }

    /// Sum of all panels' row counts.
    #[inline]
    pub fn total_rows(&self) -> usize {
        self.offsets[self.lens.len()]
    }

    /// Whether the stack holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_rows() * self.cols == 0
    }

    /// Storage footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * T::BYTES
    }

    /// Contiguous row-major slice of panel `i`.
    #[inline]
    pub fn panel(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i] * self.cols..self.offsets[i + 1] * self.cols]
    }

    /// Mutable contiguous slice of panel `i`.
    #[inline]
    pub fn panel_mut(&mut self, i: usize) -> &mut [T] {
        let (lo, hi) = (self.offsets[i] * self.cols, self.offsets[i + 1] * self.cols);
        &mut self.data[lo..hi]
    }

    /// Copy panel `i` out as a standalone [`Matrix`].
    pub fn to_panel(&self, i: usize) -> Matrix<T> {
        Matrix::from_vec(self.lens[i], self.cols, self.panel(i).to_vec())
    }

    /// Contiguous row `r` of panel `i`.
    #[inline]
    pub fn row(&self, i: usize, r: usize) -> &[T] {
        let start = (self.offsets[i] + r) * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Whole backing buffer (panel-major).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Whole backing buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Split the backing buffer into per-panel mutable slices, in stream
    /// order (the kernels' fan-out uses this to hand each stream its own
    /// output region).
    pub fn panels_mut(&mut self) -> Vec<&mut [T]> {
        let cols = self.cols;
        let mut rest: &mut [T] = &mut self.data;
        let mut out = Vec::with_capacity(self.lens.len());
        for &l in &self.lens {
            let (head, tail) = rest.split_at_mut(l * cols);
            out.push(head);
            rest = tail;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slices_lays_panels_out_contiguously() {
        let a = [0.0f32, 1.0, 2.0, 3.0, 4.0, 5.0]; // 3×2
        let b = [10.0f32, 11.0]; // 1×2
        let rb = RaggedBatch::from_slices(2, &[&a, &b]);
        assert_eq!(rb.streams(), 2);
        assert_eq!((rb.len_of(0), rb.len_of(1)), (3, 1));
        assert_eq!(rb.total_rows(), 4);
        assert_eq!(rb.panel(0), &a);
        assert_eq!(rb.panel(1), &b);
        assert_eq!(rb.row(0, 2), &[4.0, 5.0]);
        assert_eq!(rb.row(1, 0), &[10.0, 11.0]);
        assert_eq!(rb.bytes(), 8 * 4);
    }

    #[test]
    fn gather_matches_matrices_and_to_panel_round_trips() {
        let a = Matrix::<f32>::from_fn(4, 3, |r, c| (r * 3 + c) as f32 + 0.5);
        let b = Matrix::<f32>::from_fn(2, 3, |r, c| -((r + c) as f32));
        let rb = RaggedBatch::gather(&[&a, &b]);
        assert_eq!(rb.to_panel(0), a);
        assert_eq!(rb.to_panel(1), b);
        for (x, y) in rb.panel(1).iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn panels_mut_covers_the_whole_buffer_in_order() {
        let mut rb = RaggedBatch::<f32>::zeros(2, &[2, 0, 3]);
        {
            let panels = rb.panels_mut();
            assert_eq!(panels.len(), 3);
            assert_eq!(panels[0].len(), 4);
            assert_eq!(panels[1].len(), 0);
            assert_eq!(panels[2].len(), 6);
            for (i, p) in panels.into_iter().enumerate() {
                p.iter_mut().for_each(|v| *v = i as f32);
            }
        }
        assert_eq!(rb.panel(0), &[0.0; 4]);
        assert_eq!(rb.panel(2), &[2.0; 6]);
    }

    #[test]
    fn cols_1_panels_model_score_columns() {
        let s0 = [1.0f32, 2.0, 3.0];
        let s1 = [4.0f32];
        let rb = RaggedBatch::from_slices(1, &[&s0, &s1]);
        assert_eq!(rb.lens(), &[3, 1]);
        assert_eq!(rb.panel(0), &s0);
        assert_eq!(rb.panel(1), &s1);
    }

    #[test]
    #[should_panic(expected = "not a multiple of cols")]
    fn from_slices_rejects_misaligned_parts() {
        let bad = [0.0f32; 5];
        let _ = RaggedBatch::from_slices(2, &[&bad]);
    }

    #[test]
    #[should_panic(expected = "panel column mismatch")]
    fn gather_rejects_mixed_widths() {
        let a = Matrix::<f32>::zeros(2, 2);
        let b = Matrix::<f32>::zeros(2, 3);
        let _ = RaggedBatch::gather(&[&a, &b]);
    }
}
