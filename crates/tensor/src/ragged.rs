//! Ragged batched stacks — the decode-serving volume: B streams whose
//! cached K/V panels share a column count but **differ in length**.
//!
//! A [`RaggedBatch`] is `streams` row-major panels in one contiguous backing
//! buffer, panel `i` holding `len(i) × cols` elements. Where
//! [`BatchedMatrix`](crate::BatchedMatrix) models the uniform B×H grid of a
//! prefill launch, `RaggedBatch` models the ragged grid of a **decode**
//! launch: every stream contributes one new query row against its own
//! cached K/V length, and the kernels fan out once over streams while
//! charging the simulated device a single summed profile.
//!
//! Decode scores (one row of `len(i)` scalars per stream) reuse the same
//! container with `cols == 1`: panel `i` is then the stream's score column
//! vector, one scalar per cached position.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Borrowed view of one stream's rows stored in **fixed-size pages** — the
/// paged-KV counterpart of a contiguous row slab.
///
/// `pages` lists the stream's blocks in table order; page `p` holds rows
/// `[p·rows_per_page, (p+1)·rows_per_page)` of the logical `len × cols`
/// panel, row-major within the page. Every page slice must hold at least
/// `rows_per_page × cols` elements (pool pages may carry a dead tail when
/// the page size is not a multiple of the row width); only the first `len`
/// rows across the sequence are live, so the last page is usually partially
/// filled.
#[derive(Clone, Debug)]
pub struct PagedPanel<'a, T> {
    /// The stream's pages, in table order.
    pub pages: Vec<&'a [T]>,
    /// Logical rows stored per page (the last page holds the remainder).
    pub rows_per_page: usize,
    /// Live rows of the panel.
    pub len: usize,
}

/// A contiguous stack of row-major panels with per-panel row counts and a
/// shared column count.
#[derive(Clone, Debug, PartialEq)]
pub struct RaggedBatch<T> {
    cols: usize,
    /// Rows of each panel (`lens[i]` = the stream's cached length).
    lens: Vec<usize>,
    /// Prefix row offsets; `offsets[i] * cols` is panel `i`'s element
    /// offset, `offsets.len() == streams + 1`.
    offsets: Vec<usize>,
    data: Vec<T>,
}

fn offsets_of(lens: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(lens.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &l in lens {
        acc += l;
        offsets.push(acc);
    }
    offsets
}

impl<T: Scalar> RaggedBatch<T> {
    /// Zero-filled stack with the given per-stream row counts.
    pub fn zeros(cols: usize, lens: &[usize]) -> RaggedBatch<T> {
        let offsets = offsets_of(lens);
        let total = offsets[lens.len()];
        RaggedBatch {
            cols,
            lens: lens.to_vec(),
            offsets,
            data: vec![T::zero(); total * cols],
        }
    }

    /// Pack borrowed per-stream row slices (each `lens[i] × cols` elements,
    /// row-major — e.g. a serving session's contiguous KV-cache rows) into
    /// one stack. This is the decode path's *pack* step, the ragged
    /// counterpart of `BatchedMatrix::gather`.
    pub fn from_slices(cols: usize, parts: &[&[T]]) -> RaggedBatch<T> {
        assert!(cols > 0, "cols must be positive");
        let mut lens = Vec::with_capacity(parts.len());
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            assert_eq!(
                p.len() % cols,
                0,
                "slice length {} is not a multiple of cols = {cols}",
                p.len()
            );
            lens.push(p.len() / cols);
            data.extend_from_slice(p);
        }
        let offsets = offsets_of(&lens);
        RaggedBatch {
            cols,
            lens,
            offsets,
            data,
        }
    }

    /// Pack borrowed **paged** row storage into the same contiguous launch
    /// layout as [`from_slices`](Self::from_slices) — the paged-KV decode
    /// path's *pack* step.
    ///
    /// Rows are copied page by page in table order, so the result is
    /// bit-identical to packing the same rows from one contiguous slab: a
    /// contiguous slab is exactly the degenerate one-page table
    /// (`rows_per_page == len`). Panels may mix page geometries freely.
    pub fn gather_paged(cols: usize, panels: &[PagedPanel<'_, T>]) -> RaggedBatch<T> {
        assert!(cols > 0, "cols must be positive");
        let lens: Vec<usize> = panels.iter().map(|p| p.len).collect();
        let mut data = Vec::with_capacity(lens.iter().sum::<usize>() * cols);
        for panel in panels {
            assert!(panel.rows_per_page > 0, "rows_per_page must be positive");
            assert_eq!(
                panel.pages.len(),
                panel.len.div_ceil(panel.rows_per_page),
                "page table holds {} pages for {} rows at {} rows/page",
                panel.pages.len(),
                panel.len,
                panel.rows_per_page
            );
            let mut remaining = panel.len;
            for page in &panel.pages {
                let take = remaining.min(panel.rows_per_page);
                assert!(
                    page.len() >= panel.rows_per_page * cols,
                    "page holds {} elements, need at least rows_per_page x cols = {} x {cols}",
                    page.len(),
                    panel.rows_per_page
                );
                data.extend_from_slice(&page[..take * cols]);
                remaining -= take;
            }
        }
        let offsets = offsets_of(&lens);
        RaggedBatch {
            cols,
            lens,
            offsets,
            data,
        }
    }

    /// Pack borrowed matrices that agree on the column count but may differ
    /// in row count.
    pub fn gather(panels: &[&Matrix<T>]) -> RaggedBatch<T> {
        assert!(!panels.is_empty(), "empty panel list");
        let cols = panels[0].cols();
        for p in panels {
            assert_eq!(p.cols(), cols, "panel column mismatch");
        }
        let parts: Vec<&[T]> = panels.iter().map(|p| p.as_slice()).collect();
        RaggedBatch::from_slices(cols, &parts)
    }

    /// Number of streams (panels) in the stack.
    #[inline]
    pub fn streams(&self) -> usize {
        self.lens.len()
    }

    /// Shared column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows of panel `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i]
    }

    /// Per-stream row counts.
    #[inline]
    pub fn lens(&self) -> &[usize] {
        &self.lens
    }

    /// Sum of all panels' row counts.
    #[inline]
    pub fn total_rows(&self) -> usize {
        self.offsets[self.lens.len()]
    }

    /// Whether the stack holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total_rows() * self.cols == 0
    }

    /// Storage footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * T::BYTES
    }

    /// Contiguous row-major slice of panel `i`.
    #[inline]
    pub fn panel(&self, i: usize) -> &[T] {
        &self.data[self.offsets[i] * self.cols..self.offsets[i + 1] * self.cols]
    }

    /// Mutable contiguous slice of panel `i`.
    #[inline]
    pub fn panel_mut(&mut self, i: usize) -> &mut [T] {
        let (lo, hi) = (self.offsets[i] * self.cols, self.offsets[i + 1] * self.cols);
        &mut self.data[lo..hi]
    }

    /// Copy panel `i` out as a standalone [`Matrix`].
    pub fn to_panel(&self, i: usize) -> Matrix<T> {
        Matrix::from_vec(self.lens[i], self.cols, self.panel(i).to_vec())
    }

    /// Contiguous row `r` of panel `i`.
    #[inline]
    pub fn row(&self, i: usize, r: usize) -> &[T] {
        let start = (self.offsets[i] + r) * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Whole backing buffer (panel-major).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Whole backing buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Split the backing buffer into per-panel mutable slices, in stream
    /// order (the kernels' fan-out uses this to hand each stream its own
    /// output region).
    pub fn panels_mut(&mut self) -> Vec<&mut [T]> {
        let cols = self.cols;
        let mut rest: &mut [T] = &mut self.data;
        let mut out = Vec::with_capacity(self.lens.len());
        for &l in &self.lens {
            let (head, tail) = rest.split_at_mut(l * cols);
            out.push(head);
            rest = tail;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slices_lays_panels_out_contiguously() {
        let a = [0.0f32, 1.0, 2.0, 3.0, 4.0, 5.0]; // 3×2
        let b = [10.0f32, 11.0]; // 1×2
        let rb = RaggedBatch::from_slices(2, &[&a, &b]);
        assert_eq!(rb.streams(), 2);
        assert_eq!((rb.len_of(0), rb.len_of(1)), (3, 1));
        assert_eq!(rb.total_rows(), 4);
        assert_eq!(rb.panel(0), &a);
        assert_eq!(rb.panel(1), &b);
        assert_eq!(rb.row(0, 2), &[4.0, 5.0]);
        assert_eq!(rb.row(1, 0), &[10.0, 11.0]);
        assert_eq!(rb.bytes(), 8 * 4);
    }

    #[test]
    fn gather_matches_matrices_and_to_panel_round_trips() {
        let a = Matrix::<f32>::from_fn(4, 3, |r, c| (r * 3 + c) as f32 + 0.5);
        let b = Matrix::<f32>::from_fn(2, 3, |r, c| -((r + c) as f32));
        let rb = RaggedBatch::gather(&[&a, &b]);
        assert_eq!(rb.to_panel(0), a);
        assert_eq!(rb.to_panel(1), b);
        for (x, y) in rb.panel(1).iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn panels_mut_covers_the_whole_buffer_in_order() {
        let mut rb = RaggedBatch::<f32>::zeros(2, &[2, 0, 3]);
        {
            let panels = rb.panels_mut();
            assert_eq!(panels.len(), 3);
            assert_eq!(panels[0].len(), 4);
            assert_eq!(panels[1].len(), 0);
            assert_eq!(panels[2].len(), 6);
            for (i, p) in panels.into_iter().enumerate() {
                p.iter_mut().for_each(|v| *v = i as f32);
            }
        }
        assert_eq!(rb.panel(0), &[0.0; 4]);
        assert_eq!(rb.panel(2), &[2.0; 6]);
    }

    #[test]
    fn cols_1_panels_model_score_columns() {
        let s0 = [1.0f32, 2.0, 3.0];
        let s1 = [4.0f32];
        let rb = RaggedBatch::from_slices(1, &[&s0, &s1]);
        assert_eq!(rb.lens(), &[3, 1]);
        assert_eq!(rb.panel(0), &s0);
        assert_eq!(rb.panel(1), &s1);
    }

    #[test]
    fn gather_paged_matches_contiguous_pack_bitwise() {
        // 5 rows × 2 cols split over pages of 2 rows (last page partial),
        // against the same rows packed from one contiguous slab.
        let rows: Vec<f32> = (0..10).map(|i| i as f32 * 0.37 + 0.1).collect();
        let pages: Vec<&[f32]> = vec![&rows[0..4], &rows[4..8], &rows[8..10]];
        // Pad the tail page to a full page allocation (dead tail).
        let tail_page: Vec<f32> = [&rows[8..10], &[999.0, 999.0][..]].concat();
        let padded: Vec<&[f32]> = vec![pages[0], pages[1], &tail_page];
        let paged = RaggedBatch::gather_paged(
            2,
            &[PagedPanel {
                pages: padded,
                rows_per_page: 2,
                len: 5,
            }],
        );
        let contiguous = RaggedBatch::from_slices(2, &[&rows]);
        assert_eq!(paged.lens(), contiguous.lens());
        for (a, b) in paged.as_slice().iter().zip(contiguous.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gather_paged_mixes_page_geometries_across_streams() {
        // Stream 0: 3 rows in pages of 2; stream 1: contiguous slab as the
        // degenerate one-page table; stream 2: rows_per_page larger than
        // len (single partial page).
        let a: Vec<f32> = (0..6).map(|i| i as f32).collect();
        // Tail page is a full fixed-size block with a dead tail.
        let a_tail: Vec<f32> = vec![a[4], a[5], 99.0, 99.0];
        let b: Vec<f32> = (0..4).map(|i| -(i as f32)).collect();
        let c: Vec<f32> = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0];
        let rb = RaggedBatch::gather_paged(
            2,
            &[
                PagedPanel {
                    pages: vec![&a[0..4], &a_tail],
                    rows_per_page: 2,
                    len: 3,
                },
                PagedPanel {
                    pages: vec![&b],
                    rows_per_page: 2,
                    len: 2,
                },
                PagedPanel {
                    pages: vec![&c],
                    rows_per_page: 4,
                    len: 1,
                },
            ],
        );
        assert_eq!(rb.lens(), &[3, 2, 1]);
        assert_eq!(rb.panel(0), &a[..]);
        assert_eq!(rb.panel(1), &b[..]);
        assert_eq!(rb.panel(2), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "page table holds")]
    fn gather_paged_rejects_wrong_page_counts() {
        let page = [0.0f32; 4];
        let _ = RaggedBatch::gather_paged(
            2,
            &[PagedPanel {
                pages: vec![&page],
                rows_per_page: 2,
                len: 3, // needs 2 pages
            }],
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple of cols")]
    fn from_slices_rejects_misaligned_parts() {
        let bad = [0.0f32; 5];
        let _ = RaggedBatch::from_slices(2, &[&bad]);
    }

    #[test]
    #[should_panic(expected = "panel column mismatch")]
    fn gather_rejects_mixed_widths() {
        let a = Matrix::<f32>::zeros(2, 2);
        let b = Matrix::<f32>::zeros(2, 3);
        let _ = RaggedBatch::gather(&[&a, &b]);
    }
}
