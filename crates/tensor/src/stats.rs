//! Summary statistics for the accuracy tables.
//!
//! The paper reports `mean ± CI` at Cl = 95% over 8 seeded runs (Tables 1–3)
//! and box plots over attention heads (Figure 12). This module provides both.

use crate::math::normal_quantile;

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Two-sided confidence-interval half width at confidence level `cl`
/// (e.g. 0.95), using the normal approximation the paper's ±-notation
/// implies.
pub fn ci_half_width(xs: &[f64], cl: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let z = normal_quantile(0.5 + cl / 2.0);
    z * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// A `mean ± ci` pair, displayable like the paper's table cells.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    pub mean: f64,
    pub ci: f64,
}

impl MeanCi {
    /// Summarise a sample at Cl = 95%.
    pub fn from_sample(xs: &[f64]) -> MeanCi {
        MeanCi {
            mean: mean(xs),
            ci: ci_half_width(xs, 0.95),
        }
    }

    /// True when `other`'s mean lies within this interval — the paper's
    /// "within one sigma / on-par" accuracy criterion.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci
    }
}

impl std::fmt::Display for MeanCi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prec = f.precision().unwrap_or(2);
        write!(f, "{:.p$}± {:.p$}", self.mean, self.ci, p = prec)
    }
}

/// Five-number summary for box plots (Figure 12).
#[derive(Clone, Copy, Debug)]
pub struct BoxStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

/// Linear-interpolated quantile of a sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl BoxStats {
    pub fn from_sample(xs: &[f64]) -> BoxStats {
        assert!(!xs.is_empty(), "BoxStats of empty sample");
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        BoxStats {
            min: s[0],
            q1: quantile_sorted(&s, 0.25),
            median: quantile_sorted(&s, 0.5),
            q3: quantile_sorted(&s, 0.75),
            max: s[s.len() - 1],
        }
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.3} ⊢ {:.3} | {:.3} | {:.3} ⊣ {:.3}]",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 denominator.
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = vec![1.0, 2.0, 3.0, 4.0];
        let mut large = Vec::new();
        for _ in 0..16 {
            large.extend_from_slice(&small);
        }
        assert!(ci_half_width(&large, 0.95) < ci_half_width(&small, 0.95));
    }

    #[test]
    fn ci_95_known_case() {
        // std=1, n=4 → half width = 1.95996/2.
        let xs = [
            -1.0, 1.0, -1.0, 1.0, // mean 0, sample std = sqrt(4/3)
        ];
        let sd = std_dev(&xs);
        let expect = 1.959964 * sd / 2.0;
        assert!((ci_half_width(&xs, 0.95) - expect).abs() < 1e-4);
    }

    #[test]
    fn meanci_display_and_contains() {
        let m = MeanCi::from_sample(&[93.0, 93.2, 93.4, 92.8, 93.1, 93.3, 92.9, 93.1]);
        let s = format!("{m}");
        assert!(s.contains("±"), "{s}");
        assert!(m.contains(m.mean));
        assert!(!m.contains(m.mean + 10.0));
    }

    #[test]
    fn box_stats_quartiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxStats::from_sample(&xs);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
    }

    #[test]
    fn box_stats_single_value() {
        let b = BoxStats::from_sample(&[7.0]);
        assert_eq!(b.min, 7.0);
        assert_eq!(b.max, 7.0);
        assert_eq!(b.median, 7.0);
    }

    #[test]
    fn empty_mean_is_nan() {
        assert!(mean(&[]).is_nan());
    }
}
