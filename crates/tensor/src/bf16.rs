//! Software `bfloat16` and TensorFloat-32 emulation.
//!
//! The paper evaluates two data types: `float` (f32, pruned 1:2) and
//! `bfloat16` (pruned 2:4). On the A100 the `float` path converts inputs to
//! TF32 (19-bit: 8-bit exponent, 10-bit mantissa) before the tensor-core
//! multiply and accumulates in f32; the `bfloat16` path multiplies bf16
//! inputs and also accumulates in f32. We reproduce both numerics contracts
//! in software so accuracy experiments see the same rounding behaviour.

/// A 16-bit brain floating point number (1 sign, 8 exponent, 7 mantissa bits).
///
/// Stored as the raw upper half of the equivalent `f32` bit pattern.
/// Conversion from `f32` uses round-to-nearest-even, matching hardware
/// `cvt.rn.bf16.f32`. All arithmetic is performed by widening to `f32`,
/// which is exact (every `Bf16` is exactly representable as `f32`).
///
/// `repr(transparent)` is load-bearing: the SIMD microkernels reinterpret
/// `&[Bf16]` as `&[u16]` to feed vector widening instructions.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl Bf16 {
    pub const ZERO: Bf16 = Bf16(0);
    pub const ONE: Bf16 = Bf16(0x3F80);
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    pub const INFINITY: Bf16 = Bf16(0x7F80);

    /// Convert from `f32` with round-to-nearest-even.
    #[inline]
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve NaN; force a quiet mantissa bit so truncation cannot
            // turn a signalling NaN into an infinity.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the 16 bits we drop.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Widen to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// True if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }
}

impl std::fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}bf16", self.to_f32())
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

impl std::ops::Add for Bf16 {
    type Output = Bf16;
    #[inline]
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for Bf16 {
    type Output = Bf16;
    #[inline]
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for Bf16 {
    type Output = Bf16;
    #[inline]
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Div for Bf16 {
    type Output = Bf16;
    #[inline]
    fn div(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl std::ops::Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl PartialOrd for Bf16 {
    #[inline]
    fn partial_cmp(&self, other: &Bf16) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

/// Round an `f32` to TensorFloat-32 precision (10 explicit mantissa bits),
/// round-to-nearest-even — the conversion Ampere tensor cores apply to
/// `float` GEMM operands before the multiply (paper Appendix A.1.2:
/// "float data will be converted to tensorfloat-32 before wmma").
#[inline]
pub fn tf32_round(x: f32) -> f32 {
    if x.is_nan() || x.is_infinite() {
        return x;
    }
    let bits = x.to_bits();
    // f32 has 23 mantissa bits; TF32 keeps 10, so drop 13.
    let drop = 13u32;
    let lsb = (bits >> drop) & 1;
    let rounded = bits.wrapping_add((1u32 << (drop - 1)) - 1 + lsb);
    f32::from_bits(rounded & !((1u32 << drop) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_roundtrip_exact_values() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -3.5, 128.0, 1.0e10, -1.0e-10] {
            let b = Bf16::from_f32(v);
            let w = b.to_f32();
            // Widening then re-narrowing must be a fixed point.
            assert_eq!(Bf16::from_f32(w).0, b.0, "v = {v}");
        }
    }

    #[test]
    fn bf16_one_and_zero() {
        assert_eq!(Bf16::from_f32(1.0), Bf16::ONE);
        assert_eq!(Bf16::from_f32(0.0), Bf16::ZERO);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn bf16_round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // representable value 1.0078125; RNE keeps the even mantissa (1.0).
        let halfway = 1.0f32 + 2.0f32.powi(-8);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0f32 + 2.0f32.powi(-8) + 2.0f32.powi(-12);
        assert_eq!(Bf16::from_f32(above).to_f32(), 1.0078125);
    }

    #[test]
    fn bf16_relative_error_bound() {
        // bf16 has 8 bits of significand (1 implicit + 7 explicit):
        // relative error <= 2^-8.
        let mut x = 0.37f32;
        for _ in 0..100 {
            let b = Bf16::from_f32(x).to_f32();
            assert!((b - x).abs() <= x.abs() * 2.0f32.powi(-8) + f32::MIN_POSITIVE);
            x *= 1.7;
        }
    }

    #[test]
    fn bf16_nan_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(!Bf16::from_f32(1.0).is_nan());
    }

    #[test]
    fn bf16_neg_flips_sign_bit() {
        let b = Bf16::from_f32(2.5);
        assert_eq!((-b).to_f32(), -2.5);
        assert_eq!((-(-b)).0, b.0);
    }

    #[test]
    fn bf16_arith_widens() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((b / a).to_f32(), 1.5);
    }

    #[test]
    fn bf16_infinity_ordering() {
        assert!(Bf16::NEG_INFINITY < Bf16::from_f32(-1e30));
        assert!(Bf16::INFINITY > Bf16::from_f32(1e30));
    }

    #[test]
    fn tf32_keeps_10_mantissa_bits() {
        // 1 + 2^-10 is representable in TF32; 1 + 2^-11 rounds to even (1.0).
        assert_eq!(tf32_round(1.0 + 2.0f32.powi(-10)), 1.0 + 2.0f32.powi(-10));
        assert_eq!(tf32_round(1.0 + 2.0f32.powi(-11)), 1.0);
        // Just above halfway rounds up.
        assert_eq!(
            tf32_round(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20)),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn tf32_idempotent() {
        let mut x = 0.123f32;
        for _ in 0..50 {
            let r = tf32_round(x);
            assert_eq!(tf32_round(r), r);
            x *= -2.31;
        }
    }

    #[test]
    fn tf32_passes_specials() {
        assert!(tf32_round(f32::NAN).is_nan());
        assert_eq!(tf32_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(tf32_round(0.0), 0.0);
    }
}
