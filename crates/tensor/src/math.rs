//! Special functions and numerically stable primitives.
//!
//! `erf`/`erfinv` back Proposition 4.2's closed-form quality expressions
//! (`Q^p_{1:2} = (1 + erf(pσ/2))/2`, the top-k expression uses `erfinv`).
//! The softmax helpers implement the three-pass max/sum/normalise scheme of
//! Appendix A.1.3 (Equation 10).

/// Error function. Maclaurin series for |x| < 2, asymptotic continued
/// fraction for the tails; accurate to better than 1e-12 everywhere, which
/// the Prop 4.2 / Prop 4.3 closed forms rely on near s → 0.
pub fn erf(x: f64) -> f64 {
    erf_precise(x)
}

/// Complementary error function.
#[inline]
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Inverse error function via the Giles (2012) single-precision-style
/// polynomial, refined with two Newton steps so `erf(erfinv(y)) = y` to
/// ~1e-12 over `(-1, 1)`.
pub fn erfinv(y: f64) -> f64 {
    assert!((-1.0..=1.0).contains(&y), "erfinv domain: {y}");
    if y == 1.0 {
        return f64::INFINITY;
    }
    if y == -1.0 {
        return f64::NEG_INFINITY;
    }
    let w = -((1.0 - y) * (1.0 + y)).ln();
    let mut x = if w < 5.0 {
        let w = w - 2.5;
        let mut p = 2.81022636e-08;
        p = 3.43273939e-07 + p * w;
        p = -3.5233877e-06 + p * w;
        p = -4.39150654e-06 + p * w;
        p = 0.00021858087 + p * w;
        p = -0.00125372503 + p * w;
        p = -0.00417768164 + p * w;
        p = 0.246640727 + p * w;
        p = 1.50140941 + p * w;
        p * y
    } else {
        let w = w.sqrt() - 3.0;
        let mut p = -0.000200214257;
        p = 0.000100950558 + p * w;
        p = 0.00134934322 + p * w;
        p = -0.00367342844 + p * w;
        p = 0.00573950773 + p * w;
        p = -0.0076224613 + p * w;
        p = 0.00943887047 + p * w;
        p = 1.00167406 + p * w;
        p = 2.83297682 + p * w;
        p * y
    };
    // Newton refinement on f(x) = erf(x) - y, f'(x) = 2/sqrt(pi) exp(-x^2).
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..2 {
        let err = erf_precise(x) - y;
        x -= err / (two_over_sqrt_pi * (-x * x).exp());
    }
    x
}

/// Higher-precision erf used internally by the Newton refinement: series for
/// small |x|, continued-fraction-backed erfc for large |x|.
fn erf_precise(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 2.0 {
        // Maclaurin series: erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1)/(n!(2n+1)).
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        for n in 1..64 {
            term *= -x2 / n as f64;
            let inc = term / (2 * n + 1) as f64;
            sum += inc;
            if inc.abs() < 1e-17 * sum.abs() {
                break;
            }
        }
        sum * 2.0 / std::f64::consts::PI.sqrt()
    } else {
        // Asymptotic continued fraction for erfc.
        let sign = x.signum();
        let mut cf = 0.0;
        for k in (1..=40).rev() {
            cf = 0.5 * k as f64 / (ax + cf);
        }
        let erfc = (-ax * ax).exp() / ((ax + cf) * std::f64::consts::PI.sqrt());
        sign * (1.0 - erfc)
    }
}

/// Standard normal CDF.
#[inline]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal inverse CDF (probit).
#[inline]
pub fn normal_quantile(p: f64) -> f64 {
    std::f64::consts::SQRT_2 * erfinv(2.0 * p - 1.0)
}

/// GELU activation (tanh approximation, as used by BERT-family models).
#[inline]
pub fn gelu(x: f32) -> f32 {
    let x64 = x as f64;
    let c = (2.0 / std::f64::consts::PI).sqrt();
    (0.5 * x64 * (1.0 + (c * (x64 + 0.044715 * x64 * x64 * x64)).tanh())) as f32
}

/// Derivative of the tanh-approximated GELU.
pub fn gelu_grad(x: f32) -> f32 {
    let x = x as f64;
    let c = (2.0 / std::f64::consts::PI).sqrt();
    let u = c * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = c * (1.0 + 3.0 * 0.044715 * x * x);
    (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du) as f32
}

/// Numerically stable in-place softmax over a dense row (Equation 10):
/// `softmax(x)_i = exp(x_i - max x) / Σ_j exp(x_j - max x)`.
///
/// Rows that are entirely `-inf` (fully masked) become all zeros rather than
/// NaN, which is the convention masked attention needs.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    softmax_row_with_max(row, max);
}

/// [`softmax_row`] with the row maximum already known — for callers that
/// fuse the max reduction into a preceding copy/widen pass. `max` must be
/// the left-to-right `f32::max` fold of `row` for identical numerics.
pub fn softmax_row_with_max(row: &mut [f32], max: f32) {
    let inv = softmax_exp_pass(row, max);
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// The exp phase of a stable softmax: overwrites `row` with
/// `exp(x - max)` and returns the normaliser `1/Σ`, letting callers fuse
/// the final multiply into their own write-back pass (`v * inv` there is
/// the exact multiplication [`softmax_row`] would perform in place). For an
/// all-`-∞` row the entries become `0.0` and the returned normaliser is
/// `0.0`, so a fused `v * inv` write-back still produces the zero row.
pub fn softmax_exp_pass(row: &mut [f32], max: f32) -> f32 {
    if row.is_empty() {
        return 0.0;
    }
    if max == f32::NEG_INFINITY {
        row.iter_mut().for_each(|v| *v = 0.0);
        return 0.0;
    }
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    1.0 / sum
}

/// Softmax returning a fresh vector.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let mut out = xs.to_vec();
    softmax_row(&mut out);
    out
}

/// log(Σ exp(x_i)) computed stably.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    let s: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(3.5) - 0.999999257).abs() < 1e-6);
    }

    #[test]
    fn erf_odd_function() {
        for i in 0..100 {
            let x = i as f64 * 0.05;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn erfinv_inverts_erf() {
        for i in -98..=98 {
            let y = i as f64 / 100.0;
            let x = erfinv(y);
            assert!(
                (erf_precise(x) - y).abs() < 1e-9,
                "y={y} x={x} erf={}",
                erf_precise(x)
            );
        }
    }

    #[test]
    fn erfinv_extremes() {
        assert_eq!(erfinv(1.0), f64::INFINITY);
        assert_eq!(erfinv(-1.0), f64::NEG_INFINITY);
        assert!(erfinv(0.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_quantile_roundtrip() {
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
        // 95% two-sided z-value, used for the tables' confidence intervals.
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![0.1, 2.0, -1.0, 4.0, 0.0];
        softmax_row(&mut row);
        let s: f32 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let mut row = vec![1e30f32, 0.0, -1e30];
        softmax_row(&mut row);
        assert!((row[0] - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_all_masked_row_is_zero() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_row(&mut row);
        assert!(row.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small() {
        let xs = [0.5f32, -1.0, 2.0];
        let naive = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-6);
    }

    #[test]
    fn gelu_properties() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3); // ≈ identity for large x
        assert!(gelu(-10.0).abs() < 1e-3); // ≈ 0 for very negative x
                                           // Finite-difference check of the gradient.
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((fd - gelu_grad(x)).abs() < 1e-3, "x={x}");
        }
    }
}
