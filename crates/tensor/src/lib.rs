//! # dfss-tensor — dense matrix substrate for the Dfss reproduction
//!
//! This crate provides everything the upper layers need from a numerics
//! substrate, built from scratch:
//!
//! * [`Bf16`] — a software `bfloat16` with round-to-nearest-even conversion,
//!   plus [`tf32_round`] emulating the TensorFloat-32 input rounding that the
//!   paper's tensor-core GEMM applies to `float` operands (Appendix A.1.2).
//! * [`Scalar`] — the trait abstracting the paper's two evaluated data types
//!   (`float` → [`f32`], `bfloat16` → [`Bf16`]).
//! * [`Matrix`] — a flat row-major matrix with the small set of dense ops the
//!   attention stack needs (GEMM lives in `dfss-kernels`; this crate only
//!   offers reference-grade helpers).
//! * [`BatchedMatrix`] — a contiguous B×H stack of row-major panels, the
//!   unit the batched kernels process in one launch (§5.2).
//! * [`arena`] — a thread-local scratch-buffer pool so kernel hot loops
//!   reuse their widened-operand and accumulator buffers across calls.
//! * [`rng`] — a deterministic xoshiro256++ generator with Gaussian and Zipf
//!   sampling so every experiment in EXPERIMENTS.md is exactly reproducible.
//! * [`math`] — `erf`/`erfinv` (needed by Proposition 4.2's closed forms),
//!   numerically stable softmax helpers, GELU.
//! * [`stats`] — mean/σ/confidence intervals and quartiles used by the
//!   accuracy tables (reported as `mean ± CI` at Cl = 95% like the paper).

pub mod arena;
pub mod batched;
pub mod bf16;
pub mod math;
pub mod matrix;
pub mod ragged;
pub mod rng;
pub mod scalar;
pub mod stats;

pub use arena::{scratch_f32, scratch_f32_from, scratch_f32_stale, ScratchF32};
pub use batched::BatchedMatrix;
pub use bf16::{tf32_round, Bf16};
pub use matrix::Matrix;
pub use ragged::{PagedPanel, RaggedBatch};
pub use rng::Rng;
pub use scalar::Scalar;
