//! Thread-local scratch arena for hot-loop f32 buffers.
//!
//! The execution kernels need short-lived f32 working buffers on every call:
//! widened (TF32-rounded) operand copies, transposed panels, per-row
//! accumulators. Allocating those with `vec![0.0; n]` each time costs a
//! malloc + page-fault storm per kernel launch, which dominates at the
//! small-matrix sizes the paper sweeps. This arena keeps a small per-thread
//! free list of `Vec<f32>` buffers: acquisition pops one and resizes it (a
//! cheap memset on warm, already-faulted memory), and dropping the RAII
//! handle returns the buffer to the list.
//!
//! Because the worker pool in the `rayon` shim is persistent, each worker
//! thread's free list survives across kernel calls — the steady state of a
//! benchmark loop or a transformer forward pass performs **zero** scratch
//! allocations.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Retain at most this many buffers per thread; enough for the deepest
/// kernel (two widened operands + transpose panel + accumulator) with room
/// for nesting, while bounding idle memory.
const MAX_POOLED: usize = 8;

/// Cap on the total *bytes* parked per thread, so a sweep over large shapes
/// (a widened n×n score panel at n = 2048 is 16 MiB) cannot pin
/// `MAX_POOLED` such buffers on every persistent worker for the process
/// lifetime.
const MAX_POOLED_BYTES: usize = 64 << 20;

thread_local! {
    static FREE_LIST: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// RAII handle to a pooled `f32` buffer; dereferences to `[f32]` and returns
/// the storage to the thread-local free list on drop.
#[derive(Debug)]
pub struct ScratchF32 {
    buf: Vec<f32>,
}

impl Deref for ScratchF32 {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchF32 {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchF32 {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        FREE_LIST.with(|fl| {
            let mut fl = fl.borrow_mut();
            let parked_bytes: usize = fl.iter().map(|b| b.capacity() * 4).sum();
            if fl.len() < MAX_POOLED && parked_bytes + buf.capacity() * 4 <= MAX_POOLED_BYTES {
                fl.push(buf);
            }
        });
    }
}

/// Pop the best-fitting parked buffer for `len` elements: the smallest
/// capacity that already fits, else the largest (which will grow once and
/// then serve future large requests instead of being shadowed by small
/// ones).
fn pop_best_fit(len: usize) -> Option<Vec<f32>> {
    FREE_LIST.with(|fl| {
        let mut fl = fl.borrow_mut();
        let fitting = fl
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let idx = fitting.or_else(|| {
            fl.iter()
                .enumerate()
                .max_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
        })?;
        Some(fl.swap_remove(idx))
    })
}

/// Acquire a zero-filled scratch buffer of exactly `len` elements, reusing
/// pooled storage when available.
pub fn scratch_f32(len: usize) -> ScratchF32 {
    let mut s = scratch_f32_stale(len);
    s.iter_mut().for_each(|x| *x = 0.0);
    s
}

/// Acquire a scratch buffer of exactly `len` elements with **unspecified
/// contents** (stale values from the buffer's previous use; always
/// initialized memory). For hot loops that fully overwrite the buffer — or
/// re-zero it per iteration anyway — this skips [`scratch_f32`]'s zero-fill
/// pass.
pub fn scratch_f32_stale(len: usize) -> ScratchF32 {
    let mut buf = pop_best_fit(len).unwrap_or_default();
    if buf.len() > len {
        buf.truncate(len);
    } else {
        // Only the growth tail is written; the retained prefix keeps its
        // stale values.
        buf.resize(len, 0.0);
    }
    ScratchF32 { buf }
}

/// Acquire a scratch buffer filled from an iterator that yields exactly
/// `len` elements (skips the zero-fill of [`scratch_f32`]).
pub fn scratch_f32_from(len: usize, values: impl Iterator<Item = f32>) -> ScratchF32 {
    let mut buf = pop_best_fit(len).unwrap_or_default();
    buf.clear();
    buf.reserve(len);
    buf.extend(values);
    assert_eq!(buf.len(), len, "scratch iterator length mismatch");
    ScratchF32 { buf }
}

/// Number of buffers currently parked on this thread's free list (test
/// observability).
pub fn pooled_buffers() -> usize {
    FREE_LIST.with(|fl| fl.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_sized() {
        let s = scratch_f32(37);
        assert_eq!(s.len(), 37);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn storage_is_reused_across_acquisitions() {
        // Warm the pool, note the capacity, and check a same-size acquire
        // does not grow it again.
        drop(scratch_f32(1024));
        let before = pooled_buffers();
        assert!(before >= 1);
        let mut s = scratch_f32(1024);
        s[0] = 1.0;
        assert_eq!(pooled_buffers(), before - 1);
        drop(s);
        assert_eq!(pooled_buffers(), before);
        // Reused buffer must come back zeroed.
        let s2 = scratch_f32(1024);
        assert!(s2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn stale_has_len_and_reuses_without_zeroing_cost() {
        FREE_LIST.with(|fl| fl.borrow_mut().clear());
        let mut a = scratch_f32_stale(16);
        assert_eq!(a.len(), 16);
        a[3] = 7.0;
        drop(a);
        // Reacquired stale buffer keeps its previous contents (truncate
        // path) — the contract is "unspecified", this pins the no-memset
        // behavior.
        let b = scratch_f32_stale(8);
        assert_eq!(b.len(), 8);
        assert_eq!(b[3], 7.0);
        drop(b);
        FREE_LIST.with(|fl| fl.borrow_mut().clear());
    }

    #[test]
    fn from_iterator_skips_zero_fill() {
        let s = scratch_f32_from(4, [1.0f32, 2.0, 3.0, 4.0].into_iter());
        assert_eq!(&*s, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_iterator_checks_length() {
        let _ = scratch_f32_from(5, [1.0f32].into_iter());
    }

    #[test]
    fn pool_is_bounded() {
        let held: Vec<ScratchF32> = (0..32).map(|_| scratch_f32(8)).collect();
        drop(held);
        assert!(pooled_buffers() <= MAX_POOLED);
    }

    #[test]
    fn pool_is_byte_bounded() {
        // Two buffers of MAX_POOLED_BYTES/2 fill the cap; a third is freed
        // rather than parked.
        let half = MAX_POOLED_BYTES / 2 / 4;
        let held: Vec<ScratchF32> = (0..3).map(|_| scratch_f32(half)).collect();
        drop(held);
        FREE_LIST.with(|fl| {
            let bytes: usize = fl.borrow().iter().map(|b| b.capacity() * 4).sum();
            assert!(bytes <= MAX_POOLED_BYTES, "parked {bytes} bytes");
            // Drop the big buffers so other tests see a small pool.
            fl.borrow_mut().clear();
        });
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        FREE_LIST.with(|fl| fl.borrow_mut().clear());
        // Hold both concurrently so each gets distinct backing storage.
        let big = scratch_f32(1000);
        let small = scratch_f32(10);
        drop(big);
        drop(small);
        // A small request must reuse the small buffer, leaving the large one
        // parked for large requests.
        let s = scratch_f32(8);
        FREE_LIST.with(|fl| {
            assert!(fl.borrow().iter().any(|b| b.capacity() >= 1000));
        });
        drop(s);
        FREE_LIST.with(|fl| fl.borrow_mut().clear());
    }

    #[test]
    fn nested_acquisitions_are_distinct() {
        let mut a = scratch_f32(8);
        let mut b = scratch_f32(8);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }
}
