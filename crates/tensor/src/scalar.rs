//! The [`Scalar`] trait abstracts the two data types the paper evaluates:
//! `float` (f32, pruned 1:2) and `bfloat16` (pruned 2:4).
//!
//! Kernels are generic over `Scalar` and always accumulate in `f32`, matching
//! the paper's tensor-core configuration ("we accumulate the partial sum as
//! float regardless of the source operand data type", Appendix A.1.2).

use crate::bf16::{tf32_round, Bf16};

/// Element type usable in matrices and kernels.
///
/// `to_acc`/`from_acc` convert to and from the `f32` accumulator domain.
/// `to_mul` applies the *input* rounding of the simulated tensor core:
/// identity narrowing for `Bf16`, TF32 rounding for `f32`.
pub trait Scalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + Default + 'static {
    /// Human-readable dtype name, matching the paper's tables ("float",
    /// "bfloat16").
    const NAME: &'static str;
    /// Storage size in bytes, used by the memory-traffic model.
    const BYTES: usize;
    /// The N of the hardware-supported N:M pattern for this dtype
    /// (1 for float/1:2, 2 for bfloat16/2:4).
    const NM_N: usize;
    /// The M of the hardware-supported N:M pattern for this dtype.
    const NM_M: usize;

    fn from_f32(x: f32) -> Self;
    fn to_f32(self) -> f32;

    /// Widen into the accumulator domain.
    #[inline]
    fn to_acc(self) -> f32 {
        self.to_f32()
    }

    /// Narrow from the accumulator domain (output rounding).
    #[inline]
    fn from_acc(x: f32) -> Self {
        Self::from_f32(x)
    }

    /// Tensor-core input rounding applied before each multiply.
    fn to_mul(self) -> f32;

    fn zero() -> Self {
        Self::from_f32(0.0)
    }

    fn neg_infinity() -> Self {
        Self::from_f32(f32::NEG_INFINITY)
    }
}

impl Scalar for f32 {
    const NAME: &'static str = "float";
    const BYTES: usize = 4;
    const NM_N: usize = 1;
    const NM_M: usize = 2;

    #[inline]
    fn from_f32(x: f32) -> f32 {
        x
    }

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    #[inline]
    fn to_mul(self) -> f32 {
        tf32_round(self)
    }
}

impl Scalar for Bf16 {
    const NAME: &'static str = "bfloat16";
    const BYTES: usize = 2;
    const NM_N: usize = 2;
    const NM_M: usize = 4;

    #[inline]
    fn from_f32(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    #[inline]
    fn to_f32(self) -> f32 {
        Bf16::to_f32(self)
    }

    #[inline]
    fn to_mul(self) -> f32 {
        self.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_constants_match_paper() {
        // float → 1:2, bfloat16 → 2:4 (paper §2.3 / Figure 1).
        assert_eq!(f32::NM_N, 1);
        assert_eq!(f32::NM_M, 2);
        assert_eq!(Bf16::NM_N, 2);
        assert_eq!(Bf16::NM_M, 4);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(Bf16::BYTES, 2);
    }

    #[test]
    fn mul_rounding_contract() {
        // f32 multiplies see TF32-rounded inputs.
        let x = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(Scalar::to_mul(x), 1.0);
        // bf16 multiplies see the exact widened value.
        let b = Bf16::from_f32(1.5);
        assert_eq!(b.to_mul(), 1.5);
    }

    #[test]
    fn acc_roundtrip() {
        let v = 0.1234f32;
        assert_eq!(f32::from_acc(v.to_acc()), v);
        let b = Bf16::from_f32(0.1234);
        assert_eq!(Bf16::from_acc(b.to_acc()), b);
    }
}
