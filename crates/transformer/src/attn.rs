//! Multi-head attention with a pluggable mechanism and manual backprop.
//!
//! [`AttnKind`] is the drop-in switch of the paper's Figure 3: changing
//! `Full` to `Nm(1:2)` is the entire code change a user makes. The
//! mask-based family (full, Dfss N:M, top-k, fixed, local, BigBird,
//! Longformer, LSH chunks, clusters, Sinkhorn blocks) shares one
//! forward/backward implementation — a binary mask over the score matrix
//! with gradients flowing straight-through the kept entries (pruned entries
//! have zero attention weight, hence zero gradient, which matches what the
//! real sparse kernels compute). Performer, Linformer and Nyströmformer get
//! dedicated differentiable paths.
//!
//! Training runs in f32; at `Precision::Bf16` the projections are rounded
//! through bf16 (inputs) with f32 accumulation, mirroring the tensor-core
//! numerics of the kernels.

use crate::linear::{matmul, Linear};
use crate::param::Param;
use dfss_nmsparse::{BlockedEll, NmPattern};
use dfss_tensor::{math, BatchedMatrix, Bf16, Matrix, Rng};

/// Which attention mechanism a layer uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttnKind {
    /// Dense softmax attention.
    Full,
    /// Dfss: dynamic N:M pruning of the score matrix.
    Nm(NmPattern),
    /// Explicit top-k per row.
    TopK(usize),
    /// Keep the first ⌈s·n⌉ key columns.
    FixedPrefix(f64),
    /// Sliding window of the given width.
    Local(usize),
    /// BigBird-style global + window + random blocks.
    BigBird { block: usize, seed: u64 },
    /// Longformer-style: sliding window + a few global tokens.
    Longformer { window: usize, global_tokens: usize },
    /// Reformer-style LSH bucketing into chunks.
    LshChunks {
        chunk: usize,
        buckets: usize,
        seed: u64,
    },
    /// Routing-style k-means clusters over keys.
    Cluster { clusters: usize, seed: u64 },
    /// Sinkhorn-style block matching.
    SinkhornBlocks { block: usize },
    /// Linformer: learned sequence-length projections E, F of rank `proj`.
    Linformer { proj: usize },
    /// Performer: FAVOR+ positive softmax kernel, `features` random
    /// features.
    Performer { features: usize, seed: u64 },
    /// Nyströmformer with `landmarks` segment-mean landmarks.
    Nystrom { landmarks: usize },
    /// Nyströmformer with Dfss applied to both n-length factors (A.7).
    NystromNm {
        landmarks: usize,
        pattern: NmPattern,
    },
}

impl AttnKind {
    pub fn label(&self) -> String {
        match self {
            AttnKind::Full => "Full".into(),
            AttnKind::Nm(p) => format!("Dfss {p}"),
            AttnKind::TopK(k) => format!("TopK({k})"),
            AttnKind::FixedPrefix(s) => format!("Fixed({s})"),
            AttnKind::Local(w) => format!("Local({w})"),
            AttnKind::BigBird { .. } => "BigBird".into(),
            AttnKind::Longformer { .. } => "Longformer".into(),
            AttnKind::LshChunks { .. } => "Reformer".into(),
            AttnKind::Cluster { .. } => "Routing".into(),
            AttnKind::SinkhornBlocks { .. } => "Sinkhorn".into(),
            AttnKind::Linformer { .. } => "Linformer".into(),
            AttnKind::Performer { .. } => "Performer".into(),
            AttnKind::Nystrom { .. } => "Nystrom".into(),
            AttnKind::NystromNm { pattern, .. } => format!("Nystrom+Dfss {pattern}"),
        }
    }

    fn is_mask_family(&self) -> bool {
        !matches!(
            self,
            AttnKind::Linformer { .. }
                | AttnKind::Performer { .. }
                | AttnKind::Nystrom { .. }
                | AttnKind::NystromNm { .. }
        )
    }
}

/// Round a matrix through bf16 (tensor-core input rounding).
fn round_bf16(x: &mut Matrix<f32>) {
    for v in x.as_mut_slice() {
        *v = Bf16::from_f32(*v).to_f32();
    }
}

/// Rows per work item of the batched multi-head fan-outs.
const HEAD_ROW_CHUNK: usize = 8;

/// One batched "launch": fan out over (head, row-tile) work items across a
/// contiguous [`BatchedMatrix`] head stack, calling `f(head, row,
/// row_slice)` for every row. This is the training stack's analogue of the
/// batched B×H kernels in `dfss-kernels` — all heads' rows feed one
/// parallel dispatch over one backing buffer instead of a serial per-head
/// loop of parallel ops. Per-row work is self-contained, so the result is
/// bit-identical to any per-head schedule.
fn batched_rows(stack: &mut BatchedMatrix<f32>, f: impl Fn(usize, usize, &mut [f32]) + Sync) {
    use rayon::prelude::*;
    let row_len = stack.cols().max(1);
    let rows_per_panel = stack.rows().max(1);
    stack
        .as_mut_slice()
        .par_chunks_mut(row_len * HEAD_ROW_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            for (global_row, row) in (ci * HEAD_ROW_CHUNK..).zip(chunk.chunks_mut(row_len)) {
                f(
                    global_row / rows_per_panel,
                    global_row % rows_per_panel,
                    row,
                );
            }
        });
}

/// Binary group mask: union of index groups, each fully connected.
fn group_mask(n: usize, groups: &[Vec<usize>]) -> Matrix<f32> {
    let mut mask = Matrix::<f32>::zeros(n, n);
    for g in groups {
        for &i in g {
            let row = mask.row_mut(i);
            for &j in g {
                row[j] = 1.0;
            }
        }
    }
    mask
}

/// Build the binary keep-mask for the mask-family mechanisms.
fn build_mask(
    kind: &AttnKind,
    scores: &Matrix<f32>,
    q: &Matrix<f32>,
    k: &Matrix<f32>,
) -> Matrix<f32> {
    let n = scores.rows();
    match *kind {
        AttnKind::Full => Matrix::from_fn(n, n, |_, _| 1.0),
        AttnKind::Nm(p) => p.mask_matrix(scores),
        AttnKind::TopK(kk) => {
            let mut mask = Matrix::<f32>::zeros(n, n);
            let mut order: Vec<usize> = Vec::new();
            for r in 0..n {
                order.clear();
                order.extend(0..n);
                let row = scores.row(r);
                order.sort_by(|&a, &b| {
                    row[b]
                        .partial_cmp(&row[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mrow = mask.row_mut(r);
                for &c in order.iter().take(kk.min(n)) {
                    mrow[c] = 1.0;
                }
            }
            mask
        }
        AttnKind::FixedPrefix(s) => {
            let keep = ((n as f64 * s).ceil() as usize).clamp(1, n);
            Matrix::from_fn(n, n, |_, c| if c < keep { 1.0 } else { 0.0 })
        }
        AttnKind::Local(w) => {
            let w = w.min(n);
            Matrix::from_fn(n, n, |r, c| {
                let lo = r.saturating_sub(w / 2).min(n - w);
                if c >= lo && c < lo + w {
                    1.0
                } else {
                    0.0
                }
            })
        }
        AttnKind::BigBird { block, seed } => {
            let block = block.min(n).max(1);
            let n_round = n - n % block;
            if n_round == 0 {
                return Matrix::from_fn(n, n, |_, _| 1.0);
            }
            let mut rng = Rng::new(seed);
            let ell = BlockedEll::bigbird(n_round, n_round, block, 1, 3, 2, &mut rng);
            let sub = ell.to_mask();
            Matrix::from_fn(n, n, |r, c| {
                if r < n_round && c < n_round {
                    sub.get(r, c)
                } else {
                    1.0 // ragged tail rows/cols attend globally
                }
            })
        }
        AttnKind::Longformer {
            window,
            global_tokens,
        } => {
            let w = window.min(n);
            Matrix::from_fn(n, n, |r, c| {
                let lo = r.saturating_sub(w / 2).min(n - w);
                let local = c >= lo && c < lo + w;
                let global = r < global_tokens || c < global_tokens;
                if local || global {
                    1.0
                } else {
                    0.0
                }
            })
        }
        AttnKind::LshChunks {
            chunk,
            buckets,
            seed,
        } => {
            let b = buckets.max(2);
            let d = q.cols();
            let mut rng = Rng::new(seed);
            let rmat = Matrix::<f32>::random_normal(b / 2, d, 0.0, 1.0, &mut rng);
            let mut order: Vec<(usize, usize)> = (0..n)
                .map(|i| {
                    let mut best = (0usize, f32::NEG_INFINITY);
                    for h in 0..b / 2 {
                        let p: f32 = q.row(i).iter().zip(rmat.row(h)).map(|(a, b)| a * b).sum();
                        if p > best.1 {
                            best = (h, p);
                        }
                        if -p > best.1 {
                            best = (h + b / 2, -p);
                        }
                    }
                    (best.0, i)
                })
                .collect();
            order.sort_unstable();
            let sorted: Vec<usize> = order.into_iter().map(|(_, i)| i).collect();
            let c = chunk.min(n).max(1);
            let mut groups = Vec::new();
            for ci in 0..n.div_ceil(c) {
                let lo = ci * c;
                let hi = (lo + c).min(n);
                let mut g = sorted[lo..hi].to_vec();
                if ci > 0 {
                    g.extend_from_slice(&sorted[(ci - 1) * c..lo]);
                }
                groups.push(g);
            }
            group_mask(n, &groups)
        }
        AttnKind::Cluster { clusters, seed } => {
            let c = clusters.min(n).max(1);
            let d = k.cols();
            let mut rng = Rng::new(seed);
            let mut centroids = k.gather_rows(&rng.sample_indices(n, c));
            let mut assign = vec![0usize; n];
            for _ in 0..3 {
                for i in 0..n {
                    let mut best = (0usize, f32::NEG_INFINITY);
                    for j in 0..c {
                        let dot: f32 = k
                            .row(i)
                            .iter()
                            .zip(centroids.row(j))
                            .map(|(a, b)| a * b)
                            .sum();
                        if dot > best.1 {
                            best = (j, dot);
                        }
                    }
                    assign[i] = best.0;
                }
                let mut sums = Matrix::<f32>::zeros(c, d);
                let mut counts = vec![0usize; c];
                for i in 0..n {
                    counts[assign[i]] += 1;
                    let srow = sums.row_mut(assign[i]);
                    for (s, &x) in srow.iter_mut().zip(k.row(i)) {
                        *s += x;
                    }
                }
                for j in 0..c {
                    if counts[j] > 0 {
                        sums.row_mut(j)
                            .iter_mut()
                            .for_each(|x| *x /= counts[j] as f32);
                    }
                }
                centroids = sums;
            }
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); c];
            for (i, &a) in assign.iter().enumerate() {
                groups[a].push(i);
            }
            group_mask(n, &groups)
        }
        AttnKind::SinkhornBlocks { block } => {
            let b = block.min(n).max(1);
            let nb = n / b;
            if nb <= 1 {
                return Matrix::from_fn(n, n, |_, _| 1.0);
            }
            // Match block i with the block whose mean key is most similar to
            // its mean query (greedy, bijective).
            let d = q.cols();
            let mut qb = Matrix::<f32>::zeros(nb, d);
            let mut kb = Matrix::<f32>::zeros(nb, d);
            for bi in 0..nb {
                for i in bi * b..(bi + 1) * b {
                    for (o, &x) in qb.row_mut(bi).iter_mut().zip(q.row(i)) {
                        *o += x / b as f32;
                    }
                    for (o, &x) in kb.row_mut(bi).iter_mut().zip(k.row(i)) {
                        *o += x / b as f32;
                    }
                }
            }
            let mut entries: Vec<(f32, usize, usize)> = Vec::new();
            for r in 0..nb {
                for c in 0..nb {
                    let dot: f32 = qb.row(r).iter().zip(kb.row(c)).map(|(a, b)| a * b).sum();
                    entries.push((dot, r, c));
                }
            }
            entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut matched = vec![usize::MAX; nb];
            let mut used = vec![false; nb];
            for (_, r, c) in entries {
                if matched[r] == usize::MAX && !used[c] {
                    matched[r] = c;
                    used[c] = true;
                }
            }
            let mut mask = Matrix::<f32>::zeros(n, n);
            for r in 0..n {
                let rb = (r / b).min(nb - 1);
                let row = mask.row_mut(r);
                for c in rb * b..((rb + 1) * b).min(n) {
                    row[c] = 1.0;
                }
                let mb = matched[rb.min(nb - 1)];
                for c in mb * b..((mb + 1) * b).min(n) {
                    row[c] = 1.0;
                }
                // Ragged tail columns always visible.
                for c in nb * b..n {
                    row[c] = 1.0;
                }
            }
            // Ragged tail rows attend to everything.
            for r in nb * b..n {
                mask.row_mut(r).iter_mut().for_each(|x| *x = 1.0);
            }
            mask
        }
        _ => unreachable!("not a mask-family kind"),
    }
}

/// Per-head cache of the mask-family path.
struct MaskCache {
    q: Matrix<f32>,
    k: Matrix<f32>,
    v: Matrix<f32>,
    a: Matrix<f32>,
}

/// Per-head cache of the Performer path.
struct PerformerCache {
    x_q: Matrix<f32>,
    x_k: Matrix<f32>,
    v: Matrix<f32>,
    phi_q: Matrix<f32>,
    phi_k: Matrix<f32>,
    t7: Vec<f32>,
    b: Matrix<f32>,
    u: Matrix<f32>,
    inv: Vec<f32>,
}

/// Per-head cache of the Nyström path.
struct NystromCache {
    q: Matrix<f32>,
    k: Matrix<f32>,
    v: Matrix<f32>,
    f1: Matrix<f32>,
    f3: Matrix<f32>,
    z: Matrix<f32>,
    m2: Matrix<f32>,
    seg_len: Vec<usize>,
}

/// Per-head cache of the Linformer path.
struct LinformerCache {
    q: Matrix<f32>,
    k: Matrix<f32>,
    v: Matrix<f32>,
    kp: Matrix<f32>,
    vp: Matrix<f32>,
    a: Matrix<f32>,
}

enum HeadCache {
    Mask(MaskCache),
    Performer(PerformerCache),
    Nystrom(NystromCache),
    Linformer(LinformerCache),
}

/// Multi-head attention block.
pub struct MultiHeadAttention {
    pub kind: AttnKind,
    pub heads: usize,
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    /// Linformer sequence projections (`proj × max_len`), shared across
    /// heads.
    pub e_proj: Option<Param>,
    pub f_proj: Option<Param>,
    /// Fixed Performer feature matrix per head-dim (non-trainable).
    performer_w: Option<Matrix<f32>>,
    head_caches: Vec<HeadCache>,
    cache_x: Option<Matrix<f32>>,
}

impl MultiHeadAttention {
    pub fn new(
        kind: AttnKind,
        d_model: usize,
        heads: usize,
        max_len: usize,
        rng: &mut Rng,
    ) -> MultiHeadAttention {
        assert_eq!(d_model % heads, 0, "d_model must divide into heads");
        let (e_proj, f_proj) = if let AttnKind::Linformer { proj } = kind {
            let sigma = 1.0 / (max_len as f32).sqrt();
            (
                Some(Param::randn(proj, max_len, sigma, rng)),
                Some(Param::randn(proj, max_len, sigma, rng)),
            )
        } else {
            (None, None)
        };
        let performer_w = if let AttnKind::Performer { features, seed } = kind {
            let dh = d_model / heads;
            let mut prng = Rng::new(seed);
            Some(crate::attn::orthogonal_features(features, dh, &mut prng))
        } else {
            None
        };
        MultiHeadAttention {
            kind,
            heads,
            wq: Linear::new(d_model, d_model, rng),
            wk: Linear::new(d_model, d_model, rng),
            wv: Linear::new(d_model, d_model, rng),
            wo: Linear::new(d_model, d_model, rng),
            e_proj,
            f_proj,
            performer_w,
            head_caches: Vec::new(),
            cache_x: None,
        }
    }

    fn split_head(&self, x: &Matrix<f32>, h: usize) -> Matrix<f32> {
        let dh = x.cols() / self.heads;
        Matrix::from_fn(x.rows(), dh, |r, c| x.get(r, h * dh + c))
    }

    /// Forward pass. `bf16` rounds Q/K/V through bf16 first (the 2:4 eval
    /// configuration).
    pub fn forward(&mut self, x: &Matrix<f32>, train: bool, bf16: bool) -> Matrix<f32> {
        let n = x.rows();
        let d_model = x.cols();
        let dh = d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let mut q = self.wq.forward(x, train);
        let mut k = self.wk.forward(x, train);
        let mut v = self.wv.forward(x, train);
        if bf16 {
            round_bf16(&mut q);
            round_bf16(&mut k);
            round_bf16(&mut v);
        }

        self.head_caches.clear();
        let mut concat = Matrix::<f32>::zeros(n, d_model);
        if self.kind.is_mask_family() {
            // The whole mask family shares the batched multi-head path: all
            // heads run through one fan-out per op (QKᵀ, mask+softmax, AV)
            // over contiguous head stacks instead of a per-head loop.
            let (outs, caches) = self.mask_family_forward_batched(&q, &k, &v, scale, n, dh);
            concat = outs.merge_heads();
            if train {
                self.head_caches = caches;
            }
        } else {
            for h in 0..self.heads {
                let qh = self.split_head(&q, h);
                let kh = self.split_head(&k, h);
                let vh = self.split_head(&v, h);
                let (oh, cache) = self.head_forward(&qh, &kh, &vh, scale, n);
                for r in 0..n {
                    let crow = concat.row_mut(r);
                    for c in 0..dh {
                        crow[h * dh + c] = oh.get(r, c);
                    }
                }
                if train {
                    self.head_caches.push(cache);
                }
            }
        }
        if train {
            self.cache_x = Some(x.clone());
        }
        self.wo.forward(&concat, train)
    }

    /// Batched mask-family forward on the shared [`BatchedMatrix`] head
    /// stacks (the same containers the inference engine's batched kernels
    /// consume): head panels are packed once via `split_heads`, then the
    /// three ops each run as **one launch across every head** — a single
    /// (head, row-tile) fan-out over one contiguous buffer for the scaled
    /// QKᵀ scores, one for the mask + softmax pass, and one for the AV
    /// product. Mask construction stays per head between launches
    /// (host-side metadata, like the paper's overhead stage). Numerically
    /// identical to the per-head loop (same per-element operations in the
    /// same order).
    fn mask_family_forward_batched(
        &self,
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        scale: f32,
        n: usize,
        dh: usize,
    ) -> (BatchedMatrix<f32>, Vec<HeadCache>) {
        let heads = self.heads;
        let qh = BatchedMatrix::split_heads(q, heads);
        let kh = BatchedMatrix::split_heads(k, heads);
        let vh = BatchedMatrix::split_heads(v, heads);
        let kt_panels: Vec<Matrix<f32>> = (0..heads).map(|h| kh.to_panel(h).transpose()).collect();
        let kt = BatchedMatrix::gather(&kt_panels.iter().collect::<Vec<_>>());

        // Launch 1: scaled scores for every (head, row).
        let mut scores = BatchedMatrix::<f32>::zeros(heads, n, n);
        batched_rows(&mut scores, |h, i, orow| {
            for (kk, &av) in qh.row(h, i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in orow.iter_mut().zip(kt.row(h, kk)) {
                    *o += av * bv;
                }
            }
            orow.iter_mut().for_each(|x| *x *= scale);
        });

        // Host-side mask metadata per head (unpacked panel views — mask
        // builders are per-head score/Q/K consumers).
        let q_panels: Vec<Matrix<f32>> = (0..heads).map(|h| qh.to_panel(h)).collect();
        let k_panels: Vec<Matrix<f32>> = (0..heads).map(|h| kh.to_panel(h)).collect();
        let masks: Vec<Matrix<f32>> = (0..heads)
            .map(|h| build_mask(&self.kind, &scores.to_panel(h), &q_panels[h], &k_panels[h]))
            .collect();

        // Launch 2: mask + softmax for every (head, row).
        batched_rows(&mut scores, |h, i, row| {
            let mrow = &masks[h].row(i)[..row.len()];
            for (x, &m) in row.iter_mut().zip(mrow) {
                if m == 0.0 {
                    *x = f32::NEG_INFINITY;
                }
            }
            math::softmax_row(row);
        });

        // Launch 3: AV for every (head, row).
        let mut outs = BatchedMatrix::<f32>::zeros(heads, n, dh);
        batched_rows(&mut outs, |h, i, orow| {
            for (kk, &av) in scores.row(h, i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in orow.iter_mut().zip(vh.row(h, kk)) {
                    *o += av * bv;
                }
            }
        });

        // Scatter the stacks back into the per-head backward caches.
        let caches: Vec<HeadCache> = q_panels
            .into_iter()
            .zip(k_panels)
            .zip(vh.into_panels())
            .zip(scores.into_panels())
            .map(|(((q, k), v), a)| HeadCache::Mask(MaskCache { q, k, v, a }))
            .collect();
        (outs, caches)
    }

    fn head_forward(
        &self,
        qh: &Matrix<f32>,
        kh: &Matrix<f32>,
        vh: &Matrix<f32>,
        scale: f32,
        n: usize,
    ) -> (Matrix<f32>, HeadCache) {
        match self.kind {
            AttnKind::Performer { .. } => {
                let w = self.performer_w.as_ref().expect("performer features");
                let dh = qh.cols();
                let phi_q = favor_features(qh, w, dh);
                let phi_k = favor_features(kh, w, dh);
                let b = matmul(&phi_k.transpose(), vh);
                let mut t7 = vec![0.0f32; w.rows()];
                for r in 0..n {
                    for (acc, &x) in t7.iter_mut().zip(phi_k.row(r)) {
                        *acc += x;
                    }
                }
                let u = matmul(&phi_q, &b);
                let mut inv = vec![0.0f32; n];
                let mut out = Matrix::<f32>::zeros(n, vh.cols());
                for i in 0..n {
                    let denom: f32 = phi_q.row(i).iter().zip(&t7).map(|(a, b)| a * b).sum();
                    inv[i] = 1.0 / denom.max(1e-9);
                    let orow = out.row_mut(i);
                    for (o, &x) in orow.iter_mut().zip(u.row(i)) {
                        *o = x * inv[i];
                    }
                }
                (
                    out,
                    HeadCache::Performer(PerformerCache {
                        x_q: qh.clone(),
                        x_k: kh.clone(),
                        v: vh.clone(),
                        phi_q,
                        phi_k,
                        t7,
                        b,
                        u,
                        inv,
                    }),
                )
            }
            AttnKind::Nystrom { landmarks } | AttnKind::NystromNm { landmarks, .. } => {
                let m = landmarks.min(n);
                let (q_l, seg_len) = segment_means(qh, m);
                let (k_l, _) = segment_means(kh, m);
                let nm_pattern = if let AttnKind::NystromNm { pattern, .. } = self.kind {
                    Some(pattern)
                } else {
                    None
                };
                let f1 = masked_softmax_scaled(&matmul(qh, &k_l.transpose()), scale, nm_pattern);
                let f3 = masked_softmax_scaled(&matmul(&q_l, &kh.transpose()), scale, nm_pattern);
                let a_ss = masked_softmax_scaled(&matmul(&q_l, &k_l.transpose()), scale, None);
                let z = iterative_pinv(&a_ss, 6);
                let m1 = matmul(&f3, vh);
                let m2 = matmul(&z, &m1);
                let out = matmul(&f1, &m2);
                (
                    out,
                    HeadCache::Nystrom(NystromCache {
                        q: qh.clone(),
                        k: kh.clone(),
                        v: vh.clone(),
                        f1,
                        f3,
                        z,
                        m2,
                        seg_len,
                    }),
                )
            }
            AttnKind::Linformer { .. } => {
                let e = self.e_proj.as_ref().expect("linformer E");
                let f = self.f_proj.as_ref().expect("linformer F");
                // Slice projections to the current sequence length.
                let e_n = Matrix::from_fn(e.w.rows(), n, |r, c| e.w.get(r, c));
                let f_n = Matrix::from_fn(f.w.rows(), n, |r, c| f.w.get(r, c));
                let kp = matmul(&e_n, kh);
                let vp = matmul(&f_n, vh);
                let mut s = matmul(qh, &kp.transpose());
                for r in 0..n {
                    let row = s.row_mut(r);
                    row.iter_mut().for_each(|x| *x *= scale);
                    math::softmax_row(row);
                }
                let out = matmul(&s, &vp);
                (
                    out,
                    HeadCache::Linformer(LinformerCache {
                        q: qh.clone(),
                        k: kh.clone(),
                        v: vh.clone(),
                        kp,
                        vp,
                        a: s,
                    }),
                )
            }
            _ => {
                debug_assert!(self.kind.is_mask_family());
                let mut s = matmul(qh, &kh.transpose());
                s.scale(scale);
                let mask = build_mask(&self.kind, &s, qh, kh);
                for r in 0..n {
                    let row = s.row_mut(r);
                    for (c, x) in row.iter_mut().enumerate() {
                        if mask.get(r, c) == 0.0 {
                            *x = f32::NEG_INFINITY;
                        }
                    }
                    math::softmax_row(row);
                }
                let out = matmul(&s, vh);
                (
                    out,
                    HeadCache::Mask(MaskCache {
                        q: qh.clone(),
                        k: kh.clone(),
                        v: vh.clone(),
                        a: s,
                    }),
                )
            }
        }
    }

    /// Attention weight matrices of the last `forward(train=true)` call,
    /// one per head (mask-family mechanisms only). Used by the quality and
    /// visualisation experiments (Figures 12, 13, 19).
    pub fn last_attention_maps(&self) -> Vec<&Matrix<f32>> {
        self.head_caches
            .iter()
            .filter_map(|c| match c {
                HeadCache::Mask(m) => Some(&m.a),
                _ => None,
            })
            .collect()
    }

    /// Backward pass; returns dx.
    pub fn backward(&mut self, dy: &Matrix<f32>) -> Matrix<f32> {
        let dconcat = self.wo.backward(dy);
        let x = self.cache_x.take().expect("MHA::backward without forward");
        let n = x.rows();
        let d_model = x.cols();
        let dh = d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let mut dq = Matrix::<f32>::zeros(n, d_model);
        let mut dk = Matrix::<f32>::zeros(n, d_model);
        let mut dv = Matrix::<f32>::zeros(n, d_model);

        let caches = std::mem::take(&mut self.head_caches);
        for (h, cache) in caches.into_iter().enumerate() {
            let doh = Matrix::from_fn(n, dh, |r, c| dconcat.get(r, h * dh + c));
            let (dqh, dkh, dvh) = self.head_backward(cache, &doh, scale);
            for r in 0..n {
                for c in 0..dh {
                    dq.set(r, h * dh + c, dqh.get(r, c));
                    dk.set(r, h * dh + c, dkh.get(r, c));
                    dv.set(r, h * dh + c, dvh.get(r, c));
                }
            }
        }

        let dx_q = self.wq.backward(&dq);
        let dx_k = self.wk.backward(&dk);
        let dx_v = self.wv.backward(&dv);
        let mut dx = dx_q;
        dx.axpy(1.0, &dx_k);
        dx.axpy(1.0, &dx_v);
        dx
    }

    fn head_backward(
        &mut self,
        cache: HeadCache,
        doh: &Matrix<f32>,
        scale: f32,
    ) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        match cache {
            HeadCache::Mask(c) => {
                let da = matmul(doh, &c.v.transpose());
                let dvh = matmul(&c.a.transpose(), doh);
                let ds = softmax_backward(&c.a, &da);
                let mut dqh = matmul(&ds, &c.k);
                dqh.scale(scale);
                let mut dkh = matmul(&ds.transpose(), &c.q);
                dkh.scale(scale);
                (dqh, dkh, dvh)
            }
            HeadCache::Performer(c) => {
                let n = doh.rows();
                let m = c.t7.len();
                // O_i = U_i · inv_i.
                let mut du = Matrix::<f32>::zeros(n, c.u.cols());
                let mut ddenom = vec![0.0f32; n];
                for i in 0..n {
                    let d_inv: f32 = doh.row(i).iter().zip(c.u.row(i)).map(|(a, b)| a * b).sum();
                    ddenom[i] = -c.inv[i] * c.inv[i] * d_inv;
                    let durow = du.row_mut(i);
                    for (o, &g) in durow.iter_mut().zip(doh.row(i)) {
                        *o = g * c.inv[i];
                    }
                }
                // U = φQ·B.
                let mut dphi_q = matmul(&du, &c.b.transpose());
                let db = matmul(&c.phi_q.transpose(), &du);
                // denom_i = φQ_i · t7.
                for i in 0..n {
                    let row = dphi_q.row_mut(i);
                    for (g, &t) in row.iter_mut().zip(&c.t7) {
                        *g += ddenom[i] * t;
                    }
                }
                // t7 = Σ_r φK_r ; B = φKᵀ·V.
                let mut dt7 = vec![0.0f32; m];
                for i in 0..n {
                    for (acc, &pq) in dt7.iter_mut().zip(c.phi_q.row(i)) {
                        *acc += ddenom[i] * pq;
                    }
                }
                let mut dphi_k = matmul(&c.v, &db.transpose());
                for r in 0..n {
                    let row = dphi_k.row_mut(r);
                    for (g, &t) in row.iter_mut().zip(&dt7) {
                        *g += t;
                    }
                }
                let dvh = matmul(&c.phi_k, &db);
                // Back through φ(x) = exp(x·Wᵀ/d^¼ − ‖x‖²/(2√d) − stab)/√m.
                let w = self.performer_w.as_ref().expect("performer features");
                let dh_dim = c.x_q.cols();
                let dqh = favor_backward(&c.x_q, &c.phi_q, &dphi_q, w, dh_dim);
                let dkh = favor_backward(&c.x_k, &c.phi_k, &dphi_k, w, dh_dim);
                (dqh, dkh, dvh)
            }
            HeadCache::Nystrom(c) => {
                // out = F1·M2, M2 = Z·M1, M1 = F3·V; Z is stop-grad.
                let df1 = matmul(doh, &c.m2.transpose());
                let dm2 = matmul(&c.f1.transpose(), doh);
                let dm1 = matmul(&c.z.transpose(), &dm2);
                let df3 = matmul(&dm1, &c.v.transpose());
                let mut dvh = matmul(&c.f3.transpose(), &dm1);
                // F1 = softmax(Q·K̃ᵀ·scale).
                let ds1 = softmax_backward(&c.f1, &df1);
                let (q_l, _) = segment_means(&c.q, c.seg_len.len());
                let (k_l, _) = segment_means(&c.k, c.seg_len.len());
                let mut dqh = matmul(&ds1, &k_l);
                dqh.scale(scale);
                let mut dk_l = matmul(&ds1.transpose(), &c.q);
                dk_l.scale(scale);
                // F3 = softmax(Q̃·Kᵀ·scale).
                let ds3 = softmax_backward(&c.f3, &df3);
                let mut dq_l = matmul(&ds3, &c.k);
                dq_l.scale(scale);
                let mut dkh = matmul(&ds3.transpose(), &q_l);
                dkh.scale(scale);
                // Segment-mean backward: spread landmark grads uniformly.
                scatter_segment_grad(&mut dqh, &dq_l, &c.seg_len);
                scatter_segment_grad(&mut dkh, &dk_l, &c.seg_len);
                let _ = &mut dvh;
                (dqh, dkh, dvh)
            }
            HeadCache::Linformer(c) => {
                let n = c.q.rows();
                let da = matmul(doh, &c.vp.transpose());
                let dvp = matmul(&c.a.transpose(), doh);
                let ds = softmax_backward(&c.a, &da);
                let mut dqh = matmul(&ds, &c.kp);
                dqh.scale(scale);
                let mut dkp = matmul(&ds.transpose(), &c.q);
                dkp.scale(scale);
                // kp = E_n·K, vp = F_n·V.
                let e = self.e_proj.as_mut().expect("linformer E");
                let de_n = matmul(&dkp, &c.k.transpose());
                for r in 0..de_n.rows() {
                    let grow = e.g.row_mut(r);
                    for (cidx, &g) in de_n.row(r).iter().enumerate() {
                        grow[cidx] += g;
                    }
                }
                let e_n = Matrix::from_fn(e.w.rows(), n, |r, cidx| e.w.get(r, cidx));
                let dkh = matmul(&e_n.transpose(), &dkp);
                let f = self.f_proj.as_mut().expect("linformer F");
                let df_n = matmul(&dvp, &c.v.transpose());
                for r in 0..df_n.rows() {
                    let grow = f.g.row_mut(r);
                    for (cidx, &g) in df_n.row(r).iter().enumerate() {
                        grow[cidx] += g;
                    }
                }
                let f_n = Matrix::from_fn(f.w.rows(), n, |r, cidx| f.w.get(r, cidx));
                let dvh = matmul(&f_n.transpose(), &dvp);
                (dqh, dkh, dvh)
            }
        }
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut ps = Vec::new();
        ps.extend(self.wq.params());
        ps.extend(self.wk.params());
        ps.extend(self.wv.params());
        ps.extend(self.wo.params());
        if let Some(e) = self.e_proj.as_mut() {
            ps.push(e);
        }
        if let Some(f) = self.f_proj.as_mut() {
            ps.push(f);
        }
        ps
    }
}

/// Softmax backward: `dS = A ⊙ (dA − rowsum(dA ⊙ A))`.
pub fn softmax_backward(a: &Matrix<f32>, da: &Matrix<f32>) -> Matrix<f32> {
    let (n, c) = a.shape();
    let mut ds = Matrix::<f32>::zeros(n, c);
    for r in 0..n {
        let dot: f32 = a.row(r).iter().zip(da.row(r)).map(|(x, y)| x * y).sum();
        let drow = ds.row_mut(r);
        for ((o, &av), &dav) in drow.iter_mut().zip(a.row(r)).zip(da.row(r)) {
            *o = av * (dav - dot);
        }
    }
    ds
}

/// Segment means returning the segment lengths (for backward).
fn segment_means(x: &Matrix<f32>, m: usize) -> (Matrix<f32>, Vec<usize>) {
    let (n, d) = x.shape();
    let m = m.min(n);
    let base = n / m;
    let rem = n % m;
    let mut out = Matrix::<f32>::zeros(m, d);
    let mut lens = Vec::with_capacity(m);
    let mut row = 0usize;
    for s in 0..m {
        let len = base + usize::from(s < rem);
        lens.push(len);
        let orow = out.row_mut(s);
        for r in row..row + len {
            for (o, &v) in orow.iter_mut().zip(x.row(r)) {
                *o += v;
            }
        }
        orow.iter_mut().for_each(|v| *v /= len as f32);
        row += len;
    }
    (out, lens)
}

/// Backward of segment means: each row in segment s receives `g_s / len_s`.
fn scatter_segment_grad(dx: &mut Matrix<f32>, dseg: &Matrix<f32>, lens: &[usize]) {
    let mut row = 0usize;
    for (s, &len) in lens.iter().enumerate() {
        for r in row..row + len {
            let drow = dx.row_mut(r);
            for (o, &g) in drow.iter_mut().zip(dseg.row(s)) {
                *o += g / len as f32;
            }
        }
        row += len;
    }
}

/// Softmax with scaling, optionally N:M-masked (for Nyström+Dfss).
fn masked_softmax_scaled(s: &Matrix<f32>, scale: f32, pattern: Option<NmPattern>) -> Matrix<f32> {
    let mut out = s.clone();
    out.scale(scale);
    if let Some(p) = pattern {
        if out.cols().is_multiple_of(p.m()) {
            let mask = p.mask_matrix(&out);
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                for (c, x) in row.iter_mut().enumerate() {
                    if mask.get(r, c) == 0.0 {
                        *x = f32::NEG_INFINITY;
                    }
                }
            }
        }
    }
    for r in 0..out.rows() {
        math::softmax_row(out.row_mut(r));
    }
    out
}

/// FAVOR+ feature map (training variant, f32).
fn favor_features(x: &Matrix<f32>, w: &Matrix<f32>, d: usize) -> Matrix<f32> {
    let m = w.rows();
    let quarter = (d as f32).sqrt().sqrt();
    let proj = matmul(x, &w.transpose());
    let stab = proj
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
        / quarter;
    let inv_sqrt_m = 1.0 / (m as f32).sqrt();
    Matrix::from_fn(x.rows(), m, |i, j| {
        let sq: f32 = x.row(i).iter().map(|a| a * a).sum::<f32>() / (2.0 * (d as f32).sqrt());
        ((proj.get(i, j) / quarter - sq - stab + 1e-6).exp()) * inv_sqrt_m
    })
}

/// Backward through the FAVOR+ feature map (stabiliser treated as constant).
fn favor_backward(
    x: &Matrix<f32>,
    phi: &Matrix<f32>,
    dphi: &Matrix<f32>,
    w: &Matrix<f32>,
    d: usize,
) -> Matrix<f32> {
    let quarter = (d as f32).sqrt().sqrt();
    // dproj_ij = dphi_ij · phi_ij (through exp), scaled by 1/d^¼ on x.
    let dproj = Matrix::from_fn(phi.rows(), phi.cols(), |i, j| {
        dphi.get(i, j) * phi.get(i, j)
    });
    let mut dx = matmul(&dproj, w);
    dx.scale(1.0 / quarter);
    // sq_i = ‖x_i‖²/(2√d): dsq_i = −Σ_j dphi_ij φ_ij; dx_i += dsq_i · x_i/√d.
    for i in 0..x.rows() {
        let dsq: f32 = -dproj.row(i).iter().sum::<f32>();
        let drow = dx.row_mut(i);
        for (o, &xv) in drow.iter_mut().zip(x.row(i)) {
            *o += dsq * xv / (d as f32).sqrt();
        }
    }
    dx
}

/// Orthogonal random features (shared with the inference implementation in
/// dfss-core; duplicated here to keep the training stack self-contained).
pub fn orthogonal_features(m: usize, d: usize, rng: &mut Rng) -> Matrix<f32> {
    let mut w = Matrix::<f32>::zeros(m, d);
    let mut done = 0usize;
    while done < m {
        let rows = d.min(m - done);
        let mut block: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..d).map(|_| rng.normal(0.0, 1.0)).collect())
            .collect();
        for i in 0..rows {
            for j in 0..i {
                let dot: f32 = block[i].iter().zip(&block[j]).map(|(a, b)| a * b).sum();
                let (lo, hi) = block.split_at_mut(i);
                for (a, &b) in hi[0].iter_mut().zip(&lo[j]) {
                    *a -= dot * b;
                }
            }
            let norm: f32 = block[i].iter().map(|a| a * a).sum::<f32>().sqrt();
            block[i].iter_mut().for_each(|a| *a /= norm.max(1e-9));
        }
        for row in block.iter_mut() {
            let chi: f32 = (0..d)
                .map(|_| {
                    let g = rng.normal(0.0, 1.0);
                    g * g
                })
                .sum::<f32>()
                .sqrt();
            row.iter_mut().for_each(|a| *a *= chi);
        }
        for (bi, row) in block.iter().enumerate() {
            w.row_mut(done + bi).copy_from_slice(row);
        }
        done += rows;
    }
    w
}

/// Iterative pseudo-inverse (training copy, stop-grad in backward).
fn iterative_pinv(a: &Matrix<f32>, iters: usize) -> Matrix<f32> {
    let m = a.rows();
    let mut max_row = 0.0f32;
    let mut col_sums = vec![0.0f32; m];
    for r in 0..m {
        let mut s = 0.0f32;
        for (c, &v) in a.row(r).iter().enumerate() {
            s += v.abs();
            col_sums[c] += v.abs();
        }
        max_row = max_row.max(s);
    }
    let max_col = col_sums.iter().copied().fold(0.0, f32::max);
    let mut z = a.transpose();
    z.scale(1.0 / (max_row * max_col).max(1e-9));
    let eye = |alpha: f32| Matrix::<f32>::from_fn(m, m, |r, c| if r == c { alpha } else { 0.0 });
    for _ in 0..iters {
        let az = matmul(a, &z);
        let mut t1 = eye(7.0);
        t1.axpy(-1.0, &az);
        let mut t2 = eye(15.0);
        t2.axpy(-1.0, &matmul(&az, &t1));
        let mut t3 = eye(13.0);
        t3.axpy(-1.0, &matmul(&az, &t2));
        z = matmul(&z, &t3);
        z.scale(0.25);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mha(kind: AttnKind, d: usize, heads: usize, n: usize, seed: u64) -> MultiHeadAttention {
        let mut rng = Rng::new(seed);
        MultiHeadAttention::new(kind, d, heads, n, &mut rng)
    }

    fn loss_of(y: &Matrix<f32>, r: &Matrix<f32>) -> f32 {
        y.as_slice()
            .iter()
            .zip(r.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Finite-difference check of dx for any MHA configuration.
    fn check_dx(kind: AttnKind, n: usize, d: usize, heads: usize, tol: f32) {
        let mut m = mha(kind, d, heads, n, 7);
        let mut rng = Rng::new(11);
        let x = Matrix::random_normal(n, d, 0.0, 0.5, &mut rng);
        let rmat = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let _y = m.forward(&x, true, false);
        let dx = m.backward(&rmat);
        let h = 2e-3;
        // Spot-check a handful of coordinates (full check is O(n·d) forwards).
        for &(r, c) in &[(0usize, 0usize), (1, d - 1), (n - 1, d / 2), (n / 2, 1)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + h);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - h);
            let yp = m.forward(&xp, false, false);
            let ym = m.forward(&xm, false, false);
            let fd = (loss_of(&yp, &rmat) - loss_of(&ym, &rmat)) / (2.0 * h);
            assert!(
                (fd - dx.get(r, c)).abs() < tol * (1.0 + fd.abs()),
                "{kind:?} ({r},{c}): fd {fd} vs analytic {}",
                dx.get(r, c)
            );
        }
    }

    #[test]
    fn full_attention_gradcheck() {
        check_dx(AttnKind::Full, 8, 8, 2, 3e-2);
    }

    #[test]
    fn dfss_1_2_gradcheck() {
        check_dx(AttnKind::Nm(NmPattern::P1_2), 8, 8, 2, 3e-2);
    }

    #[test]
    fn dfss_2_4_gradcheck() {
        check_dx(AttnKind::Nm(NmPattern::P2_4), 8, 8, 2, 3e-2);
    }

    #[test]
    fn local_gradcheck() {
        check_dx(AttnKind::Local(4), 8, 8, 2, 3e-2);
    }

    #[test]
    fn linformer_gradcheck() {
        check_dx(AttnKind::Linformer { proj: 4 }, 8, 8, 2, 3e-2);
    }

    #[test]
    fn performer_gradcheck() {
        check_dx(
            AttnKind::Performer {
                features: 32,
                seed: 5,
            },
            8,
            8,
            2,
            6e-2,
        );
    }

    #[test]
    fn nystrom_runs_forward_backward() {
        // Z is stop-grad, so no exact FD check — but shapes and finiteness
        // must hold and the gradient must be non-trivial.
        let mut m = mha(AttnKind::Nystrom { landmarks: 4 }, 8, 2, 16, 3);
        let mut rng = Rng::new(4);
        let x = Matrix::random_normal(16, 8, 0.0, 0.5, &mut rng);
        let y = m.forward(&x, true, false);
        assert_eq!(y.shape(), (16, 8));
        let dx = m.backward(&Matrix::from_fn(16, 8, |_, _| 1.0));
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
        assert!(dx.frobenius_norm() > 1e-6);
    }

    #[test]
    fn mask_family_masks_have_correct_density() {
        let mut rng = Rng::new(5);
        let s = Matrix::random_normal(16, 16, 0.0, 1.0, &mut rng);
        let q = Matrix::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let m12 = build_mask(&AttnKind::Nm(NmPattern::P1_2), &s, &q, &k);
        assert_eq!(m12.as_slice().iter().filter(|&&x| x == 1.0).count(), 128);
        let mt = build_mask(&AttnKind::TopK(4), &s, &q, &k);
        assert_eq!(mt.as_slice().iter().filter(|&&x| x == 1.0).count(), 64);
        let mf = build_mask(&AttnKind::FixedPrefix(0.25), &s, &q, &k);
        assert_eq!(mf.as_slice().iter().filter(|&&x| x == 1.0).count(), 64);
    }

    #[test]
    fn longformer_mask_includes_global_tokens() {
        let mut rng = Rng::new(6);
        let s = Matrix::random_normal(16, 16, 0.0, 1.0, &mut rng);
        let q = Matrix::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let k = q.clone();
        let m = build_mask(
            &AttnKind::Longformer {
                window: 4,
                global_tokens: 2,
            },
            &s,
            &q,
            &k,
        );
        // Global rows/cols fully on.
        for i in 0..16 {
            assert_eq!(m.get(0, i), 1.0);
            assert_eq!(m.get(i, 1), 1.0);
        }
        // A distant non-global pair is off.
        assert_eq!(m.get(10, 15), 0.0);
    }

    #[test]
    fn group_masks_are_symmetric_blocks() {
        let mask = group_mask(6, &[vec![0, 2], vec![1, 3, 4], vec![5]]);
        assert_eq!(mask.get(0, 2), 1.0);
        assert_eq!(mask.get(2, 0), 1.0);
        assert_eq!(mask.get(1, 4), 1.0);
        assert_eq!(mask.get(0, 1), 0.0);
        assert_eq!(mask.get(5, 5), 1.0);
    }

    #[test]
    fn bf16_forward_runs() {
        let mut m = mha(AttnKind::Nm(NmPattern::P2_4), 8, 2, 16, 8);
        let mut rng = Rng::new(9);
        let x = Matrix::random_normal(16, 8, 0.0, 0.5, &mut rng);
        let y32 = m.forward(&x, false, false);
        let y16 = m.forward(&x, false, true);
        // bf16 rounding perturbs but does not destroy the output.
        let diff = y32.zip_with(&y16, |a, b| a - b);
        let rel = diff.frobenius_norm() / y32.frobenius_norm().max(1e-9);
        assert!(rel < 0.1, "bf16 perturbation too large: {rel}");
        assert!(rel > 0.0, "bf16 should differ from f32");
    }

    #[test]
    fn swapping_kind_is_one_line() {
        // The Figure 3 pitch: same model, one-field change.
        let mut rng = Rng::new(10);
        // Concentrated inputs: with random *untrained* weights the attention
        // rows are near-uniform and pruning half the entries moves the
        // output a lot; scaling the inputs concentrates the softmax like a
        // trained model's attention, which is the regime of the paper's
        // claim.
        let x = Matrix::random_normal(16, 8, 0.0, 2.0, &mut rng);
        let mut dense = mha(AttnKind::Full, 8, 2, 16, 42);
        let mut sparse = mha(AttnKind::Full, 8, 2, 16, 42);
        sparse.kind = AttnKind::Nm(NmPattern::P1_2); // the one-line change
        let yd = dense.forward(&x, false, false);
        let ys = sparse.forward(&x, false, false);
        // Same weights (same seed) → outputs close but not identical.
        let rel = yd.zip_with(&ys, |a, b| a - b).frobenius_norm() / yd.frobenius_norm();
        assert!(rel < 1.0, "Dfss should approximate dense: {rel}");
        assert!(rel > 0.0);
    }
}
