//! Trainable parameters with Adam state.

use dfss_tensor::{Matrix, Rng};

/// One trainable matrix with its gradient accumulator and Adam moments.
#[derive(Clone, Debug)]
pub struct Param {
    pub w: Matrix<f32>,
    pub g: Matrix<f32>,
    m: Matrix<f32>,
    v: Matrix<f32>,
}

impl Param {
    /// Gaussian initialisation with std `sigma`.
    pub fn randn(rows: usize, cols: usize, sigma: f32, rng: &mut Rng) -> Param {
        Param {
            w: Matrix::random_normal(rows, cols, 0.0, sigma, rng),
            g: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// Zero initialisation (biases, LayerNorm beta).
    pub fn zeros(rows: usize, cols: usize) -> Param {
        Param {
            w: Matrix::zeros(rows, cols),
            g: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// Constant initialisation (LayerNorm gamma = 1).
    pub fn constant(rows: usize, cols: usize, value: f32) -> Param {
        let mut p = Param::zeros(rows, cols);
        p.w.as_mut_slice().iter_mut().for_each(|x| *x = value);
        p
    }

    pub fn zero_grad(&mut self) {
        self.g.as_mut_slice().iter_mut().for_each(|x| *x = 0.0);
    }

    pub fn grad_sq_norm(&self) -> f64 {
        self.g
            .as_slice()
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum()
    }

    pub fn scale_grad(&mut self, s: f32) {
        self.g.as_mut_slice().iter_mut().for_each(|x| *x *= s);
    }

    /// One Adam update at (1-indexed) step `t`.
    pub fn adam_step(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32, t: usize) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        let (w, g, m, v) = (
            self.w.as_mut_slice(),
            self.g.as_slice(),
            self.m.as_mut_slice(),
            self.v.as_mut_slice(),
        );
        for i in 0..w.len() {
            m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
            v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            w[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    pub fn len(&self) -> usize {
        self.w.len()
    }

    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }
}

/// Adam hyper-parameters with linear warmup and inverse-sqrt-free constant
/// decay (the Huggingface default finetuning shape: warmup then linear decay
/// to zero).
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub warmup_steps: usize,
    pub total_steps: usize,
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 3e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            warmup_steps: 50,
            total_steps: 1000,
            grad_clip: 1.0,
        }
    }
}

impl AdamConfig {
    /// Learning rate at step `t` (1-indexed): linear warmup, then linear
    /// decay to zero at `total_steps`.
    pub fn lr_at(&self, t: usize) -> f32 {
        if t <= self.warmup_steps {
            self.lr * t as f32 / self.warmup_steps.max(1) as f32
        } else if t >= self.total_steps {
            0.0
        } else {
            self.lr * (self.total_steps - t) as f32
                / (self.total_steps - self.warmup_steps).max(1) as f32
        }
    }
}

/// Apply one Adam step to every parameter, with global-norm gradient
/// clipping.
pub fn step_all(params: &mut [&mut Param], cfg: &AdamConfig, t: usize) {
    let total_sq: f64 = params.iter().map(|p| p.grad_sq_norm()).sum();
    let norm = total_sq.sqrt() as f32;
    if norm > cfg.grad_clip && norm > 0.0 {
        let s = cfg.grad_clip / norm;
        for p in params.iter_mut() {
            p.scale_grad(s);
        }
    }
    let lr = cfg.lr_at(t);
    for p in params.iter_mut() {
        p.adam_step(lr, cfg.beta1, cfg.beta2, cfg.eps, t);
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimise f(w) = (w - 3)² with Adam; must approach 3.
        let mut p = Param::zeros(1, 1);
        for t in 1..=500 {
            let w = p.w.get(0, 0);
            p.g.set(0, 0, 2.0 * (w - 3.0));
            p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
        }
        assert!((p.w.get(0, 0) - 3.0).abs() < 0.05);
    }

    #[test]
    fn warmup_then_decay() {
        let cfg = AdamConfig {
            lr: 1.0,
            warmup_steps: 10,
            total_steps: 110,
            ..Default::default()
        };
        assert!((cfg.lr_at(5) - 0.5).abs() < 1e-6);
        assert!((cfg.lr_at(10) - 1.0).abs() < 1e-6);
        assert!((cfg.lr_at(60) - 0.5).abs() < 1e-6);
        assert_eq!(cfg.lr_at(110), 0.0);
    }

    #[test]
    fn grad_clip_rescales() {
        let mut a = Param::zeros(1, 2);
        a.g.set(0, 0, 3.0);
        a.g.set(0, 1, 4.0); // norm 5
        let cfg = AdamConfig {
            grad_clip: 1.0,
            warmup_steps: 1,
            ..Default::default()
        };
        let mut b = Param::zeros(1, 1); // zero grad, shouldn't blow up
        step_all(&mut [&mut a, &mut b], &cfg, 1);
        // After step the grads were zeroed; weights moved.
        assert_eq!(a.g.get(0, 0), 0.0);
        assert!(a.w.get(0, 0) != 0.0);
    }

    #[test]
    fn constant_init() {
        let p = Param::constant(2, 3, 1.0);
        assert!(p.w.as_slice().iter().all(|&x| x == 1.0));
    }
}
