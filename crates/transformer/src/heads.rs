//! Task heads: sequence classification, span extraction, masked LM.

use crate::linear::Linear;
use crate::param::Param;
use dfss_tensor::{Matrix, Rng};

/// CLS-pooled classifier: logits from the first token's hidden state.
pub struct ClassifierHead {
    pub proj: Linear,
    cache_n: usize,
}

impl ClassifierHead {
    pub fn new(d_model: usize, classes: usize, rng: &mut Rng) -> ClassifierHead {
        ClassifierHead {
            proj: Linear::new(d_model, classes, rng),
            cache_n: 0,
        }
    }

    /// `h: n×d` → logits `1×classes` (from row 0).
    pub fn forward(&mut self, h: &Matrix<f32>, train: bool) -> Vec<f32> {
        self.cache_n = h.rows();
        let cls = h.take_rows(0, 1);
        self.proj.forward(&cls, train).row(0).to_vec()
    }

    /// dlogits → dh (zero everywhere except row 0).
    pub fn backward(&mut self, dlogits: &[f32]) -> Matrix<f32> {
        let dl = Matrix::from_vec(1, dlogits.len(), dlogits.to_vec());
        let dcls = self.proj.backward(&dl);
        let mut dh = Matrix::<f32>::zeros(self.cache_n, dcls.cols());
        dh.row_mut(0).copy_from_slice(dcls.row(0));
        dh
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        self.proj.params()
    }
}

/// Span-extraction head (SQuAD style): per-position start/end logits.
pub struct SpanHead {
    pub proj: Linear,
}

impl SpanHead {
    pub fn new(d_model: usize, rng: &mut Rng) -> SpanHead {
        SpanHead {
            proj: Linear::new(d_model, 2, rng),
        }
    }

    /// `h: n×d` → `(start_logits, end_logits)`, each length n.
    pub fn forward(&mut self, h: &Matrix<f32>, train: bool) -> (Vec<f32>, Vec<f32>) {
        let y = self.proj.forward(h, train);
        let start = (0..y.rows()).map(|r| y.get(r, 0)).collect();
        let end = (0..y.rows()).map(|r| y.get(r, 1)).collect();
        (start, end)
    }

    pub fn backward(&mut self, dstart: &[f32], dend: &[f32]) -> Matrix<f32> {
        let n = dstart.len();
        let dy = Matrix::from_fn(n, 2, |r, c| if c == 0 { dstart[r] } else { dend[r] });
        self.proj.backward(&dy)
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        self.proj.params()
    }
}

/// Masked-LM head: per-position vocabulary logits.
pub struct MlmHead {
    pub proj: Linear,
}

impl MlmHead {
    pub fn new(d_model: usize, vocab: usize, rng: &mut Rng) -> MlmHead {
        MlmHead {
            proj: Linear::new(d_model, vocab, rng),
        }
    }

    pub fn forward(&mut self, h: &Matrix<f32>, train: bool) -> Matrix<f32> {
        self.proj.forward(h, train)
    }

    pub fn backward(&mut self, dlogits: &Matrix<f32>) -> Matrix<f32> {
        self.proj.backward(dlogits)
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        self.proj.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_uses_cls_row_only() {
        let mut rng = Rng::new(1);
        let mut head = ClassifierHead::new(4, 3, &mut rng);
        let h = Matrix::from_fn(5, 4, |r, c| if r == 0 { (c + 1) as f32 } else { 99.0 });
        let logits = head.forward(&h, true);
        assert_eq!(logits.len(), 3);
        let dh = head.backward(&[1.0, 0.0, 0.0]);
        assert_eq!(dh.shape(), (5, 4));
        // Only row 0 receives gradient.
        assert!(dh.row(0).iter().any(|&v| v != 0.0));
        for r in 1..5 {
            assert!(dh.row(r).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn span_head_emits_per_position_logits() {
        let mut rng = Rng::new(2);
        let mut head = SpanHead::new(4, &mut rng);
        let h = Matrix::random_normal(6, 4, 0.0, 1.0, &mut rng);
        let (s, e) = head.forward(&h, true);
        assert_eq!(s.len(), 6);
        assert_eq!(e.len(), 6);
        let dh = head.backward(&[0.1; 6], &[-0.1; 6]);
        assert_eq!(dh.shape(), (6, 4));
    }

    #[test]
    fn mlm_head_vocab_width() {
        let mut rng = Rng::new(3);
        let mut head = MlmHead::new(4, 10, &mut rng);
        let h = Matrix::random_normal(3, 4, 0.0, 1.0, &mut rng);
        let logits = head.forward(&h, false);
        assert_eq!(logits.shape(), (3, 10));
    }
}
