//! Token + learned positional embeddings.

use crate::param::Param;
use dfss_tensor::{Matrix, Rng};

/// `h_i = E[token_i] + P[i]`.
#[derive(Clone, Debug)]
pub struct Embedding {
    pub token: Param,
    pub pos: Param,
    cache_tokens: Option<Vec<usize>>,
}

impl Embedding {
    pub fn new(vocab: usize, max_len: usize, d: usize, rng: &mut Rng) -> Embedding {
        Embedding {
            token: Param::randn(vocab, d, 0.02, rng),
            pos: Param::randn(max_len, d, 0.02, rng),
            cache_tokens: None,
        }
    }

    pub fn vocab(&self) -> usize {
        self.token.w.rows()
    }

    pub fn d_model(&self) -> usize {
        self.token.w.cols()
    }

    pub fn forward(&mut self, tokens: &[usize], train: bool) -> Matrix<f32> {
        let d = self.d_model();
        assert!(
            tokens.len() <= self.pos.w.rows(),
            "sequence exceeds max_len"
        );
        let mut out = Matrix::<f32>::zeros(tokens.len(), d);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.vocab(), "token {t} out of vocab");
            let orow = out.row_mut(i);
            for ((o, &e), &p) in orow
                .iter_mut()
                .zip(self.token.w.row(t))
                .zip(self.pos.w.row(i))
            {
                *o = e + p;
            }
        }
        if train {
            self.cache_tokens = Some(tokens.to_vec());
        }
        out
    }

    /// Scatter-add gradients to the embedding tables.
    pub fn backward(&mut self, dh: &Matrix<f32>) {
        let tokens = self
            .cache_tokens
            .take()
            .expect("Embedding::backward without forward(train=true)");
        for (i, &t) in tokens.iter().enumerate() {
            let trow = self.token.g.row_mut(t);
            for (g, &d) in trow.iter_mut().zip(dh.row(i)) {
                *g += d;
            }
            let prow = self.pos.g.row_mut(i);
            for (g, &d) in prow.iter_mut().zip(dh.row(i)) {
                *g += d;
            }
        }
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.token, &mut self.pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_adds_token_and_pos() {
        let mut rng = Rng::new(1);
        let mut e = Embedding::new(4, 8, 2, &mut rng);
        let h = e.forward(&[2, 2], false);
        // Same token, different positions → rows differ by pos embedding.
        let diff0 = h.get(0, 0) - e.pos.w.get(0, 0);
        let diff1 = h.get(1, 0) - e.pos.w.get(1, 0);
        assert!((diff0 - diff1).abs() < 1e-6);
        assert!((diff0 - e.token.w.get(2, 0)).abs() < 1e-6);
    }

    #[test]
    fn backward_scatter_adds_shared_tokens() {
        let mut rng = Rng::new(2);
        let mut e = Embedding::new(4, 8, 2, &mut rng);
        let _ = e.forward(&[1, 1, 3], true);
        let dh = Matrix::from_fn(3, 2, |_, _| 1.0);
        e.backward(&dh);
        // Token 1 appears twice → grad 2; token 3 once → grad 1.
        assert_eq!(e.token.g.get(1, 0), 2.0);
        assert_eq!(e.token.g.get(3, 0), 1.0);
        assert_eq!(e.token.g.get(0, 0), 0.0);
        // Positions each once.
        assert_eq!(e.pos.g.get(0, 0), 1.0);
        assert_eq!(e.pos.g.get(2, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn rejects_oov() {
        let mut rng = Rng::new(3);
        let mut e = Embedding::new(4, 8, 2, &mut rng);
        let _ = e.forward(&[7], false);
    }
}
