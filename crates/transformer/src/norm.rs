//! Layer normalisation with manual backprop.

use crate::param::Param;
use dfss_tensor::Matrix;

const EPS: f32 = 1e-5;

/// Row-wise LayerNorm: `y = γ ⊙ (x − µ)/√(σ² + ε) + β`.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    pub gamma: Param,
    pub beta: Param,
    cache: Option<(Matrix<f32>, Vec<f32>, Vec<f32>)>, // x_hat, mean, inv_std
}

impl LayerNorm {
    pub fn new(d: usize) -> LayerNorm {
        LayerNorm {
            gamma: Param::constant(1, d, 1.0),
            beta: Param::zeros(1, d),
            cache: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix<f32>, train: bool) -> Matrix<f32> {
        let (n, d) = x.shape();
        let mut xhat = Matrix::<f32>::zeros(n, d);
        let mut means = Vec::with_capacity(n);
        let mut inv_stds = Vec::with_capacity(n);
        let mut y = Matrix::<f32>::zeros(n, d);
        for r in 0..n {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            means.push(mean);
            inv_stds.push(inv_std);
            let xh = xhat.row_mut(r);
            for (o, &v) in xh.iter_mut().zip(row) {
                *o = (v - mean) * inv_std;
            }
            let yr = y.row_mut(r);
            for c in 0..d {
                yr[c] = self.gamma.w.get(0, c) * xhat.get(r, c) + self.beta.w.get(0, c);
            }
        }
        if train {
            self.cache = Some((xhat, means, inv_stds));
        }
        y
    }

    pub fn backward(&mut self, dy: &Matrix<f32>) -> Matrix<f32> {
        let (xhat, _means, inv_stds) = self
            .cache
            .take()
            .expect("LayerNorm::backward without forward(train=true)");
        let (n, d) = dy.shape();
        let mut dx = Matrix::<f32>::zeros(n, d);
        for r in 0..n {
            // Parameter grads.
            for c in 0..d {
                *self.gamma.g.row_mut(0).get_mut(c).expect("gamma width") +=
                    dy.get(r, c) * xhat.get(r, c);
                *self.beta.g.row_mut(0).get_mut(c).expect("beta width") += dy.get(r, c);
            }
            // dx via the standard LayerNorm backward:
            // dxhat = dy ⊙ γ
            // dx = inv_std/d · (d·dxhat − Σdxhat − xhat·Σ(dxhat ⊙ xhat)).
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            let mut dxhat = vec![0.0f32; d];
            for c in 0..d {
                let v = dy.get(r, c) * self.gamma.w.get(0, c);
                dxhat[c] = v;
                sum_dxhat += v;
                sum_dxhat_xhat += v * xhat.get(r, c);
            }
            let inv_std = inv_stds[r];
            let dxr = dx.row_mut(r);
            for c in 0..d {
                dxr[c] = inv_std / d as f32
                    * (d as f32 * dxhat[c] - sum_dxhat - xhat.get(r, c) * sum_dxhat_xhat);
            }
        }
        dx
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    #[test]
    fn output_rows_standardised() {
        let mut rng = Rng::new(1);
        let x = Matrix::random_normal(4, 16, 3.0, 2.0, &mut rng);
        let mut ln = LayerNorm::new(16);
        let y = ln.forward(&x, false);
        for r in 0..4 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 16.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 16.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let x = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let mut ln = LayerNorm::new(2);
        ln.gamma.w = Matrix::from_vec(1, 2, vec![2.0, 2.0]);
        ln.beta.w = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = ln.forward(&x, false);
        // xhat = [-1, 1] (up to eps), y = 2·xhat + 1 = [-1, 3].
        assert!((y.get(0, 0) + 1.0).abs() < 1e-2);
        assert!((y.get(0, 1) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::new(2);
        let x = Matrix::random_normal(3, 8, 0.0, 1.0, &mut rng);
        let mut ln = LayerNorm::new(8);
        ln.gamma.w = Matrix::random_normal(1, 8, 1.0, 0.1, &mut rng);
        // Loss = Σ y ⊙ R for fixed random R.
        let rmat = Matrix::<f32>::random_normal(3, 8, 0.0, 1.0, &mut rng);
        let _y = ln.forward(&x, true);
        let dx = ln.backward(&rmat);
        let h = 1e-3;
        for r in 0..3 {
            for c in 0..8 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - h);
                let mut ln2 = ln.clone();
                let yp = ln2.forward(&xp, false);
                let ym = ln2.forward(&xm, false);
                let fp: f32 = yp
                    .as_slice()
                    .iter()
                    .zip(rmat.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                let fm: f32 = ym
                    .as_slice()
                    .iter()
                    .zip(rmat.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                let fd = (fp - fm) / (2.0 * h);
                assert!(
                    (fd - dx.get(r, c)).abs() < 2e-2,
                    "({r},{c}): fd {fd} vs {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn param_grads_accumulate() {
        let mut rng = Rng::new(3);
        let x = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        let mut ln = LayerNorm::new(4);
        let dy = Matrix::from_fn(2, 4, |_, _| 1.0);
        let _ = ln.forward(&x, true);
        let _ = ln.backward(&dy);
        // beta grad = column sums of dy = 2 everywhere.
        for c in 0..4 {
            assert!((ln.beta.g.get(0, c) - 2.0).abs() < 1e-6);
        }
    }
}
