//! # dfss-transformer — a trainable transformer encoder with pluggable
//! attention
//!
//! The paper's accuracy experiments finetune BERT-large / roBERTa-large and
//! train LRA models from scratch. Those checkpoints are a reproduction gate
//! (see DESIGN.md), so this crate provides the substitute substrate: a
//! from-scratch encoder with manual backpropagation, Adam, and a
//! [`attn::AttnKind`] switch that swaps the attention mechanism *exactly*
//! like the paper's Figure 3 drop-in replacement — `Full` → `Nm(1:2)` is a
//! one-line change.
//!
//! Training always runs in f32; the `bfloat16` table rows follow the paper's
//! protocol ("After the finetuning, we directly cast all the parameters in
//! the model to bfloat16 and test") via [`encoder::Precision::Bf16`], which
//! rounds weights and activations through bf16 at every operator boundary.
//!
//! Module map: [`param`] (tensors + Adam state) · [`linear`] · [`norm`]
//! (LayerNorm) · [`embed`] (token + positional) · [`attn`] (multi-head
//! attention, all mechanisms, forward + backward) · [`ffn`] · [`encoder`]
//! (layers, model) · [`heads`] (classifier / span / masked-LM) · [`loss`]
//! (cross-entropy) · [`trainer`] (batching, LR schedule, gradient clipping).

pub mod attn;
pub mod embed;
pub mod encoder;
pub mod ffn;
pub mod heads;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod param;
pub mod trainer;

pub use attn::AttnKind;
pub use encoder::{Encoder, EncoderConfig, Precision};
