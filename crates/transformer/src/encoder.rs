//! Transformer encoder: embedding + a stack of post-LN layers.

use crate::attn::{AttnKind, MultiHeadAttention};
use crate::embed::Embedding;
use crate::ffn::FeedForward;
use crate::norm::LayerNorm;
use crate::param::Param;
use dfss_tensor::{Bf16, Matrix, Rng};

/// Evaluation precision: the paper trains in `float` and evaluates either in
/// `float` (1:2 sparsity) or casts to `bfloat16` (2:4 sparsity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    F32,
    Bf16,
}

/// One encoder layer: post-LN `x + MHA(x)` then `x + FFN(x)` (BERT style).
pub struct EncoderLayer {
    pub mha: MultiHeadAttention,
    pub ffn: FeedForward,
    pub ln1: LayerNorm,
    pub ln2: LayerNorm,
}

impl EncoderLayer {
    pub fn new(
        kind: AttnKind,
        d_model: usize,
        heads: usize,
        d_ffn: usize,
        max_len: usize,
        rng: &mut Rng,
    ) -> EncoderLayer {
        EncoderLayer {
            mha: MultiHeadAttention::new(kind, d_model, heads, max_len, rng),
            ffn: FeedForward::new(d_model, d_ffn, rng),
            ln1: LayerNorm::new(d_model),
            ln2: LayerNorm::new(d_model),
        }
    }

    pub fn forward(&mut self, x: &Matrix<f32>, train: bool, bf16: bool) -> Matrix<f32> {
        let attn_out = self.mha.forward(x, train, bf16);
        let mut h = x.clone();
        h.axpy(1.0, &attn_out);
        let h = self.ln1.forward(&h, train);
        let ffn_out = self.ffn.forward(&h, train);
        let mut y = h;
        y.axpy(1.0, &ffn_out);
        self.ln2.forward(&y, train)
    }

    pub fn backward(&mut self, dy: &Matrix<f32>) -> Matrix<f32> {
        let dy = self.ln2.backward(dy);
        // y = h + ffn(h)
        let d_ffn_in = self.ffn.backward(&dy);
        let mut dh = dy;
        dh.axpy(1.0, &d_ffn_in);
        let dh = self.ln1.backward(&dh);
        // h = x + mha(x)
        let d_mha_in = self.mha.backward(&dh);
        let mut dx = dh;
        dx.axpy(1.0, &d_mha_in);
        dx
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut ps = self.mha.params();
        ps.extend(self.ffn.params());
        ps.extend(self.ln1.params());
        ps.extend(self.ln2.params());
        ps
    }
}

/// Encoder configuration.
#[derive(Clone, Debug)]
pub struct EncoderConfig {
    pub vocab: usize,
    pub max_len: usize,
    pub d_model: usize,
    pub heads: usize,
    pub d_ffn: usize,
    pub layers: usize,
    pub kind: AttnKind,
}

impl EncoderConfig {
    /// A small default suitable for the synthetic tasks.
    pub fn small(vocab: usize, max_len: usize, kind: AttnKind) -> EncoderConfig {
        EncoderConfig {
            vocab,
            max_len,
            d_model: 64,
            heads: 2,
            d_ffn: 128,
            layers: 2,
            kind,
        }
    }
}

/// The full encoder stack.
pub struct Encoder {
    pub cfg: EncoderConfig,
    pub embed: Embedding,
    pub layers: Vec<EncoderLayer>,
    pub precision: Precision,
}

impl Encoder {
    pub fn new(cfg: EncoderConfig, rng: &mut Rng) -> Encoder {
        let embed = Embedding::new(cfg.vocab, cfg.max_len, cfg.d_model, rng);
        let layers = (0..cfg.layers)
            .map(|_| {
                EncoderLayer::new(
                    cfg.kind,
                    cfg.d_model,
                    cfg.heads,
                    cfg.d_ffn,
                    cfg.max_len,
                    rng,
                )
            })
            .collect();
        Encoder {
            cfg,
            embed,
            layers,
            precision: Precision::F32,
        }
    }

    /// The paper's drop-in swap: change every layer's attention mechanism
    /// (used to evaluate a dense-pretrained model under Dfss and to
    /// finetune).
    pub fn set_attention(&mut self, kind: AttnKind) {
        self.cfg.kind = kind;
        for l in &mut self.layers {
            l.mha.kind = kind;
        }
    }

    /// Cast to bfloat16 evaluation (paper: "directly cast all the parameters
    /// in the model to bfloat16 and test").
    pub fn set_precision(&mut self, p: Precision) {
        self.precision = p;
        if p == Precision::Bf16 {
            for param in self.params() {
                for v in param.w.as_mut_slice() {
                    *v = Bf16::from_f32(*v).to_f32();
                }
            }
        }
    }

    /// Hidden states for a token sequence.
    pub fn forward(&mut self, tokens: &[usize], train: bool) -> Matrix<f32> {
        let bf16 = self.precision == Precision::Bf16;
        let mut h = self.embed.forward(tokens, train);
        for l in &mut self.layers {
            h = l.forward(&h, train, bf16);
            if bf16 {
                for v in h.as_mut_slice() {
                    *v = Bf16::from_f32(*v).to_f32();
                }
            }
        }
        h
    }

    /// Backprop from hidden-state gradients into all parameters.
    pub fn backward(&mut self, dh: &Matrix<f32>) {
        let mut d = dh.clone();
        for l in self.layers.iter_mut().rev() {
            d = l.backward(&d);
        }
        self.embed.backward(&d);
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut ps = self.embed.params();
        for l in &mut self.layers {
            ps.extend(l.params());
        }
        ps
    }

    pub fn num_parameters(&mut self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_nmsparse::NmPattern;

    fn tiny(kind: AttnKind) -> Encoder {
        let mut rng = Rng::new(1);
        let cfg = EncoderConfig {
            vocab: 16,
            max_len: 16,
            d_model: 8,
            heads: 2,
            d_ffn: 16,
            layers: 2,
            kind,
        };
        Encoder::new(cfg, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let mut enc = tiny(AttnKind::Full);
        let h = enc.forward(&[1, 2, 3, 4, 5, 6, 7, 8], false);
        assert_eq!(h.shape(), (8, 8));
    }

    #[test]
    fn end_to_end_gradcheck_on_embedding() {
        let mut enc = tiny(AttnKind::Full);
        let tokens = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let mut rng = Rng::new(2);
        let rmat = Matrix::<f32>::random_normal(8, 8, 0.0, 1.0, &mut rng);
        let _h = enc.forward(&tokens, true);
        enc.backward(&rmat);
        let analytic = enc.embed.token.g.get(1, 0);
        // Finite difference on token embedding (1, 0).
        let h = 1e-3;
        let orig = enc.embed.token.w.get(1, 0);
        enc.embed.token.w.set(1, 0, orig + h);
        let hp = enc.forward(&tokens, false);
        enc.embed.token.w.set(1, 0, orig - h);
        let hm = enc.forward(&tokens, false);
        enc.embed.token.w.set(1, 0, orig);
        let f = |y: &Matrix<f32>| {
            y.as_slice()
                .iter()
                .zip(rmat.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let fd = (f(&hp) - f(&hm)) / (2.0 * h);
        assert!(
            (fd - analytic).abs() < 0.05 * (1.0 + fd.abs()),
            "fd {fd} vs analytic {analytic}"
        );
    }

    #[test]
    fn set_attention_swaps_every_layer() {
        let mut enc = tiny(AttnKind::Full);
        enc.set_attention(AttnKind::Nm(NmPattern::P1_2));
        for l in &enc.layers {
            assert_eq!(l.mha.kind, AttnKind::Nm(NmPattern::P1_2));
        }
    }

    #[test]
    fn dense_vs_dfss_outputs_close_same_weights() {
        let mut enc = tiny(AttnKind::Full);
        let tokens = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let dense = enc.forward(&tokens, false);
        enc.set_attention(AttnKind::Nm(NmPattern::P1_2));
        let sparse = enc.forward(&tokens, false);
        let rel = dense.zip_with(&sparse, |a, b| a - b).frobenius_norm()
            / dense.frobenius_norm().max(1e-9);
        assert!(rel < 0.8, "Dfss drop-in should stay close: {rel}");
    }

    #[test]
    fn bf16_precision_rounds_weights() {
        let mut enc = tiny(AttnKind::Nm(NmPattern::P2_4));
        enc.set_precision(Precision::Bf16);
        // Every weight must be bf16-representable.
        for p in enc.params() {
            for &v in p.w.as_slice() {
                assert_eq!(Bf16::from_f32(v).to_f32(), v);
            }
        }
        let h = enc.forward(&[1, 2, 3, 4], false);
        assert!(h.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parameter_count_scales_with_layers() {
        let mut one = tiny(AttnKind::Full);
        let mut rng = Rng::new(1);
        let cfg = EncoderConfig {
            layers: 4,
            ..one.cfg.clone()
        };
        let mut four = Encoder::new(cfg, &mut rng);
        let p1 = one.num_parameters();
        let p4 = four.num_parameters();
        assert!(p4 > 2 * p1 - p1 / 2, "p1 {p1} p4 {p4}");
    }
}
