//! Training-loop plumbing: batching, the combined optimizer step, and a
//! small training-progress report.

use crate::param::{step_all, AdamConfig, Param};
use dfss_tensor::Rng;

/// Shuffled mini-batch index iterator for one epoch.
pub fn epoch_batches(n_examples: usize, batch: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n_examples).collect();
    rng.shuffle(&mut idx);
    idx.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
}

/// Apply one optimizer step over encoder + head parameters.
pub fn optimize(params: Vec<&mut Param>, cfg: &AdamConfig, step: usize) {
    let mut ps = params;
    step_all(&mut ps, cfg, step);
}

/// Rolling training report.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    pub steps: usize,
    pub losses: Vec<f64>,
}

impl TrainReport {
    pub fn push(&mut self, loss: f64) {
        self.steps += 1;
        self.losses.push(loss);
    }

    /// Mean loss over the last `k` steps.
    pub fn recent_mean(&self, k: usize) -> f64 {
        if self.losses.is_empty() {
            return f64::NAN;
        }
        let tail = &self.losses[self.losses.len().saturating_sub(k)..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// True when the last-quarter mean beats the first-quarter mean —
    /// a coarse "training is working" check used by tests.
    pub fn improved(&self) -> bool {
        if self.losses.len() < 8 {
            return false;
        }
        let q = self.losses.len() / 4;
        let head: f64 = self.losses[..q].iter().sum::<f64>() / q as f64;
        let tail: f64 = self.losses[self.losses.len() - q..].iter().sum::<f64>() / q as f64;
        tail < head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_examples() {
        let mut rng = Rng::new(1);
        let batches = epoch_batches(10, 3, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn report_improvement() {
        let mut r = TrainReport::default();
        for i in 0..20 {
            r.push(10.0 - i as f64 * 0.4);
        }
        assert!(r.improved());
        assert!(r.recent_mean(5) < 4.0);
    }

    #[test]
    fn report_no_improvement_on_flat() {
        let mut r = TrainReport::default();
        for _ in 0..20 {
            r.push(1.0);
        }
        assert!(!r.improved());
    }
}
