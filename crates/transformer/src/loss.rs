//! Cross-entropy loss with softmax fused backward.

use dfss_tensor::{math, Matrix};

/// Softmax cross-entropy for one logit row against a class index.
/// Returns `(loss, dlogits)`.
pub fn cross_entropy_row(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(target < logits.len());
    let probs = math::softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

/// Mean cross-entropy over selected rows of a logits matrix; rows not in
/// `targets` receive zero gradient. Returns `(mean_loss, dlogits)`.
pub fn cross_entropy_rows(
    logits: &Matrix<f32>,
    targets: &[(usize, usize)], // (row, class)
) -> (f32, Matrix<f32>) {
    assert!(!targets.is_empty());
    let mut dl = Matrix::<f32>::zeros(logits.rows(), logits.cols());
    let mut total = 0.0f32;
    let inv = 1.0 / targets.len() as f32;
    for &(row, class) in targets {
        let (loss, grad) = cross_entropy_row(logits.row(row), class);
        total += loss;
        let drow = dl.row_mut(row);
        for (d, g) in drow.iter_mut().zip(grad) {
            *d += g * inv;
        }
    }
    (total * inv, dl)
}

/// Perplexity from a mean cross-entropy (nats).
pub fn perplexity(mean_ce: f64) -> f64 {
    mean_ce.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let (loss, _) = cross_entropy_row(&[0.0, 0.0, 0.0, 0.0], 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_has_low_loss() {
        let (loss, grad) = cross_entropy_row(&[10.0, -10.0], 0);
        assert!(loss < 1e-4);
        assert!(grad[0].abs() < 1e-4);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = cross_entropy_row(&[1.0, 2.0, 3.0], 1);
        let s: f32 = grad.iter().sum();
        assert!(s.abs() < 1e-6);
        // Target coordinate is negative, others positive.
        assert!(grad[1] < 0.0);
        assert!(grad[0] > 0.0 && grad[2] > 0.0);
    }

    #[test]
    fn gradcheck_cross_entropy() {
        let logits = [0.3f32, -1.2, 0.7, 0.1];
        let (_, grad) = cross_entropy_row(&logits, 2);
        let h = 1e-3;
        for i in 0..4 {
            let mut lp = logits;
            lp[i] += h;
            let mut lm = logits;
            lm[i] -= h;
            let fp = cross_entropy_row(&lp, 2).0;
            let fm = cross_entropy_row(&lm, 2).0;
            let fd = (fp - fm) / (2.0 * h);
            assert!((fd - grad[i]).abs() < 1e-3, "{i}");
        }
    }

    #[test]
    fn multi_row_mean() {
        let logits = Matrix::from_vec(2, 2, vec![0.0, 0.0, 10.0, -10.0]);
        let (loss, dl) = cross_entropy_rows(&logits, &[(0, 0), (1, 0)]);
        assert!((loss - 0.5 * (2.0f32).ln()).abs() < 1e-4);
        // Row gradients scaled by 1/2.
        assert!((dl.get(0, 0) - (-0.25)).abs() < 1e-4);
    }

    #[test]
    fn perplexity_of_log2_is_2() {
        assert!((perplexity((2.0f64).ln()) - 2.0).abs() < 1e-12);
    }
}
