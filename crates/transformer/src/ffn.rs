//! Position-wise feed-forward network: `Linear → GELU → Linear`.

use crate::linear::Linear;
use crate::param::Param;
use dfss_tensor::{math, Matrix, Rng};

#[derive(Clone, Debug)]
pub struct FeedForward {
    pub fc1: Linear,
    pub fc2: Linear,
    cache_pre_act: Option<Matrix<f32>>,
}

impl FeedForward {
    pub fn new(d_model: usize, d_hidden: usize, rng: &mut Rng) -> FeedForward {
        FeedForward {
            fc1: Linear::new(d_model, d_hidden, rng),
            fc2: Linear::new(d_hidden, d_model, rng),
            cache_pre_act: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix<f32>, train: bool) -> Matrix<f32> {
        let h = self.fc1.forward(x, train);
        let act = h.map(math::gelu);
        if train {
            self.cache_pre_act = Some(h);
        }
        self.fc2.forward(&act, train)
    }

    pub fn backward(&mut self, dy: &Matrix<f32>) -> Matrix<f32> {
        let dact = self.fc2.backward(dy);
        let pre = self
            .cache_pre_act
            .take()
            .expect("FeedForward::backward without forward");
        let dh = Matrix::from_fn(dact.rows(), dact.cols(), |r, c| {
            dact.get(r, c) * math::gelu_grad(pre.get(r, c))
        });
        self.fc1.backward(&dh)
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        let mut ps = self.fc1.params();
        ps.extend(self.fc2.params());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut rng = Rng::new(1);
        let mut ffn = FeedForward::new(8, 32, &mut rng);
        let x = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
        let y = ffn.forward(&x, false);
        assert_eq!(y.shape(), (4, 8));
    }

    #[test]
    fn gradcheck_dx() {
        let mut rng = Rng::new(2);
        let mut ffn = FeedForward::new(4, 8, &mut rng);
        let x = Matrix::random_normal(3, 4, 0.0, 0.5, &mut rng);
        let rmat = Matrix::<f32>::random_normal(3, 4, 0.0, 1.0, &mut rng);
        let _ = ffn.forward(&x, true);
        let dx = ffn.backward(&rmat);
        let h = 1e-3;
        for &(r, c) in &[(0usize, 0usize), (2, 3), (1, 2)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + h);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - h);
            let yp = ffn.forward(&xp, false);
            let ym = ffn.forward(&xm, false);
            let f = |y: &Matrix<f32>| {
                y.as_slice()
                    .iter()
                    .zip(rmat.as_slice())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
            };
            let fd = (f(&yp) - f(&ym)) / (2.0 * h);
            assert!(
                (fd - dx.get(r, c)).abs() < 2e-2,
                "({r},{c}) fd {fd} vs {}",
                dx.get(r, c)
            );
        }
    }

    #[test]
    fn params_count() {
        let mut rng = Rng::new(3);
        let mut ffn = FeedForward::new(4, 8, &mut rng);
        assert_eq!(ffn.params().len(), 4);
    }
}
