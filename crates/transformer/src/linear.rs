//! Fully-connected layer with manual backprop.

use crate::param::Param;
use dfss_tensor::{Matrix, Rng};

/// `y = x·W + b` with `x: n×in`, `W: in×out`, `b: 1×out`.
#[derive(Clone, Debug)]
pub struct Linear {
    pub weight: Param,
    pub bias: Param,
    /// Cached input from the last forward (needed by backward).
    cache_x: Option<Matrix<f32>>,
}

impl Linear {
    pub fn new(d_in: usize, d_out: usize, rng: &mut Rng) -> Linear {
        // Xavier-ish init: std = 1/sqrt(d_in).
        let sigma = 1.0 / (d_in as f32).sqrt();
        Linear {
            weight: Param::randn(d_in, d_out, sigma, rng),
            bias: Param::zeros(1, d_out),
            cache_x: None,
        }
    }

    pub fn d_in(&self) -> usize {
        self.weight.w.rows()
    }

    pub fn d_out(&self) -> usize {
        self.weight.w.cols()
    }

    /// Forward pass; caches `x` when `train` is set.
    pub fn forward(&mut self, x: &Matrix<f32>, train: bool) -> Matrix<f32> {
        let mut y = matmul(x, &self.weight.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, &b) in row.iter_mut().zip(self.bias.w.row(0)) {
                *v += b;
            }
        }
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    /// Backward pass: accumulates `dW = xᵀ·dy`, `db = Σ dy`, returns
    /// `dx = dy·Wᵀ`.
    pub fn backward(&mut self, dy: &Matrix<f32>) -> Matrix<f32> {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward without forward(train=true)");
        let dw = matmul(&x.transpose(), dy);
        self.weight.g.axpy(1.0, &dw);
        for r in 0..dy.rows() {
            let brow = self.bias.g.row_mut(0);
            for (g, &d) in brow.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
        matmul(dy, &self.weight.w.transpose())
    }

    pub fn params(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Rayon-parallel f32 matmul used throughout the training stack (training
/// runs on the host; simulated-device accounting happens at inference
/// through `dfss-kernels`).
pub fn matmul(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    use rayon::prelude::*;
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "matmul inner dims {ka} vs {kb}");
    let mut out = vec![0.0f32; m * n];
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let do_row = |i: usize, orow: &mut [f32]| {
        let arow = &a_s[i * ka..(i + 1) * ka];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b_s[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m * n * ka > 1 << 18 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, orow)| do_row(i, orow));
    } else {
        for (i, orow) in out.chunks_mut(n).enumerate() {
            do_row(i, orow);
        }
    }
    Matrix::from_vec(m, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        f: &mut impl FnMut(&Matrix<f32>) -> f32,
        x: &Matrix<f32>,
        analytic: &Matrix<f32>,
        tol: f32,
    ) {
        let h = 1e-3;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - h);
                let fd = (f(&xp) - f(&xm)) / (2.0 * h);
                assert!(
                    (fd - analytic.get(r, c)).abs() < tol,
                    "({r},{c}): fd={fd} analytic={}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn forward_known_values() {
        let mut rng = Rng::new(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.weight.w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        lin.bias.w = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = lin.forward(&x, false);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::new(2);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Matrix::random_normal(4, 3, 0.0, 1.0, &mut rng);
        // Loss = sum(y).
        let y = lin.forward(&x, true);
        let dy = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let dx = lin.backward(&dy);
        let wsnap = lin.weight.w.clone();
        let bsnap = lin.bias.w.clone();
        let mut f = |xx: &Matrix<f32>| {
            let mut y = matmul(xx, &wsnap);
            for r in 0..y.rows() {
                let row = y.row_mut(r);
                for (v, &b) in row.iter_mut().zip(bsnap.row(0)) {
                    *v += b;
                }
            }
            y.sum() as f32
        };
        finite_diff_check(&mut f, &x, &dx, 1e-2);
    }

    #[test]
    fn weight_grad_accumulates() {
        let mut rng = Rng::new(3);
        let mut lin = Linear::new(2, 2, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let dy = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let _ = lin.forward(&x, true);
        let _ = lin.backward(&dy);
        let g1 = lin.weight.g.clone();
        let _ = lin.forward(&x, true);
        let _ = lin.backward(&dy);
        // Second call doubles the accumulated gradient.
        for i in 0..4 {
            assert!((lin.weight.g.as_slice()[i] - 2.0 * g1.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn bias_grad_is_row_sum() {
        let mut rng = Rng::new(4);
        let mut lin = Linear::new(2, 3, &mut rng);
        let x = Matrix::random_normal(5, 2, 0.0, 1.0, &mut rng);
        let _ = lin.forward(&x, true);
        let dy = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        let _ = lin.backward(&dy);
        for c in 0..3 {
            let expect: f32 = (0..5).map(|r| (r + c) as f32).sum();
            assert!((lin.bias.g.get(0, c) - expect).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let mut rng = Rng::new(5);
        let mut lin = Linear::new(2, 2, &mut rng);
        let dy = Matrix::zeros(1, 2);
        let _ = lin.backward(&dy);
    }
}
