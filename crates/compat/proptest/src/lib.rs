//! Vendored, API-compatible subset of
//! [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so the workspace ships this
//! shim under the same package name (see the root `Cargo.toml`). It supports
//! the property-test surface used by `tests/proptests.rs` and the per-crate
//! invariant tests:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and [`strategy::Just`],
//! * [`collection::vec`] for fixed-length vectors,
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded by the test
//! name via FNV-1a, overridable with `PROPTEST_RNG_SEED`), so failures
//! reproduce exactly. There is **no shrinking**: a failing case reports its
//! case index and the failed assertion, which together with determinism is
//! enough to replay under a debugger. `PROPTEST_CASES` overrides the case
//! count globally.

/// Deterministic RNG + config + error plumbing used by the [`proptest!`]
/// macro expansion.
pub mod test_runner {
    use std::fmt;

    /// splitmix64 — tiny, well-distributed, and fully deterministic.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seed derived from the test name (FNV-1a) so every test draws an
        /// independent deterministic stream; `PROPTEST_RNG_SEED` overrides.
        pub fn for_test(name: &str) -> TestRng {
            if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
                if let Ok(seed) = s.parse() {
                    return TestRng::from_seed(seed);
                }
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`, 53 bits of precision.
        pub fn next_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Mirrors the fields of the real `ProptestConfig` that the workspace
    /// touches.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Effective case count after the `PROPTEST_CASES` env override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed `prop_assert!` inside one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy is also usable behind a reference (the real crate is more
    /// general; this is the subset the workspace needs).
    impl<S: Strategy> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((lo as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Rounding of `start + width·unit` (or the f32 cast of a
                    // unit near 1) can land exactly on `end`; redraw to keep
                    // the half-open contract.
                    loop {
                        let unit = rng.next_unit() as $t;
                        let v = self.start + (self.end - self.start) * unit;
                        if v < self.end {
                            return v;
                        }
                    }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end as u32) - (self.start as u32);
            loop {
                let v = (self.start as u32) + (rng.next_u64() as u32) % span;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fixed-length `Vec` of values drawn from `element` (the real crate
    /// also accepts size ranges; the workspace only uses exact lengths).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Items most users need; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bind first so negating e.g. a float comparison doesn't trip
        // clippy::neg_cmp_op_on_partial_ord at the expansion site.
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, cases, stringify!($name), e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @expand ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..1000 {
            let f = (-100.0f32..100.0).generate(&mut rng);
            assert!((-100.0..100.0).contains(&f));
            let u = (0u64..10_000).generate(&mut rng);
            assert!(u < 10_000);
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
            let n = (0usize..6).generate(&mut rng);
            assert!(n < 6);
        }
    }

    #[test]
    fn vec_strategy_has_exact_len() {
        let mut rng = TestRng::from_seed(7);
        let v = crate::collection::vec(0usize..6, 256).generate(&mut rng);
        assert_eq!(v.len(), 256);
        assert!(v.iter().all(|&x| x < 6));
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::from_seed(9);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("some_test");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("some_test");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, v in crate::collection::vec(0usize..3, 4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in -1.0f64..1.0) {
            prop_assert!(x.abs() <= 1.0);
        }
    }
}
