//! The persistent worker pool behind every `par_*` call.
//!
//! Workers are spawned **once per process**, lazily on the first parallel
//! call, and parked on a condvar between jobs. A job is a chunked batch of
//! tasks: the caller pushes one type-erased [`JobRef`] per participating
//! worker into the shared queue, then helps execute task chunks itself
//! (help-first), and finally blocks until every pushed ref has been consumed
//! and finished. Because the caller cannot return before that point, a
//! `JobRef` may safely point at the job living in the caller's stack frame —
//! the same lifetime-erasure protocol `rayon-core` uses, confined to this
//! module.
//!
//! Scheduling invariants that make the pool deadlock-free:
//! * workers never block on a job — they only run claim-loops to completion;
//! * nested `par_*` calls from inside a worker run inline (serial) on that
//!   worker, so a worker never waits for pool capacity it is itself holding;
//! * nested calls from a non-worker caller enqueue fresh refs, which idle
//!   workers drain independently of any outer job.
//!
//! A panicking task *poisons only its job*: the panic is caught on the
//! executing thread, recorded on the job, claim-loops for that job stop
//! early, and the payload is re-thrown on the calling thread once the job is
//! drained. Workers survive and keep serving subsequent jobs.

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Count of worker threads ever spawned (the "spawned at most once per
/// process" contract is asserted against this in tests).
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on pool worker threads: nested `par_*` calls run inline there.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Caller-requested serial execution (see [`crate::with_serial`]).
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// True when the current `par_*` call must execute inline rather than fan
/// out: on a worker thread (nested call) or under `with_serial`.
pub(crate) fn must_run_inline() -> bool {
    IS_WORKER.with(Cell::get) || FORCE_SERIAL.with(Cell::get)
}

/// Run `f` with all `par_*` calls on this thread executing serially.
pub(crate) fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SERIAL.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(FORCE_SERIAL.with(|c| c.replace(true)));
    f()
}

/// Number of worker threads ever spawned by this process.
pub(crate) fn spawned_workers() -> usize {
    SPAWNED.load(Ordering::Relaxed)
}

/// Resolve the pool width: `RAYON_NUM_THREADS` if set to a positive integer
/// (0 or unparsable falls back, like rayon), else available parallelism.
pub(crate) fn parse_num_threads(env: Option<&str>, default: usize) -> usize {
    match env.and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => default.max(1),
    }
}

fn configured_threads() -> usize {
    let default = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    parse_num_threads(std::env::var("RAYON_NUM_THREADS").ok().as_deref(), default)
}

/// A type-erased pointer to a [`Job`] on some caller's stack.
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever dereferenced while the owning caller is
// blocked in `Pool::run` waiting for the ref count to reach zero, so the
// pointee is live whenever a worker touches it.
unsafe impl Send for JobRef {}

struct Shared {
    queue: Mutex<VecDeque<JobRef>>,
    work_available: Condvar,
}

/// The process-wide pool.
pub(crate) struct Pool {
    shared: &'static Shared,
    threads: usize,
    /// Spawned workers = `threads - 1`: the calling thread claims chunks
    /// too, so a parallel region runs on exactly `threads` compute threads
    /// (matching real rayon's effective width, no core oversubscription).
    workers: usize,
}

impl Pool {
    /// The global pool, initialised (and its workers spawned) on first use.
    pub(crate) fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = configured_threads();
            let workers = threads.saturating_sub(1);
            let shared: &'static Shared = Box::leak(Box::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_available: Condvar::new(),
            }));
            for i in 0..workers {
                SPAWNED.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("dfss-rayon-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker");
            }
            Pool {
                shared,
                threads,
                workers,
            }
        })
    }

    /// Configured pool width (≥ 1).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `task(0..tasks)` across the pool plus the calling thread.
    /// Each index runs exactly once; panics in tasks are re-thrown here
    /// after the job has fully drained.
    pub(crate) fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.workers == 0 || tasks == 1 || must_run_inline() {
            // Inline execution on the calling thread.
            for i in 0..tasks {
                task(i);
            }
            return;
        }
        let refs = self.workers.min(tasks);
        let job = Job {
            task,
            tasks,
            next: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
            outstanding_refs: Mutex::new(refs),
            drained: Condvar::new(),
        };
        {
            let mut queue = self.shared.queue.lock().expect("pool queue");
            for _ in 0..refs {
                queue.push_back(JobRef {
                    data: (&job as *const Job) as *const (),
                    exec: execute_job_ref,
                });
            }
            self.shared.work_available.notify_all();
        }
        // Help-first: the caller claims chunks alongside the workers.
        job.claim_loop();
        job.wait_drained();
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    IS_WORKER.with(|c| c.set(true));
    loop {
        let job_ref = {
            let mut queue = shared.queue.lock().expect("pool queue");
            loop {
                if let Some(r) = queue.pop_front() {
                    break r;
                }
                queue = shared.work_available.wait(queue).expect("pool queue");
            }
        };
        // SAFETY: the caller that pushed this ref is blocked in `run` until
        // `outstanding_refs` hits zero, which `execute_job_ref` only signals
        // after its last touch of the job.
        unsafe { (job_ref.exec)(job_ref.data) };
    }
}

/// One parallel job; lives on the calling thread's stack for the duration of
/// `Pool::run`.
struct Job<'a> {
    task: &'a (dyn Fn(usize) + Sync),
    tasks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Set on first panic; stops all claim loops for this job early.
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Pushed JobRefs not yet fully executed. Guarded by a mutex (not an
    /// atomic) so the final decrement and the caller's wakeup check are
    /// ordered by one lock — the worker's last job access is releasing it.
    outstanding_refs: Mutex<usize>,
    drained: Condvar,
}

impl Job<'_> {
    fn claim_loop(&self) {
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                break;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                break;
            }
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| (self.task)(i))) {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
                drop(slot);
                self.panicked.store(true, Ordering::Relaxed);
            }
        }
    }

    fn finish_ref(&self) {
        let mut refs = self
            .outstanding_refs
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *refs -= 1;
        if *refs == 0 {
            // Notify while holding the lock: after we release it, this
            // thread never touches the job again, and the caller cannot
            // observe refs == 0 before we release it.
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut refs = self
            .outstanding_refs
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while *refs != 0 {
            refs = self.drained.wait(refs).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Erased entry point a worker invokes for a popped [`JobRef`].
///
/// # Safety
/// `data` must point to a live `Job` whose owner is blocked in `Pool::run`
/// until this job's ref count reaches zero.
unsafe fn execute_job_ref(data: *const ()) {
    // Reconstituting the reference erases the job's true (non-'static)
    // lifetime; validity is guaranteed by the caller-blocks-until-drained
    // protocol documented on `JobRef`.
    let job: &Job<'_> = unsafe { &*(data as *const Job<'_>) };
    job.claim_loop();
    job.finish_ref();
}
