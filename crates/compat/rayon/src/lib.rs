//! Vendored, API-compatible subset of [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no crates.io access, so the workspace ships this
//! shim under the same package name and routes it through
//! `[workspace.dependencies]`. Swapping back to the real rayon is a one-line
//! change in the root `Cargo.toml`; no source file changes.
//!
//! The parallelism is real, not a sequential fallback: work items are split
//! into contiguous per-thread groups and executed under [`std::thread::scope`].
//! Only the surface the workspace actually uses is implemented:
//!
//! * `slice.par_chunks_mut(n)` (+ `.zip()`, `.enumerate()`, `.for_each()`)
//! * `collection.par_iter().map(f).collect()`
//! * `range.into_par_iter().map(f).collect()`
//!
//! Unlike real rayon there is no work-stealing pool: each call site spawns
//! scoped threads. The kernels already chunk work coarsely (see
//! `PAR_ROW_CHUNK` in `dfss-kernels`), so per-call spawn overhead stays in
//! the noise for the matrix sizes the paper evaluates.

use std::num::NonZeroUsize;

/// Items most users need; mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `items` into per-thread groups, apply `f` to every item under a
/// thread scope, and return the results in the original order.
fn exec_ordered<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let per_thread = n.div_ceil(threads);
    let mut groups: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let group: Vec<I> = it.by_ref().take(per_thread).collect();
        if group.is_empty() {
            break;
        }
        groups.push(group);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move || group.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

/// The one concrete parallel iterator. Pre-collects its items (they are
/// cheap: slice borrows or small scalars at every workspace call site) and
/// fans out on the consuming call.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        exec_ordered(self.items, &f);
    }

    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Lazy `map` adapter; the parallel execution happens in [`ParMap::collect`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F>
where
    I: Send,
{
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        C: FromIterator<R>,
    {
        exec_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Marker trait so `use rayon::prelude::*` call sites that name
/// `ParallelIterator` keep compiling; the methods live on [`ParIter`].
pub trait ParallelIterator {}
impl<I> ParallelIterator for ParIter<I> {}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
{
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` borrowing counterpart.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        for (idx, &x) in data.iter().enumerate() {
            assert_eq!(x, 1 + (idx / 64) as u64);
        }
    }

    #[test]
    fn zip_pairs_rows_in_order() {
        let mut a = vec![0usize; 12];
        let mut b = vec![0usize; 6];
        a.par_chunks_mut(4)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ar, br))| {
                ar.iter_mut().for_each(|x| *x = i + 1);
                br.iter_mut().for_each(|x| *x = 10 * (i + 1));
            });
        assert_eq!(a, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        assert_eq!(b, vec![10, 10, 20, 20, 30, 30]);
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn par_iter_borrows() {
        let jobs = vec![(1usize, 2usize), (3, 4)];
        let out: Vec<usize> = jobs.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut empty: Vec<f32> = Vec::new();
        empty.par_chunks_mut(8).for_each(|_| unreachable!());
        let out: Vec<i32> = (0..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
