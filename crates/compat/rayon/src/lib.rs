//! Vendored, API-compatible subset of [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no crates.io access, so the workspace ships this
//! shim under the same package name and routes it through
//! `[workspace.dependencies]`. Swapping back to the real rayon is a one-line
//! change in the root `Cargo.toml`; no source file changes (the extra
//! [`with_serial`] / [`spawned_workers`] helpers are used by tests only).
//!
//! The parallelism is real and runs on a **persistent worker pool**
//! (`pool` module): workers are spawned once per process (lazily, honoring
//! `RAYON_NUM_THREADS`), park on a condvar between jobs, and are fed from a
//! chunked work queue. Each `par_*` call splits its items into contiguous
//! ordered chunks; the caller helps execute chunks alongside the workers and
//! returns once the job is drained. Nested `par_*` calls from inside a worker
//! run inline, so nesting cannot deadlock; a panicking task poisons only its
//! own job (the panic is re-thrown on the caller, workers survive).
//!
//! Only the surface the workspace actually uses is implemented:
//!
//! * `slice.par_chunks_mut(n)` (+ `.zip()`, `.enumerate()`, `.for_each()`)
//! * `collection.par_iter().map(f).collect()`
//! * `range.into_par_iter().map(f).collect()`
//! * [`current_num_threads`]

use std::sync::Mutex;

mod pool;

/// Items most users need; mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Number of threads `par_*` calls fan out to (mirrors
/// `rayon::current_num_threads`): `RAYON_NUM_THREADS` if set, else available
/// parallelism.
pub fn current_num_threads() -> usize {
    pool::Pool::global().threads()
}

/// **Shim extension** (not in real rayon): run `f` with every `par_*` call
/// on this thread executing serially, in item order, on this thread. Used by
/// tests to check parallel execution is bit-identical to serial.
pub fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    pool::with_serial(f)
}

/// **Shim extension** (not in real rayon): how many pool workers this
/// process has ever spawned. The persistent-pool contract is that this value
/// never exceeds [`current_num_threads`] no matter how many `par_*` calls
/// run.
pub fn spawned_workers() -> usize {
    pool::spawned_workers()
}

#[cfg(test)]
pub(crate) use pool::parse_num_threads;

/// Fan a chunk of work items out across the pool: items are split into
/// contiguous groups (≈2 per thread for mild load balancing), each group is
/// claimed and mapped by exactly one thread, and results return in the
/// original order.
fn exec_ordered<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let worker_pool = pool::Pool::global();
    if n <= 1 || worker_pool.threads() <= 1 || pool::must_run_inline() {
        return items.into_iter().map(f).collect();
    }
    let group_count = (worker_pool.threads() * 2).min(n);
    let per_group = n.div_ceil(group_count);
    let mut groups: Vec<Mutex<Option<Vec<I>>>> = Vec::with_capacity(group_count);
    let mut it = items.into_iter();
    loop {
        let group: Vec<I> = it.by_ref().take(per_group).collect();
        if group.is_empty() {
            break;
        }
        groups.push(Mutex::new(Some(group)));
    }
    // One result slot per group; Mutex (not OnceLock) so `R: Sync` is not
    // required. Each slot is written exactly once, by the claiming thread.
    let slots: Vec<Mutex<Option<Vec<R>>>> = groups.iter().map(|_| Mutex::new(None)).collect();
    worker_pool.run(groups.len(), &|gi: usize| {
        let group = groups[gi]
            .lock()
            .expect("group lock")
            .take()
            .expect("each group is claimed exactly once");
        let mapped: Vec<R> = group.into_iter().map(f).collect();
        *slots[gi].lock().expect("slot lock") = Some(mapped);
    });
    slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every group executed")
        })
        .collect()
}

/// The one concrete parallel iterator. Pre-collects its items (they are
/// cheap: slice borrows or small scalars at every workspace call site) and
/// fans out on the consuming call.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        exec_ordered(self.items, &f);
    }

    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Lazy `map` adapter; the parallel execution happens in [`ParMap::collect`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F>
where
    I: Send,
{
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        C: FromIterator<R>,
    {
        exec_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Marker trait so `use rayon::prelude::*` call sites that name
/// `ParallelIterator` keep compiling; the methods live on [`ParIter`].
pub trait ParallelIterator {}
impl<I> ParallelIterator for ParIter<I> {}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
{
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter()` borrowing counterpart.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Ensure the pool width is pinned (tests): `RAYON_NUM_THREADS=4` must be in
/// place before the first `par_*` call initialises the global pool, and this
/// helper is called at the top of every pool-touching test so any test order
/// works.
#[cfg(test)]
fn pin_test_pool() {
    static PIN: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    PIN.get_or_init(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        pin_test_pool();
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        for (idx, &x) in data.iter().enumerate() {
            assert_eq!(x, 1 + (idx / 64) as u64);
        }
    }

    #[test]
    fn zip_pairs_rows_in_order() {
        pin_test_pool();
        let mut a = vec![0usize; 12];
        let mut b = vec![0usize; 6];
        a.par_chunks_mut(4)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ar, br))| {
                ar.iter_mut().for_each(|x| *x = i + 1);
                br.iter_mut().for_each(|x| *x = 10 * (i + 1));
            });
        assert_eq!(a, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
        assert_eq!(b, vec![10, 10, 20, 20, 30, 30]);
    }

    #[test]
    fn map_collect_preserves_order() {
        pin_test_pool();
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn par_iter_borrows() {
        pin_test_pool();
        let jobs = vec![(1usize, 2usize), (3, 4)];
        let out: Vec<usize> = jobs.par_iter().map(|&(a, b)| a + b).collect();
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn empty_input_is_fine() {
        pin_test_pool();
        let mut empty: Vec<f32> = Vec::new();
        empty.par_chunks_mut(8).for_each(|_| unreachable!());
        let out: Vec<i32> = (0..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn workers_spawn_at_most_once() {
        pin_test_pool();
        // Hammer the pool with many separate par_* calls …
        for round in 0..50 {
            let out: Vec<usize> = (0..256usize).into_par_iter().map(|x| x + round).collect();
            assert_eq!(out.len(), 256);
        }
        // … and the process-wide spawn count stays bounded by the pool width.
        assert!(
            spawned_workers() <= current_num_threads(),
            "spawned {} workers for a {}-wide pool",
            spawned_workers(),
            current_num_threads()
        );
    }

    #[test]
    fn nested_par_calls_do_not_deadlock() {
        pin_test_pool();
        // Outer par over rows, inner par per row: inner calls run inline on
        // workers (or enqueue from the caller), so this must complete.
        let rows: Vec<Vec<u64>> = (0..64u64)
            .into_par_iter()
            .map(|i| {
                let row: Vec<u64> = (0..64u64).into_par_iter().map(|j| i * j).collect();
                row
            })
            .collect();
        let out: Vec<u64> = rows.into_iter().map(|row| row.into_iter().sum()).collect();
        for (i, &s) in out.iter().enumerate() {
            assert_eq!(s, i as u64 * (63 * 64 / 2));
        }
    }

    #[test]
    fn deeply_nested_for_each() {
        pin_test_pool();
        let mut data = vec![0u32; 512];
        data.par_chunks_mut(32).for_each(|chunk| {
            chunk.par_chunks_mut(4).for_each(|inner| {
                inner.par_chunks_mut(1).for_each(|cell| cell[0] += 1);
            });
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn panic_poisons_only_its_job() {
        pin_test_pool();
        let boom = std::panic::catch_unwind(|| {
            (0..128usize).into_par_iter().for_each(|i| {
                if i == 97 {
                    panic!("task 97 exploded");
                }
            });
        });
        let payload = boom.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
        // The pool survives: the next job runs to completion.
        let out: Vec<usize> = (0..128usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out[100], 200);
        assert!(spawned_workers() <= current_num_threads());
    }

    #[test]
    fn with_serial_matches_parallel() {
        pin_test_pool();
        let par: Vec<u64> = (0..333u64).into_par_iter().map(|x| x * 7).collect();
        let ser: Vec<u64> = with_serial(|| (0..333u64).into_par_iter().map(|x| x * 7).collect());
        assert_eq!(par, ser);
    }

    #[test]
    fn num_threads_env_parsing() {
        assert_eq!(parse_num_threads(Some("4"), 8), 4);
        assert_eq!(parse_num_threads(Some("0"), 8), 8); // rayon: 0 = default
        assert_eq!(parse_num_threads(Some("garbage"), 8), 8);
        assert_eq!(parse_num_threads(None, 8), 8);
        assert_eq!(parse_num_threads(None, 0), 1); // never zero-wide
    }

    #[test]
    fn current_num_threads_is_positive() {
        pin_test_pool();
        assert!(current_num_threads() >= 1);
    }
}
