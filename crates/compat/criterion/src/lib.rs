//! Vendored, API-compatible subset of
//! [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so the workspace ships this
//! shim under the same package name (see the root `Cargo.toml`). It keeps the
//! macro/bencher surface the two harnesses in `crates/bench/benches/` use, and
//! it really measures: each benchmark is warmed up, then timed over an
//! adaptive iteration count, reporting mean wall-clock time per iteration.
//! No statistics engine, plots, or baseline comparison — swap the dependency
//! back to real criterion for those.
//!
//! Knobs: `CRITERION_SAMPLE_MS` (target measurement window per benchmark,
//! default 200 ms).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn sample_window() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200u64);
    Duration::from_millis(ms)
}

/// Benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a closure: one warm-up call, then an adaptive iteration count sized
/// to fill the sample window, reporting the mean.
pub struct Bencher {
    /// (iterations, total elapsed) of the measured phase.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + pilot measurement.
        let t0 = Instant::now();
        black_box(f());
        let pilot = t0.elapsed().max(Duration::from_nanos(1));
        let window = sample_window();
        let iters = (window.as_nanos() / pilot.as_nanos()).clamp(1, 10_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((iters, t1.elapsed()));
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { result: None };
        f(&mut b);
        match b.result {
            Some((iters, total)) => {
                let mean = total / iters.max(1) as u32;
                println!(
                    "{}/{:<28} time: {:>12}   ({} iterations)",
                    self.name,
                    id,
                    human(mean),
                    iters
                );
            }
            None => println!("{}/{}  (no measurement recorded)", self.name, id),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        // `cargo bench` forwards harness args (e.g. `--bench`); accepted and
        // ignored — the shim has no filtering.
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            _criterion: self,
        };
        group.run(id.into(), f);
        self
    }

    pub fn final_summary(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher { result: None };
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        let (iters, total) = b.result.expect("measured");
        assert_eq!(calls, iters + 1); // warm-up + measured iterations
        assert!(total >= Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fused", 256).id, "fused/256");
        assert_eq!(BenchmarkId::from_parameter(1024).id, "1024");
    }
}
