//! Vendored, API-compatible subset of
//! [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so the workspace ships this
//! shim under the same package name (see the root `Cargo.toml`). It keeps the
//! macro/bencher surface the harnesses in `crates/bench/benches/` use, and it
//! really measures: each benchmark runs a warm-up window, then a fixed number
//! of timed samples (several iterations each), reporting the mean plus
//! p50/p95/p99 percentiles — and elements/sec throughput when the group set
//! one via [`BenchmarkGroup::throughput`]. Each benchmark additionally writes
//! a small JSON report next to the text output (under
//! `target/criterion-json/` by default) so tooling can diff runs.
//!
//! Knobs:
//! * `CRITERION_SAMPLE_MS` — target measurement window per benchmark
//!   (default 200 ms).
//! * `CRITERION_WARMUP_MS` — warm-up window before sampling (default 50 ms).
//! * `CRITERION_JSON_DIR` — where per-bench JSON lands (default
//!   `target/criterion-json`; empty string disables).

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark; percentiles are computed over
/// per-sample mean iteration times.
const SAMPLES: usize = 20;

fn env_ms(var: &str, default: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    Duration::from_millis(ms)
}

fn sample_window() -> Duration {
    env_ms("CRITERION_SAMPLE_MS", 200)
}

fn warmup_window() -> Duration {
    env_ms("CRITERION_WARMUP_MS", 50)
}

/// Benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput unit for a benchmark group (mirrors `criterion::Throughput`).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (reported as Melem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as MiB/s).
    Bytes(u64),
}

/// Per-benchmark statistics over the timed samples, in nanoseconds per
/// iteration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
    pub samples: usize,
    pub total_iters: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Times a closure: a warm-up window, then `SAMPLES` (20) timed samples of an
/// adaptive iteration count each.
pub struct Bencher {
    /// Per-sample (iterations, elapsed) of the measured phase.
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: at least one call, until the warm-up window elapses; the
        // slowest observed call is the pilot estimate.
        let warmup = warmup_window();
        let mut pilot = Duration::ZERO;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(f());
            pilot = pilot.max(t.elapsed());
            if warm_start.elapsed() >= warmup {
                break;
            }
        }
        let pilot = pilot.max(Duration::from_nanos(1));
        // Split the sample window into SAMPLES batches.
        let per_sample = sample_window() / SAMPLES as u32;
        let iters = (per_sample.as_nanos() / pilot.as_nanos()).clamp(1, 10_000) as u64;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push((iters, t.elapsed()));
        }
    }

    fn stats(&self) -> Option<Stats> {
        if self.samples.is_empty() {
            return None;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|&(iters, total)| total.as_nanos() as f64 / iters.max(1) as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        Some(Stats {
            mean_ns,
            p50_ns: percentile(&per_iter, 50.0),
            p95_ns: percentile(&per_iter, 95.0),
            p99_ns: percentile(&per_iter, 99.0),
            samples: per_iter.len(),
            total_iters: self.samples.iter().map(|&(i, _)| i).sum(),
        })
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn throughput_label(t: Throughput, mean_ns: f64) -> String {
    match t {
        Throughput::Elements(elems) => {
            format!("{:.1} Melem/s", elems as f64 / mean_ns * 1e9 / 1e6)
        }
        Throughput::Bytes(bytes) => {
            format!(
                "{:.1} MiB/s",
                bytes as f64 / mean_ns * 1e9 / (1024.0 * 1024.0)
            )
        }
    }
}

fn json_dir() -> Option<std::path::PathBuf> {
    match std::env::var("CRITERION_JSON_DIR") {
        Ok(s) if s.is_empty() => None,
        Ok(s) => Some(s.into()),
        Err(_) => Some("target/criterion-json".into()),
    }
}

/// Write the per-bench JSON report (flat schema, hand-rolled — the shim has
/// no serde and the fields are all scalars).
fn write_json(group: &str, id: &str, stats: &Stats, throughput: Option<Throughput>) {
    let Some(dir) = json_dir() else { return };
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut body = String::from("{\n");
    let _ = writeln!(body, "  \"group\": \"{}\",", group.replace('"', "'"));
    let _ = writeln!(body, "  \"bench\": \"{}\",", id.replace('"', "'"));
    let _ = writeln!(body, "  \"mean_ns\": {:.1},", stats.mean_ns);
    let _ = writeln!(body, "  \"p50_ns\": {:.1},", stats.p50_ns);
    let _ = writeln!(body, "  \"p95_ns\": {:.1},", stats.p95_ns);
    let _ = writeln!(body, "  \"p99_ns\": {:.1},", stats.p99_ns);
    let _ = writeln!(body, "  \"samples\": {},", stats.samples);
    match throughput {
        Some(Throughput::Elements(e)) => {
            let _ = writeln!(body, "  \"elements\": {e},");
            let _ = writeln!(
                body,
                "  \"elems_per_sec\": {:.0},",
                e as f64 / stats.mean_ns * 1e9
            );
        }
        Some(Throughput::Bytes(b)) => {
            let _ = writeln!(body, "  \"bytes\": {b},");
            let _ = writeln!(
                body,
                "  \"bytes_per_sec\": {:.0},",
                b as f64 / stats.mean_ns * 1e9
            );
        }
        None => {}
    }
    let _ = writeln!(body, "  \"total_iters\": {}", stats.total_iters);
    body.push_str("}\n");
    let file = format!(
        "{}__{}.json",
        group.replace(['/', ' '], "_"),
        id.replace(['/', ' '], "_")
    );
    let _ = std::fs::write(dir.join(file), body);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work amount used for throughput reporting on
    /// subsequent benches in this group (mirrors real criterion).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        match b.stats() {
            Some(stats) => {
                let tp = self
                    .throughput
                    .map(|t| format!("   {}", throughput_label(t, stats.mean_ns)))
                    .unwrap_or_default();
                println!(
                    "{}/{:<28} mean: {:>11}   p50: {:>11}  p95: {:>11}  p99: {:>11}   ({} samples × {} iters){}",
                    self.name,
                    id,
                    human(stats.mean_ns),
                    human(stats.p50_ns),
                    human(stats.p95_ns),
                    human(stats.p99_ns),
                    stats.samples,
                    stats.total_iters / stats.samples.max(1) as u64,
                    tp
                );
                write_json(&self.name, &id, &stats, self.throughput);
            }
            None => println!("{}/{}  (no measurement recorded)", self.name, id),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        // `cargo bench` forwards harness args (e.g. `--bench`); accepted and
        // ignored — the shim has no filtering.
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            throughput: None,
            _criterion: self,
        };
        group.run(id.into(), f);
        self
    }

    pub fn final_summary(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate process environment variables:
    /// concurrent `setenv`/`getenv` is undefined behavior on glibc, so every
    /// env-touching test holds this lock for its whole body.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fast_env() {
        std::env::set_var("CRITERION_SAMPLE_MS", "2");
        std::env::set_var("CRITERION_WARMUP_MS", "1");
    }

    #[test]
    fn bencher_records_samples_and_stats() {
        let _env = env_lock();
        fast_env();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        let stats = b.stats().expect("measured");
        assert_eq!(stats.samples, SAMPLES);
        assert!(calls > stats.total_iters, "warm-up calls must also happen");
        assert!(stats.mean_ns >= 0.0);
        // Percentiles are ordered.
        assert!(stats.p50_ns <= stats.p95_ns);
        assert!(stats.p95_ns <= stats.p99_ns);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn throughput_labels() {
        // 1000 elements in 1 µs = 1000 Melem/s.
        assert_eq!(
            throughput_label(Throughput::Elements(1000), 1_000.0),
            "1000.0 Melem/s"
        );
        let mib = throughput_label(Throughput::Bytes(1024 * 1024), 1e9);
        assert_eq!(mib, "1.0 MiB/s");
    }

    #[test]
    fn json_report_written() {
        let _env = env_lock();
        fast_env();
        let dir = std::env::temp_dir().join("criterion-shim-test-json");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("CRITERION_JSON_DIR", dir.display().to_string());
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.throughput(Throughput::Elements(64));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        let text = std::fs::read_to_string(dir.join("unit__noop.json")).expect("json written");
        assert!(text.contains("\"group\": \"unit\""));
        assert!(text.contains("\"p99_ns\""));
        assert!(text.contains("\"elems_per_sec\""));
        std::env::remove_var("CRITERION_JSON_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fused", 256).id, "fused/256");
        assert_eq!(BenchmarkId::from_parameter(1024).id, "1024");
    }
}
