//! Peak-memory accounting (Figure 16).
//!
//! The paper reports peak memory allocation of each attention mechanism
//! normalised to the dense transformer. Kernels and models register their
//! simulated device allocations here; the tracker keeps the running and peak
//! totals. Dfss's reduction comes from never materialising the dense n×n
//! score matrix: `n²·4` bytes become `n²/2·4 + n²/16·4` (§3.4).

/// A ledger of live simulated-device allocations.
#[derive(Clone, Debug, Default)]
pub struct MemTracker {
    live: Vec<(String, u64, bool)>,
    current: u64,
    peak: u64,
    /// High-water mark since the last [`begin_window`](Self::begin_window)
    /// (used to size the concurrent-residency reservation of batched
    /// launches).
    window_peak: u64,
}

/// Handle to one allocation (index into the ledger).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocId(usize);

impl MemTracker {
    pub fn new() -> MemTracker {
        MemTracker::default()
    }

    /// Register an allocation of `bytes` with a descriptive label.
    pub fn alloc(&mut self, label: impl Into<String>, bytes: u64) -> AllocId {
        self.live.push((label.into(), bytes, true));
        self.current += bytes;
        self.peak = self.peak.max(self.current);
        self.window_peak = self.window_peak.max(self.current);
        AllocId(self.live.len() - 1)
    }

    /// Release an allocation. Double frees panic — they would silently skew
    /// the figure otherwise.
    pub fn free(&mut self, id: AllocId) {
        let entry = &mut self.live[id.0];
        assert!(entry.2, "double free of {:?} ({})", id, entry.0);
        entry.2 = false;
        self.current -= entry.1;
    }

    /// Bytes currently live.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Start a measurement window: the next [`window_peak`](Self::window_peak)
    /// reports the high-water mark from this point on (the global
    /// [`peak`](Self::peak) is unaffected).
    pub fn begin_window(&mut self) {
        self.window_peak = self.current;
    }

    /// High-water mark since the last [`begin_window`](Self::begin_window)
    /// (process start if never called).
    pub fn window_peak(&self) -> u64 {
        self.window_peak
    }

    /// Labels and sizes of currently live allocations (debugging aid).
    pub fn live_allocations(&self) -> impl Iterator<Item = (&str, u64)> {
        self.live
            .iter()
            .filter(|e| e.2)
            .map(|e| (e.0.as_str(), e.1))
    }

    /// Run `f` with a scoped allocation, freeing afterwards.
    pub fn with_alloc<R>(
        &mut self,
        label: &str,
        bytes: u64,
        f: impl FnOnce(&mut MemTracker) -> R,
    ) -> R {
        let id = self.alloc(label, bytes);
        let r = f(self);
        self.free(id);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemTracker::new();
        let a = m.alloc("a", 100);
        let b = m.alloc("b", 50);
        assert_eq!(m.peak(), 150);
        m.free(a);
        assert_eq!(m.current(), 50);
        let c = m.alloc("c", 10);
        assert_eq!(m.peak(), 150, "peak must not decrease");
        m.free(b);
        m.free(c);
        assert_eq!(m.current(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = MemTracker::new();
        let a = m.alloc("a", 1);
        m.free(a);
        m.free(a);
    }

    #[test]
    fn scoped_alloc_frees() {
        let mut m = MemTracker::new();
        let peak_inside = m.with_alloc("scores", 1 << 20, |m| {
            assert_eq!(m.current(), 1 << 20);
            m.peak()
        });
        assert_eq!(peak_inside, 1 << 20);
        assert_eq!(m.current(), 0);
        assert_eq!(m.peak(), 1 << 20);
    }

    #[test]
    fn live_allocations_lists_only_live() {
        let mut m = MemTracker::new();
        let a = m.alloc("scores", 10);
        let _b = m.alloc("meta", 20);
        m.free(a);
        let live: Vec<(&str, u64)> = m.live_allocations().collect();
        assert_eq!(live, vec![("meta", 20)]);
    }

    #[test]
    fn dfss_footprint_ratio_example() {
        // n=1024, f32: dense scores n²·4 vs Dfss n²/2·4 + n²/16·4.
        let n = 1024u64;
        let mut dense = MemTracker::new();
        dense.alloc("scores", n * n * 4);
        let mut dfss = MemTracker::new();
        dfss.alloc("nonzeros", n * n / 2 * 4);
        dfss.alloc("metadata", n * n / 16 * 4);
        let ratio = dense.peak() as f64 / dfss.peak() as f64;
        // 1 / (1/2 + 1/16) = 16/9 ≈ 1.78 — inside the paper's 1.41–1.82x
        // memory-reduction band.
        assert!((ratio - 16.0 / 9.0).abs() < 1e-12);
    }
}
