//! Ordered kernel logs with per-stage aggregation — the data behind the
//! Figure 5 / Figure 15 latency breakdowns.

use crate::device::DeviceConfig;
use crate::profile::{KernelProfile, Stage};

/// An append-only log of executed kernel profiles.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    entries: Vec<KernelProfile>,
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Record one executed kernel.
    pub fn record(&mut self, profile: KernelProfile) {
        self.entries.push(profile);
    }

    /// Append every entry of another timeline.
    pub fn extend(&mut self, other: &Timeline) {
        self.entries.extend(other.entries.iter().cloned());
    }

    pub fn entries(&self) -> &[KernelProfile] {
        &self.entries
    }

    /// Mutable access for launch-batching adjustments (e.g. the paper's
    /// batched multi-head kernel, which folds all heads into one launch).
    pub fn entries_mut(&mut self) -> &mut [KernelProfile] {
        &mut self.entries
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drop every entry past `len` (used when per-panel logs are merged
    /// into batched launches).
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total simulated latency (kernels execute back-to-back).
    pub fn total_latency(&self, dev: &DeviceConfig) -> f64 {
        self.entries.iter().map(|p| p.latency(dev)).sum()
    }

    /// Simulated latency attributed to one stage.
    pub fn stage_latency(&self, stage: Stage, dev: &DeviceConfig) -> f64 {
        self.entries
            .iter()
            .filter(|p| p.stage == stage)
            .map(|p| p.latency(dev))
            .sum()
    }

    /// `(stage, latency)` for all stages, in breakdown order.
    pub fn breakdown(&self, dev: &DeviceConfig) -> Vec<(Stage, f64)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.stage_latency(s, dev)))
            .collect()
    }

    /// Total bytes moved through simulated global memory.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|p| p.bytes_total()).sum()
    }

    /// Bytes moved by one stage.
    pub fn stage_bytes(&self, stage: Stage) -> u64 {
        self.entries
            .iter()
            .filter(|p| p.stage == stage)
            .map(|p| p.bytes_total())
            .sum()
    }

    /// Sum of traffic of kernels whose name matches `pred` (for the fused /
    /// unfused ablation assertions).
    pub fn bytes_where(&self, pred: impl Fn(&KernelProfile) -> bool) -> u64 {
        self.entries
            .iter()
            .filter(|p| pred(p))
            .map(|p| p.bytes_total())
            .sum()
    }

    /// Number of kernel launches.
    pub fn launches(&self) -> u64 {
        self.entries.iter().map(|p| p.launches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TcClass;

    fn p(stage: Stage, read: u64) -> KernelProfile {
        KernelProfile::new("t", stage).with_traffic(read, 0)
    }

    #[test]
    fn totals_and_stage_split() {
        let dev = DeviceConfig::memory_bound_toy();
        let mut tl = Timeline::new();
        tl.record(p(Stage::Qk, 1000));
        tl.record(p(Stage::Softmax, 2000));
        tl.record(p(Stage::Av, 3000));
        assert_eq!(tl.total_bytes(), 6000);
        assert_eq!(tl.stage_bytes(Stage::Softmax), 2000);
        let total = tl.total_latency(&dev);
        let parts: f64 = tl.breakdown(&dev).iter().map(|&(_, t)| t).sum();
        assert!((total - parts).abs() < 1e-15);
    }

    #[test]
    fn breakdown_covers_all_stages() {
        let tl = Timeline::new();
        let dev = DeviceConfig::a100();
        let b = tl.breakdown(&dev);
        assert_eq!(b.len(), 5);
        assert!(b.iter().all(|&(_, t)| t == 0.0));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Timeline::new();
        a.record(p(Stage::Qk, 10));
        let mut b = Timeline::new();
        b.record(p(Stage::Av, 20));
        a.extend(&b);
        assert_eq!(a.entries().len(), 2);
        assert_eq!(a.total_bytes(), 30);
    }

    #[test]
    fn bytes_where_filters_by_name() {
        let mut tl = Timeline::new();
        let mut k = KernelProfile::new("dense_prune", Stage::Overhead).with_traffic(100, 100);
        k.tc_class = TcClass::None;
        tl.record(k);
        tl.record(p(Stage::Qk, 50));
        assert_eq!(tl.bytes_where(|p| p.name == "dense_prune"), 200);
    }

    #[test]
    fn launches_counted() {
        let mut tl = Timeline::new();
        tl.record(p(Stage::Qk, 0));
        tl.record(p(Stage::Av, 0));
        assert_eq!(tl.launches(), 2);
    }
}
