//! Per-kernel cost profiles.

use crate::device::{DeviceConfig, TcClass};

/// Attention pipeline stage a kernel belongs to — the categories of the
/// Figure 5 breakdown, plus `NonAttention` for the rest of the transformer
/// (Figure 15 splits end-to-end time into "Attention" and "Others").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The QKᵀ product (dense GEMM or fused SDDMM).
    Qk,
    /// Softmax over scores (dense or compressed).
    Softmax,
    /// The A·V product (dense GEMM or SpMM).
    Av,
    /// Mechanism-specific extra work: top-k selection, CSR encoding,
    /// landmark pooling, random-feature projection, hashing, sorting …
    Overhead,
    /// Projections, FFN, layer norm, residuals — everything outside
    /// Equation (1).
    NonAttention,
}

impl Stage {
    pub const ALL: [Stage; 5] = [
        Stage::Qk,
        Stage::Softmax,
        Stage::Av,
        Stage::Overhead,
        Stage::NonAttention,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Stage::Qk => "QK^T",
            Stage::Softmax => "Softmax",
            Stage::Av => "AV",
            Stage::Overhead => "Overhead",
            Stage::NonAttention => "Others",
        }
    }
}

/// Cost counters for one executed kernel.
#[derive(Clone, Debug)]
pub struct KernelProfile {
    /// Kernel name, e.g. `"sddmm_prune_epilogue"`.
    pub name: &'static str,
    pub stage: Stage,
    /// Bytes read from simulated global memory.
    pub bytes_read: u64,
    /// Bytes written to simulated global memory.
    pub bytes_written: u64,
    /// Tensor-core multiply-accumulates.
    pub tc_macs: u64,
    /// Functional unit executing `tc_macs`.
    pub tc_class: TcClass,
    /// Scalar ALU operations (exp ≈ 4 ops, compare/shuffle/add ≈ 1 op).
    pub alu_ops: u64,
    /// Kernel launches this profile covers (batched kernels = 1).
    pub launches: u64,
}

impl KernelProfile {
    /// A zeroed profile for incremental accumulation inside a kernel.
    pub fn new(name: &'static str, stage: Stage) -> KernelProfile {
        KernelProfile {
            name,
            stage,
            bytes_read: 0,
            bytes_written: 0,
            tc_macs: 0,
            tc_class: TcClass::None,
            alu_ops: 0,
            launches: 1,
        }
    }

    pub fn with_tc(mut self, macs: u64, class: TcClass) -> KernelProfile {
        self.tc_macs = macs;
        self.tc_class = class;
        self
    }

    pub fn with_traffic(mut self, read: u64, written: u64) -> KernelProfile {
        self.bytes_read = read;
        self.bytes_written = written;
        self
    }

    pub fn with_alu(mut self, ops: u64) -> KernelProfile {
        self.alu_ops = ops;
        self
    }

    /// Total global-memory traffic.
    #[inline]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Memory time under the device's bandwidth.
    pub fn mem_time(&self, dev: &DeviceConfig) -> f64 {
        self.bytes_total() as f64 / dev.dram_bytes_per_sec
    }

    /// Compute time: tensor-core and ALU pipes run concurrently, so take the
    /// max.
    pub fn compute_time(&self, dev: &DeviceConfig) -> f64 {
        let tc = if self.tc_macs == 0 {
            0.0
        } else {
            self.tc_macs as f64 / dev.macs_per_sec(self.tc_class)
        };
        let alu = self.alu_ops as f64 / dev.alu_ops_per_sec;
        tc.max(alu)
    }

    /// Simulated latency: launches + max(memory, compute) — memory and
    /// compute overlap inside a kernel (double-buffered software pipeline,
    /// Appendix A.1.2), so the slower pipe dominates.
    pub fn latency(&self, dev: &DeviceConfig) -> f64 {
        self.launches as f64 * dev.kernel_launch_sec
            + self.mem_time(dev).max(self.compute_time(dev))
    }

    /// Merge another profile into this one (same stage assumed by caller).
    pub fn absorb(&mut self, other: &KernelProfile) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.tc_macs += other.tc_macs;
        if self.tc_class == TcClass::None {
            self.tc_class = other.tc_class;
        }
        self.alu_ops += other.alu_ops;
        self.launches += other.launches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_kernel_latency_is_mem_time() {
        let dev = DeviceConfig::memory_bound_toy();
        let p = KernelProfile::new("k", Stage::Qk)
            .with_traffic(1_000_000, 0)
            .with_tc(1_000, TcClass::DenseTf32);
        // 1 MB at 1 GB/s = 1 ms; compute is negligible on the toy device.
        assert!((p.latency(&dev) - 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_uses_tc_time() {
        let mut dev = DeviceConfig::a100();
        dev.kernel_launch_sec = 0.0;
        let p = KernelProfile::new("k", Stage::Qk)
            .with_traffic(64, 64)
            .with_tc(78_000_000_000, TcClass::DenseTf32);
        // 78e9 MACs at 78e12 MACs/s = 1 ms.
        assert!((p.latency(&dev) - 1.0e-3).abs() < 1e-7);
    }

    #[test]
    fn sparse_tc_reduces_compute_time() {
        let dev = DeviceConfig::a100();
        let dense = KernelProfile::new("d", Stage::Av).with_tc(1 << 40, TcClass::DenseBf16);
        let sparse = KernelProfile::new("s", Stage::Av).with_tc(1 << 39, TcClass::SparseBf16);
        // Half the MACs on a 1.7x-faster unit → 3.4x less compute time.
        let ratio = dense.compute_time(&dev) / sparse.compute_time(&dev);
        assert!((ratio - 3.4).abs() < 1e-9);
    }

    #[test]
    fn launch_overhead_accumulates() {
        let dev = DeviceConfig::a100();
        let p1 = KernelProfile::new("k", Stage::Overhead);
        let mut p = p1.clone();
        p.absorb(&p1);
        p.absorb(&p1);
        assert_eq!(p.launches, 3);
        assert!((p.latency(&dev) - 3.0 * dev.kernel_launch_sec).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_counters() {
        let a = KernelProfile::new("a", Stage::Qk)
            .with_traffic(10, 20)
            .with_tc(5, TcClass::DenseTf32)
            .with_alu(7);
        let mut b = KernelProfile::new("b", Stage::Qk);
        b.absorb(&a);
        b.absorb(&a);
        assert_eq!(b.bytes_read, 20);
        assert_eq!(b.bytes_written, 40);
        assert_eq!(b.tc_macs, 10);
        assert_eq!(b.alu_ops, 14);
        assert_eq!(b.tc_class, TcClass::DenseTf32);
    }

    #[test]
    fn stage_labels() {
        assert_eq!(Stage::Qk.label(), "QK^T");
        assert_eq!(Stage::NonAttention.label(), "Others");
        assert_eq!(Stage::ALL.len(), 5);
    }
}
