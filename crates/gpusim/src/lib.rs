//! # dfss-gpusim — an execution-driven Ampere-like device model
//!
//! The paper's speedups come from an NVIDIA A100: dense/sparse tensor cores
//! plus an HBM memory system, with kernels whose cost Appendix A.3 argues is
//! **memory-bound** ("the latency of matrix multiplication operations, both
//! sparse and dense, are bounded by the memory access"). No Rust bindings to
//! sparse tensor cores exist, so this crate substitutes the machine: kernels
//! in `dfss-kernels` execute the *same tile structure* as the CUDA kernels
//! (thread-block tiles, 16×16 wmma tiles, 32×64-byte prune tiles) and charge
//! each tile's global-memory traffic and tensor-core MACs to a
//! [`KernelProfile`]. A [`DeviceConfig`] then converts the profile into
//! simulated latency = launch overhead + max(memory time, compute time).
//!
//! Because the paper's own analysis derives every speedup from counted
//! memory accesses under tiling reuse (its Table 5), preserving the counts
//! preserves the *shape* of every latency figure; the executed counters
//! additionally capture the overheads (top-k selection, CSR encoding,
//! Performer's extra element-wise traffic) that make the paper's measured
//! curves deviate from its closed forms.
//!
//! Components:
//! * [`DeviceConfig`] — bandwidth/throughput/launch parameters (A100 preset).
//! * [`KernelProfile`] — one executed kernel's traffic & compute counts.
//! * [`Timeline`] — an ordered log of profiles with per-stage aggregation
//!   (the Figure 5 latency breakdown).
//! * [`MemTracker`] — allocation ledger for peak-memory accounting
//!   (Figure 16).

pub mod device;
pub mod memtrack;
pub mod profile;
pub mod timeline;

pub use device::{DeviceConfig, TcClass};
pub use memtrack::MemTracker;
pub use profile::{KernelProfile, Stage};
pub use timeline::Timeline;
