//! Device parameters and the latency model.

/// Which functional unit executes a kernel's multiply-accumulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TcClass {
    /// Dense tensor core, TF32 inputs (the paper's `float` path).
    DenseTf32,
    /// Dense tensor core, bf16 inputs.
    DenseBf16,
    /// Sparse tensor core, TF32 inputs (1:2 compressed operand).
    SparseTf32,
    /// Sparse tensor core, bf16 inputs (2:4 compressed operand).
    SparseBf16,
    /// No tensor core involved (element-wise / reduction kernels).
    None,
}

/// Simulated device parameters.
///
/// The defaults model an A100-SXM4-40GB, the paper's evaluation platform:
/// 1555 GB/s HBM2e, 156 TFLOPS dense TF32 (312 dense bf16), 2× peak on the
/// sparse tensor core de-rated to the paper's observed ~1.7× realised SpMM
/// speedup, ~5 µs kernel launch, 19.5 TFLOPS CUDA-core fp32 for element-wise
/// work.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    pub name: &'static str,
    /// Global-memory bandwidth in bytes/second.
    pub dram_bytes_per_sec: f64,
    /// Dense TF32 tensor-core MACs/second (1 FLOP = ½ MAC).
    pub tf32_macs_per_sec: f64,
    /// Dense bf16 tensor-core MACs/second.
    pub bf16_macs_per_sec: f64,
    /// Realised sparse-tensor-core speedup over dense on the same dtype
    /// (paper §3.2: "the SpMM … can also achieve 1.7× speedup").
    pub sparse_tc_speedup: f64,
    /// CUDA-core scalar ops/second (exp, compare, shuffle, reductions).
    pub alu_ops_per_sec: f64,
    /// Fixed cost per kernel launch, seconds.
    pub kernel_launch_sec: f64,
    /// Thread-block tile size T used by the paper's cost model (T = 128).
    pub tile: usize,
    /// Maximum row length (elements) the softmax kernel can cache in
    /// registers/shared memory; longer rows fall back to the streaming
    /// implementation that re-reads the scores (Appendix A.4's explanation
    /// of the super-theoretical Dfss speedup).
    pub softmax_cache_elems: usize,
}

impl DeviceConfig {
    /// The paper's evaluation device.
    pub fn a100() -> DeviceConfig {
        DeviceConfig {
            name: "A100-SXM4-40GB (simulated)",
            dram_bytes_per_sec: 1.555e12,
            tf32_macs_per_sec: 78.0e12,  // 156 TFLOPS
            bf16_macs_per_sec: 156.0e12, // 312 TFLOPS
            sparse_tc_speedup: 1.7,
            alu_ops_per_sec: 9.75e12,
            kernel_launch_sec: 5.0e-6,
            tile: 128,
            softmax_cache_elems: 2048,
        }
    }

    /// A bandwidth-starved device (useful in tests to confirm the model is
    /// memory-bound where the paper says it is).
    pub fn memory_bound_toy() -> DeviceConfig {
        DeviceConfig {
            name: "toy",
            dram_bytes_per_sec: 1.0e9,
            tf32_macs_per_sec: 1.0e15,
            bf16_macs_per_sec: 1.0e15,
            sparse_tc_speedup: 1.7,
            alu_ops_per_sec: 1.0e15,
            kernel_launch_sec: 0.0,
            tile: 128,
            softmax_cache_elems: 2048,
        }
    }

    /// MAC throughput for a tensor-core class.
    pub fn macs_per_sec(&self, class: TcClass) -> f64 {
        match class {
            TcClass::DenseTf32 => self.tf32_macs_per_sec,
            TcClass::DenseBf16 => self.bf16_macs_per_sec,
            TcClass::SparseTf32 => self.tf32_macs_per_sec * self.sparse_tc_speedup,
            TcClass::SparseBf16 => self.bf16_macs_per_sec * self.sparse_tc_speedup,
            TcClass::None => f64::INFINITY,
        }
    }

    /// Number of read passes over the score matrix the softmax kernel needs
    /// for a given row length: 1 when the row fits in fast memory (max, sum
    /// and normalise reuse the cached row), 3 when it must stream
    /// (Appendix A.1.3: "each element in x has to be loaded for three
    /// times … instead of loading xi from global memory each time, we cache
    /// it in the register when the whole row fits").
    pub fn softmax_read_passes(&self, row_elems: usize) -> u64 {
        if row_elems <= self.softmax_cache_elems {
            1
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_class_is_faster() {
        let d = DeviceConfig::a100();
        assert!(d.macs_per_sec(TcClass::SparseTf32) > d.macs_per_sec(TcClass::DenseTf32));
        assert!(
            (d.macs_per_sec(TcClass::SparseBf16) / d.macs_per_sec(TcClass::DenseBf16) - 1.7).abs()
                < 1e-12
        );
    }

    #[test]
    fn bf16_doubles_tf32() {
        let d = DeviceConfig::a100();
        assert!(
            (d.macs_per_sec(TcClass::DenseBf16) / d.macs_per_sec(TcClass::DenseTf32) - 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn none_class_costs_nothing() {
        let d = DeviceConfig::a100();
        assert_eq!(d.macs_per_sec(TcClass::None), f64::INFINITY);
    }

    #[test]
    fn softmax_passes_threshold() {
        let d = DeviceConfig::a100();
        assert_eq!(d.softmax_read_passes(512), 1);
        assert_eq!(d.softmax_read_passes(2048), 1);
        assert_eq!(d.softmax_read_passes(2049), 3);
        assert_eq!(d.softmax_read_passes(4096), 3);
    }
}
