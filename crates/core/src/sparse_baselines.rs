//! Sparse-pattern baselines: explicit top-k, fixed sparsity, local windows,
//! and BigBird-style block sparsity (± Dfss inside the blocks).
//!
//! These are the comparison points of §4.3–4.4 and Figures 11–13:
//! * **Top-k** keeps the k largest scores per row — the quality upper bound,
//!   but it must compute the full dense QKᵀ first, run an expensive
//!   selection, encode CSR, and then execute a reuse-poor SpMM.
//! * **Fixed** sparsity is GPU-friendly (the pattern is known offline; we
//!   use the paper's Figure 11 instantiation, truncating the key range to
//!   the first `s·n` columns) but its mask is data-oblivious, so its quality
//!   is only `s` (Prop 4.2).
//! * **Local** attends inside a sliding window (Parmar et al., the "Local
//!   Attention" row of Table 4).
//! * **BigBird-style block sparse** uses global + window + random blocks;
//!   with [`BlockSparseAttention::with_dfss`] each active block is further
//!   pruned N:M — the Figure 18(A) combination.

use crate::mechanism::{check_qkv, Attention};
use dfss_gpusim::{KernelProfile, Stage};
use dfss_kernels::{ell, gemm, softmax, spmm, topk, GpuCtx};
use dfss_nmsparse::{BlockedEll, NmPattern};
use dfss_tensor::{math, Matrix, Scalar};
use rayon::prelude::*;

/// Explicit top-k sparse attention (Zhao et al. 2019 style).
#[derive(Clone, Copy, Debug)]
pub struct TopKAttention {
    /// Kept entries per row.
    pub k: usize,
}

impl TopKAttention {
    pub fn new(k: usize) -> TopKAttention {
        TopKAttention { k }
    }

    /// k chosen to hit a target density `s = k/n` at sequence length `n`.
    pub fn with_density(n: usize, s: f64) -> TopKAttention {
        TopKAttention {
            k: ((n as f64 * s).round() as usize).max(1),
        }
    }
}

impl<T: Scalar> Attention<T> for TopKAttention {
    fn name(&self) -> String {
        format!("Top-{} ({})", self.k, T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        // Full dense scores are unavoidable — selection needs them all.
        let scores_id = ctx
            .mem
            .alloc("scores_dense_topk", (n * n * T::BYTES) as u64);
        let scores = gemm::gemm_nt(ctx, Stage::Qk, q, k, scale);
        let mut csr = topk::topk_csr(ctx, &scores, self.k);
        ctx.mem.free(scores_id);
        let csr_id = ctx.mem.alloc("csr_topk", csr.bytes() as u64);
        softmax::softmax_csr(ctx, &mut csr);
        let out = spmm::spmm_csr(ctx, &csr, v);
        ctx.mem.free(csr_id);
        out
    }
}

/// Fixed sparsity as instantiated for Figure 11: attend only to the first
/// `⌈s·n⌉` keys ("simply truncate the number of columns of the attention
/// weight matrix based on the density"). The pattern is known offline, so it
/// pays no selection overhead — but it is data-oblivious.
#[derive(Clone, Copy, Debug)]
pub struct FixedColumnsAttention {
    pub density: f64,
}

impl FixedColumnsAttention {
    pub fn new(density: f64) -> FixedColumnsAttention {
        assert!(density > 0.0 && density <= 1.0);
        FixedColumnsAttention { density }
    }
}

impl<T: Scalar> Attention<T> for FixedColumnsAttention {
    fn name(&self) -> String {
        format!("Fixed s={} ({})", self.density, T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let keep = ((n as f64 * self.density).ceil() as usize).clamp(1, n);
        let k_kept = k.take_rows(0, keep);
        let v_kept = v.take_rows(0, keep);
        let scores_id = ctx.mem.alloc("scores_fixed", (n * keep * T::BYTES) as u64);
        let scores = gemm::gemm_nt(ctx, Stage::Qk, q, &k_kept, scale);
        let weights = softmax::softmax_dense(ctx, &scores);
        let out = gemm::gemm_nn(ctx, Stage::Av, &weights, &v_kept);
        ctx.mem.free(scores_id);
        let _ = d;
        out
    }
}

/// Sliding-window local attention (Parmar et al. 2018): each query attends
/// to the `window` keys centred on its own position.
#[derive(Clone, Copy, Debug)]
pub struct LocalAttention {
    pub window: usize,
}

impl LocalAttention {
    pub fn new(window: usize) -> LocalAttention {
        assert!(window > 0);
        LocalAttention { window }
    }
}

impl<T: Scalar> Attention<T> for LocalAttention {
    fn name(&self) -> String {
        format!("Local w={} ({})", self.window, T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let w = self.window.min(n);
        // Band GEMM: n×w scores, then softmax, then band AV.
        gemm::charge_gemm::<T>(ctx, "band_qk", Stage::Qk, n, w, d);
        ctx.record(
            KernelProfile::new("band_softmax", Stage::Softmax)
                .with_traffic((2 * n * w * T::BYTES) as u64, (n * w * T::BYTES) as u64)
                .with_alu((n * w) as u64 * 6),
        );
        gemm::charge_gemm::<T>(ctx, "band_av", Stage::Av, n, d, w);
        let band_id = ctx.mem.alloc("scores_band", (n * w * T::BYTES) as u64);
        if !ctx.exec {
            ctx.mem.free(band_id);
            return Matrix::zeros(n, v.cols());
        }

        let qw: Vec<f32> = q.as_slice().iter().map(|x| x.to_mul()).collect();
        let kw: Vec<f32> = k.as_slice().iter().map(|x| x.to_mul()).collect();
        let vw: Vec<f32> = v.as_slice().iter().map(|x| x.to_mul()).collect();
        let dv = v.cols();
        let mut out = vec![T::zero(); n * dv];
        out.par_chunks_mut(dv).enumerate().for_each(|(i, orow)| {
            let lo = i.saturating_sub(w / 2).min(n - w);
            let qrow = &qw[i * d..(i + 1) * d];
            let mut s = vec![0.0f32; w];
            for (j, sj) in s.iter_mut().enumerate() {
                let krow = &kw[(lo + j) * d..(lo + j + 1) * d];
                *sj = qrow.iter().zip(krow).map(|(a, b)| a * b).sum::<f32>() * scale;
            }
            math::softmax_row(&mut s);
            let mut acc = vec![0.0f32; dv];
            for (j, &p) in s.iter().enumerate() {
                let vrow = &vw[(lo + j) * dv..(lo + j + 1) * dv];
                for (a, &x) in acc.iter_mut().zip(vrow) {
                    *a += p * x;
                }
            }
            for (o, &x) in orow.iter_mut().zip(&acc) {
                *o = T::from_acc(x);
            }
        });
        ctx.mem.free(band_id);
        Matrix::from_vec(n, dv, out)
    }
}

/// BigBird-style block-sparse attention: global + sliding-window + random
/// blocks, dense inside each active block; optionally Dfss-pruned inside the
/// blocks (Figure 18(A)).
#[derive(Clone, Debug)]
pub struct BlockSparseAttention {
    pub block: usize,
    pub global_blocks: usize,
    pub window_blocks: usize,
    pub random_blocks: usize,
    pub seed: u64,
    /// `Some(pattern)` applies N:M pruning inside the active blocks.
    pub dfss: Option<NmPattern>,
}

impl BlockSparseAttention {
    pub fn bigbird(block: usize, seed: u64) -> BlockSparseAttention {
        BlockSparseAttention {
            block,
            global_blocks: 1,
            window_blocks: 3,
            random_blocks: 2,
            seed,
            dfss: None,
        }
    }

    /// Combine with Dfss inside the active blocks.
    pub fn with_dfss(mut self, pattern: NmPattern) -> BlockSparseAttention {
        self.dfss = Some(pattern);
        self
    }

    fn pattern_for(&self, n: usize) -> BlockedEll {
        let mut rng = dfss_tensor::Rng::new(self.seed);
        BlockedEll::bigbird(
            n,
            n,
            self.block,
            self.global_blocks,
            self.window_blocks,
            self.random_blocks,
            &mut rng,
        )
    }
}

impl<T: Scalar> Attention<T> for BlockSparseAttention {
    fn name(&self) -> String {
        match self.dfss {
            Some(p) => format!("BigBird+Dfss {} ({})", p, T::NAME),
            None => format!("BigBird ({})", T::NAME),
        }
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let ellpat = self.pattern_for(n);

        if let Some(pattern) = self.dfss {
            let id = ctx.mem.alloc(
                "scores_bigbird_nm",
                (n * ellpat.ell_width() * self.block * T::BYTES) as u64 / 2,
            );
            let mut a = ell::sddmm_ell_nm_fused(ctx, q, k, scale, pattern, &ellpat);
            ell::softmax_ell_nm(ctx, &mut a);
            let out = ell::spmm_ell_nm(ctx, &a, v);
            ctx.mem.free(id);
            return out;
        }

        // Dense-within-blocks path.
        let b = self.block;
        let packed = ellpat.ell_width() * b;
        gemm::charge_gemm::<T>(ctx, "block_qk", Stage::Qk, n, packed, d);
        ctx.record(
            KernelProfile::new("block_softmax", Stage::Softmax)
                .with_traffic(
                    (2 * n * packed * T::BYTES) as u64,
                    (n * packed * T::BYTES) as u64,
                )
                .with_alu((n * packed) as u64 * 6),
        );
        gemm::charge_gemm::<T>(ctx, "block_av", Stage::Av, n, d, packed);
        let id = ctx
            .mem
            .alloc("scores_bigbird", (n * packed * T::BYTES) as u64);
        if !ctx.exec {
            ctx.mem.free(id);
            return Matrix::zeros(n, v.cols());
        }

        let qw: Vec<f32> = q.as_slice().iter().map(|x| x.to_mul()).collect();
        let kw: Vec<f32> = k.as_slice().iter().map(|x| x.to_mul()).collect();
        let vw: Vec<f32> = v.as_slice().iter().map(|x| x.to_mul()).collect();
        let dv = v.cols();
        let mut out = vec![T::zero(); n * dv];
        out.par_chunks_mut(dv).enumerate().for_each(|(i, orow)| {
            let rb = i / b;
            let qrow = &qw[i * d..(i + 1) * d];
            let active = ellpat.row_active(rb);
            let mut s = vec![0.0f32; active.len() * b];
            let mut cols = Vec::with_capacity(active.len() * b);
            for (slot, &cb) in active.iter().enumerate() {
                for j in 0..b {
                    let c = cb as usize * b + j;
                    cols.push(c);
                    let krow = &kw[c * d..(c + 1) * d];
                    s[slot * b + j] =
                        qrow.iter().zip(krow).map(|(a, b)| a * b).sum::<f32>() * scale;
                }
            }
            math::softmax_row(&mut s);
            let mut acc = vec![0.0f32; dv];
            for (&c, &p) in cols.iter().zip(&s) {
                let vrow = &vw[c * dv..(c + 1) * dv];
                for (a, &x) in acc.iter_mut().zip(vrow) {
                    *a += p * x;
                }
            }
            for (o, &x) in orow.iter_mut().zip(&acc) {
                *o = T::from_acc(x);
            }
        });
        ctx.mem.free(id);
        Matrix::from_vec(n, dv, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::{reference_attention, FullAttention};
    use dfss_tensor::Rng;

    fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = Rng::new(seed);
        (
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        )
    }

    #[test]
    fn topk_with_k_equal_n_matches_full() {
        let (q, k, v) = qkv(32, 8, 1);
        let mut ctx = GpuCtx::a100();
        let out = TopKAttention::new(32).forward(&mut ctx, &q, &k, &v);
        let reference = reference_attention(&q, &k, &v);
        assert!(out.max_abs_diff(&reference) < 1e-2);
    }

    #[test]
    fn topk_records_overhead_stage() {
        let (q, k, v) = qkv(64, 16, 2);
        let mut ctx = GpuCtx::a100();
        let _ = TopKAttention::new(8).forward(&mut ctx, &q, &k, &v);
        assert!(ctx.timeline.stage_latency(Stage::Overhead, &ctx.dev) > 0.0);
    }

    #[test]
    fn topk_slower_than_dfss_at_same_density_on_sim() {
        // §4.4: at equal density 0.5, Dfss wins because top-k pays selection
        // + CSR + reuse-poor SpMM.
        let (q, k, v) = qkv(1024, 64, 3);
        let mut ct = GpuCtx::a100();
        let mut cd = GpuCtx::a100();
        let _ = TopKAttention::with_density(1024, 0.5).forward(&mut ct, &q, &k, &v);
        let _ = crate::DfssAttention::new(NmPattern::P1_2).forward(&mut cd, &q, &k, &v);
        assert!(ct.latency() > cd.latency());
    }

    #[test]
    fn fixed_density_one_matches_full() {
        let (q, k, v) = qkv(32, 8, 4);
        let mut ctx = GpuCtx::a100();
        let out = FixedColumnsAttention::new(1.0).forward(&mut ctx, &q, &k, &v);
        assert!(out.max_abs_diff(&reference_attention(&q, &k, &v)) < 1e-2);
    }

    #[test]
    fn fixed_truncation_uses_prefix_keys_only() {
        let (q, k, v) = qkv(32, 8, 5);
        let mut ctx = GpuCtx::a100();
        let out = FixedColumnsAttention::new(0.25).forward(&mut ctx, &q, &k, &v);
        // Manually: softmax over first 8 keys only.
        let keep = 8;
        let reference = reference_attention(
            &q,
            &k.take_rows(0, keep)
                .vstack(&Matrix::from_fn(32 - keep, 8, |_, _| -1e30_f32)),
            &v,
        );
        // Rows beyond keep have ≈0 weight, so compare with direct compute.
        assert_eq!(out.shape(), (32, 8));
        let _ = reference;
        // Direct check: output = softmax(q·k[0..8]ᵀ)·v[0..8].
        let scores = q.matmul_ref(&k.take_rows(0, keep).transpose());
        let mut w = scores.clone();
        for r in 0..32 {
            let row = w.row_mut(r);
            row.iter_mut().for_each(|x| *x *= 1.0 / (8.0f32).sqrt());
            math::softmax_row(row);
        }
        let expect = w.matmul_ref(&v.take_rows(0, keep));
        assert!(out.max_abs_diff(&expect) < 1e-2);
    }

    #[test]
    fn fixed_cheaper_than_full_on_sim() {
        let (q, k, v) = qkv(512, 64, 6);
        let mut cf = GpuCtx::a100();
        let mut cx = GpuCtx::a100();
        let _ = FullAttention.forward(&mut cf, &q, &k, &v);
        let _ = FixedColumnsAttention::new(0.25).forward(&mut cx, &q, &k, &v);
        assert!(cx.latency() < cf.latency());
    }

    #[test]
    fn local_rows_sum_to_one_implicitly() {
        // Convexity check like full attention, but windowed.
        let (q, k, v) = qkv(64, 8, 7);
        let mut ctx = GpuCtx::a100();
        let out = LocalAttention::new(16).forward(&mut ctx, &q, &k, &v);
        for c in 0..8 {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for r in 0..64 {
                lo = lo.min(v.get(r, c));
                hi = hi.max(v.get(r, c));
            }
            for r in 0..64 {
                let x = out.get(r, c);
                assert!(x >= lo - 1e-4 && x <= hi + 1e-4);
            }
        }
    }

    #[test]
    fn local_window_larger_than_n_equals_full() {
        let (q, k, v) = qkv(16, 8, 8);
        let mut ctx = GpuCtx::a100();
        let out = LocalAttention::new(64).forward(&mut ctx, &q, &k, &v);
        assert!(out.max_abs_diff(&reference_attention(&q, &k, &v)) < 1e-2);
    }

    #[test]
    fn bigbird_runs_both_variants() {
        let (q, k, v) = qkv(128, 16, 9);
        let mut c1 = GpuCtx::a100();
        let plain = BlockSparseAttention::bigbird(32, 42).forward(&mut c1, &q, &k, &v);
        let mut c2 = GpuCtx::a100();
        let hybrid = BlockSparseAttention::bigbird(32, 42)
            .with_dfss(NmPattern::P1_2)
            .forward(&mut c2, &q, &k, &v);
        assert_eq!(plain.shape(), (128, 16));
        assert_eq!(hybrid.shape(), (128, 16));
        // Dfss halves the score traffic inside blocks → hybrid moves fewer
        // bytes.
        assert!(c2.timeline.total_bytes() < c1.timeline.total_bytes());
    }

    #[test]
    fn bigbird_deterministic_given_seed() {
        let (q, k, v) = qkv(128, 16, 10);
        let mut c1 = GpuCtx::a100();
        let mut c2 = GpuCtx::a100();
        let a = BlockSparseAttention::bigbird(32, 7).forward(&mut c1, &q, &k, &v);
        let b = BlockSparseAttention::bigbird(32, 7).forward(&mut c2, &q, &k, &v);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
