//! Attention-weight visualisation (Figure 19).
//!
//! The paper renders heat maps of the first-layer attention weights under
//! dense, 1:2 and 2:4 settings to show the sparse patterns track the dense
//! one. A terminal cannot show images, so we render density-scaled ASCII
//! blocks and emit CSV for external plotting.

use dfss_tensor::Matrix;

/// Shade characters from empty to full.
const SHADES: [char; 10] = [' ', '·', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render a matrix as an ASCII heat map, downsampling to at most
/// `max_edge × max_edge` character cells (each cell shows the mean of its
/// patch).
pub fn ascii_heatmap(a: &Matrix<f32>, max_edge: usize) -> String {
    let (rows, cols) = a.shape();
    let r_step = rows.div_ceil(max_edge).max(1);
    let c_step = cols.div_ceil(max_edge).max(1);
    let out_rows = rows.div_ceil(r_step);
    let out_cols = cols.div_ceil(c_step);

    // Patch means.
    let mut cells = vec![0.0f32; out_rows * out_cols];
    for (or, cell_row) in cells.chunks_mut(out_cols).enumerate() {
        for (oc, cell) in cell_row.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            let mut count = 0usize;
            for r in or * r_step..((or + 1) * r_step).min(rows) {
                for c in oc * c_step..((oc + 1) * c_step).min(cols) {
                    sum += a.get(r, c);
                    count += 1;
                }
            }
            *cell = sum / count.max(1) as f32;
        }
    }
    let max = cells.iter().copied().fold(f32::MIN, f32::max);
    let min = cells.iter().copied().fold(f32::MAX, f32::min).min(0.0);
    let span = (max - min).max(1e-12);

    let mut s = String::with_capacity(out_rows * (out_cols + 1));
    for row in cells.chunks(out_cols) {
        for &v in row {
            let t = ((v - min) / span * (SHADES.len() - 1) as f32).round() as usize;
            s.push(SHADES[t.min(SHADES.len() - 1)]);
        }
        s.push('\n');
    }
    s
}

/// CSV serialisation (row per line) for external plotting tools.
pub fn to_csv(a: &Matrix<f32>) -> String {
    let mut s = String::new();
    for r in 0..a.rows() {
        let cells: Vec<String> = a.row(r).iter().map(|v| format!("{v:.6}")).collect();
        s.push_str(&cells.join(","));
        s.push('\n');
    }
    s
}

/// Fraction of exactly-zero entries — the sparsity a Figure 19 heat map
/// displays for the 1:2 / 2:4 panels.
pub fn zero_fraction(a: &Matrix<f32>) -> f64 {
    let zeros = a.as_slice().iter().filter(|&&v| v == 0.0).count();
    zeros as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shape_and_shading() {
        let a = Matrix::<f32>::from_fn(8, 8, |r, c| if r == c { 1.0 } else { 0.0 });
        let map = ascii_heatmap(&a, 8);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.chars().count() == 8));
        // Diagonal dominates → the densest shade on the diagonal.
        assert_eq!(lines[0].chars().next().unwrap(), '@');
        assert_eq!(lines[1].chars().next().unwrap(), ' ');
    }

    #[test]
    fn heatmap_downsamples() {
        let a = Matrix::<f32>::zeros(100, 100);
        let map = ascii_heatmap(&a, 10);
        assert_eq!(map.lines().count(), 10);
    }

    #[test]
    fn csv_roundtrippable() {
        let a = Matrix::<f32>::from_vec(2, 2, vec![1.0, 2.5, -3.0, 0.0]);
        let csv = to_csv(&a);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("1.000000,2.500000"));
    }

    #[test]
    fn zero_fraction_of_half_pruned() {
        let a = Matrix::<f32>::from_fn(4, 4, |_, c| if c % 2 == 0 { 1.0 } else { 0.0 });
        assert!((zero_fraction(&a) - 0.5).abs() < 1e-12);
    }
}
