//! Clustering/sorting baselines: Reformer (LSH), Routing Transformer
//! (k-means) and Sparse Sinkhorn attention (block matching).
//!
//! These compute full attention inside dynamically formed groups. §2.2's
//! critique — "the clustering methods contain several GPU-unfriendly
//! operators like top-k and sorting that offsets their benefits under
//! moderate sequence length" — is reproduced by charging the grouping
//! machinery (projections, argmax, sorting, gathering) to the `Overhead`
//! stage of the simulated timeline.

use crate::mechanism::{check_qkv, Attention};
use dfss_gpusim::{KernelProfile, Stage};
use dfss_kernels::{gemm, GpuCtx};
use dfss_tensor::{math, Matrix, Rng, Scalar};

/// Attend within index groups: every query in `group` attends to all keys in
/// the same group (plus nothing else). Shared helper for all three
/// mechanisms; charges block-diagonal attention costs.
fn grouped_attention<T: Scalar>(
    ctx: &mut GpuCtx,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    groups: &[Vec<usize>],
    scale: f32,
) -> Matrix<T> {
    let (n, d) = (q.rows(), q.cols());
    let dv = v.cols();
    let qf = q.to_f32();
    let kf = k.to_f32();
    let vf = v.to_f32();
    let mut out = Matrix::<T>::zeros(n, dv);

    // Aggregate the per-group tiled GEMM costs into one profile per stage
    // (each group is an independent g×g×d attention block).
    let t = ctx.dev.tile as u64;
    let bytes = T::BYTES as u64;
    let (mut qk_reads, mut qk_writes, mut macs) = (0u64, 0u64, 0u64);
    let (mut av_reads, mut av_writes, mut av_macs) = (0u64, 0u64, 0u64);
    let mut score_elems = 0u64;
    for g in groups {
        let glen = g.len() as u64;
        if glen == 0 {
            continue;
        }
        score_elems += glen * glen;
        let tg = t.min(glen);
        let tiles = glen.div_ceil(tg);
        qk_reads += tiles * tiles * (tg * d as u64 + d as u64 * tg) * bytes;
        qk_writes += glen * glen * bytes;
        macs += glen * glen * d as u64;
        let tiles_av = glen.div_ceil(tg);
        av_reads += tiles_av * (tg * glen + glen * dv as u64) * bytes;
        av_writes += glen * dv as u64 * bytes;
        av_macs += glen * glen * dv as u64;
    }
    ctx.record(
        KernelProfile::new("grouped_qk", Stage::Qk)
            .with_traffic(qk_reads, qk_writes)
            .with_tc(macs, dfss_kernels::ctx::dense_class::<T>()),
    );
    ctx.record(
        KernelProfile::new("grouped_softmax", Stage::Softmax)
            .with_traffic(2 * score_elems * bytes, score_elems * bytes)
            .with_alu(score_elems * 6),
    );
    ctx.record(
        KernelProfile::new("grouped_av", Stage::Av)
            .with_traffic(av_reads, av_writes)
            .with_tc(av_macs, dfss_kernels::ctx::dense_class::<T>()),
    );
    if !ctx.exec {
        return out;
    }

    for g in groups {
        let glen = g.len();
        if glen == 0 {
            continue;
        }
        let mut scores = vec![0.0f32; glen];
        for (qi_pos, &qi) in g.iter().enumerate() {
            let _ = qi_pos;
            let qrow = qf.row(qi);
            for (s, &kj) in scores.iter_mut().zip(g.iter()) {
                *s = qrow.iter().zip(kf.row(kj)).map(|(a, b)| a * b).sum::<f32>() * scale;
            }
            math::softmax_row(&mut scores);
            let orow = out.row_mut(qi);
            for (&kj, &p) in g.iter().zip(scores.iter()) {
                for (o, &x) in orow.iter_mut().zip(vf.row(kj)) {
                    *o = T::from_acc(o.to_acc() + p * x);
                }
            }
        }
    }
    out
}

/// Reformer-style LSH attention (Kitaev et al. 2020), one hash round:
/// random-rotation bucketing, sort by bucket, fixed-size chunks attending to
/// themselves and their predecessor chunk.
#[derive(Clone, Debug)]
pub struct ReformerAttention {
    pub chunk: usize,
    pub buckets: usize,
    pub seed: u64,
}

impl ReformerAttention {
    pub fn new(chunk: usize, seed: u64) -> ReformerAttention {
        ReformerAttention {
            chunk,
            buckets: 16,
            seed,
        }
    }
}

impl<T: Scalar> Attention<T> for ReformerAttention {
    fn name(&self) -> String {
        format!("Reformer ({})", T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let b = self.buckets.max(2);
        let mut rng = Rng::new(self.seed);
        let r = Matrix::<f32>::random_normal(b / 2, d, 0.0, 1.0, &mut rng);

        // Hash: project to b/2 dims, bucket = argmax over [p; -p] (Overhead).
        gemm::charge_gemm::<T>(ctx, "lsh_project", Stage::Overhead, n, b / 2, d);
        ctx.record(
            KernelProfile::new("lsh_bucket_sort", Stage::Overhead)
                .with_traffic(
                    (n * (b / 2) * 4 + 3 * n * d * T::BYTES) as u64,
                    (3 * n * d * T::BYTES) as u64,
                )
                .with_alu((n as u64) * (b as u64 + (usize::BITS - n.leading_zeros()) as u64)),
        );
        let qf = q.to_f32();
        let mut order: Vec<(usize, usize)> = (0..n)
            .map(|i| {
                let mut best = (0usize, f32::NEG_INFINITY);
                for h in 0..b / 2 {
                    let p: f32 = qf.row(i).iter().zip(r.row(h)).map(|(a, b)| a * b).sum();
                    if p > best.1 {
                        best = (h, p);
                    }
                    if -p > best.1 {
                        best = (h + b / 2, -p);
                    }
                }
                (best.0, i)
            })
            .collect();
        order.sort_unstable();

        // Chunk the sorted order; each chunk groups with its predecessor.
        let c = self.chunk.min(n).max(1);
        let sorted: Vec<usize> = order.into_iter().map(|(_, i)| i).collect();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let nchunks = n.div_ceil(c);
        for ci in 0..nchunks {
            let lo = ci * c;
            let hi = (lo + c).min(n);
            let mut g: Vec<usize> = sorted[lo..hi].to_vec();
            if ci > 0 {
                let plo = (ci - 1) * c;
                g.extend_from_slice(&sorted[plo..lo]);
            }
            groups.push(g);
        }
        grouped_attention(ctx, q, k, v, &groups, scale)
    }
}

/// Routing Transformer (Roy et al. 2021): k-means clusters over the keys;
/// each query attends within its nearest cluster.
#[derive(Clone, Debug)]
pub struct RoutingAttention {
    pub clusters: usize,
    pub kmeans_iters: usize,
    pub seed: u64,
}

impl RoutingAttention {
    pub fn new(clusters: usize, seed: u64) -> RoutingAttention {
        RoutingAttention {
            clusters,
            kmeans_iters: 3,
            seed,
        }
    }
}

impl<T: Scalar> Attention<T> for RoutingAttention {
    fn name(&self) -> String {
        format!("Routing ({})", T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let c = self.clusters.min(n).max(1);
        let kf = k.to_f32();
        let qf = q.to_f32();
        let mut rng = Rng::new(self.seed);

        // k-means on keys (Overhead): assignment GEMM + centroid update per
        // iteration, plus the top-k-like capacity sort the paper complains
        // about.
        let mut centroids = kf.gather_rows(&rng.sample_indices(n, c));
        let mut assign = vec![0usize; n];
        for _ in 0..self.kmeans_iters {
            gemm::charge_gemm::<T>(ctx, "routing_assign", Stage::Overhead, n, c, d);
            for i in 0..n {
                let mut best = (0usize, f32::NEG_INFINITY);
                for j in 0..c {
                    let dot: f32 = kf
                        .row(i)
                        .iter()
                        .zip(centroids.row(j))
                        .map(|(a, b)| a * b)
                        .sum();
                    if dot > best.1 {
                        best = (j, dot);
                    }
                }
                assign[i] = best.0;
            }
            let mut sums = Matrix::<f32>::zeros(c, d);
            let mut counts = vec![0usize; c];
            for i in 0..n {
                counts[assign[i]] += 1;
                let srow = sums.row_mut(assign[i]);
                for (s, &x) in srow.iter_mut().zip(kf.row(i)) {
                    *s += x;
                }
            }
            for j in 0..c {
                if counts[j] > 0 {
                    let srow = sums.row_mut(j);
                    srow.iter_mut().for_each(|x| *x /= counts[j] as f32);
                }
            }
            centroids = sums;
            ctx.record(
                KernelProfile::new("routing_update", Stage::Overhead)
                    .with_traffic((n * d * 4) as u64, (c * d * 4) as u64)
                    .with_alu((n * d) as u64),
            );
        }

        // Queries route to their nearest centroid; groups = cluster members.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); c];
        for i in 0..n {
            let mut best = (0usize, f32::NEG_INFINITY);
            for j in 0..c {
                let dot: f32 = qf
                    .row(i)
                    .iter()
                    .zip(centroids.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                if dot > best.1 {
                    best = (j, dot);
                }
            }
            groups[best.0].push(i);
        }
        ctx.record(
            KernelProfile::new("routing_gather", Stage::Overhead)
                .with_traffic((3 * n * d * T::BYTES) as u64, (3 * n * d * T::BYTES) as u64)
                .with_alu((n as u64) * (usize::BITS - n.leading_zeros()) as u64),
        );
        grouped_attention(ctx, q, k, v, &groups, scale)
    }
}

/// Sparse Sinkhorn attention (Tay et al. 2020): sequence blocks are matched
/// by a Sinkhorn-normalised block-similarity matrix; each block attends to
/// itself and its matched partner.
#[derive(Clone, Debug)]
pub struct SinkhornAttention {
    pub block: usize,
    pub sinkhorn_iters: usize,
}

impl SinkhornAttention {
    pub fn new(block: usize) -> SinkhornAttention {
        SinkhornAttention {
            block,
            sinkhorn_iters: 5,
        }
    }
}

impl<T: Scalar> Attention<T> for SinkhornAttention {
    fn name(&self) -> String {
        format!("Sinkhorn ({})", T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let b = self.block.min(n).max(1);
        let nb = n / b;
        if nb <= 1 {
            return crate::full::FullAttention.forward(ctx, q, k, v);
        }
        let qf = q.to_f32();
        let kf = k.to_f32();

        // Block means + similarity + Sinkhorn iterations (Overhead).
        ctx.record(
            KernelProfile::new("sinkhorn_block_means", Stage::Overhead)
                .with_traffic((2 * n * d * T::BYTES) as u64, (2 * nb * d * 4) as u64)
                .with_alu((2 * n * d) as u64),
        );
        let mut qb = Matrix::<f32>::zeros(nb, d);
        let mut kb = Matrix::<f32>::zeros(nb, d);
        for bi in 0..nb {
            for i in bi * b..(bi + 1) * b {
                let (qrow, krow) = (qf.row(i), kf.row(i));
                let qbrow = qb.row_mut(bi);
                for (o, &x) in qbrow.iter_mut().zip(qrow) {
                    *o += x / b as f32;
                }
                let kbrow = kb.row_mut(bi);
                for (o, &x) in kbrow.iter_mut().zip(krow) {
                    *o += x / b as f32;
                }
            }
        }
        gemm::charge_gemm::<T>(ctx, "sinkhorn_blocksim", Stage::Overhead, nb, nb, d);
        let mut sim = qb.matmul_ref(&kb.transpose());
        // Sinkhorn normalisation: alternating row/column softmax in log
        // space (here: direct normalisation of exp).
        let mut p: Vec<f32> = sim.as_slice().iter().map(|&x| (x * scale).exp()).collect();
        for _ in 0..self.sinkhorn_iters {
            // Rows.
            for r in 0..nb {
                let row = &mut p[r * nb..(r + 1) * nb];
                let s: f32 = row.iter().sum();
                row.iter_mut().for_each(|x| *x /= s.max(1e-9));
            }
            // Columns.
            for c in 0..nb {
                let mut s = 0.0f32;
                for r in 0..nb {
                    s += p[r * nb + c];
                }
                for r in 0..nb {
                    p[r * nb + c] /= s.max(1e-9);
                }
            }
        }
        ctx.record(
            KernelProfile::new("sinkhorn_normalise", Stage::Overhead)
                .with_traffic(
                    (2 * self.sinkhorn_iters * nb * nb * 4) as u64,
                    (nb * nb * 4) as u64,
                )
                .with_alu((self.sinkhorn_iters * nb * nb * 4) as u64),
        );
        // Greedy hard matching from the doubly-stochastic matrix.
        let mut matched = vec![usize::MAX; nb];
        let mut used = vec![false; nb];
        let mut entries: Vec<(f32, usize, usize)> = Vec::with_capacity(nb * nb);
        for r in 0..nb {
            for c in 0..nb {
                entries.push((p[r * nb + c], r, c));
            }
        }
        entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for (_, r, c) in entries {
            if matched[r] == usize::MAX && !used[c] {
                matched[r] = c;
                used[c] = true;
            }
        }
        sim.scale(0.0); // sim no longer needed; silence unused-mut paths.

        // Groups: each Q-block with its own block ∪ matched block.
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(nb);
        for r in 0..nb {
            let mut g: Vec<usize> = (r * b..(r + 1) * b).collect();
            let mb = matched[r];
            if mb != r {
                g.extend(mb * b..(mb + 1) * b);
            }
            groups.push(g);
        }
        grouped_attention(ctx, q, k, v, &groups, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::reference_attention;

    fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = Rng::new(seed);
        (
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        )
    }

    #[test]
    fn grouped_attention_single_group_is_full() {
        let (q, k, v) = qkv(16, 8, 1);
        let mut ctx = GpuCtx::a100();
        let groups = vec![(0..16).collect::<Vec<_>>()];
        let out = grouped_attention(&mut ctx, &q, &k, &v, &groups, 1.0 / (8.0f32).sqrt());
        assert!(out.max_abs_diff(&reference_attention(&q, &k, &v)) < 1e-2);
    }

    #[test]
    fn reformer_groups_similar_queries() {
        let (q, k, v) = qkv(64, 16, 2);
        let mut ctx = GpuCtx::a100();
        let out = ReformerAttention::new(16, 3).forward(&mut ctx, &q, &k, &v);
        assert_eq!(out.shape(), (64, 16));
        assert!(ctx.timeline.stage_bytes(Stage::Overhead) > 0);
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn routing_covers_every_query() {
        let (q, k, v) = qkv(64, 16, 3);
        let mut ctx = GpuCtx::a100();
        let out = RoutingAttention::new(4, 1).forward(&mut ctx, &q, &k, &v);
        // Every row must be a convex combination of V rows → finite, and at
        // least one nonzero unless V is degenerate.
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
        let nonzero_rows = (0..64)
            .filter(|&r| out.row(r).iter().any(|&x| x != 0.0))
            .count();
        assert_eq!(nonzero_rows, 64);
    }

    #[test]
    fn sinkhorn_blocks_match_bijectively() {
        let (q, k, v) = qkv(64, 8, 4);
        let mut ctx = GpuCtx::a100();
        let out = SinkhornAttention::new(16).forward(&mut ctx, &q, &k, &v);
        assert_eq!(out.shape(), (64, 8));
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn sinkhorn_degenerates_to_full_for_single_block() {
        let (q, k, v) = qkv(16, 8, 5);
        let mut ctx = GpuCtx::a100();
        let out = SinkhornAttention::new(16).forward(&mut ctx, &q, &k, &v);
        assert!(out.max_abs_diff(&reference_attention(&q, &k, &v)) < 1e-2);
    }

    #[test]
    fn cluster_family_cheaper_than_full_at_long_seq() {
        let (q, k, v) = qkv(2048, 64, 6);
        let mut cf = GpuCtx::a100();
        let _ = crate::full::FullAttention.forward(&mut cf, &q, &k, &v);
        for (name, lat) in [
            ("reformer", {
                let mut c = GpuCtx::a100();
                let _ = ReformerAttention::new(64, 1).forward(&mut c, &q, &k, &v);
                c.latency()
            }),
            ("routing", {
                let mut c = GpuCtx::a100();
                let _ = RoutingAttention::new(16, 1).forward(&mut c, &q, &k, &v);
                c.latency()
            }),
            ("sinkhorn", {
                let mut c = GpuCtx::a100();
                let _ = SinkhornAttention::new(128).forward(&mut c, &q, &k, &v);
                c.latency()
            }),
        ] {
            assert!(lat < cf.latency(), "{name} not faster at n=2048");
        }
    }
}
