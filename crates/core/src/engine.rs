//! The reusable attention execution engine — batching as a *service*, not
//! a call convention.
//!
//! Before this module, every caller that wanted the paper's one-launch-per-
//! op batching (A.1.2) hand-assembled `BatchedMatrix` stacks, created a
//! fresh `GpuCtx` per call and re-derived the launch shape work each time.
//! [`AttentionEngine`] owns that per-launch state across calls — the device
//! context (timeline + memory ledger), the request queue, and the pack/
//! unpack plumbing — and exposes the serving-shaped surface the ROADMAP
//! asks for:
//!
//! * [`submit`](AttentionEngine::submit) — admit one `(Q, K, V)` request,
//!   validated against the mechanism's shape constraints with a typed
//!   [`RequestError`] (never a panic), returning a [`Ticket`];
//! * [`flush`](AttentionEngine::flush) — pack everything pending into one
//!   contiguous stack **per shape bucket** (heterogeneous requests sharing
//!   a bucket coalesce via [`BatchedMatrix::gather`]), run a single
//!   `forward_batched` per bucket (one simulated launch per op), and unpack
//!   per-request outputs bit-identically to what a solo
//!   [`Attention::forward`] would have produced.
//!
//! Decode traffic gets the same treatment:
//! [`flush_decode`](AttentionEngine::flush_decode) batches **decode steps**
//! — one new query row per stream against that stream's cached K/V, with
//! per-stream lengths free to differ — into one **ragged** launch per op
//! ([`RaggedBatch`] packing, per-stream charges summed into a single
//! profile), bit-identical to a per-stream solo
//! [`Attention::decode`] loop.
//!
//! `simulate_encoder`, the serving layer (`dfss-serve`) and the load
//! generator all sit on this engine; none of them touch `BatchedMatrix`
//! assembly directly.
//!
//! ```
//! use dfss_core::dfss::DfssAttention;
//! use dfss_core::engine::{AttentionEngine, DecodeStep};
//! use dfss_nmsparse::NmPattern;
//! use dfss_tensor::{Matrix, Rng};
//!
//! let mech = DfssAttention::new(NmPattern::P1_2);
//! let mut engine = AttentionEngine::new(&mech);
//! let mut rng = Rng::new(0);
//!
//! // Two decode streams with different (odd!) cached lengths.
//! let caches: Vec<(Matrix<f32>, Matrix<f32>)> = [5usize, 9]
//!     .iter()
//!     .map(|&len| {
//!         (
//!             Matrix::random_normal(len, 8, 0.0, 1.0, &mut rng),
//!             Matrix::random_normal(len, 8, 0.0, 1.0, &mut rng),
//!         )
//!     })
//!     .collect();
//! let q = Matrix::<f32>::random_normal(2, 8, 0.0, 1.0, &mut rng);
//! let steps: Vec<DecodeStep<'_, f32>> = caches
//!     .iter()
//!     .enumerate()
//!     .map(|(i, (k, v))| {
//!         DecodeStep::contiguous(q.row(i), k.as_slice(), v.as_slice(), k.rows(), 8, 8)
//!     })
//!     .collect();
//! let results = engine.flush_decode(&steps).unwrap();
//! assert_eq!(results.len(), 2);
//! // One ragged launch per op across both streams (Dfss runs 3 ops).
//! assert_eq!(engine.last_decode().launches(), 3);
//! ```

use crate::mechanism::{try_check_qkv, try_check_qkv_rows, Attention, RequestError};
use dfss_kernels::GpuCtx;
use dfss_tensor::{BatchedMatrix, Bf16, Matrix, PagedPanel, RaggedBatch, Scalar};

/// Identifier of a submitted request, unique per engine for its lifetime.
/// Tickets are issued in submission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// The shape bucket a request is admitted into: requests agree on the
/// sequence length, head dim and value dim, so their panels can stack into
/// one batched launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    pub n: usize,
    pub d: usize,
    pub d_v: usize,
}

struct PendingRequest<T> {
    ticket: Ticket,
    q: Matrix<T>,
    k: Matrix<T>,
    v: Matrix<T>,
}

/// One completed request out of a [`flush`](AttentionEngine::flush).
#[derive(Debug)]
pub struct FlushedRequest<T: Scalar> {
    pub ticket: Ticket,
    /// The attention output — `None` only under a charge-only context
    /// (`ctx.exec == false`), where kernels skip the numeric work.
    pub output: Option<Matrix<T>>,
    /// Shape bucket the request was batched in.
    pub bucket: ShapeKey,
    /// How many requests shared the request's batched launch.
    pub batch_size: usize,
    /// Simulated-device latency of the bucket's launches (the whole batch —
    /// every request in it waits for the full launch).
    pub sim_latency_s: f64,
}

/// Per-bucket accounting of one flush.
#[derive(Clone, Debug)]
pub struct BucketReport {
    pub bucket: ShapeKey,
    pub batch_size: usize,
    /// Simulated-device latency of this bucket's launches.
    pub sim_latency_s: f64,
    /// Kernel launches this bucket recorded (one per op).
    pub launches: u64,
}

/// Accounting of one [`flush`](AttentionEngine::flush).
#[derive(Clone, Debug, Default)]
pub struct FlushReport {
    pub buckets: Vec<BucketReport>,
}

impl FlushReport {
    /// Total simulated-device latency across the flush's buckets.
    pub fn sim_latency_s(&self) -> f64 {
        self.buckets.iter().map(|b| b.sim_latency_s).sum()
    }
}

/// Where one stream's cached K or V rows live in caller storage.
///
/// The engine's pack step copies the rows into the ragged launch layout
/// exactly once either way, and the copy order is identical, so a paged
/// source produces **bit-identical** launches to a contiguous slab of the
/// same rows (pinned by `paged_steps_match_contiguous_steps` here and the
/// workspace proptest `paged_decode_matches_contiguous`).
#[derive(Clone, Debug)]
pub enum KvRows<'a, T> {
    /// One contiguous row-major slab (`len × width` elements).
    Contiguous(&'a [T]),
    /// Fixed-size pages in table order: page `p` holds rows
    /// `[p·rows_per_page, (p+1)·rows_per_page)`, and every page slice
    /// carries at least `rows_per_page × width` elements (pool pages may
    /// have a dead tail when the block size is not a multiple of the row
    /// width). The last page is partially live.
    Paged {
        /// The stream's pages, in table order.
        pages: Vec<&'a [T]>,
        /// Rows stored per page.
        rows_per_page: usize,
    },
    /// Same page-table layout, but the cache stores **bf16-quantised**
    /// rows regardless of the compute type `T`: decode widens them to f32
    /// in-register (fused widen-on-load, see `dfss_kernels::simd`), so the
    /// launch reads the cache at 2 bytes per element. Both sides (K and V)
    /// of a step must agree on quantisation.
    PagedBf16 {
        /// The stream's pages, in table order.
        pages: Vec<&'a [Bf16]>,
        /// Rows stored per page.
        rows_per_page: usize,
    },
}

impl<'a, T> KvRows<'a, T> {
    /// View this source as a [`PagedPanel`] of `len` live rows — a
    /// contiguous slab is the degenerate one-page table. `None` for a
    /// quantised source (see [`Self::as_panel_bf16`]).
    fn as_panel(&self, len: usize) -> Option<PagedPanel<'a, T>> {
        match self {
            KvRows::Contiguous(slab) => Some(PagedPanel {
                pages: vec![slab],
                rows_per_page: len.max(1),
                len,
            }),
            KvRows::Paged {
                pages,
                rows_per_page,
            } => Some(PagedPanel {
                pages: pages.clone(),
                rows_per_page: *rows_per_page,
                len,
            }),
            KvRows::PagedBf16 { .. } => None,
        }
    }

    /// View a quantised source as a [`PagedPanel`] of bf16 rows; `None`
    /// for native (`T`-width) sources.
    fn as_panel_bf16(&self, len: usize) -> Option<PagedPanel<'a, Bf16>> {
        match self {
            KvRows::PagedBf16 {
                pages,
                rows_per_page,
            } => Some(PagedPanel {
                pages: pages.clone(),
                rows_per_page: *rows_per_page,
                len,
            }),
            _ => None,
        }
    }

    /// Whether the rows are stored bf16-quantised.
    fn is_quantized(&self) -> bool {
        matches!(self, KvRows::PagedBf16 { .. })
    }
}

/// One pending decode step, borrowing the caller's KV storage: the
/// stream's new query row and its cached K/V rows — either contiguous
/// row-major slabs (`len × d` / `len × d_v` elements) or page tables of
/// fixed-size blocks ([`KvRows`]). The serving layer's session caches hand
/// these out without copying; the engine packs a whole batch of steps into
/// one ragged launch per op.
#[derive(Clone, Debug)]
pub struct DecodeStep<'a, T> {
    /// The new query row (`d` elements).
    pub q_row: &'a [T],
    /// Cached keys (`len` rows of width `d`).
    pub k_rows: KvRows<'a, T>,
    /// Cached values (`len` rows of width `d_v`).
    pub v_rows: KvRows<'a, T>,
    /// Cached positions.
    pub len: usize,
    /// Query/key width.
    pub d: usize,
    /// Value width.
    pub d_v: usize,
}

impl<'a, T> DecodeStep<'a, T> {
    /// A step over contiguous K/V slabs (`len × d` and `len × d_v`
    /// row-major elements) — the PR 5 call convention.
    pub fn contiguous(
        q_row: &'a [T],
        k_rows: &'a [T],
        v_rows: &'a [T],
        len: usize,
        d: usize,
        d_v: usize,
    ) -> DecodeStep<'a, T> {
        DecodeStep {
            q_row,
            k_rows: KvRows::Contiguous(k_rows),
            v_rows: KvRows::Contiguous(v_rows),
            len,
            d,
            d_v,
        }
    }
}

/// Validate one decode step's declared shape against its buffers, without
/// panicking — the serving front door rejects malformed steps with a typed
/// error before they reach a launch.
pub fn try_check_decode_step<T: Scalar>(step: &DecodeStep<'_, T>) -> Result<(), RequestError> {
    if step.len == 0 || step.d == 0 || step.d_v == 0 {
        return Err(RequestError::EmptyRequest);
    }
    if step.q_row.len() != step.d {
        return Err(RequestError::DecodeShapeMismatch {
            reason: format!(
                "query row has {} elements, d = {}",
                step.q_row.len(),
                step.d
            ),
        });
    }
    if step.k_rows.is_quantized() != step.v_rows.is_quantized() {
        return Err(RequestError::DecodeShapeMismatch {
            reason: format!(
                "K and V disagree on KV quantisation (K bf16: {}, V bf16: {})",
                step.k_rows.is_quantized(),
                step.v_rows.is_quantized()
            ),
        });
    }
    check_kv_rows(&step.k_rows, step.len, step.d, "K")?;
    check_kv_rows(&step.v_rows, step.len, step.d_v, "V")?;
    Ok(())
}

/// Validate one cache side of a decode step: a contiguous slab must hold
/// exactly `len × width` elements; a page table must hold exactly the pages
/// its length implies, each big enough for `rows_per_page` full rows.
fn check_kv_rows<T: Scalar>(
    rows: &KvRows<'_, T>,
    len: usize,
    width: usize,
    which: &str,
) -> Result<(), RequestError> {
    match rows {
        KvRows::Contiguous(slab) => {
            if slab.len() != len * width {
                return Err(RequestError::DecodeShapeMismatch {
                    reason: format!(
                        "{which} cache has {} elements, expected len x width = {len} x {width}",
                        slab.len()
                    ),
                });
            }
        }
        KvRows::Paged {
            pages,
            rows_per_page,
        } => check_page_table(pages, *rows_per_page, len, width, which)?,
        KvRows::PagedBf16 {
            pages,
            rows_per_page,
        } => check_page_table(pages, *rows_per_page, len, width, which)?,
    }
    Ok(())
}

/// Validate one page table (any element type): exactly the pages `len`
/// implies, each big enough for `rows_per_page` full rows.
fn check_page_table<E>(
    pages: &[&[E]],
    rows_per_page: usize,
    len: usize,
    width: usize,
    which: &str,
) -> Result<(), RequestError> {
    if rows_per_page == 0 {
        return Err(RequestError::DecodeShapeMismatch {
            reason: format!("{which} cache declares zero rows per page"),
        });
    }
    let want_pages = len.div_ceil(rows_per_page);
    if pages.len() != want_pages {
        return Err(RequestError::DecodeShapeMismatch {
            reason: format!(
                "{which} page table holds {} pages, expected {want_pages} for {len} rows \
                 at {rows_per_page} rows/page",
                pages.len()
            ),
        });
    }
    if let Some((p, page)) = pages
        .iter()
        .enumerate()
        .find(|(_, page)| page.len() < rows_per_page * width)
    {
        return Err(RequestError::DecodeShapeMismatch {
            reason: format!(
                "{which} page {p} holds {} elements, need rows_per_page x width = \
                 {rows_per_page} x {width}",
                page.len()
            ),
        });
    }
    Ok(())
}

/// One completed prefill **chunk** out of a
/// [`forward_chunk`](AttentionEngine::forward_chunk) — a `c`-row slice of a
/// session's query run against the full K/V, the resumable unit the
/// continuous batching scheduler interleaves with decode steps.
#[derive(Debug)]
pub struct FlushedChunk<T: Scalar> {
    /// Query rows in the chunk.
    pub rows: usize,
    /// The `c × d_v` output rows — `None` under a charge-only context.
    pub output: Option<Matrix<T>>,
    /// Simulated-device latency of the chunk's launches.
    pub sim_latency_s: f64,
    /// Kernel launches the chunk recorded (one per op).
    pub launches: u64,
}

/// One completed decode step out of a
/// [`flush_decode`](AttentionEngine::flush_decode).
#[derive(Debug)]
pub struct FlushedDecode<T: Scalar> {
    /// Ticket of the step (monotone with the engine's prefill tickets).
    pub ticket: Ticket,
    /// The `1 × d_v` output row — `None` under a charge-only context.
    pub output: Option<Matrix<T>>,
    /// Streams that shared the step's ragged launch (its `(d, d_v)`
    /// bucket).
    pub batch_size: usize,
    /// The stream's cached length at launch time.
    pub cached_len: usize,
    /// Simulated-device latency of the step's whole ragged launch.
    pub sim_latency_s: f64,
}

/// Per-bucket accounting of one decode flush (steps bucket by `(d, d_v)`;
/// cached lengths stay ragged within a bucket).
#[derive(Clone, Debug)]
pub struct DecodeBucketReport {
    /// Query/key width of the bucket.
    pub d: usize,
    /// Value width of the bucket.
    pub d_v: usize,
    /// Streams batched into the bucket's ragged launch.
    pub streams: usize,
    /// Sum of the streams' cached lengths.
    pub total_cached: usize,
    /// Simulated-device latency of the bucket's launches.
    pub sim_latency_s: f64,
    /// Kernel launches the bucket recorded (one per op).
    pub launches: u64,
    /// Whether the bucket's KV rows were bf16-quantised (quantised and
    /// native steps never share a launch).
    pub quantized: bool,
}

/// Accounting of one [`flush_decode`](AttentionEngine::flush_decode).
#[derive(Clone, Debug, Default)]
pub struct DecodeFlushReport {
    /// One entry per `(d, d_v)` bucket, in first-seen order.
    pub buckets: Vec<DecodeBucketReport>,
}

impl DecodeFlushReport {
    /// Total simulated-device latency across the flush's buckets.
    pub fn sim_latency_s(&self) -> f64 {
        self.buckets.iter().map(|b| b.sim_latency_s).sum()
    }

    /// Total kernel launches across the flush's buckets.
    pub fn launches(&self) -> u64 {
        self.buckets.iter().map(|b| b.launches).sum()
    }
}

/// A reusable batching front end over one attention mechanism.
///
/// The engine borrows the mechanism (mechanisms are small, often `Copy`
/// structs; the serving layer owns one per server) and owns the simulated
/// device context, reusing it across flushes instead of recreating it per
/// call.
pub struct AttentionEngine<'m, T: Scalar> {
    mech: &'m dyn Attention<T>,
    ctx: GpuCtx,
    pending: Vec<PendingRequest<T>>,
    next_ticket: u64,
    last_flush: FlushReport,
    last_decode: DecodeFlushReport,
}

impl<'m, T: Scalar> AttentionEngine<'m, T> {
    /// Engine on the paper's evaluation device (A100).
    pub fn new(mech: &'m dyn Attention<T>) -> AttentionEngine<'m, T> {
        AttentionEngine::with_ctx(mech, GpuCtx::a100())
    }

    /// Engine over an existing context (carries its `exec` mode, device
    /// config and any recorded history).
    pub fn with_ctx(mech: &'m dyn Attention<T>, ctx: GpuCtx) -> AttentionEngine<'m, T> {
        AttentionEngine {
            mech,
            ctx,
            pending: Vec::new(),
            next_ticket: 0,
            last_flush: FlushReport::default(),
            last_decode: DecodeFlushReport::default(),
        }
    }

    /// The mechanism this engine batches for.
    pub fn mech(&self) -> &dyn Attention<T> {
        self.mech
    }

    /// The owned device context (timeline, memory ledger).
    pub fn ctx(&self) -> &GpuCtx {
        &self.ctx
    }

    /// Mutable device context — callers that interleave non-attention
    /// kernels with submits (the encoder simulation) record them here so
    /// the timeline stays in program order.
    pub fn ctx_mut(&mut self) -> &mut GpuCtx {
        &mut self.ctx
    }

    /// Consume the engine, returning its context (with the full timeline).
    pub fn into_ctx(self) -> GpuCtx {
        self.ctx
    }

    /// Requests admitted but not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accounting of the most recent [`flush`](Self::flush).
    pub fn last_flush(&self) -> &FlushReport {
        &self.last_flush
    }

    /// Accounting of the most recent [`flush_decode`](Self::flush_decode).
    pub fn last_decode(&self) -> &DecodeFlushReport {
        &self.last_decode
    }

    /// Validate and admit one request. Returns its [`Ticket`]; malformed
    /// triples and shapes the mechanism cannot run come back as typed
    /// errors without touching engine state.
    pub fn submit(
        &mut self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<Ticket, RequestError> {
        try_check_qkv(self.mech, &q, &k, &v)?;
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingRequest { ticket, q, k, v });
        Ok(ticket)
    }

    /// Run everything pending: requests group into shape buckets (admission
    /// order preserved within a bucket, buckets in first-seen order), each
    /// bucket packs into one contiguous stack and runs a single
    /// `forward_batched` — one simulated launch per op for the whole bucket
    /// — and outputs unpack per request, bit-identical to solo `forward`
    /// calls. Results are returned in ticket (= submission) order.
    pub fn flush(&mut self) -> Vec<FlushedRequest<T>> {
        let pending = std::mem::take(&mut self.pending);
        let mut report = FlushReport::default();
        if pending.is_empty() {
            self.last_flush = report;
            return Vec::new();
        }

        // Shape-bucket the queue, preserving order within buckets.
        let mut buckets: Vec<(ShapeKey, Vec<PendingRequest<T>>)> = Vec::new();
        for req in pending {
            let key = ShapeKey {
                n: req.q.rows(),
                d: req.q.cols(),
                d_v: req.v.cols(),
            };
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, reqs)) => reqs.push(req),
                None => buckets.push((key, vec![req])),
            }
        }

        let mut results: Vec<FlushedRequest<T>> = Vec::new();
        for (key, reqs) in buckets {
            let batch_size = reqs.len();
            let qs: Vec<&Matrix<T>> = reqs.iter().map(|r| &r.q).collect();
            let ks: Vec<&Matrix<T>> = reqs.iter().map(|r| &r.k).collect();
            let vs: Vec<&Matrix<T>> = reqs.iter().map(|r| &r.v).collect();
            let qb = BatchedMatrix::gather(&qs);
            let kb = BatchedMatrix::gather(&ks);
            let vb = BatchedMatrix::gather(&vs);

            let mark = self.ctx.timeline.entries().len();
            let out = self.mech.forward_batched(&mut self.ctx, &qb, &kb, &vb);
            let new_entries = &self.ctx.timeline.entries()[mark..];
            let sim_latency_s: f64 = new_entries.iter().map(|e| e.latency(&self.ctx.dev)).sum();
            let launches: u64 = new_entries.iter().map(|e| e.launches).sum();
            report.buckets.push(BucketReport {
                bucket: key,
                batch_size,
                sim_latency_s,
                launches,
            });

            let mut outputs: Vec<Option<Matrix<T>>> = if out.is_materialized() {
                out.into_panels().into_iter().map(Some).collect()
            } else {
                (0..batch_size).map(|_| None).collect()
            };
            for (req, output) in reqs.into_iter().zip(outputs.drain(..)) {
                results.push(FlushedRequest {
                    ticket: req.ticket,
                    output,
                    bucket: key,
                    batch_size,
                    sim_latency_s,
                });
            }
        }
        results.sort_by_key(|r| r.ticket);
        self.last_flush = report;
        results
    }

    /// Run an **already-packed** B×H stack through the engine as one
    /// bucket — the encoder-simulation fast path. Callers that hold their
    /// panels in a contiguous stack (e.g. a `split_heads` result) skip the
    /// per-request queue and the gather/unpack copies while keeping the
    /// engine's one-launch-per-op execution, owned context and flush
    /// accounting. Equivalent to submitting each panel and flushing.
    pub fn flush_stack(
        &mut self,
        q: &BatchedMatrix<T>,
        k: &BatchedMatrix<T>,
        v: &BatchedMatrix<T>,
    ) -> BatchedMatrix<T> {
        let key = ShapeKey {
            n: q.rows(),
            d: q.cols(),
            d_v: v.cols(),
        };
        let mark = self.ctx.timeline.entries().len();
        let out = self.mech.forward_batched(&mut self.ctx, q, k, v);
        let new_entries = &self.ctx.timeline.entries()[mark..];
        self.last_flush = FlushReport {
            buckets: vec![BucketReport {
                bucket: key,
                batch_size: q.batch(),
                sim_latency_s: new_entries.iter().map(|e| e.latency(&self.ctx.dev)).sum(),
                launches: new_entries.iter().map(|e| e.launches).sum(),
            }],
        };
        out
    }

    /// Batch a set of **decode steps** (one new query row per stream
    /// against its own cached K/V length) into ragged launches: steps group
    /// into `(d, d_v)` buckets (cached lengths stay ragged within a
    /// bucket), each bucket packs into a [`RaggedBatch`] and runs one
    /// `decode_ragged` — **one launch per op** across all its streams, with
    /// per-stream charges summed into a single profile — and outputs unpack
    /// per step, bit-identical to a per-stream solo `decode` loop. Results
    /// come back in step order.
    ///
    /// A flush with **zero steps is a no-op** — no launch is recorded, no
    /// ticket issued, and the decode report resets to empty (never a
    /// zero-size launch). Malformed steps fail the whole flush with a typed
    /// error before any launch; callers that validated at admission (the
    /// serving layer) never see one.
    pub fn flush_decode(
        &mut self,
        steps: &[DecodeStep<'_, T>],
    ) -> Result<Vec<FlushedDecode<T>>, RequestError> {
        self.last_decode = DecodeFlushReport::default();
        if steps.is_empty() {
            return Ok(Vec::new());
        }
        for step in steps {
            try_check_decode_step(step)?;
        }
        // Bucket step indices by (d, d_v, quantised), first-seen order —
        // bf16-KV and native-KV steps run different launches and never mix.
        let mut buckets: Vec<((usize, usize, bool), Vec<usize>)> = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            let key = (step.d, step.d_v, step.k_rows.is_quantized());
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idxs)) => idxs.push(i),
                None => buckets.push((key, vec![i])),
            }
        }
        let first_ticket = self.next_ticket;
        self.next_ticket += steps.len() as u64;

        let mut results: Vec<FlushedDecode<T>> = Vec::with_capacity(steps.len());
        for ((d, d_v, quantized), idxs) in buckets {
            let mut q_data = Vec::with_capacity(idxs.len() * d);
            for &i in &idxs {
                q_data.extend_from_slice(steps[i].q_row);
            }
            let q = Matrix::from_vec(idxs.len(), d, q_data);

            let mark = self.ctx.timeline.entries().len();
            let out = if quantized {
                let k_panels: Vec<PagedPanel<'_, Bf16>> = idxs
                    .iter()
                    .map(|&i| steps[i].k_rows.as_panel_bf16(steps[i].len).unwrap())
                    .collect();
                let v_panels: Vec<PagedPanel<'_, Bf16>> = idxs
                    .iter()
                    .map(|&i| steps[i].v_rows.as_panel_bf16(steps[i].len).unwrap())
                    .collect();
                let k = RaggedBatch::gather_paged(d, &k_panels);
                let v = RaggedBatch::gather_paged(d_v, &v_panels);
                self.mech.decode_ragged_bf16(&mut self.ctx, &q, &k, &v)
            } else {
                // Contiguous and paged sources share one pack path: a slab
                // is the degenerate one-page table, so `gather_paged`
                // reproduces the PR 5 `from_slices` layout bit-for-bit.
                let k_panels: Vec<PagedPanel<'_, T>> = idxs
                    .iter()
                    .map(|&i| steps[i].k_rows.as_panel(steps[i].len).unwrap())
                    .collect();
                let v_panels: Vec<PagedPanel<'_, T>> = idxs
                    .iter()
                    .map(|&i| steps[i].v_rows.as_panel(steps[i].len).unwrap())
                    .collect();
                let k = RaggedBatch::gather_paged(d, &k_panels);
                let v = RaggedBatch::gather_paged(d_v, &v_panels);
                self.mech.decode_ragged(&mut self.ctx, &q, &k, &v)
            };
            let new_entries = &self.ctx.timeline.entries()[mark..];
            let sim_latency_s: f64 = new_entries.iter().map(|e| e.latency(&self.ctx.dev)).sum();
            let launches: u64 = new_entries.iter().map(|e| e.launches).sum();
            self.last_decode.buckets.push(DecodeBucketReport {
                d,
                d_v,
                streams: idxs.len(),
                total_cached: idxs.iter().map(|&i| steps[i].len).sum(),
                sim_latency_s,
                launches,
                quantized,
            });
            for (row, &i) in idxs.iter().enumerate() {
                let output = self
                    .ctx
                    .exec
                    .then(|| Matrix::from_vec(1, d_v, out.row(row).to_vec()));
                results.push(FlushedDecode {
                    ticket: Ticket(first_ticket + i as u64),
                    output,
                    batch_size: idxs.len(),
                    cached_len: steps[i].len,
                    sim_latency_s,
                });
            }
        }
        results.sort_by_key(|r| r.ticket);
        Ok(results)
    }

    /// Run one resumable **prefill chunk** — a `c × d` row slice of a
    /// session's query against the full `n`-key K/V — as an immediate
    /// launch group, bypassing the pending queue (the continuous scheduler
    /// owns its own queue and calls this once per packed chunk).
    ///
    /// When the mechanism
    /// [`supports_row_chunking`](Attention::supports_row_chunking), the
    /// output is **bit-identical** to rows `[lo, lo+c)` of a whole-Q solo
    /// [`Attention::forward`] — the parity contract the scheduler gauntlet
    /// and the serving bench's `--check` pin. Malformed chunks come back as
    /// typed errors without recording a launch; ticket numbering is not
    /// consumed (chunks belong to a session-level request, not to a fresh
    /// ticket).
    pub fn forward_chunk(
        &mut self,
        q_rows: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<FlushedChunk<T>, RequestError> {
        let (rows, _n) = try_check_qkv_rows(self.mech, q_rows, k, v)?;
        let mark = self.ctx.timeline.entries().len();
        let out = self.mech.forward_rows(&mut self.ctx, q_rows, k, v);
        let new_entries = &self.ctx.timeline.entries()[mark..];
        let sim_latency_s: f64 = new_entries.iter().map(|e| e.latency(&self.ctx.dev)).sum();
        let launches: u64 = new_entries.iter().map(|e| e.launches).sum();
        let output = self.ctx.exec.then_some(out);
        Ok(FlushedChunk {
            rows,
            output,
            sim_latency_s,
            launches,
        })
    }

    /// Drop the accumulated kernel timeline (the memory ledger keeps its
    /// peak) — long-running servers call this between batches so the
    /// context does not grow without bound.
    pub fn reset_timeline(&mut self) {
        self.ctx.reset_timeline();
    }

    /// Restore the engine to a serviceable state after a panic unwound
    /// through [`flush`](Self::flush) or
    /// [`flush_decode`](Self::flush_decode) and was caught by the caller
    /// (the serving layer's batch-panic isolation).
    ///
    /// A panic mid-flush can leave half-admitted pending requests, a
    /// partially recorded launch timeline, and stale flush reports behind;
    /// this drops all three so the next flush starts clean. Ticket
    /// numbering is **not** rewound — tickets stay monotone across the
    /// engine's whole life, failed launches included, so later results
    /// never alias an abandoned request's ticket.
    pub fn recover_after_panic(&mut self) {
        self.pending.clear();
        self.ctx.reset_timeline();
        self.last_flush = FlushReport::default();
        self.last_decode = DecodeFlushReport::default();
    }
}

impl<T: Scalar> std::fmt::Debug for AttentionEngine<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AttentionEngine<{}> for {:?} ({} pending)",
            T::NAME,
            self.mech.name(),
            self.pending.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfss::DfssAttention;
    use crate::full::FullAttention;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;

    fn request(n: usize, d: usize, rng: &mut Rng) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
        )
    }

    #[test]
    fn flush_is_bit_identical_to_solo_forward_across_buckets() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(7);
        // Heterogeneous queue: two shape buckets interleaved.
        let shapes = [(32, 16), (64, 8), (32, 16), (64, 8), (32, 16)];
        let mut solo = Vec::new();
        for &(n, d) in &shapes {
            let (q, k, v) = request(n, d, &mut rng);
            let mut sctx = GpuCtx::a100();
            solo.push(mech.forward(&mut sctx, &q, &k, &v));
            engine.submit(q, k, v).unwrap();
        }
        assert_eq!(engine.pending(), 5);
        let results = engine.flush();
        assert_eq!(engine.pending(), 0);
        assert_eq!(results.len(), 5);
        for (i, (res, want)) in results.iter().zip(&solo).enumerate() {
            assert_eq!(res.ticket, Ticket(i as u64));
            let got = res.output.as_ref().expect("exec mode");
            let same = got
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "request {i} diverged from solo forward");
        }
        // Two buckets: (32,16) × 3 and (64,8) × 2.
        let report = engine.last_flush();
        assert_eq!(report.buckets.len(), 2);
        assert_eq!(report.buckets[0].batch_size, 3);
        assert_eq!(report.buckets[1].batch_size, 2);
        assert!(report.sim_latency_s() > 0.0);
    }

    #[test]
    fn one_launch_per_op_per_bucket() {
        // Dfss runs 3 ops (fused SDDMM, softmax, SpMM): a flush with two
        // buckets must record exactly 6 launches no matter how many
        // requests each bucket holds.
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(9);
        for &(n, d) in &[(32, 8), (32, 8), (32, 8), (64, 8), (64, 8)] {
            let (q, k, v) = request(n, d, &mut rng);
            engine.submit(q, k, v).unwrap();
        }
        let _ = engine.flush();
        assert_eq!(engine.ctx().timeline.launches(), 6);
        for b in &engine.last_flush().buckets {
            assert_eq!(b.launches, 3);
        }
    }

    #[test]
    fn submit_rejects_unservable_requests_without_queueing() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        // n = 31 is not a multiple of M = 2 → typed rejection.
        let q = Matrix::<f32>::zeros(31, 8);
        let err = engine.submit(q.clone(), q.clone(), q.clone()).unwrap_err();
        assert!(matches!(err, RequestError::Unsupported { .. }));
        // Mismatched K → typed rejection.
        let q32 = Matrix::<f32>::zeros(32, 8);
        let k_bad = Matrix::<f32>::zeros(32, 4);
        let err = engine.submit(q32.clone(), k_bad, q32.clone()).unwrap_err();
        assert!(matches!(err, RequestError::KShapeMismatch { .. }));
        assert_eq!(engine.pending(), 0);
        assert!(engine.flush().is_empty());
    }

    #[test]
    fn tickets_are_unique_across_flushes_and_ctx_persists() {
        let mech = FullAttention;
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(11);
        let (q, k, v) = request(16, 8, &mut rng);
        let t0 = engine.submit(q.clone(), k.clone(), v.clone()).unwrap();
        let _ = engine.flush();
        let launches_after_first = engine.ctx().timeline.launches();
        let t1 = engine.submit(q, k, v).unwrap();
        assert!(t1 > t0, "tickets must be monotone across flushes");
        let _ = engine.flush();
        // The context is owned and reused: the timeline accumulated both
        // flushes' launches until explicitly reset.
        assert_eq!(engine.ctx().timeline.launches(), 2 * launches_after_first);
        engine.reset_timeline();
        assert_eq!(engine.ctx().timeline.launches(), 0);
    }

    #[test]
    fn flush_stack_matches_submit_flush() {
        // The pre-packed fast path runs the same launches and reports the
        // same accounting as the queued path, with bit-identical outputs.
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut rng = Rng::new(21);
        let (batch, n, d) = (4usize, 32usize, 16usize);
        let qb = dfss_tensor::BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let kb = dfss_tensor::BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let vb = dfss_tensor::BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);

        let mut queued = AttentionEngine::new(&mech);
        for b in 0..batch {
            queued
                .submit(qb.to_panel(b), kb.to_panel(b), vb.to_panel(b))
                .unwrap();
        }
        let queued_out = queued.flush();

        let mut stacked = AttentionEngine::new(&mech);
        let out = stacked.flush_stack(&qb, &kb, &vb);
        assert_eq!(out.shape(), (batch, n, d));
        for (b, res) in queued_out.iter().enumerate() {
            let want = res.output.as_ref().unwrap();
            let same = out
                .panel(b)
                .iter()
                .zip(want.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "panel {b} diverged between stack and queued paths");
        }
        assert_eq!(
            stacked.ctx().timeline.total_bytes(),
            queued.ctx().timeline.total_bytes()
        );
        let (sr, qr) = (stacked.last_flush(), queued.last_flush());
        assert_eq!(sr.buckets.len(), 1);
        assert_eq!(sr.buckets[0].batch_size, batch);
        assert_eq!(sr.buckets[0].launches, qr.buckets[0].launches);
        assert!((sr.sim_latency_s() - qr.sim_latency_s()).abs() < 1e-15);
    }

    fn cache(len: usize, d: usize, d_v: usize, rng: &mut Rng) -> (Matrix<f32>, Matrix<f32>) {
        (
            Matrix::random_normal(len, d, 0.0, 1.0, rng),
            Matrix::random_normal(len, d_v, 0.0, 1.0, rng),
        )
    }

    #[test]
    fn flush_decode_is_bit_identical_to_solo_decode_loop() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(31);
        // Ragged cached lengths, including odd (dense-tail) ones.
        let lens = [5usize, 16, 33, 8];
        let (d, d_v) = (16usize, 8usize);
        let caches: Vec<(Matrix<f32>, Matrix<f32>)> =
            lens.iter().map(|&l| cache(l, d, d_v, &mut rng)).collect();
        let q = Matrix::<f32>::random_normal(lens.len(), d, 0.0, 1.0, &mut rng);

        let steps: Vec<DecodeStep<'_, f32>> = caches
            .iter()
            .enumerate()
            .map(|(i, (k, v))| {
                DecodeStep::contiguous(q.row(i), k.as_slice(), v.as_slice(), lens[i], d, d_v)
            })
            .collect();
        let results = engine.flush_decode(&steps).unwrap();
        assert_eq!(results.len(), lens.len());
        // One ragged launch per op: Dfss decode runs 3 ops for the whole
        // batch.
        assert_eq!(engine.last_decode().launches(), 3);
        assert_eq!(engine.ctx().timeline.launches(), 3);
        assert!(engine.last_decode().sim_latency_s() > 0.0);
        assert_eq!(engine.last_decode().buckets.len(), 1);
        assert_eq!(engine.last_decode().buckets[0].total_cached, 62);

        for (i, res) in results.iter().enumerate() {
            assert_eq!(res.ticket, Ticket(i as u64));
            assert_eq!(res.cached_len, lens[i]);
            assert_eq!(res.batch_size, lens.len());
            let got = res.output.as_ref().expect("exec mode");
            let mut sctx = GpuCtx::a100();
            let q_row = Matrix::from_vec(1, d, q.row(i).to_vec());
            let want = mech.decode(&mut sctx, &q_row, &caches[i].0, &caches[i].1);
            let same = got
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "step {i} diverged from solo decode");
        }
    }

    #[test]
    fn flush_decode_buckets_by_width_and_keeps_step_order() {
        let mech = FullAttention;
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(33);
        // Two (d, d_v) buckets interleaved.
        let shapes = [(8usize, 8usize), (4, 4), (8, 8), (4, 4)];
        let lens = [6usize, 9, 3, 5];
        let caches: Vec<(Matrix<f32>, Matrix<f32>)> = shapes
            .iter()
            .zip(&lens)
            .map(|(&(d, d_v), &l)| cache(l, d, d_v, &mut rng))
            .collect();
        let q_rows: Vec<Vec<f32>> = shapes
            .iter()
            .map(|&(d, _)| (0..d).map(|_| rng.normal(0.0, 1.0)).collect())
            .collect();
        let steps: Vec<DecodeStep<'_, f32>> = caches
            .iter()
            .enumerate()
            .map(|(i, (k, v))| {
                DecodeStep::contiguous(
                    &q_rows[i],
                    k.as_slice(),
                    v.as_slice(),
                    lens[i],
                    shapes[i].0,
                    shapes[i].1,
                )
            })
            .collect();
        let results = engine.flush_decode(&steps).unwrap();
        assert_eq!(results.len(), 4);
        for (i, res) in results.iter().enumerate() {
            assert_eq!(res.ticket, Ticket(i as u64));
            assert_eq!(res.batch_size, 2);
            assert_eq!(res.output.as_ref().unwrap().cols(), shapes[i].1);
        }
        let report = engine.last_decode();
        assert_eq!(report.buckets.len(), 2);
        // The default (dense-row) decode merges the per-stream loop into
        // one launch per op: gemm_nt + softmax + gemm_nn per bucket.
        for b in &report.buckets {
            assert_eq!(b.streams, 2);
            assert_eq!(b.launches, 3);
        }
    }

    #[test]
    fn empty_decode_flush_is_a_no_op_not_a_zero_size_launch() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let results = engine.flush_decode(&[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(engine.ctx().timeline.launches(), 0);
        assert!(engine.ctx().timeline.is_empty());
        assert!(engine.last_decode().buckets.is_empty());
        // And no ticket was consumed: the next prefill ticket is still 0.
        let mut rng = Rng::new(35);
        let (q, k, v) = request(16, 8, &mut rng);
        assert_eq!(engine.submit(q, k, v).unwrap(), Ticket(0));
    }

    #[test]
    fn empty_prefill_flush_is_a_no_op_too() {
        let mech = FullAttention;
        let mut engine: AttentionEngine<'_, f32> = AttentionEngine::new(&mech);
        assert!(engine.flush().is_empty());
        assert_eq!(engine.ctx().timeline.launches(), 0);
        assert!(engine.last_flush().buckets.is_empty());
    }

    /// A mechanism that panics on its next forward while armed — stand-in
    /// for a kernel bug the serving layer must survive.
    struct PanicOnce {
        armed: std::cell::Cell<bool>,
    }
    impl Attention<f32> for PanicOnce {
        fn name(&self) -> String {
            "panic-once".into()
        }
        fn forward(
            &self,
            ctx: &mut dfss_kernels::GpuCtx,
            q: &Matrix<f32>,
            k: &Matrix<f32>,
            v: &Matrix<f32>,
        ) -> Matrix<f32> {
            if self.armed.replace(false) {
                panic!("injected kernel panic");
            }
            FullAttention.forward(ctx, q, k, v)
        }
    }

    #[test]
    fn recover_after_panic_leaves_a_serviceable_engine() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mech = PanicOnce {
            armed: std::cell::Cell::new(true),
        };
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(61);
        let (q, k, v) = request(16, 8, &mut rng);
        engine.submit(q.clone(), k.clone(), v.clone()).unwrap();
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _ = engine.flush();
        }));
        assert!(unwound.is_err(), "armed mechanism must panic mid-flush");
        engine.recover_after_panic();
        assert_eq!(engine.pending(), 0);
        assert!(engine.ctx().timeline.is_empty());
        assert!(engine.last_flush().buckets.is_empty());
        // The next flush serves normally on a fresh, still-monotone ticket.
        let t = engine.submit(q, k, v).unwrap();
        assert!(t > Ticket(0), "tickets never rewind across a recovery");
        let results = engine.flush();
        assert_eq!(results.len(), 1);
        assert!(results[0].output.is_some());
        assert_eq!(results[0].ticket, t);
    }

    #[test]
    fn flush_decode_rejects_malformed_steps_before_launching() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let q = vec![0.0f32; 8];
        let k = vec![0.0f32; 4 * 8];
        let v = vec![0.0f32; 4 * 8];
        // Wrong query width.
        let bad = DecodeStep::contiguous(&q[..4], &k, &v, 4, 8, 8);
        let err = engine.flush_decode(&[bad]).unwrap_err();
        assert!(matches!(err, RequestError::DecodeShapeMismatch { .. }));
        // Empty cache.
        let empty = DecodeStep::contiguous(&q, &[], &[], 0, 8, 8);
        let err = engine.flush_decode(&[empty]).unwrap_err();
        assert_eq!(err, RequestError::EmptyRequest);
        // Paged: a page table that disagrees with the declared length.
        let short_table = DecodeStep {
            q_row: &q,
            k_rows: KvRows::Paged {
                pages: vec![&k[..16]],
                rows_per_page: 2,
            },
            v_rows: KvRows::Contiguous(&v),
            len: 4,
            d: 8,
            d_v: 8,
        };
        let err = engine.flush_decode(&[short_table]).unwrap_err();
        assert!(matches!(err, RequestError::DecodeShapeMismatch { .. }));
        // Paged: a page too small for its declared rows_per_page.
        let thin_page = DecodeStep {
            q_row: &q,
            k_rows: KvRows::Paged {
                pages: vec![&k[..16], &k[16..24]],
                rows_per_page: 2,
            },
            v_rows: KvRows::Contiguous(&v),
            len: 4,
            d: 8,
            d_v: 8,
        };
        let err = engine.flush_decode(&[thin_page]).unwrap_err();
        assert!(matches!(err, RequestError::DecodeShapeMismatch { .. }));
        assert_eq!(engine.ctx().timeline.launches(), 0);
    }

    #[test]
    fn decode_and_prefill_share_the_ticket_sequence() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(37);
        let (q, k, v) = request(16, 8, &mut rng);
        let t0 = engine.submit(q, k, v).unwrap();
        let _ = engine.flush();
        let (kc, vc) = cache(8, 8, 8, &mut rng);
        let q_row: Vec<f32> = (0..8).map(|_| rng.normal(0.0, 1.0)).collect();
        let step = DecodeStep::contiguous(&q_row, kc.as_slice(), vc.as_slice(), 8, 8, 8);
        let res = engine.flush_decode(&[step]).unwrap();
        assert!(res[0].ticket > t0, "decode tickets continue the sequence");
    }

    #[test]
    fn paged_steps_match_contiguous_steps() {
        // Shred each stream's K/V slab into fixed-size pages (with a dead
        // tail: pages hold more elements than rows_per_page × width needs)
        // and decode both ways — the ragged launches must be bit-identical.
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut rng = Rng::new(41);
        let lens = [5usize, 16, 7];
        let (d, d_v) = (8usize, 8usize);
        let caches: Vec<(Matrix<f32>, Matrix<f32>)> =
            lens.iter().map(|&l| cache(l, d, d_v, &mut rng)).collect();
        let q = Matrix::<f32>::random_normal(lens.len(), d, 0.0, 1.0, &mut rng);

        // rows_per_page = 3 does not divide any of the lengths evenly.
        let rows_per_page = 3usize;
        let page_elems = rows_per_page * d + 5; // dead tail of 5 elements
        let shred = |slab: &[f32], len: usize, width: usize| -> Vec<Vec<f32>> {
            (0..len.div_ceil(rows_per_page))
                .map(|p| {
                    let lo = p * rows_per_page * width;
                    let hi = slab.len().min(lo + rows_per_page * width);
                    let mut page = slab[lo..hi].to_vec();
                    page.resize(page_elems, f32::NAN); // dead tail must never be read
                    page
                })
                .collect()
        };
        let k_pages: Vec<Vec<Vec<f32>>> = caches
            .iter()
            .zip(&lens)
            .map(|((k, _), &l)| shred(k.as_slice(), l, d))
            .collect();
        let v_pages: Vec<Vec<Vec<f32>>> = caches
            .iter()
            .zip(&lens)
            .map(|((_, v), &l)| shred(v.as_slice(), l, d_v))
            .collect();

        let contiguous: Vec<DecodeStep<'_, f32>> = caches
            .iter()
            .enumerate()
            .map(|(i, (k, v))| {
                DecodeStep::contiguous(q.row(i), k.as_slice(), v.as_slice(), lens[i], d, d_v)
            })
            .collect();
        let paged: Vec<DecodeStep<'_, f32>> = (0..lens.len())
            .map(|i| DecodeStep {
                q_row: q.row(i),
                k_rows: KvRows::Paged {
                    pages: k_pages[i].iter().map(|p| p.as_slice()).collect(),
                    rows_per_page,
                },
                v_rows: KvRows::Paged {
                    pages: v_pages[i].iter().map(|p| p.as_slice()).collect(),
                    rows_per_page,
                },
                len: lens[i],
                d,
                d_v,
            })
            .collect();

        let mut eng_c = AttentionEngine::new(&mech);
        let mut eng_p = AttentionEngine::new(&mech);
        let out_c = eng_c.flush_decode(&contiguous).unwrap();
        let out_p = eng_p.flush_decode(&paged).unwrap();
        assert_eq!(out_c.len(), out_p.len());
        for (i, (c, p)) in out_c.iter().zip(&out_p).enumerate() {
            let (c, p) = (c.output.as_ref().unwrap(), p.output.as_ref().unwrap());
            let same = c
                .as_slice()
                .iter()
                .zip(p.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "stream {i} diverged between paged and contiguous");
        }
        // Same launch count and charges either way: the pack result is the
        // same contiguous layout, so the kernels cannot tell.
        assert_eq!(
            eng_c.last_decode().launches(),
            eng_p.last_decode().launches()
        );
        assert_eq!(
            eng_c.ctx().timeline.total_bytes(),
            eng_p.ctx().timeline.total_bytes()
        );
    }

    #[test]
    fn quantized_steps_match_host_widen_model_and_charge_half_the_kv_bytes() {
        // A bf16 ragged flush must be bit-identical to widening the pages
        // on the host and flushing f32 steps, while its KV-panel traffic
        // charges at 2 bytes/element — the whole point of the quant store.
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut rng = Rng::new(43);
        let lens = [5usize, 9];
        let (d, d_v) = (8usize, 8usize);
        let rows_per_page = 4usize;
        let q = Matrix::<f32>::random_normal(lens.len(), d, 0.0, 1.0, &mut rng);
        let make_pages = |len: usize, width: usize, rng: &mut Rng| -> Vec<Vec<Bf16>> {
            (0..len.div_ceil(rows_per_page))
                .map(|_| {
                    (0..rows_per_page * width)
                        .map(|_| Bf16::from_f32(rng.normal(0.0, 1.0)))
                        .collect()
                })
                .collect()
        };
        let k_pages: Vec<Vec<Vec<Bf16>>> =
            lens.iter().map(|&l| make_pages(l, d, &mut rng)).collect();
        let v_pages: Vec<Vec<Vec<Bf16>>> =
            lens.iter().map(|&l| make_pages(l, d_v, &mut rng)).collect();
        let widen = |pages: &[Vec<Bf16>], len: usize, width: usize| -> Vec<f32> {
            pages
                .iter()
                .flat_map(|p| p.iter().map(|x| x.to_f32()))
                .take(len * width)
                .collect()
        };
        let k_host: Vec<Vec<f32>> = k_pages
            .iter()
            .zip(&lens)
            .map(|(p, &l)| widen(p, l, d))
            .collect();
        let v_host: Vec<Vec<f32>> = v_pages
            .iter()
            .zip(&lens)
            .map(|(p, &l)| widen(p, l, d_v))
            .collect();

        let quant: Vec<DecodeStep<'_, f32>> = (0..lens.len())
            .map(|i| DecodeStep {
                q_row: q.row(i),
                k_rows: KvRows::PagedBf16 {
                    pages: k_pages[i].iter().map(|p| p.as_slice()).collect(),
                    rows_per_page,
                },
                v_rows: KvRows::PagedBf16 {
                    pages: v_pages[i].iter().map(|p| p.as_slice()).collect(),
                    rows_per_page,
                },
                len: lens[i],
                d,
                d_v,
            })
            .collect();
        let host: Vec<DecodeStep<'_, f32>> = (0..lens.len())
            .map(|i| DecodeStep::contiguous(q.row(i), &k_host[i], &v_host[i], lens[i], d, d_v))
            .collect();

        let mut eng_q = AttentionEngine::new(&mech);
        let mut eng_h = AttentionEngine::new(&mech);
        let out_q = eng_q.flush_decode(&quant).unwrap();
        let out_h = eng_h.flush_decode(&host).unwrap();
        for (i, (a, b)) in out_q.iter().zip(&out_h).enumerate() {
            let (a, b) = (a.output.as_ref().unwrap(), b.output.as_ref().unwrap());
            let same = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "stream {i}: fused bf16 diverged from host widen");
        }
        // The quant bucket reports itself, and moves fewer bytes (the KV
        // panels at half width; everything else is unchanged).
        assert!(eng_q.last_decode().buckets.iter().all(|b| b.quantized));
        assert!(eng_h.last_decode().buckets.iter().all(|b| !b.quantized));
        assert!(
            eng_q.ctx().timeline.total_bytes() < eng_h.ctx().timeline.total_bytes(),
            "bf16 KV panels must charge fewer bytes than f32 ({} vs {})",
            eng_q.ctx().timeline.total_bytes(),
            eng_h.ctx().timeline.total_bytes()
        );
    }

    #[test]
    fn mixed_kv_quantisation_is_a_typed_rejection() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(47);
        let q: Vec<f32> = (0..8).map(|_| rng.normal(0.0, 1.0)).collect();
        let k_bf16: Vec<Bf16> = (0..4 * 8)
            .map(|_| Bf16::from_f32(rng.normal(0.0, 1.0)))
            .collect();
        let v_f32: Vec<f32> = (0..4 * 8).map(|_| rng.normal(0.0, 1.0)).collect();
        let step = DecodeStep {
            q_row: &q,
            k_rows: KvRows::PagedBf16 {
                pages: vec![k_bf16.as_slice()],
                rows_per_page: 4,
            },
            v_rows: KvRows::Contiguous(&v_f32),
            len: 4,
            d: 8,
            d_v: 8,
        };
        let err = engine.flush_decode(&[step]).unwrap_err();
        assert!(matches!(err, RequestError::DecodeShapeMismatch { .. }));
        assert!(err.to_string().contains("quantisation"), "got: {err}");
        assert_eq!(engine.ctx().timeline.launches(), 0);
    }

    #[test]
    fn charge_only_flush_reports_costs_without_outputs() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut exec_engine = AttentionEngine::new(&mech);
        let mut charge_engine = AttentionEngine::with_ctx(&mech, GpuCtx::a100_charge_only());
        let mut rng = Rng::new(13);
        for _ in 0..3 {
            let (q, k, v) = request(32, 16, &mut rng);
            exec_engine.submit(q.clone(), k.clone(), v.clone()).unwrap();
            charge_engine.submit(q, k, v).unwrap();
        }
        let exec_out = exec_engine.flush();
        let charge_out = charge_engine.flush();
        assert!(exec_out.iter().all(|r| r.output.is_some()));
        assert!(charge_out.iter().all(|r| r.output.is_none()));
        // Identical charges either way.
        assert_eq!(
            exec_engine.ctx().timeline.total_bytes(),
            charge_engine.ctx().timeline.total_bytes()
        );
        assert!(
            (exec_engine.last_flush().sim_latency_s() - charge_engine.last_flush().sim_latency_s())
                .abs()
                < 1e-15
        );
    }

    /// The continuous-batching parity contract: for every chunk-opted-in
    /// mechanism, stacking `forward_chunk` outputs over any row partition —
    /// including odd, unaligned chunk sizes — is bit-identical to one solo
    /// whole-Q `forward`.
    #[test]
    fn chunked_forward_stacks_bit_identical_to_whole_forward() {
        let mechs: Vec<(&str, Box<dyn Attention<f32>>)> = vec![
            ("full", Box::new(FullAttention)),
            ("dfss-fused", Box::new(DfssAttention::new(NmPattern::P1_2))),
            (
                "dfss-unfused",
                Box::new(DfssAttention::unfused(NmPattern::P1_2)),
            ),
        ];
        let mut rng = Rng::new(41);
        for (name, mech) in &mechs {
            assert!(mech.supports_row_chunking(), "{name}");
            let (n, d) = (48, 16);
            let (q, k, v) = request(n, d, &mut rng);
            let solo = {
                let mut ctx = GpuCtx::a100();
                mech.forward(&mut ctx, &q, &k, &v)
            };
            // Uneven partition: 17 + 17 + 14 rows.
            for chunk in [17usize, 48, 5] {
                let mut engine = AttentionEngine::with_ctx(mech.as_ref(), GpuCtx::a100());
                let mut got: Vec<f32> = Vec::new();
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    let mut rows = Vec::with_capacity((hi - lo) * d);
                    for r in lo..hi {
                        rows.extend_from_slice(q.row(r));
                    }
                    let q_rows = Matrix::from_vec(hi - lo, d, rows);
                    let res = engine.forward_chunk(&q_rows, &k, &v).unwrap();
                    assert_eq!(res.rows, hi - lo);
                    assert!(res.launches > 0 && res.sim_latency_s > 0.0);
                    got.extend_from_slice(res.output.as_ref().unwrap().as_slice());
                    lo = hi;
                }
                let solo_bits: Vec<u32> = solo.as_slice().iter().map(|x| x.to_bits()).collect();
                let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(solo_bits, got_bits, "{name} chunk={chunk}");
            }
        }
    }

    #[test]
    fn forward_chunk_rejects_malformed_chunks_without_launching() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(42);
        let (_, k, v) = request(32, 16, &mut rng);
        // Wrong head dim vs K.
        let q_bad = Matrix::<f32>::random_normal(4, 8, 0.0, 1.0, &mut rng);
        assert!(matches!(
            engine.forward_chunk(&q_bad, &k, &v),
            Err(RequestError::KShapeMismatch { .. })
        ));
        // Key count violating the mechanism's N:M alignment.
        let q_rows = Matrix::<f32>::random_normal(4, 16, 0.0, 1.0, &mut rng);
        let k_odd = Matrix::<f32>::random_normal(31, 16, 0.0, 1.0, &mut rng);
        let v_odd = Matrix::<f32>::random_normal(31, 16, 0.0, 1.0, &mut rng);
        assert!(matches!(
            engine.forward_chunk(&q_rows, &k_odd, &v_odd),
            Err(RequestError::Unsupported { .. })
        ));
        assert_eq!(engine.ctx().timeline.entries().len(), 0);
    }
}
