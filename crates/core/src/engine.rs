//! The reusable attention execution engine — batching as a *service*, not
//! a call convention.
//!
//! Before this module, every caller that wanted the paper's one-launch-per-
//! op batching (A.1.2) hand-assembled `BatchedMatrix` stacks, created a
//! fresh `GpuCtx` per call and re-derived the launch shape work each time.
//! [`AttentionEngine`] owns that per-launch state across calls — the device
//! context (timeline + memory ledger), the request queue, and the pack/
//! unpack plumbing — and exposes the serving-shaped surface the ROADMAP
//! asks for:
//!
//! * [`submit`](AttentionEngine::submit) — admit one `(Q, K, V)` request,
//!   validated against the mechanism's shape constraints with a typed
//!   [`RequestError`] (never a panic), returning a [`Ticket`];
//! * [`flush`](AttentionEngine::flush) — pack everything pending into one
//!   contiguous stack **per shape bucket** (heterogeneous requests sharing
//!   a bucket coalesce via [`BatchedMatrix::gather`]), run a single
//!   `forward_batched` per bucket (one simulated launch per op), and unpack
//!   per-request outputs bit-identically to what a solo
//!   [`Attention::forward`] would have produced.
//!
//! `simulate_encoder`, the serving layer (`dfss-serve`) and the load
//! generator all sit on this engine; none of them touch `BatchedMatrix`
//! assembly directly.

use crate::mechanism::{try_check_qkv, Attention, RequestError};
use dfss_kernels::GpuCtx;
use dfss_tensor::{BatchedMatrix, Matrix, Scalar};

/// Identifier of a submitted request, unique per engine for its lifetime.
/// Tickets are issued in submission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// The shape bucket a request is admitted into: requests agree on the
/// sequence length, head dim and value dim, so their panels can stack into
/// one batched launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    pub n: usize,
    pub d: usize,
    pub d_v: usize,
}

struct PendingRequest<T> {
    ticket: Ticket,
    q: Matrix<T>,
    k: Matrix<T>,
    v: Matrix<T>,
}

/// One completed request out of a [`flush`](AttentionEngine::flush).
#[derive(Debug)]
pub struct FlushedRequest<T: Scalar> {
    pub ticket: Ticket,
    /// The attention output — `None` only under a charge-only context
    /// (`ctx.exec == false`), where kernels skip the numeric work.
    pub output: Option<Matrix<T>>,
    /// Shape bucket the request was batched in.
    pub bucket: ShapeKey,
    /// How many requests shared the request's batched launch.
    pub batch_size: usize,
    /// Simulated-device latency of the bucket's launches (the whole batch —
    /// every request in it waits for the full launch).
    pub sim_latency_s: f64,
}

/// Per-bucket accounting of one flush.
#[derive(Clone, Debug)]
pub struct BucketReport {
    pub bucket: ShapeKey,
    pub batch_size: usize,
    /// Simulated-device latency of this bucket's launches.
    pub sim_latency_s: f64,
    /// Kernel launches this bucket recorded (one per op).
    pub launches: u64,
}

/// Accounting of one [`flush`](AttentionEngine::flush).
#[derive(Clone, Debug, Default)]
pub struct FlushReport {
    pub buckets: Vec<BucketReport>,
}

impl FlushReport {
    /// Total simulated-device latency across the flush's buckets.
    pub fn sim_latency_s(&self) -> f64 {
        self.buckets.iter().map(|b| b.sim_latency_s).sum()
    }
}

/// A reusable batching front end over one attention mechanism.
///
/// The engine borrows the mechanism (mechanisms are small, often `Copy`
/// structs; the serving layer owns one per server) and owns the simulated
/// device context, reusing it across flushes instead of recreating it per
/// call.
pub struct AttentionEngine<'m, T: Scalar> {
    mech: &'m dyn Attention<T>,
    ctx: GpuCtx,
    pending: Vec<PendingRequest<T>>,
    next_ticket: u64,
    last_flush: FlushReport,
}

impl<'m, T: Scalar> AttentionEngine<'m, T> {
    /// Engine on the paper's evaluation device (A100).
    pub fn new(mech: &'m dyn Attention<T>) -> AttentionEngine<'m, T> {
        AttentionEngine::with_ctx(mech, GpuCtx::a100())
    }

    /// Engine over an existing context (carries its `exec` mode, device
    /// config and any recorded history).
    pub fn with_ctx(mech: &'m dyn Attention<T>, ctx: GpuCtx) -> AttentionEngine<'m, T> {
        AttentionEngine {
            mech,
            ctx,
            pending: Vec::new(),
            next_ticket: 0,
            last_flush: FlushReport::default(),
        }
    }

    /// The mechanism this engine batches for.
    pub fn mech(&self) -> &dyn Attention<T> {
        self.mech
    }

    /// The owned device context (timeline, memory ledger).
    pub fn ctx(&self) -> &GpuCtx {
        &self.ctx
    }

    /// Mutable device context — callers that interleave non-attention
    /// kernels with submits (the encoder simulation) record them here so
    /// the timeline stays in program order.
    pub fn ctx_mut(&mut self) -> &mut GpuCtx {
        &mut self.ctx
    }

    /// Consume the engine, returning its context (with the full timeline).
    pub fn into_ctx(self) -> GpuCtx {
        self.ctx
    }

    /// Requests admitted but not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accounting of the most recent [`flush`](Self::flush).
    pub fn last_flush(&self) -> &FlushReport {
        &self.last_flush
    }

    /// Validate and admit one request. Returns its [`Ticket`]; malformed
    /// triples and shapes the mechanism cannot run come back as typed
    /// errors without touching engine state.
    pub fn submit(
        &mut self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<Ticket, RequestError> {
        try_check_qkv(self.mech, &q, &k, &v)?;
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingRequest { ticket, q, k, v });
        Ok(ticket)
    }

    /// Run everything pending: requests group into shape buckets (admission
    /// order preserved within a bucket, buckets in first-seen order), each
    /// bucket packs into one contiguous stack and runs a single
    /// `forward_batched` — one simulated launch per op for the whole bucket
    /// — and outputs unpack per request, bit-identical to solo `forward`
    /// calls. Results are returned in ticket (= submission) order.
    pub fn flush(&mut self) -> Vec<FlushedRequest<T>> {
        let pending = std::mem::take(&mut self.pending);
        let mut report = FlushReport::default();
        if pending.is_empty() {
            self.last_flush = report;
            return Vec::new();
        }

        // Shape-bucket the queue, preserving order within buckets.
        let mut buckets: Vec<(ShapeKey, Vec<PendingRequest<T>>)> = Vec::new();
        for req in pending {
            let key = ShapeKey {
                n: req.q.rows(),
                d: req.q.cols(),
                d_v: req.v.cols(),
            };
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, reqs)) => reqs.push(req),
                None => buckets.push((key, vec![req])),
            }
        }

        let mut results: Vec<FlushedRequest<T>> = Vec::new();
        for (key, reqs) in buckets {
            let batch_size = reqs.len();
            let qs: Vec<&Matrix<T>> = reqs.iter().map(|r| &r.q).collect();
            let ks: Vec<&Matrix<T>> = reqs.iter().map(|r| &r.k).collect();
            let vs: Vec<&Matrix<T>> = reqs.iter().map(|r| &r.v).collect();
            let qb = BatchedMatrix::gather(&qs);
            let kb = BatchedMatrix::gather(&ks);
            let vb = BatchedMatrix::gather(&vs);

            let mark = self.ctx.timeline.entries().len();
            let out = self.mech.forward_batched(&mut self.ctx, &qb, &kb, &vb);
            let new_entries = &self.ctx.timeline.entries()[mark..];
            let sim_latency_s: f64 = new_entries.iter().map(|e| e.latency(&self.ctx.dev)).sum();
            let launches: u64 = new_entries.iter().map(|e| e.launches).sum();
            report.buckets.push(BucketReport {
                bucket: key,
                batch_size,
                sim_latency_s,
                launches,
            });

            let mut outputs: Vec<Option<Matrix<T>>> = if out.is_materialized() {
                out.into_panels().into_iter().map(Some).collect()
            } else {
                (0..batch_size).map(|_| None).collect()
            };
            for (req, output) in reqs.into_iter().zip(outputs.drain(..)) {
                results.push(FlushedRequest {
                    ticket: req.ticket,
                    output,
                    bucket: key,
                    batch_size,
                    sim_latency_s,
                });
            }
        }
        results.sort_by_key(|r| r.ticket);
        self.last_flush = report;
        results
    }

    /// Run an **already-packed** B×H stack through the engine as one
    /// bucket — the encoder-simulation fast path. Callers that hold their
    /// panels in a contiguous stack (e.g. a `split_heads` result) skip the
    /// per-request queue and the gather/unpack copies while keeping the
    /// engine's one-launch-per-op execution, owned context and flush
    /// accounting. Equivalent to submitting each panel and flushing.
    pub fn flush_stack(
        &mut self,
        q: &BatchedMatrix<T>,
        k: &BatchedMatrix<T>,
        v: &BatchedMatrix<T>,
    ) -> BatchedMatrix<T> {
        let key = ShapeKey {
            n: q.rows(),
            d: q.cols(),
            d_v: v.cols(),
        };
        let mark = self.ctx.timeline.entries().len();
        let out = self.mech.forward_batched(&mut self.ctx, q, k, v);
        let new_entries = &self.ctx.timeline.entries()[mark..];
        self.last_flush = FlushReport {
            buckets: vec![BucketReport {
                bucket: key,
                batch_size: q.batch(),
                sim_latency_s: new_entries.iter().map(|e| e.latency(&self.ctx.dev)).sum(),
                launches: new_entries.iter().map(|e| e.launches).sum(),
            }],
        };
        out
    }

    /// Drop the accumulated kernel timeline (the memory ledger keeps its
    /// peak) — long-running servers call this between batches so the
    /// context does not grow without bound.
    pub fn reset_timeline(&mut self) {
        self.ctx.reset_timeline();
    }
}

impl<T: Scalar> std::fmt::Debug for AttentionEngine<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AttentionEngine<{}> for {:?} ({} pending)",
            T::NAME,
            self.mech.name(),
            self.pending.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfss::DfssAttention;
    use crate::full::FullAttention;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;

    fn request(n: usize, d: usize, rng: &mut Rng) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
        )
    }

    #[test]
    fn flush_is_bit_identical_to_solo_forward_across_buckets() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(7);
        // Heterogeneous queue: two shape buckets interleaved.
        let shapes = [(32, 16), (64, 8), (32, 16), (64, 8), (32, 16)];
        let mut solo = Vec::new();
        for &(n, d) in &shapes {
            let (q, k, v) = request(n, d, &mut rng);
            let mut sctx = GpuCtx::a100();
            solo.push(mech.forward(&mut sctx, &q, &k, &v));
            engine.submit(q, k, v).unwrap();
        }
        assert_eq!(engine.pending(), 5);
        let results = engine.flush();
        assert_eq!(engine.pending(), 0);
        assert_eq!(results.len(), 5);
        for (i, (res, want)) in results.iter().zip(&solo).enumerate() {
            assert_eq!(res.ticket, Ticket(i as u64));
            let got = res.output.as_ref().expect("exec mode");
            let same = got
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "request {i} diverged from solo forward");
        }
        // Two buckets: (32,16) × 3 and (64,8) × 2.
        let report = engine.last_flush();
        assert_eq!(report.buckets.len(), 2);
        assert_eq!(report.buckets[0].batch_size, 3);
        assert_eq!(report.buckets[1].batch_size, 2);
        assert!(report.sim_latency_s() > 0.0);
    }

    #[test]
    fn one_launch_per_op_per_bucket() {
        // Dfss runs 3 ops (fused SDDMM, softmax, SpMM): a flush with two
        // buckets must record exactly 6 launches no matter how many
        // requests each bucket holds.
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(9);
        for &(n, d) in &[(32, 8), (32, 8), (32, 8), (64, 8), (64, 8)] {
            let (q, k, v) = request(n, d, &mut rng);
            engine.submit(q, k, v).unwrap();
        }
        let _ = engine.flush();
        assert_eq!(engine.ctx().timeline.launches(), 6);
        for b in &engine.last_flush().buckets {
            assert_eq!(b.launches, 3);
        }
    }

    #[test]
    fn submit_rejects_unservable_requests_without_queueing() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut engine = AttentionEngine::new(&mech);
        // n = 31 is not a multiple of M = 2 → typed rejection.
        let q = Matrix::<f32>::zeros(31, 8);
        let err = engine.submit(q.clone(), q.clone(), q.clone()).unwrap_err();
        assert!(matches!(err, RequestError::Unsupported { .. }));
        // Mismatched K → typed rejection.
        let q32 = Matrix::<f32>::zeros(32, 8);
        let k_bad = Matrix::<f32>::zeros(32, 4);
        let err = engine.submit(q32.clone(), k_bad, q32.clone()).unwrap_err();
        assert!(matches!(err, RequestError::KShapeMismatch { .. }));
        assert_eq!(engine.pending(), 0);
        assert!(engine.flush().is_empty());
    }

    #[test]
    fn tickets_are_unique_across_flushes_and_ctx_persists() {
        let mech = FullAttention;
        let mut engine = AttentionEngine::new(&mech);
        let mut rng = Rng::new(11);
        let (q, k, v) = request(16, 8, &mut rng);
        let t0 = engine.submit(q.clone(), k.clone(), v.clone()).unwrap();
        let _ = engine.flush();
        let launches_after_first = engine.ctx().timeline.launches();
        let t1 = engine.submit(q, k, v).unwrap();
        assert!(t1 > t0, "tickets must be monotone across flushes");
        let _ = engine.flush();
        // The context is owned and reused: the timeline accumulated both
        // flushes' launches until explicitly reset.
        assert_eq!(engine.ctx().timeline.launches(), 2 * launches_after_first);
        engine.reset_timeline();
        assert_eq!(engine.ctx().timeline.launches(), 0);
    }

    #[test]
    fn flush_stack_matches_submit_flush() {
        // The pre-packed fast path runs the same launches and reports the
        // same accounting as the queued path, with bit-identical outputs.
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut rng = Rng::new(21);
        let (batch, n, d) = (4usize, 32usize, 16usize);
        let qb = dfss_tensor::BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let kb = dfss_tensor::BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let vb = dfss_tensor::BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);

        let mut queued = AttentionEngine::new(&mech);
        for b in 0..batch {
            queued
                .submit(qb.to_panel(b), kb.to_panel(b), vb.to_panel(b))
                .unwrap();
        }
        let queued_out = queued.flush();

        let mut stacked = AttentionEngine::new(&mech);
        let out = stacked.flush_stack(&qb, &kb, &vb);
        assert_eq!(out.shape(), (batch, n, d));
        for (b, res) in queued_out.iter().enumerate() {
            let want = res.output.as_ref().unwrap();
            let same = out
                .panel(b)
                .iter()
                .zip(want.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "panel {b} diverged between stack and queued paths");
        }
        assert_eq!(
            stacked.ctx().timeline.total_bytes(),
            queued.ctx().timeline.total_bytes()
        );
        let (sr, qr) = (stacked.last_flush(), queued.last_flush());
        assert_eq!(sr.buckets.len(), 1);
        assert_eq!(sr.buckets[0].batch_size, batch);
        assert_eq!(sr.buckets[0].launches, qr.buckets[0].launches);
        assert!((sr.sim_latency_s() - qr.sim_latency_s()).abs() < 1e-15);
    }

    #[test]
    fn charge_only_flush_reports_costs_without_outputs() {
        let mech = DfssAttention::new(NmPattern::P1_2);
        let mut exec_engine = AttentionEngine::new(&mech);
        let mut charge_engine = AttentionEngine::with_ctx(&mech, GpuCtx::a100_charge_only());
        let mut rng = Rng::new(13);
        for _ in 0..3 {
            let (q, k, v) = request(32, 16, &mut rng);
            exec_engine.submit(q.clone(), k.clone(), v.clone()).unwrap();
            charge_engine.submit(q, k, v).unwrap();
        }
        let exec_out = exec_engine.flush();
        let charge_out = charge_engine.flush();
        assert!(exec_out.iter().all(|r| r.output.is_some()));
        assert!(charge_out.iter().all(|r| r.output.is_none()));
        // Identical charges either way.
        assert_eq!(
            exec_engine.ctx().timeline.total_bytes(),
            charge_engine.ctx().timeline.total_bytes()
        );
        assert!(
            (exec_engine.last_flush().sim_latency_s() - charge_engine.last_flush().sim_latency_s())
                .abs()
                < 1e-15
        );
    }
}
