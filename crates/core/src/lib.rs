//! # dfss-core — the Dfss attention mechanism, its baselines, and the
//! paper's theory
//!
//! The primary contribution of the paper lives in [`dfss::DfssAttention`]:
//! a drop-in replacement for full attention that dynamically prunes the
//! score matrix to N:M fine-grained structured sparsity inside the QKᵀ GEMM
//! epilogue, softmaxes the compressed nonzeros, and multiplies by V on the
//! (simulated) sparse tensor core.
//!
//! Everything it is compared against in the evaluation is here too:
//!
//! | module | mechanisms | paper role |
//! |---|---|---|
//! | [`full`] | dense attention | the baseline of every figure |
//! | [`dfss`] | Dfss 1:2 / 2:4 / generic N:M, fused & unfused, blocked-ELL hybrid | §3 |
//! | [`sparse_baselines`] | explicit top-k, fixed (truncated columns), local window, BigBird-style block sparse (± Dfss) | §4.3–4.4, Fig 11 |
//! | [`linear_baselines`] | Performer (FAVOR+), Nyströmformer (± Dfss), Linformer (± Dfss) | Fig 5, A.5, A.7 |
//! | [`cluster_baselines`] | Reformer (LSH), Routing (k-means), Sinkhorn (block matching) | Fig 5 |
//! | [`quality`] | the `Q^p` lottery-ticket quality metric (Def 4.1) | Fig 12, 13 |
//! | [`theory`] | Props 4.2/4.3, Eqs 5/6/33, the Performer MSE bounds (Eqs 30/31) | §4, A.2–A.5 |
//! | [`visualize`] | ASCII/CSV attention heat maps | Fig 19 |
//! | [`engine`] | [`AttentionEngine`]: shape-bucketed submit/flush batching over any mechanism | §5.2 serving, A.1.2 |

pub mod cluster_baselines;
pub mod dfss;
pub mod engine;
pub mod full;
pub mod linear_baselines;
pub mod mechanism;
pub mod model;
pub mod quality;
pub mod sparse_baselines;
pub mod theory;
pub mod visualize;

pub use dfss::DfssAttention;
pub use engine::{AttentionEngine, FlushedRequest, ShapeKey, Ticket};
pub use full::FullAttention;
pub use mechanism::{Attention, RequestError};
