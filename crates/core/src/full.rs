//! Full (dense) attention — Equation (1), the baseline of every experiment.

use crate::mechanism::{check_qkv, check_qkv_batched, Attention};
use dfss_gpusim::Stage;
use dfss_kernels::{gemm, softmax, GpuCtx};
use dfss_tensor::{BatchedMatrix, Matrix, Scalar};

/// `O = softmax(QKᵀ/√d) · V`, all dense.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullAttention;

impl<T: Scalar> Attention<T> for FullAttention {
    fn name(&self) -> String {
        format!("Transformer ({})", T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = <Self as Attention<T>>::scale_for(self, d);
        // The dense n×n score matrix is materialised — this allocation is
        // exactly what Dfss avoids (§3.4).
        let scores_id = ctx.mem.alloc("scores_dense", (n * n * T::BYTES) as u64);
        let scores = gemm::gemm_nt(ctx, Stage::Qk, q, k, scale);
        let weights_id = ctx.mem.alloc("weights_dense", (n * n * T::BYTES) as u64);
        let weights = softmax::softmax_dense(ctx, &scores);
        ctx.mem.free(scores_id);
        let out = gemm::gemm_nn(ctx, Stage::Av, &weights, v);
        ctx.mem.free(weights_id);
        out
    }

    /// Natively batched dense pipeline: one GEMM / softmax / GEMM launch
    /// for the whole B×H stack, each charging `batch ×` the per-head cost
    /// in a single profile. Bit-identical to a per-head loop.
    fn forward_batched(
        &self,
        ctx: &mut GpuCtx,
        q: &BatchedMatrix<T>,
        k: &BatchedMatrix<T>,
        v: &BatchedMatrix<T>,
    ) -> BatchedMatrix<T> {
        let (batch, n, d) = check_qkv_batched(q, k, v);
        let scale = <Self as Attention<T>>::scale_for(self, d);
        // Every panel's dense n×n scores are live at once in the batched
        // launch — the footprint Dfss's compressed stack avoids.
        let scores_id = ctx
            .mem
            .alloc("scores_dense", (batch * n * n * T::BYTES) as u64);
        let scores = gemm::gemm_nt_batched(ctx, Stage::Qk, q, k, scale);
        let weights_id = ctx
            .mem
            .alloc("weights_dense", (batch * n * n * T::BYTES) as u64);
        let weights = softmax::softmax_dense_batched(ctx, &scores);
        ctx.mem.free(scores_id);
        let out = gemm::gemm_nn_batched(ctx, Stage::Av, &weights, v);
        ctx.mem.free(weights_id);
        out
    }

    /// Dense scores are row-separable: the default rectangular
    /// [`Attention::forward_rows`] pipeline (same kernels, same serial-k
    /// accumulation per element) stacks bit-identically to
    /// [`forward`](Attention::forward), so chunked prefill is safe.
    fn supports_row_chunking(&self) -> bool {
        true
    }
}

/// Reference attention computed with naive host math (no simulator, no
/// optimised kernels) — the oracle used by tests across the workspace.
pub fn reference_attention(q: &Matrix<f32>, k: &Matrix<f32>, v: &Matrix<f32>) -> Matrix<f32> {
    let (n, d) = check_qkv(q, k, v);
    let scale = 1.0 / (d as f32).sqrt();
    let mut scores = q.matmul_ref(&k.transpose());
    for r in 0..n {
        let row = scores.row_mut(r);
        row.iter_mut().for_each(|x| *x *= scale);
        dfss_tensor::math::softmax_row(row);
    }
    scores.matmul_ref(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    #[test]
    fn matches_reference() {
        let mut rng = Rng::new(1);
        let q = Matrix::<f32>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let k = Matrix::<f32>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let out = FullAttention.forward(&mut ctx, &q, &k, &v);
        let reference = reference_attention(&q, &k, &v);
        assert!(out.max_abs_diff(&reference) < 1e-2);
    }

    #[test]
    fn records_three_stages() {
        let mut rng = Rng::new(2);
        let q = Matrix::<f32>::random_normal(64, 16, 0.0, 1.0, &mut rng);
        let k = q.clone();
        let v = q.clone();
        let mut ctx = GpuCtx::a100();
        let _ = FullAttention.forward(&mut ctx, &q, &k, &v);
        for stage in [Stage::Qk, Stage::Softmax, Stage::Av] {
            assert!(ctx.timeline.stage_bytes(stage) > 0, "{stage:?}");
        }
        assert_eq!(ctx.timeline.stage_bytes(Stage::Overhead), 0);
    }

    #[test]
    fn peak_memory_includes_dense_scores() {
        let n = 128;
        let mut rng = Rng::new(3);
        let q = Matrix::<f32>::random_normal(n, 16, 0.0, 1.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let _ = FullAttention.forward(&mut ctx, &q, &q.clone(), &q.clone());
        // scores + weights live simultaneously at the softmax step.
        assert_eq!(ctx.mem.peak(), 2 * (n * n * 4) as u64);
        assert_eq!(ctx.mem.current(), 0);
    }

    #[test]
    fn output_rows_are_convex_combinations() {
        // Each output row is a softmax-weighted average of V rows, so it
        // must lie inside V's per-column min/max envelope.
        let mut rng = Rng::new(4);
        let q = Matrix::<f32>::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let k = Matrix::<f32>::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(16, 8, 0.0, 1.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let out = FullAttention.forward(&mut ctx, &q, &k, &v);
        for c in 0..8 {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for r in 0..16 {
                lo = lo.min(v.get(r, c));
                hi = hi.max(v.get(r, c));
            }
            for r in 0..16 {
                let x = out.get(r, c);
                assert!(x >= lo - 1e-4 && x <= hi + 1e-4, "({r},{c})");
            }
        }
    }
}
