//! Simulated end-to-end transformer inference (Appendix A.6).
//!
//! Figures 14–16 measure a 4-layer encoder (the LRA Text model): per-head
//! attention plus the "Others" — QKV/output projections, the feed-forward
//! network and layer norms. This module executes one inference pass of that
//! encoder on the simulated device, with the attention mechanism pluggable,
//! so a single run yields end-to-end latency, the attention-vs-others
//! breakdown, and peak memory.

use crate::engine::AttentionEngine;
use crate::mechanism::Attention;
use dfss_gpusim::{KernelProfile, Stage};
use dfss_kernels::{gemm, GpuCtx};
use dfss_tensor::{BatchedMatrix, Matrix, Rng, Scalar};

/// Split an `n × (H·d_head)` activation into an H-panel stack of `n ×
/// d_head` head slices (one pass; the batched attention input). Thin
/// re-export of [`BatchedMatrix::split_heads`], kept for compatibility.
pub fn split_heads<T: Scalar>(x: &Matrix<T>, heads: usize) -> BatchedMatrix<T> {
    BatchedMatrix::split_heads(x, heads)
}

/// End-to-end model shape (defaults follow the paper's A.6 configuration:
/// 4 layers, head dim 64).
#[derive(Clone, Copy, Debug)]
pub struct SimModelConfig {
    pub layers: usize,
    pub heads: usize,
    pub d_head: usize,
    /// Hidden dimension of the feed-forward layer.
    pub d_ffn: usize,
    pub seq_len: usize,
}

impl SimModelConfig {
    pub fn lra_text(heads: usize, d_ffn: usize, seq_len: usize) -> SimModelConfig {
        SimModelConfig {
            layers: 4,
            heads,
            d_head: 64,
            d_ffn,
            seq_len,
        }
    }

    pub fn d_model(&self) -> usize {
        self.heads * self.d_head
    }
}

/// Execute one encoder inference pass on the simulated device. Returns the
/// final hidden states (numerics are real; the interesting outputs are in
/// `ctx.timeline` / `ctx.mem`).
///
/// Multi-head attention rides the [`AttentionEngine`]: every layer splits
/// its heads into one contiguous stack and runs it through the engine's
/// pre-packed `flush_stack` bucket — one batched launch per op across the
/// head grid (A.1.2), the same engine the serving layer queues into. The
/// engine temporarily takes ownership of `ctx` so non-attention kernels and
/// attention launches share one timeline in program order.
pub fn simulate_encoder<T: Scalar>(
    ctx: &mut GpuCtx,
    cfg: &SimModelConfig,
    mech: &dyn Attention<T>,
    seed: u64,
) -> Matrix<T> {
    let n = cfg.seq_len;
    let dm = cfg.d_model();
    let mut rng = Rng::new(seed);
    let placeholder = GpuCtx::new(ctx.dev.clone());
    let mut engine = AttentionEngine::with_ctx(mech, std::mem::replace(ctx, placeholder));

    let mut x: Matrix<T> = Matrix::random_normal(n, dm, 0.0, 1.0, &mut rng);
    let x_id = engine
        .ctx_mut()
        .mem
        .alloc("activations", (n * dm * T::BYTES) as u64);

    // Static weights live for the whole pass.
    let wq: Matrix<T> = Matrix::random_normal(dm, dm, 0.0, 0.05, &mut rng);
    let wk: Matrix<T> = Matrix::random_normal(dm, dm, 0.0, 0.05, &mut rng);
    let wv: Matrix<T> = Matrix::random_normal(dm, dm, 0.0, 0.05, &mut rng);
    let wo: Matrix<T> = Matrix::random_normal(dm, dm, 0.0, 0.05, &mut rng);
    let w1: Matrix<T> = Matrix::random_normal(dm, cfg.d_ffn, 0.0, 0.05, &mut rng);
    let w2: Matrix<T> = Matrix::random_normal(cfg.d_ffn, dm, 0.0, 0.05, &mut rng);
    let weights_bytes = ((4 * dm * dm + 2 * dm * cfg.d_ffn) * T::BYTES) as u64;
    let w_id = engine.ctx_mut().mem.alloc("weights", weights_bytes);

    for _layer in 0..cfg.layers {
        // QKV projections (Others).
        let qkv_id = engine
            .ctx_mut()
            .mem
            .alloc("qkv", (3 * n * dm * T::BYTES) as u64);
        let q = gemm::gemm_nn(engine.ctx_mut(), Stage::NonAttention, &x, &wq);
        let k = gemm::gemm_nn(engine.ctx_mut(), Stage::NonAttention, &x, &wk);
        let v = gemm::gemm_nn(engine.ctx_mut(), Stage::NonAttention, &x, &wv);

        // Batched multi-head attention through the engine's pre-packed
        // fast path: head panels are split once into a contiguous stack and
        // run as one bucket — one launch per op for the whole head grid,
        // with no per-request pack/unpack copies. Natively batched
        // mechanisms (Dfss, dense) charge one profile per kernel, the rest
        // run per head with their launches collapsed by the default
        // `forward_batched`.
        let qh = BatchedMatrix::split_heads(&q, cfg.heads);
        let kh = BatchedMatrix::split_heads(&k, cfg.heads);
        let vh = BatchedMatrix::split_heads(&v, cfg.heads);
        let ob = engine.flush_stack(&qh, &kh, &vh);
        let concat: Matrix<T> = if ob.is_materialized() {
            ob.merge_heads()
        } else {
            // Charge-only placeholder outputs leave a zero concat in place
            // — downstream kernels skip the numeric work anyway.
            Matrix::zeros(n, dm)
        };
        // Output projection (Others).
        let attn_out = gemm::gemm_nn(engine.ctx_mut(), Stage::NonAttention, &concat, &wo);
        engine.ctx_mut().mem.free(qkv_id);

        // Residual + LayerNorm (Others, element-wise).
        engine.ctx_mut().record(
            KernelProfile::new("residual_ln", Stage::NonAttention)
                .with_traffic((2 * n * dm * T::BYTES) as u64, (n * dm * T::BYTES) as u64)
                .with_alu((n * dm * 8) as u64),
        );
        let mut h1 = x.clone();
        for (a, &b) in h1.as_mut_slice().iter_mut().zip(attn_out.as_slice()) {
            *a = T::from_acc(a.to_acc() + b.to_acc());
        }

        // FFN (Others): two GEMMs + GELU.
        let ffn_id = engine
            .ctx_mut()
            .mem
            .alloc("ffn_hidden", (n * cfg.d_ffn * T::BYTES) as u64);
        let mid = gemm::gemm_nn(engine.ctx_mut(), Stage::NonAttention, &h1, &w1);
        engine.ctx_mut().record(
            KernelProfile::new("gelu", Stage::NonAttention)
                .with_traffic(
                    (n * cfg.d_ffn * T::BYTES) as u64,
                    (n * cfg.d_ffn * T::BYTES) as u64,
                )
                .with_alu((n * cfg.d_ffn * 8) as u64),
        );
        let mid = mid.map(|v| T::from_f32(dfss_tensor::math::gelu(v.to_f32())));
        let ffn_out = gemm::gemm_nn(engine.ctx_mut(), Stage::NonAttention, &mid, &w2);
        engine.ctx_mut().mem.free(ffn_id);
        engine.ctx_mut().record(
            KernelProfile::new("residual_ln", Stage::NonAttention)
                .with_traffic((2 * n * dm * T::BYTES) as u64, (n * dm * T::BYTES) as u64)
                .with_alu((n * dm * 8) as u64),
        );
        let mut h2 = h1;
        for (a, &b) in h2.as_mut_slice().iter_mut().zip(ffn_out.as_slice()) {
            *a = T::from_acc(a.to_acc() + b.to_acc());
        }
        x = h2;
    }
    engine.ctx_mut().mem.free(w_id);
    engine.ctx_mut().mem.free(x_id);
    *ctx = engine.into_ctx();
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfss::DfssAttention;
    use crate::full::FullAttention;
    use dfss_nmsparse::NmPattern;

    #[test]
    fn encoder_runs_and_records_both_categories() {
        let cfg = SimModelConfig::lra_text(4, 256, 128);
        let mut ctx = GpuCtx::a100();
        let out = simulate_encoder::<f32>(&mut ctx, &cfg, &FullAttention, 1);
        assert_eq!(out.shape(), (128, 256));
        let attn: f64 = [Stage::Qk, Stage::Softmax, Stage::Av, Stage::Overhead]
            .iter()
            .map(|&s| ctx.timeline.stage_latency(s, &ctx.dev))
            .sum();
        let others = ctx.timeline.stage_latency(Stage::NonAttention, &ctx.dev);
        assert!(attn > 0.0 && others > 0.0);
    }

    #[test]
    fn dfss_gives_end_to_end_speedup_at_long_seq() {
        let cfg = SimModelConfig::lra_text(4, 256, 1024);
        let mut cd = GpuCtx::a100();
        let _ = simulate_encoder::<f32>(&mut cd, &cfg, &FullAttention, 1);
        let mut cs = GpuCtx::a100();
        let _ = simulate_encoder::<f32>(&mut cs, &cfg, &DfssAttention::new(NmPattern::P1_2), 1);
        let speedup = cd.latency() / cs.latency();
        // Paper A.6: 1.08–1.52× end-to-end.
        assert!(speedup > 1.02 && speedup < 1.6, "e2e speedup {speedup}");
    }

    #[test]
    fn others_dominate_at_short_seq() {
        // Paper: at seq ≤ 1024 "Others" is over ~70% of latency.
        let cfg = SimModelConfig::lra_text(4, 1024, 512);
        let mut ctx = GpuCtx::a100();
        let _ = simulate_encoder::<f32>(&mut ctx, &cfg, &FullAttention, 2);
        let others = ctx.timeline.stage_latency(Stage::NonAttention, &ctx.dev);
        let total = ctx.latency();
        assert!(others / total > 0.5, "others fraction {}", others / total);
    }

    #[test]
    fn peak_memory_lower_with_dfss() {
        let cfg = SimModelConfig::lra_text(4, 256, 1024);
        let mut cd = GpuCtx::a100();
        let _ = simulate_encoder::<f32>(&mut cd, &cfg, &FullAttention, 1);
        let mut cs = GpuCtx::a100();
        let _ = simulate_encoder::<f32>(&mut cs, &cfg, &DfssAttention::new(NmPattern::P1_2), 1);
        assert!(cs.mem.peak() < cd.mem.peak());
    }
}
