//! Linear-complexity baselines: Performer (FAVOR+), Nyströmformer and
//! Linformer — plus the Dfss combinations of Appendix A.7.
//!
//! These reduce the quadratic complexity but pay per-step overheads that
//! dominate at short and moderate sequence length (Figure 5); Dfss composes
//! with Nyströmformer (Figure 17) and Linformer (Figure 18(B)) because both
//! still contain softmax-GEMM pairs over an `n×m` / `n×k` score matrix.

use crate::mechanism::{check_qkv, Attention};
use dfss_gpusim::{KernelProfile, Stage};
use dfss_kernels::{gemm, sddmm, softmax, spmm, GpuCtx};
use dfss_nmsparse::NmPattern;
use dfss_tensor::{math, Matrix, Rng, Scalar};

/// Numerically-stabilised positive softmax kernel feature map
/// (Equation 32): `φ(X) = exp(X·Wᵀ/d^¼ − ‖x‖²/(2√d) − stabiliser + ε)/√m`.
///
/// The paper's Equation 32 lists a per-row max stabiliser; like production
/// FAVOR+ implementations we use the *global* max of the projections so the
/// stabiliser cancels exactly between numerator and denominator of the
/// attention normalisation (a per-key-row max would bias the estimate).
fn favor_features(x: &Matrix<f32>, w: &Matrix<f32>, d: usize) -> Matrix<f32> {
    let m = w.rows();
    let quarter = (d as f32).sqrt().sqrt();
    let proj = Matrix::from_fn(x.rows(), m, |i, j| {
        let dot: f32 = x.row(i).iter().zip(w.row(j)).map(|(a, b)| a * b).sum();
        dot / quarter
    });
    let stab = proj
        .as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    let inv_sqrt_m = 1.0 / (m as f32).sqrt();
    Matrix::from_fn(x.rows(), m, |i, j| {
        let sq: f32 = x.row(i).iter().map(|a| a * a).sum::<f32>() / (2.0 * (d as f32).sqrt());
        ((proj.get(i, j) - sq - stab + 1e-6).exp()) * inv_sqrt_m
    })
}

/// Orthogonal random feature matrix (`m×d`): blocks of `d` Gaussian rows are
/// Gram–Schmidt orthogonalised and rescaled to χ-distributed norms
/// (Choromanski et al.'s ORF construction).
pub fn orthogonal_features(m: usize, d: usize, rng: &mut Rng) -> Matrix<f32> {
    let mut w = Matrix::<f32>::zeros(m, d);
    let mut block_rows = 0usize;
    while block_rows < m {
        let rows = d.min(m - block_rows);
        // Gaussian block, then Gram–Schmidt.
        let mut block: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..d).map(|_| rng.normal(0.0, 1.0)).collect())
            .collect();
        // Orthonormalise first (projections assume unit-norm earlier rows)…
        for i in 0..rows {
            for j in 0..i {
                let dot: f32 = block[i].iter().zip(&block[j]).map(|(a, b)| a * b).sum();
                let (lo, hi) = block.split_at_mut(i);
                for (a, &b) in hi[0].iter_mut().zip(&lo[j]) {
                    *a -= dot * b;
                }
            }
            let norm: f32 = block[i].iter().map(|a| a * a).sum::<f32>().sqrt();
            assert!(norm > 1e-6, "degenerate Gram–Schmidt block");
            block[i].iter_mut().for_each(|a| *a /= norm);
        }
        // … then rescale each row to the norm of an independent Gaussian
        // d-vector (preserves orthogonality, restores χ-distributed radii).
        for row in block.iter_mut() {
            let chi: f32 = (0..d)
                .map(|_| {
                    let g = rng.normal(0.0, 1.0);
                    g * g
                })
                .sum::<f32>()
                .sqrt();
            row.iter_mut().for_each(|a| *a *= chi);
        }
        for (bi, row) in block.iter().enumerate() {
            w.row_mut(block_rows + bi).copy_from_slice(row);
        }
        block_rows += rows;
    }
    w
}

/// Performer with the positive softmax kernel and orthogonal random
/// features (Choromanski et al. 2021), following the fused computation graph
/// of Equation (32).
#[derive(Clone, Debug)]
pub struct PerformerAttention {
    /// Number of random features; the paper uses `m = d·ln d` (266 at d=64).
    pub features: Option<usize>,
    pub seed: u64,
}

impl PerformerAttention {
    pub fn new(seed: u64) -> PerformerAttention {
        PerformerAttention {
            features: None,
            seed,
        }
    }

    pub fn with_features(features: usize, seed: u64) -> PerformerAttention {
        PerformerAttention {
            features: Some(features),
            seed,
        }
    }

    fn m_for(&self, d: usize) -> usize {
        self.features
            .unwrap_or_else(|| ((d as f64) * (d as f64).ln()).round() as usize)
    }
}

impl<T: Scalar> Attention<T> for PerformerAttention {
    fn name(&self) -> String {
        format!("Performer ({})", T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let m = self.m_for(d);
        let mut rng = Rng::new(self.seed);
        let w = orthogonal_features(m, d, &mut rng);

        // ---- simulated cost (Equation 33's op list) ----
        // T1/T4 projections + exp/max/sum element-wise chains.
        gemm::charge_gemm::<T>(ctx, "favor_proj_q", Stage::Overhead, n, m, d);
        gemm::charge_gemm::<T>(ctx, "favor_proj_k", Stage::Overhead, n, m, d);
        let elems = (2 * n * m) as u64;
        ctx.record(
            KernelProfile::new("favor_phi", Stage::Overhead)
                .with_traffic(elems * T::BYTES as u64 * 2, elems * T::BYTES as u64)
                .with_alu(elems * 8),
        );
        // T7/T8 normalisers.
        ctx.record(
            KernelProfile::new("favor_norm", Stage::Softmax)
                .with_traffic(((n * m + n) * T::BYTES) as u64, (n * T::BYTES) as u64)
                .with_alu((n * m) as u64 * 2),
        );
        // T9 = φ(K)ᵀ·V and T10 = φ(Q)·T9.
        gemm::charge_gemm::<T>(ctx, "favor_kv", Stage::Qk, m, d, n);
        gemm::charge_gemm::<T>(ctx, "favor_qkv", Stage::Av, n, d, m);
        let phi_id = ctx
            .mem
            .alloc("performer_phi", (2 * n * m * T::BYTES) as u64);
        if !ctx.exec {
            ctx.mem.free(phi_id);
            return Matrix::zeros(n, v.cols());
        }

        // ---- execution (host math in f32) ----
        let qf = q.to_f32();
        let kf = k.to_f32();
        let vf = v.to_f32();
        let phi_q = favor_features(&qf, &w, d);
        let phi_k = favor_features(&kf, &w, d);
        // T9: m×d.
        let t9 = phi_k.transpose().matmul_ref(&vf);
        // T7: column sums of phi_k (length m).
        let mut t7 = vec![0.0f32; m];
        for r in 0..n {
            for (acc, &x) in t7.iter_mut().zip(phi_k.row(r)) {
                *acc += x;
            }
        }
        let mut out = Matrix::<T>::zeros(n, v.cols());
        for i in 0..n {
            let denom: f32 = phi_q.row(i).iter().zip(&t7).map(|(a, b)| a * b).sum();
            let inv = 1.0 / denom.max(1e-9);
            let mut row = vec![0.0f32; v.cols()];
            for (j, &p) in phi_q.row(i).iter().enumerate() {
                for (o, &t) in row.iter_mut().zip(t9.row(j)) {
                    *o += p * t;
                }
            }
            let orow = out.row_mut(i);
            for (o, &x) in orow.iter_mut().zip(&row) {
                *o = T::from_acc(x * inv);
            }
        }
        ctx.mem.free(phi_id);
        out
    }
}

/// Nyströmformer (Xiong et al. 2021): landmark-based softmax approximation
/// `softmax(QK̃ᵀ) · pinv(softmax(Q̃K̃ᵀ)) · softmax(Q̃Kᵀ) · V` with
/// segment-means landmarks and an iterative pseudo-inverse. The optional
/// depth-wise-conv skip connection of the original is omitted (documented in
/// DESIGN.md) — it does not interact with the attention approximation.
#[derive(Clone, Debug)]
pub struct NystromAttention {
    pub landmarks: usize,
    pub pinv_iters: usize,
    /// `Some(pattern)` applies Dfss to the two n-length softmax factors
    /// (Figure 17's circled SDDMM/SpMM pairs).
    pub dfss: Option<NmPattern>,
}

impl NystromAttention {
    pub fn new(landmarks: usize) -> NystromAttention {
        NystromAttention {
            landmarks,
            pinv_iters: 6,
            dfss: None,
        }
    }

    pub fn with_dfss(mut self, pattern: NmPattern) -> NystromAttention {
        self.dfss = Some(pattern);
        self
    }
}

/// Segment means: average each of `m` contiguous segments of the rows.
fn segment_means(x: &Matrix<f32>, m: usize) -> Matrix<f32> {
    let (n, d) = x.shape();
    assert!(m <= n, "more landmarks than rows");
    let base = n / m;
    let rem = n % m;
    let mut out = Matrix::<f32>::zeros(m, d);
    let mut row = 0usize;
    for s in 0..m {
        let len = base + usize::from(s < rem);
        let orow = out.row_mut(s);
        for r in row..row + len {
            for (o, &v) in orow.iter_mut().zip(x.row(r)) {
                *o += v;
            }
        }
        orow.iter_mut().for_each(|v| *v /= len as f32);
        row += len;
    }
    out
}

/// Row-softmax of an f32 matrix with scaling.
fn softmax_rows_scaled(x: &Matrix<f32>, scale: f32) -> Matrix<f32> {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        row.iter_mut().for_each(|v| *v *= scale);
        math::softmax_row(row);
    }
    out
}

/// Moore–Penrose pseudo-inverse by the Newton–Schulz-style iteration used in
/// the Nyströmformer paper: `Z ← Z(13I − AZ(15I − AZ(7I − AZ)))/4`.
fn iterative_pinv(a: &Matrix<f32>, iters: usize) -> Matrix<f32> {
    let m = a.rows();
    assert_eq!(a.cols(), m);
    // Z0 = Aᵀ / (max row sum · max col sum).
    let mut max_row = 0.0f32;
    let mut col_sums = vec![0.0f32; m];
    for r in 0..m {
        let mut s = 0.0f32;
        for (c, &v) in a.row(r).iter().enumerate() {
            s += v.abs();
            col_sums[c] += v.abs();
        }
        max_row = max_row.max(s);
    }
    let max_col = col_sums.iter().copied().fold(0.0, f32::max);
    let mut z = a.transpose();
    z.scale(1.0 / (max_row * max_col).max(1e-9));
    let eye = |alpha: f32| Matrix::<f32>::from_fn(m, m, |r, c| if r == c { alpha } else { 0.0 });
    for _ in 0..iters {
        let az = a.matmul_ref(&z);
        // 7I − AZ
        let mut t1 = eye(7.0);
        t1.axpy(-1.0, &az);
        // 15I − AZ·t1
        let mut t2 = eye(15.0);
        t2.axpy(-1.0, &az.matmul_ref(&t1));
        // 13I − AZ·t2
        let mut t3 = eye(13.0);
        t3.axpy(-1.0, &az.matmul_ref(&t2));
        z = z.matmul_ref(&t3);
        z.scale(0.25);
    }
    z
}

impl<T: Scalar> Attention<T> for NystromAttention {
    fn name(&self) -> String {
        match self.dfss {
            Some(p) => format!("Nystrom+Dfss {} ({})", p, T::NAME),
            None => format!("Nystrom ({})", T::NAME),
        }
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let m = self.landmarks.min(n);
        let scale = 1.0 / (d as f32).sqrt();
        let qf = q.to_f32();
        let kf = k.to_f32();
        let vf = v.to_f32();

        // Landmarks (Overhead): one pass over Q and K.
        ctx.record(
            KernelProfile::new("nystrom_landmarks", Stage::Overhead)
                .with_traffic((2 * n * d * T::BYTES) as u64, (2 * m * d * T::BYTES) as u64)
                .with_alu((2 * n * d) as u64),
        );
        let q_l = segment_means(&qf, m);
        let k_l = segment_means(&kf, m);

        // Kernel 2: A_ss = softmax(Q̃K̃ᵀ) and its iterative pinv (Overhead).
        gemm::charge_gemm::<T>(ctx, "nystrom_ll", Stage::Overhead, m, m, d);
        let a_ss = softmax_rows_scaled(&q_l.matmul_ref(&k_l.transpose()), scale);
        for _ in 0..self.pinv_iters {
            gemm::charge_gemm::<T>(ctx, "nystrom_pinv_iter", Stage::Overhead, m, m, m);
            gemm::charge_gemm::<T>(ctx, "nystrom_pinv_iter", Stage::Overhead, m, m, m);
            gemm::charge_gemm::<T>(ctx, "nystrom_pinv_iter", Stage::Overhead, m, m, m);
        }
        let z = iterative_pinv(&a_ss, self.pinv_iters);

        let mid_id = ctx
            .mem
            .alloc("nystrom_factors", (2 * n * m * T::BYTES) as u64);
        if !ctx.exec && self.dfss.is_none() {
            gemm::charge_gemm::<T>(ctx, "nystrom_f1", Stage::Qk, n, m, d);
            gemm::charge_gemm::<T>(ctx, "nystrom_f3", Stage::Qk, m, n, d);
            ctx.record(
                KernelProfile::new("nystrom_softmax", Stage::Softmax)
                    .with_traffic((4 * n * m * T::BYTES) as u64, (2 * n * m * T::BYTES) as u64)
                    .with_alu((2 * n * m) as u64 * 6),
            );
            gemm::charge_gemm::<T>(ctx, "nystrom_f3v", Stage::Av, m, d, n);
            gemm::charge_gemm::<T>(ctx, "nystrom_z_mid", Stage::Av, m, d, m);
            gemm::charge_gemm::<T>(ctx, "nystrom_out", Stage::Av, n, d, m);
            ctx.mem.free(mid_id);
            return Matrix::zeros(n, v.cols());
        }
        let out_f32 = if let Some(pattern) = self.dfss {
            // Dfss on both n-sized factors (Figure 17).
            // F3 = softmax_{1:2}(Q̃Kᵀ) compressed, then SpMM with V.
            let q_l_t: Matrix<T> = q_l.cast();
            let k_t: Matrix<T> = kf.cast();
            let mut f3 = sddmm::sddmm_nm_fused(ctx, &q_l_t, &k_t, scale, pattern);
            softmax::softmax_nm(ctx, &mut f3);
            let f3v = spmm::spmm_nm(ctx, &f3, &vf.cast::<T>());
            // F1 = softmax_{1:2}(QK̃ᵀ) compressed, then SpMM with Z·(F3·V).
            let zf3v = z.matmul_ref(&f3v.to_f32());
            gemm::charge_gemm::<T>(ctx, "nystrom_z_mid", Stage::Av, m, d, m);
            let q_t: Matrix<T> = qf.cast();
            let k_l_t: Matrix<T> = k_l.cast();
            let mut f1 = sddmm::sddmm_nm_fused(ctx, &q_t, &k_l_t, scale, pattern);
            softmax::softmax_nm(ctx, &mut f1);
            spmm::spmm_nm(ctx, &f1, &zf3v.cast::<T>()).to_f32()
        } else {
            gemm::charge_gemm::<T>(ctx, "nystrom_f1", Stage::Qk, n, m, d);
            gemm::charge_gemm::<T>(ctx, "nystrom_f3", Stage::Qk, m, n, d);
            ctx.record(
                KernelProfile::new("nystrom_softmax", Stage::Softmax)
                    .with_traffic((4 * n * m * T::BYTES) as u64, (2 * n * m * T::BYTES) as u64)
                    .with_alu((2 * n * m) as u64 * 6),
            );
            let f1 = softmax_rows_scaled(&qf.matmul_ref(&k_l.transpose()), scale);
            let f3 = softmax_rows_scaled(&q_l.matmul_ref(&kf.transpose()), scale);
            gemm::charge_gemm::<T>(ctx, "nystrom_f3v", Stage::Av, m, d, n);
            gemm::charge_gemm::<T>(ctx, "nystrom_z_mid", Stage::Av, m, d, m);
            gemm::charge_gemm::<T>(ctx, "nystrom_out", Stage::Av, n, d, m);
            let f3v = f3.matmul_ref(&vf);
            let zf3v = z.matmul_ref(&f3v);
            f1.matmul_ref(&zf3v)
        };
        ctx.mem.free(mid_id);
        out_f32.cast()
    }
}

/// Linformer (Wang et al. 2020): project the sequence dimension of K and V
/// to `k ≪ n` with matrices E, F. For inference benchmarking the projections
/// are seeded Gaussians; the trainable variant lives in `dfss-transformer`.
#[derive(Clone, Debug)]
pub struct LinformerAttention {
    pub proj_dim: usize,
    pub seed: u64,
    /// `Some(pattern)` prunes the n×k score matrix on the fly
    /// (Figure 18(B)).
    pub dfss: Option<NmPattern>,
}

impl LinformerAttention {
    pub fn new(proj_dim: usize, seed: u64) -> LinformerAttention {
        LinformerAttention {
            proj_dim,
            seed,
            dfss: None,
        }
    }

    pub fn with_dfss(mut self, pattern: NmPattern) -> LinformerAttention {
        self.dfss = Some(pattern);
        self
    }
}

impl<T: Scalar> Attention<T> for LinformerAttention {
    fn name(&self) -> String {
        match self.dfss {
            Some(p) => format!("Linformer+Dfss {} ({})", p, T::NAME),
            None => format!("Linformer ({})", T::NAME),
        }
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let kdim = self.proj_dim.min(n);
        let scale = 1.0 / (d as f32).sqrt();
        let mut rng = Rng::new(self.seed);
        let sigma = 1.0 / (n as f32).sqrt();
        let e = Matrix::<f32>::random_normal(kdim, n, 0.0, sigma, &mut rng);
        let f = Matrix::<f32>::random_normal(kdim, n, 0.0, sigma, &mut rng);

        // EK and FV projections (Overhead).
        gemm::charge_gemm::<T>(ctx, "linformer_ek", Stage::Overhead, kdim, d, n);
        gemm::charge_gemm::<T>(ctx, "linformer_fv", Stage::Overhead, kdim, d, n);
        let ek = e.matmul_ref(&k.to_f32());
        let fv = f.matmul_ref(&v.to_f32());
        let id = ctx
            .mem
            .alloc("linformer_scores", (n * kdim * T::BYTES) as u64);

        if !ctx.exec && self.dfss.is_none() {
            gemm::charge_gemm::<T>(ctx, "linformer_qk", Stage::Qk, n, kdim, d);
            ctx.record(
                KernelProfile::new("linformer_softmax", Stage::Softmax)
                    .with_traffic(
                        (2 * n * kdim * T::BYTES) as u64,
                        (n * kdim * T::BYTES) as u64,
                    )
                    .with_alu((n * kdim) as u64 * 6),
            );
            gemm::charge_gemm::<T>(ctx, "linformer_av", Stage::Av, n, d, kdim);
            ctx.mem.free(id);
            return Matrix::zeros(n, v.cols());
        }
        let out = if let Some(pattern) = self.dfss {
            let q_t: Matrix<T> = q.clone();
            let ek_t: Matrix<T> = ek.cast();
            let mut comp = sddmm::sddmm_nm_fused(ctx, &q_t, &ek_t, scale, pattern);
            softmax::softmax_nm(ctx, &mut comp);
            spmm::spmm_nm(ctx, &comp, &fv.cast::<T>())
        } else {
            gemm::charge_gemm::<T>(ctx, "linformer_qk", Stage::Qk, n, kdim, d);
            ctx.record(
                KernelProfile::new("linformer_softmax", Stage::Softmax)
                    .with_traffic(
                        (2 * n * kdim * T::BYTES) as u64,
                        (n * kdim * T::BYTES) as u64,
                    )
                    .with_alu((n * kdim) as u64 * 6),
            );
            gemm::charge_gemm::<T>(ctx, "linformer_av", Stage::Av, n, d, kdim);
            let scores = softmax_rows_scaled(&q.to_f32().matmul_ref(&ek.transpose()), scale);
            scores.matmul_ref(&fv).cast()
        };
        ctx.mem.free(id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::{reference_attention, FullAttention};

    fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = Rng::new(seed);
        (
            Matrix::random_normal(n, d, 0.0, 0.5, &mut rng),
            Matrix::random_normal(n, d, 0.0, 0.5, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        )
    }

    #[test]
    fn orthogonal_features_are_orthogonal_within_block() {
        let mut rng = Rng::new(1);
        let w = orthogonal_features(8, 8, &mut rng);
        for i in 0..8 {
            for j in 0..i {
                let dot: f32 = w.row(i).iter().zip(w.row(j)).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-3, "rows {i},{j}: {dot}");
            }
        }
    }

    #[test]
    fn performer_approximates_full_attention() {
        let (q, k, v) = qkv(64, 16, 2);
        let mut ctx = GpuCtx::a100();
        let out = PerformerAttention::with_features(512, 3).forward(&mut ctx, &q, &k, &v);
        let reference = reference_attention(&q, &k, &v);
        let diff = out.zip_with(&reference, |a, b| a - b);
        let rel = diff.frobenius_norm() / reference.frobenius_norm();
        // Monte-Carlo kernel estimate: loose tolerance, but must correlate.
        assert!(rel < 0.45, "relative error {rel}");
    }

    #[test]
    fn performer_charges_overhead() {
        let (q, k, v) = qkv(128, 16, 3);
        let mut ctx = GpuCtx::a100();
        let _ = PerformerAttention::new(1).forward(&mut ctx, &q, &k, &v);
        assert!(ctx.timeline.stage_bytes(Stage::Overhead) > 0);
    }

    #[test]
    fn performer_loses_at_moderate_length_wins_at_long() {
        // The Figure 5 crossover: at n=256 Performer is slower than full
        // attention on the simulator; at n=4096 it is faster.
        let d = 64;
        for (n, expect_faster) in [(256usize, false), (4096usize, true)] {
            let (q, k, v) = qkv(n, d, 4);
            let mut cp = GpuCtx::a100();
            let mut cf = GpuCtx::a100();
            let _ = PerformerAttention::new(1).forward(&mut cp, &q, &k, &v);
            let _ = FullAttention.forward(&mut cf, &q, &k, &v);
            let faster = cp.latency() < cf.latency();
            assert_eq!(faster, expect_faster, "n={n}");
        }
    }

    #[test]
    fn segment_means_uniform() {
        let x = Matrix::<f32>::from_fn(8, 2, |r, _| r as f32);
        let m = segment_means(&x, 4);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(3, 0), 6.5);
    }

    #[test]
    fn segment_means_uneven() {
        let x = Matrix::<f32>::from_fn(5, 1, |r, _| r as f32);
        let m = segment_means(&x, 2);
        // Segments: [0,1,2], [3,4].
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 3.5);
    }

    #[test]
    fn iterative_pinv_inverts_well_conditioned() {
        let mut rng = Rng::new(5);
        // Diagonally dominant → well conditioned.
        let a = Matrix::<f32>::from_fn(8, 8, |r, c| {
            if r == c {
                2.0
            } else {
                0.05 * rng.normal(0.0, 1.0)
            }
        });
        let z = iterative_pinv(&a, 12);
        let az = a.matmul_ref(&z);
        for r in 0..8 {
            for c in 0..8 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((az.get(r, c) - expect).abs() < 0.05, "({r},{c})");
            }
        }
    }

    #[test]
    fn nystrom_approximates_full_attention() {
        let (q, k, v) = qkv(64, 16, 6);
        let mut ctx = GpuCtx::a100();
        let out = NystromAttention::new(16).forward(&mut ctx, &q, &k, &v);
        let reference = reference_attention(&q, &k, &v);
        let diff = out.zip_with(&reference, |a, b| a - b);
        let rel = diff.frobenius_norm() / reference.frobenius_norm();
        assert!(rel < 0.6, "relative error {rel}");
    }

    #[test]
    fn nystrom_dfss_runs_and_reduces_traffic() {
        let (q, k, v) = qkv(256, 32, 7);
        let mut c1 = GpuCtx::a100();
        let mut c2 = GpuCtx::a100();
        let base = NystromAttention::new(32).forward(&mut c1, &q, &k, &v);
        let combo = NystromAttention::new(32)
            .with_dfss(NmPattern::P1_2)
            .forward(&mut c2, &q, &k, &v);
        assert_eq!(base.shape(), combo.shape());
        // The combined version compresses both n-sized factors.
        assert!(c2.timeline.total_bytes() < c1.timeline.total_bytes());
    }

    #[test]
    fn linformer_shapes_and_overhead() {
        let (q, k, v) = qkv(128, 16, 8);
        let mut ctx = GpuCtx::a100();
        let out = LinformerAttention::new(32, 1).forward(&mut ctx, &q, &k, &v);
        assert_eq!(out.shape(), (128, 16));
        assert!(ctx.timeline.stage_bytes(Stage::Overhead) > 0);
    }

    #[test]
    fn linformer_dfss_matches_shape_and_runs() {
        let (q, k, v) = qkv(128, 16, 9);
        let mut ctx = GpuCtx::a100();
        let out = LinformerAttention::new(32, 1)
            .with_dfss(NmPattern::P1_2)
            .forward(&mut ctx, &q, &k, &v);
        assert_eq!(out.shape(), (128, 16));
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }
}
