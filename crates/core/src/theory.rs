//! Closed-form results of Section 4 and Appendices A.2–A.5.
//!
//! * Proposition 4.2 — `Q^p` of top-k / fixed / 1:2 (and the 2:4 lower
//!   bound) under i.i.d. `N(µ, σ)` scores.
//! * Proposition 4.3 / Equation (4) — top-k speedup upper bound.
//! * Equation (5) — fixed-sparsity speedup.
//! * Equation (6) — dynamic 1:2 / 2:4 speedup.
//! * Equations (7)–(8) — equal-efficiency densities.
//! * Equations (30)–(31) — MSE of the Dfss-masked softmax kernel vs
//!   Performer's positive softmax kernel.
//! * Equation (33) — Performer speedup under the same memory model.

use dfss_tensor::math::{erf, erfinv};

/// Proposition 4.2: `Q^p` of top-k sparsity at density `s`
/// (`(1 + erf(pσ/√2 − erfinv(1−2s)))/2`).
pub fn qp_topk(p: f64, sigma: f64, s: f64) -> f64 {
    assert!(s > 0.0 && s < 1.0);
    (1.0 + erf(p * sigma / std::f64::consts::SQRT_2 - erfinv(1.0 - 2.0 * s))) / 2.0
}

/// Proposition 4.2: `Q^p` of a fixed pattern is its density.
pub fn qp_fixed(s: f64) -> f64 {
    s
}

/// Proposition 4.2: `Q^p` of dynamic 1:2 sparsity, `(1 + erf(pσ/2))/2`;
/// also the lower bound for 2:4.
pub fn qp_one_two(p: f64, sigma: f64) -> f64 {
    (1.0 + erf(p * sigma / 2.0)) / 2.0
}

/// The 2:4 lower bound of Proposition 4.2 (`Q^p_{2:4} ≥ Q^p_{1:2}`).
pub fn qp_two_four_lower_bound(p: f64, sigma: f64) -> f64 {
    qp_one_two(p, sigma)
}

/// Equation (4): top-k speedup upper bound at density `s`,
/// `(4d + 3T) / (2d + T + (d + 2T + dT)s)`.
pub fn speedup_topk_bound(d: f64, t: f64, s: f64) -> f64 {
    (4.0 * d + 3.0 * t) / (2.0 * d + t + (d + 2.0 * t + d * t) * s)
}

/// Equation (5) (n ≫ d limit): fixed-sparsity speedup at density `s`,
/// `(4d + 3T) / ((1 + 3s)d + 3sT)`.
pub fn speedup_fixed(d: f64, t: f64, s: f64) -> f64 {
    (4.0 * d + 3.0 * t) / ((1.0 + 3.0 * s) * d + 3.0 * s * t)
}

/// Equation (6) (n ≫ d limit): dynamic 1:2 / 2:4 speedup,
/// `(64d + 48T) / (57d + 25T)`.
pub fn speedup_dfss(d: f64, t: f64) -> f64 {
    (64.0 * d + 48.0 * t) / (57.0 * d + 25.0 * t)
}

/// Equation (7): the density below which top-k would need to operate to
/// match Dfss's efficiency.
pub fn topk_equal_efficiency_density(d: f64, t: f64) -> f64 {
    (4.0 * d + 3.0 * t) * (57.0 * d + 25.0 * t) / ((64.0 * d + 48.0 * t) * (d + 2.0 * t + d * t))
        - (2.0 * d + t) / (d + 2.0 * t + d * t)
}

/// Equation (8): the density at which fixed sparsity matches Dfss's
/// efficiency.
///
/// Note: the paper's printed Equation (8) inverts the Dfss speedup ratio
/// (it reads `(64d+48T)/(57d+25T)` where the derivation needs its
/// reciprocal); evaluated as printed it gives s ≈ 1.55, contradicting the
/// paper's own stated result "s ≈ 0.63". Solving Eq (5) = Eq (6) directly:
/// `s = (4d+3T)(57d+25T)/((64d+48T)·3(d+T)) − d/(3(d+T))`, which yields
/// 0.632 at d = 64, T = 128 — matching the text and Figure 11.
pub fn fixed_equal_efficiency_density(d: f64, t: f64) -> f64 {
    (4.0 * d + 3.0 * t) * (57.0 * d + 25.0 * t) / ((64.0 * d + 48.0 * t) * 3.0 * (d + t))
        - d / (3.0 * (d + t))
}

/// Exact (pre-limit) speedup ratios from Table 5's memory-access counts, for
/// validating the executed simulator at finite `n`.
pub mod table5 {
    /// Memory accesses (elements) of full attention at sequence length `n`,
    /// head dim `d`, tile `T`: `n²(2d/T + 1) + 2n² + nd(2n/T + 1)`.
    pub fn full_attention(n: f64, d: f64, t: f64) -> f64 {
        n * n * (2.0 * d / t + 1.0) + 2.0 * n * n + n * d * (2.0 * n / t + 1.0)
    }

    /// Memory accesses of explicit top-k attention at density `s`
    /// (oracle mask, zero selection cost — the *bound* of Prop 4.3).
    pub fn topk_attention(n: f64, d: f64, t: f64, s: f64) -> f64 {
        n * n * (2.0 * d / t + 1.0) + 2.0 * n * n * s + n * d * (s * n + s * n / t + 1.0)
    }

    /// Memory accesses of fixed sparsity at density `s` (numerator of
    /// Equation 5's pre-limit form).
    pub fn fixed_attention(n: f64, d: f64, t: f64, s: f64) -> f64 {
        s * n * n * (2.0 * d / t + 1.0) + 2.0 * n * n * s + n * d * ((1.0 + s) * n / t + 1.0)
    }

    /// Memory accesses of Dfss (numerator of Equation 6's pre-limit form):
    /// `n²(2d/T + 1/2 + 1/16) + n² + nd(n/T + n/2T + n/16T + 1)`.
    pub fn dfss_attention(n: f64, d: f64, t: f64) -> f64 {
        n * n * (2.0 * d / t + 0.5 + 1.0 / 16.0)
            + n * n
            + n * d * (n / t + n / (2.0 * t) + n / (16.0 * t) + 1.0)
    }
}

/// Equation (30): MSE of the Dfss 1:2 approximation of the softmax kernel
/// `SM(q,k) = exp(qᵀk/√d)`, given `‖q‖` and the kernel value.
pub fn mse_dfss_1_2(sm: f64, q_norm: f64, d: f64) -> f64 {
    assert!(sm > 0.0);
    let z = d.sqrt() / (q_norm * std::f64::consts::SQRT_2) * sm.ln();
    sm * sm * (1.0 - erf(z)) / 2.0
}

/// Equation (31): upper bound on the MSE of Performer's positive softmax
/// kernel with `m` orthogonal random features.
pub fn mse_performer_bound(sm: f64, q_norm: f64, k_norm: f64, d: f64, m: f64) -> f64 {
    let e = ((q_norm * q_norm + k_norm * k_norm) / d.sqrt()).exp();
    (sm * sm / m) * (e * sm * sm - 1.0 - (1.0 - 1.0 / m) * 2.0 / (d + 2.0))
}

/// Equation (33): Performer memory accesses with `m` features (the fused
/// computation graph of Equation 32), for the speedup comparison of A.5.
pub fn performer_memory_accesses(n: f64, d: f64, t: f64, m: f64) -> f64 {
    2.0 * (n * m * (2.0 * d / t + 1.0) + n * (d + 1.0) + n * (m + 1.0) + n * (m + 3.0))
        + m * (n + 1.0)
        + n * (m / t + m + 1.0)
        + m * d * (2.0 * n / t + 1.0)
        + n * d * (2.0 * m / t + 1.0)
        + n
}

/// Performer speedup over full attention per Equation (33).
pub fn speedup_performer(n: f64, d: f64, t: f64, m: f64) -> f64 {
    table5::full_attention(n, d, t) / performer_memory_accesses(n, d, t, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: f64 = 64.0;
    const T: f64 = 128.0;

    #[test]
    fn dfss_speedup_is_the_paper_constant() {
        // (64·64 + 48·128)/(57·64 + 25·128) = 10240/6848 ≈ 1.495.
        let s = speedup_dfss(D, T);
        assert!((s - 10240.0 / 6848.0).abs() < 1e-12);
        assert!(s > 1.2 && s < 1.9, "inside the paper's observed band");
    }

    #[test]
    fn topk_needs_tiny_density_to_win() {
        // §4.3: "s < 4.5% is a necessary and insufficient condition".
        let mut s = 0.045;
        assert!(speedup_topk_bound(D, T, s) > 0.99);
        s = 0.05;
        assert!(speedup_topk_bound(D, T, s) < 1.0);
    }

    #[test]
    fn topk_equal_efficiency_near_two_percent() {
        // §4.4: "With typical values T = 128, d = 64, we have s < 0.02".
        let s = topk_equal_efficiency_density(D, T);
        assert!(s > 0.01 && s < 0.03, "s = {s}");
        // At that density top-k's bound equals Dfss's speedup.
        let diff = speedup_topk_bound(D, T, s) - speedup_dfss(D, T);
        assert!(diff.abs() < 1e-9, "diff {diff}");
    }

    #[test]
    fn fixed_equal_efficiency_near_063() {
        // §4.4: "we have s ≈ 0.63".
        let s = fixed_equal_efficiency_density(D, T);
        assert!(s > 0.55 && s < 0.70, "s = {s}");
        let diff = speedup_fixed(D, T, s) - speedup_dfss(D, T);
        assert!(diff.abs() < 1e-9);
    }

    #[test]
    fn qp_theory_reference_points() {
        // §4.4: Q^p_{1:2}|pσ=7 ≈ 0.9999996.
        assert!((qp_one_two(7.0, 1.0) - 0.9999996).abs() < 1e-6);
        // pσ ≥ 1 ⇒ Q^p_{1:2} ≥ 0.76 (§4.4's fixed-sparsity comparison).
        assert!(qp_one_two(1.0, 1.0) >= 0.76);
        // Fixed quality is literally the density.
        assert_eq!(qp_fixed(0.63), 0.63);
    }

    #[test]
    fn qp_topk_dominates_one_two_at_moderate_p() {
        // Top-k at the same density 0.5 must upper-bound 1:2 for small pσ.
        for p in [1.0, 2.0, 3.0] {
            assert!(qp_topk(p, 1.0, 0.5) >= qp_one_two(p, 1.0) - 1e-12, "p={p}");
        }
    }

    #[test]
    fn qp_crossover_near_psigma_7_at_s_002() {
        // §4.4: with s < 0.02, Q^p_topk < Q^p_{1:2} when pσ < 7.
        let s = 0.02;
        assert!(qp_topk(5.0, 1.0, s) < qp_one_two(5.0, 1.0));
        // And above the crossover top-k wins on quality (but both ≈ 1).
        assert!(qp_topk(9.0, 1.0, s) > qp_one_two(9.0, 1.0));
        assert!(qp_one_two(9.0, 1.0) > 0.9999);
    }

    #[test]
    fn table5_ratios_approach_closed_forms() {
        let n = 1_000_000.0; // n ≫ d regime
        let full = table5::full_attention(n, D, T);
        let dfss = table5::dfss_attention(n, D, T);
        assert!((full / dfss - speedup_dfss(D, T)).abs() < 1e-3);
        let fixed = table5::fixed_attention(n, D, T, 0.3);
        assert!((full / fixed - speedup_fixed(D, T, 0.3)).abs() < 1e-2);
    }

    #[test]
    fn mse_dfss_vanishes_for_small_kernel_values() {
        // Both kernels are accurate on small SM(q,k); Dfss's error *decreases*
        // for large kernel values thanks to the erf factor (A.5).
        let qn = 8.0;
        let small = mse_dfss_1_2(1e-3, qn, D);
        assert!(small < 1e-6);
        let large_ratio = mse_dfss_1_2(100.0, qn, D) / (100.0f64).powi(2);
        assert!(
            large_ratio < 0.5,
            "normalised MSE should shrink: {large_ratio}"
        );
    }

    #[test]
    fn performer_mse_blows_up_on_large_kernel_values() {
        let m = 266.0;
        let qn = 8.0;
        let kn = 8.0;
        // Normalised MSE (divided by SM²) grows with SM for Performer …
        let perf_small = mse_performer_bound(0.1, qn, kn, D, m) / 0.01;
        let perf_large = mse_performer_bound(100.0, qn, kn, D, m) / 10_000.0;
        assert!(perf_large > perf_small);
        // … while Dfss's shrinks (previous test), so Dfss approximates the
        // important edges better — the A.5 conclusion.
        let dfss_large = mse_dfss_1_2(100.0, qn, D) / 10_000.0;
        assert!(dfss_large < perf_large);
    }

    #[test]
    fn performer_speedup_crossovers() {
        // A.5: with m = 266, d = 64, T = 128: speedup > 1 needs n > 672, and
        // Performer beats Dfss's 1.495 only for n > 1002.
        let m = 266.0;
        assert!(speedup_performer(600.0, D, T, m) < 1.0);
        assert!(speedup_performer(700.0, D, T, m) > 1.0);
        assert!(speedup_performer(950.0, D, T, m) < speedup_dfss(D, T));
        assert!(speedup_performer(1100.0, D, T, m) > speedup_dfss(D, T));
    }
}
