//! **Dfss** — dynamic N:M fine-grained structured sparse attention (§3).
//!
//! The pipeline of Figure 2(B):
//! 1. fused SDDMM: `QKᵀ/√d` computed dense in tile accumulators, pruned to
//!    N:M in the epilogue, written as nonzeros + metadata (never as a dense
//!    n×n matrix);
//! 2. compressed softmax over the nonzeros (rows are N/M as long);
//! 3. SpMM with `V` on the simulated sparse tensor core.
//!
//! Three variants share the code: the production fused kernel, the unfused
//! ablation (separate prune kernel — what §2.3 says existing libraries do),
//! and the blocked-ELL hybrid for long sequences (A.1.2).

use crate::mechanism::{
    check_decode, check_decode_ragged, check_qkv, check_qkv_batched, check_qkv_rows, Attention,
    RequestError,
};
use dfss_gpusim::Stage;
use dfss_kernels::{ell, gemm, sddmm, softmax, spmm, GpuCtx};
use dfss_nmsparse::{BlockedEll, NmCompressed, NmPattern, NmRagged};
use dfss_tensor::{BatchedMatrix, Bf16, Matrix, RaggedBatch, Scalar};

/// The Dfss attention mechanism.
#[derive(Clone, Copy, Debug)]
pub struct DfssAttention {
    pattern: NmPattern,
    /// Use the fused prune epilogue (`true` in production; `false` gives the
    /// unfused ablation).
    fused: bool,
}

impl DfssAttention {
    /// Dfss with the hardware pattern for the scalar type (1:2 for float,
    /// 2:4 for bf16) — the paper's default configuration.
    pub fn for_dtype<T: Scalar>() -> DfssAttention {
        DfssAttention {
            pattern: NmPattern::for_dtype::<T>(),
            fused: true,
        }
    }

    /// Dfss with an explicit pattern.
    pub fn new(pattern: NmPattern) -> DfssAttention {
        DfssAttention {
            pattern,
            fused: true,
        }
    }

    /// The unfused ablation: dense GEMM + separate prune kernel.
    pub fn unfused(pattern: NmPattern) -> DfssAttention {
        DfssAttention {
            pattern,
            fused: false,
        }
    }

    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    /// Run the pipeline and also return the normalised sparse attention
    /// weights (used by the quality experiments and Figure 19).
    pub fn forward_with_weights<T: Scalar>(
        &self,
        ctx: &mut GpuCtx,
        q: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> (Matrix<T>, NmCompressed<T>) {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        // Compressed scores: n²·N/M values + 4-bit-per-group metadata.
        let kept = self.pattern.kept_per_row(n);
        let nz_bytes = (n * kept * T::BYTES) as u64;
        let meta_bytes = ((n * n / self.pattern.m()) as u64 * 4).div_ceil(8);
        let comp_id = ctx.mem.alloc("scores_nm_compressed", nz_bytes + meta_bytes);
        let mut comp = if self.fused {
            sddmm::sddmm_nm_fused(ctx, q, k, scale, self.pattern)
        } else {
            // The unfused path additionally materialises the dense scores.
            let dense_id = ctx
                .mem
                .alloc("scores_dense_unfused", (n * n * T::BYTES) as u64);
            let comp = sddmm::sddmm_nm_unfused(ctx, q, k, scale, self.pattern);
            ctx.mem.free(dense_id);
            comp
        };
        softmax::softmax_nm(ctx, &mut comp);
        let out = spmm::spmm_nm(ctx, &comp, v);
        ctx.mem.free(comp_id);
        (out, comp)
    }
}

impl<T: Scalar> Attention<T> for DfssAttention {
    fn name(&self) -> String {
        format!("Dfss {} ({})", self.pattern, T::NAME)
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        self.forward_with_weights(ctx, q, k, v).0
    }

    /// Natively batched pipeline: the whole B×H stack runs through one
    /// fused-SDDMM launch, one compressed-softmax launch and one SpMM
    /// launch, each charging a single profile of exactly `batch ×` the
    /// per-head cost. Outputs are bit-identical to a per-head loop.
    fn forward_batched(
        &self,
        ctx: &mut GpuCtx,
        q: &BatchedMatrix<T>,
        k: &BatchedMatrix<T>,
        v: &BatchedMatrix<T>,
    ) -> BatchedMatrix<T> {
        let (batch, n, d) = check_qkv_batched(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        // Compressed scores for the whole stack live simultaneously: the
        // batched launch's peak footprint is batch × the per-head one.
        let kept = self.pattern.kept_per_row(n);
        let nz_bytes = (batch * n * kept * T::BYTES) as u64;
        let meta_bytes = ((batch * n * n / self.pattern.m()) as u64 * 4).div_ceil(8);
        let comp_id = ctx.mem.alloc("scores_nm_compressed", nz_bytes + meta_bytes);
        let mut comp = if self.fused {
            sddmm::sddmm_nm_fused_batched(ctx, q, k, scale, self.pattern)
        } else {
            // The unfused path additionally materialises every panel's
            // dense scores.
            let dense_id = ctx
                .mem
                .alloc("scores_dense_unfused", (batch * n * n * T::BYTES) as u64);
            let comp = sddmm::sddmm_nm_unfused_batched(ctx, q, k, scale, self.pattern);
            ctx.mem.free(dense_id);
            comp
        };
        softmax::softmax_nm_batched(ctx, &mut comp);
        let out = spmm::spmm_nm_batched(ctx, &comp, v);
        ctx.mem.free(comp_id);
        out
    }

    /// Rectangular N:M pipeline for a `c × d` query chunk against the full
    /// `n`-key K/V: fused SDDMM prunes each of the `c` score rows over its
    /// `n/M` groups exactly as the whole-Q kernel does (the prune epilogue
    /// is per score row and never looks at the query row's global index),
    /// compressed softmax and SpMM are per-row too — so stacking chunk
    /// outputs is bit-identical to [`forward`](Attention::forward).
    fn forward_rows(
        &self,
        ctx: &mut GpuCtx,
        q_rows: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Matrix<T> {
        let (c, n, d) = check_qkv_rows(q_rows, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        // Compressed chunk scores: c·n·N/M values + metadata for c rows.
        let kept = self.pattern.kept_per_row(n);
        let nz_bytes = (c * kept * T::BYTES) as u64;
        let meta_bytes = ((c * n / self.pattern.m()) as u64 * 4).div_ceil(8);
        let comp_id = ctx.mem.alloc("scores_nm_compressed", nz_bytes + meta_bytes);
        let mut comp = if self.fused {
            sddmm::sddmm_nm_fused(ctx, q_rows, k, scale, self.pattern)
        } else {
            // The unfused ablation additionally materialises the chunk's
            // dense c × n score panel.
            let dense_id = ctx
                .mem
                .alloc("scores_dense_unfused", (c * n * T::BYTES) as u64);
            let comp = sddmm::sddmm_nm_unfused(ctx, q_rows, k, scale, self.pattern);
            ctx.mem.free(dense_id);
            comp
        };
        softmax::softmax_nm(ctx, &mut comp);
        let out = spmm::spmm_nm(ctx, &comp, v);
        ctx.mem.free(comp_id);
        out
    }

    /// The N:M prune, compressed softmax and SpMM are all per-score-row
    /// over the key columns, so chunked prefill stacks bit-identically.
    /// (The blocked-ELL hybrid does **not** share this property — its
    /// sliding window depends on the query row's global index — and keeps
    /// the default `false`.)
    fn supports_row_chunking(&self) -> bool {
        true
    }

    /// Native decode step: the new score row is pruned N:M over its full
    /// M-groups with the trailing `len mod M` positions kept **dense** (the
    /// [`NmRagged`] format), so *any* cache length is servable — unlike
    /// prefill, decode has no alignment rule, and the most recently cached
    /// positions are never pruned until their group fills. Pipeline: fused
    /// decode SDDMM (or the unfused ablation's dense row + separate prune)
    /// → compressed decode softmax → decode SpMM on the sparse tensor core.
    fn decode(
        &self,
        ctx: &mut GpuCtx,
        q_row: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Matrix<T> {
        let (len, d) = check_decode(q_row, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let kept = NmRagged::<T>::kept_for(self.pattern, len) as u64;
        let groups = NmRagged::<T>::groups_for(self.pattern, len) as u64;
        let comp_bytes = kept * T::BYTES as u64 + (groups * 4).div_ceil(8);
        let comp_id = ctx.mem.alloc("scores_nm_decode", comp_bytes);
        let mut comp = if self.fused {
            sddmm::sddmm_nm_decode(ctx, q_row, k, scale, self.pattern)
        } else {
            // The unfused ablation additionally materialises the dense row.
            let dense_id = ctx
                .mem
                .alloc("scores_decode_dense_unfused", (len * T::BYTES) as u64);
            let scores = gemm::gemm_nt_decode(ctx, Stage::Qk, q_row, k, scale);
            let ragged = RaggedBatch::from_slices(1, &[scores.as_slice()]);
            let comp = sddmm::dense_prune_ragged(ctx, &ragged, self.pattern);
            ctx.mem.free(dense_id);
            comp
        };
        softmax::softmax_nm_ragged(ctx, &mut comp);
        let out = spmm::spmm_nm_decode(ctx, &comp, v);
        ctx.mem.free(comp_id);
        out
    }

    /// Natively ragged batched decode: the whole stream batch runs through
    /// one fused decode-SDDMM launch, one compressed decode-softmax launch
    /// and one decode-SpMM launch, each charging a single profile equal to
    /// the sum of the per-stream [`decode`](Self::decode) charges. Outputs
    /// are bit-identical to the per-stream solo decode loop.
    fn decode_ragged(
        &self,
        ctx: &mut GpuCtx,
        q: &Matrix<T>,
        k: &RaggedBatch<T>,
        v: &RaggedBatch<T>,
    ) -> Matrix<T> {
        let streams = check_decode_ragged(q, k, v);
        if streams == 0 {
            return Matrix::zeros(0, v.cols());
        }
        let scale = 1.0 / (q.cols() as f32).sqrt();
        // Every stream's compressed row lives simultaneously in the ragged
        // launch.
        let (mut kept, mut groups) = (0u64, 0u64);
        for &len in k.lens() {
            kept += NmRagged::<T>::kept_for(self.pattern, len) as u64;
            groups += NmRagged::<T>::groups_for(self.pattern, len) as u64;
        }
        let comp_id = ctx.mem.alloc(
            "scores_nm_decode",
            kept * T::BYTES as u64 + (groups * 4).div_ceil(8),
        );
        let mut comp = if self.fused {
            sddmm::sddmm_nm_fused_ragged(ctx, q, k, scale, self.pattern)
        } else {
            // The unfused ablation additionally materialises every stream's
            // dense score row.
            let dense_bytes = k.lens().iter().map(|&l| l as u64).sum::<u64>() * T::BYTES as u64;
            let dense_id = ctx.mem.alloc("scores_decode_dense_unfused", dense_bytes);
            let scores = gemm::gemm_nt_ragged(ctx, Stage::Qk, q, k, scale);
            let comp = sddmm::dense_prune_ragged(ctx, &scores, self.pattern);
            ctx.mem.free(dense_id);
            comp
        };
        softmax::softmax_nm_ragged(ctx, &mut comp);
        let out = spmm::spmm_nm_ragged(ctx, &comp, v);
        ctx.mem.free(comp_id);
        out
    }

    /// Fused widen-on-load decode over a bf16-quantised KV cache: the same
    /// three-launch pipeline as [`decode_ragged`](Attention::decode_ragged),
    /// but the cached K/V panels stream through the decode microkernels at
    /// their stored 2-byte width (widened to f32 in-register, see
    /// `dfss_kernels::simd`), halving decode cache traffic. Because bf16 →
    /// f32 widening is exact and TF32 rounding keeps every bf16 mantissa
    /// bit, outputs are bitwise identical to widening the cache host-side
    /// and running the `T = f32` decode pipeline.
    fn decode_ragged_bf16(
        &self,
        ctx: &mut GpuCtx,
        q: &Matrix<T>,
        k: &RaggedBatch<Bf16>,
        v: &RaggedBatch<Bf16>,
    ) -> Matrix<T> {
        let streams = check_decode_ragged(q, k, v);
        if streams == 0 {
            return Matrix::zeros(0, v.cols());
        }
        let scale = 1.0 / (q.cols() as f32).sqrt();
        let (mut kept, mut groups) = (0u64, 0u64);
        for &len in k.lens() {
            kept += NmRagged::<T>::kept_for(self.pattern, len) as u64;
            groups += NmRagged::<T>::groups_for(self.pattern, len) as u64;
        }
        let comp_id = ctx.mem.alloc(
            "scores_nm_decode",
            kept * T::BYTES as u64 + (groups * 4).div_ceil(8),
        );
        let mut comp = if self.fused {
            sddmm::sddmm_nm_fused_ragged(ctx, q, k, scale, self.pattern)
        } else {
            let dense_bytes = k.lens().iter().map(|&l| l as u64).sum::<u64>() * T::BYTES as u64;
            let dense_id = ctx.mem.alloc("scores_decode_dense_unfused", dense_bytes);
            let scores = gemm::gemm_nt_ragged(ctx, Stage::Qk, q, k, scale);
            let comp = sddmm::dense_prune_ragged(ctx, &scores, self.pattern);
            ctx.mem.free(dense_id);
            comp
        };
        softmax::softmax_nm_ragged(ctx, &mut comp);
        let out = spmm::spmm_nm_ragged(ctx, &comp, v);
        ctx.mem.free(comp_id);
        out
    }

    /// The score matrix's rows (length `n`) are pruned in M-groups, so `n`
    /// must be a multiple of M.
    fn check_shape(&self, n: usize, _d: usize) -> Result<(), RequestError> {
        if n == 0 {
            return Err(RequestError::EmptyRequest);
        }
        if !n.is_multiple_of(self.pattern.m()) {
            return Err(RequestError::Unsupported {
                mechanism: Attention::<T>::name(self),
                reason: format!("n = {n} is not a multiple of M = {}", self.pattern.m()),
            });
        }
        Ok(())
    }
}

/// Dfss combined with blocked-ELL sparsity for long sequences: scores are
/// computed only inside the active blocks, pruned N:M within them.
#[derive(Clone, Debug)]
pub struct DfssEllAttention {
    pattern: NmPattern,
    /// Diagonal window width in blocks.
    pub window_blocks: usize,
    /// Block edge (= GEMM thread-block tile in the paper).
    pub block: usize,
}

impl DfssEllAttention {
    pub fn new(pattern: NmPattern, block: usize, window_blocks: usize) -> DfssEllAttention {
        DfssEllAttention {
            pattern,
            window_blocks,
            block,
        }
    }
}

impl<T: Scalar> Attention<T> for DfssEllAttention {
    fn name(&self) -> String {
        format!(
            "Dfss {} + ELL(w={}) ({})",
            self.pattern,
            self.window_blocks,
            T::NAME
        )
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        let (n, d) = check_qkv(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let ell = BlockedEll::sliding_window(n, n, self.block, self.window_blocks);
        let packed_cols = ell.ell_width() * self.block;
        let kept = self.pattern.kept_per_row(packed_cols);
        let bytes = (n * kept * T::BYTES) as u64
            + ((n * packed_cols / self.pattern.m()) as u64 * 4).div_ceil(8);
        let id = ctx.mem.alloc("scores_ell_nm", bytes);
        let mut a = ell::sddmm_ell_nm_fused(ctx, q, k, scale, self.pattern, &ell);
        ell::softmax_ell_nm(ctx, &mut a);
        let out = ell::spmm_ell_nm(ctx, &a, v);
        ctx.mem.free(id);
        out
    }

    /// Natively batched hybrid pipeline: one launch per op for the whole
    /// stack (the ELL block map is shape-derived, so every head shares it).
    fn forward_batched(
        &self,
        ctx: &mut GpuCtx,
        q: &BatchedMatrix<T>,
        k: &BatchedMatrix<T>,
        v: &BatchedMatrix<T>,
    ) -> BatchedMatrix<T> {
        let (batch, n, d) = check_qkv_batched(q, k, v);
        let scale = 1.0 / (d as f32).sqrt();
        let ell = BlockedEll::sliding_window(n, n, self.block, self.window_blocks);
        let packed_cols = ell.ell_width() * self.block;
        let kept = self.pattern.kept_per_row(packed_cols);
        let bytes = (batch * n * kept * T::BYTES) as u64
            + ((batch * n * packed_cols / self.pattern.m()) as u64 * 4).div_ceil(8);
        let id = ctx.mem.alloc("scores_ell_nm", bytes);
        let mut a = ell::sddmm_ell_nm_fused_batched(ctx, q, k, scale, self.pattern, &ell);
        ell::softmax_ell_nm_batched(ctx, &mut a);
        let out = ell::spmm_ell_nm_batched(ctx, &a, v);
        ctx.mem.free(id);
        out
    }

    /// The hybrid needs whole ELL blocks (`n` a multiple of the block edge)
    /// and the packed window rows to split into M-groups.
    fn check_shape(&self, n: usize, _d: usize) -> Result<(), RequestError> {
        if n == 0 {
            return Err(RequestError::EmptyRequest);
        }
        let name = Attention::<T>::name(self);
        if self.block == 0 || !n.is_multiple_of(self.block) {
            return Err(RequestError::Unsupported {
                mechanism: name,
                reason: format!("n = {n} is not a multiple of block = {}", self.block),
            });
        }
        let packed_cols = self.window_blocks.min(n / self.block) * self.block;
        if packed_cols == 0 || !packed_cols.is_multiple_of(self.pattern.m()) {
            return Err(RequestError::Unsupported {
                mechanism: name,
                reason: format!(
                    "packed window width {packed_cols} is not a positive multiple of M = {}",
                    self.pattern.m()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::reference_attention;
    use dfss_tensor::{Bf16, Rng};

    fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = Rng::new(seed);
        (
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        )
    }

    /// Reference Dfss: dense scores, N:M mask, −∞ softmax, dense AV.
    fn reference_dfss(
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        pattern: NmPattern,
    ) -> Matrix<f32> {
        let (n, d) = (q.rows(), q.cols());
        let scale = 1.0 / (d as f32).sqrt();
        let mut scores = q.matmul_ref(&k.transpose());
        for r in 0..n {
            scores.row_mut(r).iter_mut().for_each(|x| *x *= scale);
        }
        let mask = pattern.mask_matrix(&scores);
        for r in 0..n {
            let row = scores.row_mut(r);
            for (c, x) in row.iter_mut().enumerate() {
                if mask.get(r, c) == 0.0 {
                    *x = f32::NEG_INFINITY;
                }
            }
            dfss_tensor::math::softmax_row(row);
        }
        scores.matmul_ref(v)
    }

    #[test]
    fn dfss_1_2_matches_masked_reference() {
        let (q, k, v) = qkv(64, 16, 1);
        let mut ctx = GpuCtx::a100();
        let out = DfssAttention::new(NmPattern::P1_2).forward(&mut ctx, &q, &k, &v);
        let reference = reference_dfss(&q, &k, &v, NmPattern::P1_2);
        assert!(out.max_abs_diff(&reference) < 1e-2);
    }

    #[test]
    fn dfss_2_4_matches_masked_reference() {
        let (q, k, v) = qkv(32, 16, 2);
        let mut ctx = GpuCtx::a100();
        let out = DfssAttention::new(NmPattern::P2_4).forward(&mut ctx, &q, &k, &v);
        let reference = reference_dfss(&q, &k, &v, NmPattern::P2_4);
        assert!(out.max_abs_diff(&reference) < 1e-2);
    }

    #[test]
    fn unfused_matches_fused() {
        let (q, k, v) = qkv(32, 16, 3);
        let mut c1 = GpuCtx::a100();
        let mut c2 = GpuCtx::a100();
        let a = DfssAttention::new(NmPattern::P1_2).forward(&mut c1, &q, &k, &v);
        let b = DfssAttention::unfused(NmPattern::P1_2).forward(&mut c2, &q, &k, &v);
        assert!(a.max_abs_diff(&b) < 1e-4);
        // … but the unfused one moves more bytes and peaks higher in memory.
        assert!(c2.timeline.total_bytes() > c1.timeline.total_bytes());
        assert!(c2.mem.peak() > c1.mem.peak());
    }

    #[test]
    fn dfss_is_faster_than_full_attention_on_sim() {
        // The headline claim, at n = 1024, float/1:2.
        let (q, k, v) = qkv(1024, 64, 4);
        let mut cd = GpuCtx::a100();
        let mut cf = GpuCtx::a100();
        let _ = DfssAttention::for_dtype::<f32>().forward(&mut cd, &q, &k, &v);
        let _ = crate::full::FullAttention.forward(&mut cf, &q, &k, &v);
        let speedup = cf.latency() / cd.latency();
        assert!(
            speedup > 1.2 && speedup < 2.2,
            "simulated speedup {speedup:.3} outside the paper's band"
        );
    }

    #[test]
    fn dfss_reduces_peak_memory() {
        let (q, k, v) = qkv(512, 64, 5);
        let mut cd = GpuCtx::a100();
        let mut cf = GpuCtx::a100();
        let _ = DfssAttention::for_dtype::<f32>().forward(&mut cd, &q, &k, &v);
        let _ = crate::full::FullAttention.forward(&mut cf, &q, &k, &v);
        let ratio = cf.mem.peak() as f64 / cd.mem.peak() as f64;
        assert!(ratio > 1.4, "memory reduction {ratio:.2} too small");
    }

    #[test]
    fn bf16_dfss_runs_2_4() {
        let mut rng = Rng::new(6);
        let q = Matrix::<Bf16>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let k = Matrix::<Bf16>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let v = Matrix::<Bf16>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let mech = DfssAttention::for_dtype::<Bf16>();
        assert_eq!(mech.pattern(), NmPattern::P2_4);
        let mut ctx = GpuCtx::a100();
        let out = mech.forward(&mut ctx, &q, &k, &v);
        assert_eq!(out.shape(), (32, 16));
        assert!(out.as_slice().iter().all(|x| !x.is_nan()));
    }

    #[test]
    fn weights_rows_normalised() {
        let (q, k, v) = qkv(32, 16, 7);
        let mut ctx = GpuCtx::a100();
        let (_, w) = DfssAttention::new(NmPattern::P1_2).forward_with_weights(&mut ctx, &q, &k, &v);
        for r in 0..32 {
            let s: f32 = w.row_nonzeros(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn ell_hybrid_runs_and_is_cheaper_at_long_seq() {
        let (q, k, v) = qkv(512, 32, 8);
        let mut ch = GpuCtx::a100();
        let mut cd = GpuCtx::a100();
        let hybrid = DfssEllAttention::new(NmPattern::P1_2, 128, 2);
        let _ = hybrid.forward(&mut ch, &q, &k, &v);
        let _ = DfssAttention::new(NmPattern::P1_2).forward(&mut cd, &q, &k, &v);
        assert!(ch.timeline.total_bytes() < cd.timeline.total_bytes());
    }

    #[test]
    fn drop_in_name_matches_paper_notation() {
        let m = DfssAttention::for_dtype::<f32>();
        assert_eq!(Attention::<f32>::name(&m), "Dfss 1:2 (float)");
        let m = DfssAttention::for_dtype::<Bf16>();
        assert_eq!(Attention::<Bf16>::name(&m), "Dfss 2:4 (bfloat16)");
    }

    #[test]
    fn batched_forward_bit_identical_to_per_head_loop() {
        // The tentpole contract: one launch per op over the whole B×H
        // stack, outputs bit-identical to the per-head loop and charges
        // exactly batch × the per-head profiles.
        let (batch, n, d) = (6usize, 64usize, 16usize);
        let mut rng = Rng::new(12);
        let qb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let kb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let vb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        for (fused, entries) in [(true, 3usize), (false, 4usize)] {
            let mech = if fused {
                DfssAttention::new(NmPattern::P1_2)
            } else {
                DfssAttention::unfused(NmPattern::P1_2)
            };
            let mut bctx = GpuCtx::a100();
            let out = mech.forward_batched(&mut bctx, &qb, &kb, &vb);
            // One launch per op.
            assert_eq!(bctx.timeline.entries().len(), entries);
            assert_eq!(bctx.timeline.launches(), entries as u64);
            let mut sctx = GpuCtx::a100();
            for b in 0..batch {
                let single =
                    mech.forward(&mut sctx, &qb.to_panel(b), &kb.to_panel(b), &vb.to_panel(b));
                let same = out
                    .panel(b)
                    .iter()
                    .zip(single.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "fused={fused} head {b} diverged");
            }
            // Exact batch × charge totals.
            assert_eq!(
                bctx.timeline.total_bytes(),
                sctx.timeline.total_bytes(),
                "fused={fused}"
            );
        }
    }

    #[test]
    fn batched_full_attention_bit_identical_to_per_head_loop() {
        let (batch, n, d) = (4usize, 48usize, 16usize);
        let mut rng = Rng::new(13);
        let qb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let kb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let vb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let mut bctx = GpuCtx::a100();
        let out = crate::full::FullAttention.forward_batched(&mut bctx, &qb, &kb, &vb);
        assert_eq!(bctx.timeline.entries().len(), 3);
        let mut sctx = GpuCtx::a100();
        for b in 0..batch {
            let single = crate::full::FullAttention.forward(
                &mut sctx,
                &qb.to_panel(b),
                &kb.to_panel(b),
                &vb.to_panel(b),
            );
            let same = out
                .panel(b)
                .iter()
                .zip(single.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "head {b} diverged");
        }
        assert_eq!(bctx.timeline.total_bytes(), sctx.timeline.total_bytes());
    }

    #[test]
    fn batched_ell_forward_matches_per_head_loop() {
        let (batch, n, d) = (3usize, 128usize, 16usize);
        let mut rng = Rng::new(14);
        let qb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let kb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let vb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let mech = DfssEllAttention::new(NmPattern::P1_2, 32, 2);
        let mut bctx = GpuCtx::a100();
        let out = mech.forward_batched(&mut bctx, &qb, &kb, &vb);
        assert_eq!(bctx.timeline.entries().len(), 3);
        let mut sctx = GpuCtx::a100();
        for b in 0..batch {
            let single = mech.forward(&mut sctx, &qb.to_panel(b), &kb.to_panel(b), &vb.to_panel(b));
            let same = out
                .panel(b)
                .iter()
                .zip(single.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "head {b} diverged");
        }
        assert_eq!(bctx.timeline.total_bytes(), sctx.timeline.total_bytes());
    }

    #[test]
    fn charge_only_batched_forward_matches_executed_charges() {
        // Figure binaries run the batched pipeline charge-only: profiles
        // must be identical to exec mode, with no panel data materialised.
        let (batch, n, d) = (8usize, 64usize, 32usize);
        let mut rng = Rng::new(15);
        let qb = BatchedMatrix::<f32>::random_normal(batch, n, d, 0.0, 1.0, &mut rng);
        let mech = DfssAttention::for_dtype::<f32>();
        let mut exec = GpuCtx::a100();
        let _ = mech.forward_batched(&mut exec, &qb, &qb, &qb);
        let mut charge = GpuCtx::a100_charge_only();
        let out = mech.forward_batched(&mut charge, &qb, &qb, &qb);
        assert!(!out.is_materialized());
        assert_eq!(exec.timeline.total_bytes(), charge.timeline.total_bytes());
        assert_eq!(exec.mem.peak(), charge.mem.peak());
    }

    #[test]
    fn approximation_error_small_relative_to_full() {
        // Dfss output should stay close to full attention (§3.3): compare
        // against the dense reference and require the relative Frobenius
        // error to be well under 1 (softmax mass concentrates on kept
        // entries).
        let (q, k, v) = qkv(128, 32, 9);
        let mut ctx = GpuCtx::a100();
        let sparse = DfssAttention::new(NmPattern::P1_2).forward(&mut ctx, &q, &k, &v);
        let dense = reference_attention(&q, &k, &v);
        let diff = sparse.zip_with(&dense, |a, b| a - b);
        let rel = diff.frobenius_norm() / dense.frobenius_norm();
        assert!(rel < 0.5, "relative error {rel}");
    }
}
