//! The `Q^p` lottery-ticket quality metric (Definition 4.1) and the mask
//! builders for all four sparsity strategies compared in Figures 12–13.
//!
//! `Q^p = (1/n) Σ_j [ Σ_i (m ⊙ A)^p_{ji} / Σ_i A^p_{ji} ]` — the expected
//! normalised `L_p` mass a sparse mask retains per attention row. `p` is a
//! task-dependent emphasis on high-magnitude edges (the paper anchors
//! p = 6.5 for SQuAD in Figure 13).

use dfss_nmsparse::NmPattern;
use dfss_tensor::{math, Matrix};

/// Compute `Q^p` for attention *weights* `a` (rows already softmaxed) under
/// binary mask `m` (entries 0.0/1.0).
pub fn qp_quality(a: &Matrix<f32>, mask: &Matrix<f32>, p: f64) -> f64 {
    assert_eq!(a.shape(), mask.shape());
    let (rows, _) = a.shape();
    let mut total = 0.0f64;
    for r in 0..rows {
        let mut kept = 0.0f64;
        let mut all = 0.0f64;
        for (&w, &m) in a.row(r).iter().zip(mask.row(r)) {
            let wp = (w as f64).powf(p);
            all += wp;
            if m != 0.0 {
                kept += wp;
            }
        }
        if all > 0.0 {
            total += kept / all;
        }
    }
    total / rows as f64
}

/// Compute `Q^p` for raw *scores* (applies the softmax first, matching the
/// paper's definition over `A = softmax(QKᵀ/√d)`).
pub fn qp_quality_from_scores(scores: &Matrix<f32>, mask: &Matrix<f32>, p: f64) -> f64 {
    let mut a = scores.clone();
    for r in 0..a.rows() {
        math::softmax_row(a.row_mut(r));
    }
    qp_quality(&a, mask, p)
}

/// The normalised F-norm retention metric `‖A − m⊙A‖²_F / ‖A‖²_F`
/// subtracted from one — the "traditional" metric Figure 13(b) shows
/// failing to order the sparse patterns correctly.
pub fn fnorm_retention(a: &Matrix<f32>, mask: &Matrix<f32>) -> f64 {
    assert_eq!(a.shape(), mask.shape());
    let mut dropped = 0.0f64;
    let mut total = 0.0f64;
    for r in 0..a.rows() {
        for (&w, &m) in a.row(r).iter().zip(mask.row(r)) {
            let w2 = (w as f64) * (w as f64);
            total += w2;
            if m == 0.0 {
                dropped += w2;
            }
        }
    }
    1.0 - dropped / total.max(1e-300)
}

/// Top-k mask: the k largest scores per row.
pub fn topk_mask(scores: &Matrix<f32>, k: usize) -> Matrix<f32> {
    let (rows, cols) = scores.shape();
    let k = k.min(cols);
    let mut mask = Matrix::<f32>::zeros(rows, cols);
    let mut order: Vec<usize> = Vec::new();
    for r in 0..rows {
        order.clear();
        order.extend(0..cols);
        let row = scores.row(r);
        order.sort_by(|&a, &b| {
            row[b]
                .partial_cmp(&row[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mrow = mask.row_mut(r);
        for &c in &order[..k] {
            mrow[c] = 1.0;
        }
    }
    mask
}

/// Fixed mask at density `s`: keep the first `⌈s·n⌉` columns of every row
/// (data-oblivious; equivalent in expectation to any fixed pattern under the
/// i.i.d. assumption of Prop 4.2).
pub fn fixed_mask(rows: usize, cols: usize, s: f64) -> Matrix<f32> {
    let keep = ((cols as f64 * s).ceil() as usize).clamp(0, cols);
    Matrix::from_fn(rows, cols, |_, c| if c < keep { 1.0 } else { 0.0 })
}

/// N:M mask from scores (delegates to the pattern selector).
pub fn nm_mask(scores: &Matrix<f32>, pattern: NmPattern) -> Matrix<f32> {
    pattern.mask_matrix(scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    fn gaussian_scores(n: usize, sigma: f32, seed: u64) -> Matrix<f32> {
        let mut rng = Rng::new(seed);
        Matrix::random_normal(n, n, 0.0, sigma, &mut rng)
    }

    #[test]
    fn full_mask_gives_quality_one() {
        let s = gaussian_scores(32, 1.0, 1);
        let mask = Matrix::from_fn(32, 32, |_, _| 1.0);
        let q = qp_quality_from_scores(&s, &mask, 1.0);
        assert!((q - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_mask_gives_zero() {
        let s = gaussian_scores(16, 1.0, 2);
        let mask = Matrix::zeros(16, 16);
        assert!(qp_quality_from_scores(&s, &mask, 1.0) < 1e-12);
    }

    #[test]
    fn topk_is_the_upper_bound_at_equal_density() {
        let s = gaussian_scores(64, 1.0, 3);
        for p in [1.0, 2.0, 7.0] {
            let q_topk = qp_quality_from_scores(&s, &topk_mask(&s, 32), p);
            let q_nm = qp_quality_from_scores(&s, &nm_mask(&s, NmPattern::P1_2), p);
            let q_fix = qp_quality_from_scores(&s, &fixed_mask(64, 64, 0.5), p);
            assert!(q_topk >= q_nm - 1e-9, "p={p}");
            assert!(q_nm > q_fix, "p={p}");
        }
    }

    #[test]
    fn q24_at_least_q12() {
        // Proposition 4.2's ordering.
        for seed in 0..5 {
            let s = gaussian_scores(64, 1.0, 100 + seed);
            for p in [1.0, 2.0, 3.0] {
                let q12 = qp_quality_from_scores(&s, &nm_mask(&s, NmPattern::P1_2), p);
                let q24 = qp_quality_from_scores(&s, &nm_mask(&s, NmPattern::P2_4), p);
                assert!(q24 >= q12 - 5e-3, "seed {seed} p {p}: {q24} < {q12}");
            }
        }
    }

    #[test]
    fn fixed_quality_is_about_density() {
        // Under i.i.d. scores, Q^1 of a fixed mask ≈ s.
        let s = gaussian_scores(128, 1.0, 4);
        for dens in [0.25, 0.5, 0.75] {
            let q = qp_quality_from_scores(&s, &fixed_mask(128, 128, dens), 1.0);
            assert!((q - dens).abs() < 0.05, "s={dens}: {q}");
        }
    }

    #[test]
    fn quality_monotone_in_density_for_topk() {
        let s = gaussian_scores(64, 1.0, 5);
        let mut prev = 0.0;
        for k in [4, 8, 16, 32, 64] {
            let q = qp_quality_from_scores(&s, &topk_mask(&s, k), 2.0);
            assert!(q >= prev, "k={k}");
            prev = q;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_p_boosts_magnitude_based_masks() {
        // At higher p, mass concentrates on large entries, which N:M keeps —
        // so Q^p grows with p for the 1:2 mask.
        let s = gaussian_scores(64, 1.0, 6);
        let mask = nm_mask(&s, NmPattern::P1_2);
        let q1 = qp_quality_from_scores(&s, &mask, 1.0);
        let q3 = qp_quality_from_scores(&s, &mask, 3.0);
        let q7 = qp_quality_from_scores(&s, &mask, 7.0);
        assert!(q3 > q1);
        assert!(q7 > q3);
        assert!(q7 > 0.99, "Q^7 should be ≈1 (paper: ≈0.9999996)");
    }

    #[test]
    fn fnorm_counterexample_exists() {
        // Figure 13(b): 1:2 can beat a fixed mask on Q^p while scoring lower
        // on F-norm retention — check the metrics are not equivalent by
        // verifying order can differ.
        let s = gaussian_scores(96, 1.0, 7);
        let m_nm = nm_mask(&s, NmPattern::P1_2);
        let m_fix = fixed_mask(96, 96, 0.63);
        let qp_gap =
            qp_quality_from_scores(&s, &m_nm, 6.5) - qp_quality_from_scores(&s, &m_fix, 6.5);
        // 1:2 wins on the task-aligned Q^p at p=6.5 …
        assert!(qp_gap > 0.0);
        // … while holding *less* raw density (0.5 < 0.63), the mismatch the
        // F-norm metric cannot explain.
        let mut a = s.clone();
        for r in 0..a.rows() {
            math::softmax_row(a.row_mut(r));
        }
        let f_nm = fnorm_retention(&a, &m_nm);
        let f_fix = fnorm_retention(&a, &m_fix);
        // Not asserting an inversion on every seed — just that both metrics
        // are computable and distinct.
        assert!(f_nm > 0.0 && f_fix > 0.0 && (f_nm - f_fix).abs() > 1e-6);
    }
}
