//! The attention-mechanism interface.

use dfss_gpusim::Stage;
use dfss_kernels::{gemm, softmax, GpuCtx};
use dfss_tensor::{BatchedMatrix, Bf16, Matrix, RaggedBatch, Scalar};

/// An attention mechanism: `O = attend(Q, K, V)` with `Q, K, V : n×d`.
///
/// Implementations execute on the host and charge the simulated device
/// through `ctx` (kernel timeline + peak-memory ledger), so a single forward
/// call yields the output, the Figure 5 stage breakdown, and the Figure 16
/// footprint at once.
pub trait Attention<T: Scalar> {
    /// Display name as used in the paper's figures (e.g. `"Dfss 1:2"`).
    fn name(&self) -> String;

    /// Compute the attention output.
    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T>;

    /// Compute the attention output for a whole B×H stack — **one launch
    /// per op** across the batch ("batch size … large enough to keep the
    /// GPU busy", §5.2).
    ///
    /// Mechanisms with natively batched kernels (Dfss, the dense
    /// transformer) override this with single-profile whole-stack launches.
    /// The default covers every other mechanism with the paper's batched
    /// launch model (A.1.2): each panel runs for real — every head's
    /// traffic, MACs and overhead are charged — the per-panel launches of
    /// each kernel then collapse to one, exactly as a batched grid would
    /// execute them, and the memory ledger reserves the other panels'
    /// working sets alongside each panel's run (a batched launch holds
    /// every panel's transient footprint concurrently, matching what the
    /// native overrides allocate explicitly).
    fn forward_batched(
        &self,
        ctx: &mut GpuCtx,
        q: &BatchedMatrix<T>,
        k: &BatchedMatrix<T>,
        v: &BatchedMatrix<T>,
    ) -> BatchedMatrix<T> {
        let (batch, n, _) = check_qkv_batched(q, k, v);
        let mark = ctx.timeline.entries().len();
        let mut out = BatchedMatrix::zeros(batch, n, v.cols());
        if batch == 0 {
            return out;
        }
        // First panel doubles as the transient-footprint measurement.
        let resident = ctx.mem.current();
        ctx.mem.begin_window();
        let ob = self.forward(ctx, &q.to_panel(0), &k.to_panel(0), &v.to_panel(0));
        out.panel_mut(0).copy_from_slice(ob.as_slice());
        let transient = ctx.mem.window_peak().saturating_sub(resident);
        let rsv = ctx
            .mem
            .alloc("batched_panels_concurrent", (batch as u64 - 1) * transient);
        for b in 1..batch {
            let ob = self.forward(ctx, &q.to_panel(b), &k.to_panel(b), &v.to_panel(b));
            out.panel_mut(b).copy_from_slice(ob.as_slice());
        }
        ctx.mem.free(rsv);
        batch_panel_launches(ctx, mark, batch);
        out
    }

    /// The `1/√d` standardisation of Equation (1).
    fn scale_for(&self, d: usize) -> f32 {
        1.0 / (d as f32).sqrt()
    }

    /// One **decode step**: the stream's new query row (`1 × d`) attends
    /// over its cached `K` (`len × d`) and `V` (`len × d_v`), returning the
    /// `1 × d_v` output row — the incremental-inference counterpart of
    /// [`forward`](Self::forward), where the cache grows by one position per
    /// generated token and `len` need not satisfy the mechanism's prefill
    /// alignment rules.
    ///
    /// The default runs the generic dense row pipeline (`gemm_nt` scores →
    /// dense softmax → `gemm_nn` AV) — correct for any mechanism, since a
    /// single row gains nothing from sparsity without hardware-structured
    /// metadata. Mechanisms with a native decode format (Dfss: N:M over the
    /// row's full M-groups with a dense tail) override it.
    fn decode(
        &self,
        ctx: &mut GpuCtx,
        q_row: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Matrix<T> {
        let (len, d) = check_decode(q_row, k, v);
        let scale = self.scale_for(d);
        let scores_id = ctx
            .mem
            .alloc("scores_decode_dense", (len * T::BYTES) as u64);
        let scores = gemm::gemm_nt(ctx, Stage::Qk, q_row, k, scale);
        let a = softmax::softmax_dense(ctx, &scores);
        let out = gemm::gemm_nn(ctx, Stage::Av, &a, v);
        ctx.mem.free(scores_id);
        out
    }

    /// Batched decode across **ragged streams**: row `i` of `q` is stream
    /// `i`'s new query row, panel `i` of `k`/`v` its cached K/V (lengths
    /// may differ per stream) — **one launch per op** for the whole ragged
    /// batch, outputs bit-identical to a per-stream [`decode`](Self::decode)
    /// loop. Returns the `streams × d_v` output, one row per stream.
    ///
    /// The default runs the per-stream loop and merges the per-stream
    /// kernel logs positionally into batched launches (one launch per op,
    /// per-stream charges summed — the same model as the batched prefill
    /// default), reserving the remaining streams' transient working sets
    /// alongside the first stream's run (sized from stream 0, the same
    /// first-panel approximation `forward_batched` uses). Mechanisms with
    /// natively ragged kernels (Dfss) override it with single-profile
    /// whole-batch launches.
    fn decode_ragged(
        &self,
        ctx: &mut GpuCtx,
        q: &Matrix<T>,
        k: &RaggedBatch<T>,
        v: &RaggedBatch<T>,
    ) -> Matrix<T> {
        let streams = check_decode_ragged(q, k, v);
        let mut out = Matrix::zeros(streams, v.cols());
        if streams == 0 {
            return out;
        }
        let mark = ctx.timeline.entries().len();
        let resident = ctx.mem.current();
        ctx.mem.begin_window();
        let q0 = Matrix::from_vec(1, q.cols(), q.row(0).to_vec());
        let o0 = self.decode(ctx, &q0, &k.to_panel(0), &v.to_panel(0));
        out.row_mut(0).copy_from_slice(o0.as_slice());
        let transient = ctx.mem.window_peak().saturating_sub(resident);
        let rsv = ctx.mem.alloc(
            "decode_streams_concurrent",
            (streams as u64 - 1) * transient,
        );
        for s in 1..streams {
            let qs = Matrix::from_vec(1, q.cols(), q.row(s).to_vec());
            let os = self.decode(ctx, &qs, &k.to_panel(s), &v.to_panel(s));
            out.row_mut(s).copy_from_slice(os.as_slice());
        }
        ctx.mem.free(rsv);
        batch_panel_launches(ctx, mark, streams);
        out
    }

    /// [`decode_ragged`](Self::decode_ragged) over a **bf16-quantised KV
    /// cache**: the cached K/V panels arrive at their stored 2-byte width
    /// and are widened to the compute type on load. Queries and outputs
    /// stay `T`.
    ///
    /// The default widens the panels to `T` host-side and delegates to
    /// [`decode_ragged`](Self::decode_ragged) — correct for any mechanism,
    /// and honest about its traffic (the kernels really do read widened
    /// `T`-width panels, so they charge `T::BYTES`). Mechanisms with
    /// fused widen-on-load decode kernels (Dfss) override this to stream
    /// the cache at 2 bytes per element.
    fn decode_ragged_bf16(
        &self,
        ctx: &mut GpuCtx,
        q: &Matrix<T>,
        k: &RaggedBatch<Bf16>,
        v: &RaggedBatch<Bf16>,
    ) -> Matrix<T> {
        let widen = |b: &RaggedBatch<Bf16>| {
            let mut out = RaggedBatch::<T>::zeros(b.cols(), b.lens());
            for (o, x) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *o = T::from_f32(x.to_f32());
            }
            out
        };
        self.decode_ragged(ctx, q, &widen(k), &widen(v))
    }

    /// Validate that this mechanism can run an `n × d` request, without
    /// panicking — the serving front door ([`crate::engine`], `dfss-serve`)
    /// rejects unservable shapes with a typed error before admission.
    ///
    /// The default accepts any non-empty shape; mechanisms with structural
    /// requirements (N:M group alignment, ELL block tiling) override it.
    fn check_shape(&self, n: usize, d: usize) -> Result<(), RequestError> {
        let _ = d;
        if n == 0 {
            return Err(RequestError::EmptyRequest);
        }
        Ok(())
    }

    /// Compute a **row slice** of the prefill output: `q_rows` is a `c × d`
    /// chunk of the full query matrix, attended against the *full* `K`
    /// (`n × d`) and `V` (`n × d_v`) — the resumable unit a continuous
    /// batching scheduler interleaves with decode steps.
    ///
    /// The contract, when [`supports_row_chunking`](Self::supports_row_chunking)
    /// is `true`: for any partition of Q's rows, stacking the chunk outputs
    /// in row order is **bit-identical** to one [`forward`](Self::forward)
    /// over the whole Q. That holds whenever the mechanism's score
    /// pipeline is row-separable over the key columns — scores keep the
    /// serial-k per-element sum order, softmax and any pruning act per
    /// score row — which is true of the dense pipeline and of Dfss's N:M
    /// epilogue, but *not* of row-position-dependent structures (the
    /// blocked-ELL sliding window).
    ///
    /// The default runs the generic dense pipeline on the rectangular
    /// `c × n` score panel (the same kernels, allocation names and charge
    /// shapes as the dense baseline). Mechanisms with a native sparse
    /// pipeline (Dfss) override it.
    fn forward_rows(
        &self,
        ctx: &mut GpuCtx,
        q_rows: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Matrix<T> {
        let (c, n, d) = check_qkv_rows(q_rows, k, v);
        let scale = self.scale_for(d);
        let scores_id = ctx.mem.alloc("scores_dense", (c * n * T::BYTES) as u64);
        let scores = gemm::gemm_nt(ctx, Stage::Qk, q_rows, k, scale);
        let weights_id = ctx.mem.alloc("weights_dense", (c * n * T::BYTES) as u64);
        let weights = softmax::softmax_dense(ctx, &scores);
        ctx.mem.free(scores_id);
        let out = gemm::gemm_nn(ctx, Stage::Av, &weights, v);
        ctx.mem.free(weights_id);
        out
    }

    /// Whether [`forward_rows`](Self::forward_rows) chunk outputs stack
    /// bit-identically to one whole-Q [`forward`](Self::forward).
    ///
    /// `false` (the default) tells the serving scheduler to run this
    /// mechanism's prefills whole — correctness never depends on a
    /// mechanism opting in. Row-separable mechanisms (the dense
    /// transformer, Dfss N:M) override this to `true` to unlock chunked,
    /// decode-interleaved prefill.
    fn supports_row_chunking(&self) -> bool {
        false
    }
}

/// Typed rejection of an attention request — serving must not abort the
/// process on a malformed `(Q, K, V)` triple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// K's shape differs from Q's `n × d`.
    KShapeMismatch {
        q: (usize, usize),
        k: (usize, usize),
    },
    /// V's row count differs from the sequence length.
    VRowsMismatch { n: usize, v_rows: usize },
    /// Zero-sized panels cannot be served.
    EmptyRequest,
    /// The mechanism cannot run this shape (e.g. `n` not a multiple of M).
    Unsupported { mechanism: String, reason: String },
    /// A decode step's buffers disagree with the declared `(len, d, d_v)`
    /// shape (wrong query-row width, cache slab not `len × d`, …).
    DecodeShapeMismatch { reason: String },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::KShapeMismatch { q, k } => {
                write!(f, "K shape {}x{} != Q shape {}x{}", k.0, k.1, q.0, q.1)
            }
            RequestError::VRowsMismatch { n, v_rows } => {
                write!(f, "V has {v_rows} rows, sequence length is {n}")
            }
            RequestError::EmptyRequest => write!(f, "empty request"),
            RequestError::Unsupported { mechanism, reason } => {
                write!(f, "{mechanism} cannot serve this shape: {reason}")
            }
            RequestError::DecodeShapeMismatch { reason } => {
                write!(f, "decode step shape mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Non-panicking counterpart of [`check_qkv`]: validates the Q/K/V triple
/// and the mechanism's own shape constraints, returning `(n, d)`.
pub fn try_check_qkv<T: Scalar>(
    mech: &dyn Attention<T>,
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
) -> Result<(usize, usize), RequestError> {
    let (n, d) = q.shape();
    if n == 0 || d == 0 {
        return Err(RequestError::EmptyRequest);
    }
    if k.shape() != (n, d) {
        return Err(RequestError::KShapeMismatch {
            q: (n, d),
            k: k.shape(),
        });
    }
    if v.rows() != n {
        return Err(RequestError::VRowsMismatch {
            n,
            v_rows: v.rows(),
        });
    }
    mech.check_shape(n, d)?;
    Ok((n, d))
}

/// Validate a chunked-prefill triple — a `c × d` query row slice against the
/// full `n × d` K and `n`-row V — returning `(c, n, d)`. Panicking twin of
/// [`try_check_qkv_rows`], for kernel-level callers that already validated.
pub fn check_qkv_rows<T: Scalar>(
    q_rows: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
) -> (usize, usize, usize) {
    let (c, d) = q_rows.shape();
    let (n, dk) = k.shape();
    assert!(c > 0 && d > 0, "empty query chunk");
    assert!(n > 0, "chunked prefill against an empty K");
    assert_eq!(d, dk, "Q chunk and K disagree on head dim");
    assert_eq!(v.rows(), n, "V rows != key count");
    (c, n, d)
}

/// Non-panicking validation of a chunked-prefill triple (`c × d` query rows,
/// full `n × d` K, `n`-row V), returning `(c, n)`. The mechanism's own
/// [`Attention::check_shape`] runs against the **key count** `n` — structural
/// constraints like N:M group alignment bind the score-row width, not the
/// number of query rows in this chunk.
pub fn try_check_qkv_rows<T: Scalar>(
    mech: &dyn Attention<T>,
    q_rows: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
) -> Result<(usize, usize), RequestError> {
    let (c, d) = q_rows.shape();
    if c == 0 || d == 0 {
        return Err(RequestError::EmptyRequest);
    }
    let (n, dk) = k.shape();
    if n == 0 || dk != d {
        return Err(RequestError::KShapeMismatch {
            q: (c, d),
            k: (n, dk),
        });
    }
    if v.rows() != n {
        return Err(RequestError::VRowsMismatch {
            n,
            v_rows: v.rows(),
        });
    }
    mech.check_shape(n, d)?;
    Ok((c, n))
}

/// Merge the per-panel kernel logs recorded since `mark` into batched
/// launches — the paper's batched kernel model ("using a batched kernel …
/// reduce kernel launching overhead", A.1.2).
///
/// When every panel recorded the same kernel sequence (the usual case —
/// mechanisms run a fixed op pipeline per head), the j-th op of every panel
/// merges **positionally** into one launch whose counters are the sum over
/// panels: per-panel sequential ops (e.g. k-means iterations) stay separate
/// launches, exactly one launch per batched op. A mechanism whose panels
/// recorded differing sequences keeps every entry and collapses launches by
/// kernel name instead.
///
/// **Latency model (pinned)**: a merged entry charges **one** launch
/// overhead and `max(Σ mem_time, Σ compute_time)` over its panels — the
/// batched launch overlaps memory and compute across the whole panel grid,
/// like a real batched kernel's double-buffered software pipeline
/// (A.1.2). Consequences, load-bearing for the serving bench's
/// simulated-device numbers:
///
/// * identical panels (the figure binaries' broadcast stacks): exactly the
///   old per-head-loop×B accounting, since every panel sits on the same
///   side of the memory/compute boundary;
/// * heterogeneous panels whose ops straddle that boundary (a serving
///   bucket mixing mem-bound and compute-bound requests): deliberately
///   **≤** the per-panel sum of maxes — one launch hides each panel's
///   underutilised pipe behind the other panels' busy one. The merged
///   latency is never below `max` of either pipe's total, so it cannot
///   under-charge a saturated resource.
///
/// `mechanism::tests::merged_launch_latency_is_max_of_pipe_totals` pins
/// this model.
pub fn batch_panel_launches(ctx: &mut GpuCtx, mark: usize, batch: usize) {
    let entries = ctx.timeline.entries();
    let total = entries.len() - mark;
    if batch <= 1 || total == 0 {
        return;
    }
    let per = total / batch;
    let uniform = total.is_multiple_of(batch)
        && (1..batch).all(|b| {
            (0..per).all(|j| {
                let a = &entries[mark + j];
                let e = &entries[mark + b * per + j];
                a.name == e.name && a.stage == e.stage
            })
        });
    if uniform {
        let es = ctx.timeline.entries_mut();
        for j in 0..per {
            for b in 1..batch {
                let src = es[mark + b * per + j].clone();
                let dst = &mut es[mark + j];
                dst.bytes_read += src.bytes_read;
                dst.bytes_written += src.bytes_written;
                dst.tc_macs += src.tc_macs;
                dst.alu_ops += src.alu_ops;
                // `launches` stays 1: one batched launch per op.
            }
        }
        ctx.timeline.truncate(mark + per);
    } else {
        let mut seen: Vec<&'static str> = Vec::new();
        for e in ctx.timeline.entries_mut()[mark..].iter_mut() {
            if seen.contains(&e.name) {
                e.launches = 0;
            } else {
                seen.push(e.name);
                e.launches = 1;
            }
        }
    }
}

/// Validate decode-step preconditions; returns `(len, d)`. The query is a
/// single row, K is the `len × d` cache, V has `len` rows.
pub fn check_decode<T: Scalar>(q_row: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> (usize, usize) {
    assert_eq!(q_row.rows(), 1, "decode takes a single query row");
    let (len, d) = k.shape();
    assert!(len > 0, "decode against an empty cache");
    assert_eq!(q_row.cols(), d, "query width mismatch");
    assert_eq!(v.rows(), len, "V row mismatch");
    (len, d)
}

/// Ragged batched counterpart of [`check_decode`]; returns the stream
/// count. Row `i` of `q` pairs with panel `i` of `k` and `v`, whose row
/// counts must agree per stream (column counts may differ between K and V).
/// The cached panels' element type `S` may differ from the compute type
/// `T` (bf16-quantised KV).
pub fn check_decode_ragged<T: Scalar, S: Scalar>(
    q: &Matrix<T>,
    k: &RaggedBatch<S>,
    v: &RaggedBatch<S>,
) -> usize {
    let streams = k.streams();
    assert_eq!(q.rows(), streams, "one query row per stream");
    assert_eq!(q.cols(), k.cols(), "query width mismatch");
    assert_eq!(k.lens(), v.lens(), "per-stream K/V length mismatch");
    assert!(
        k.lens().iter().all(|&l| l > 0),
        "decode against an empty cache"
    );
    streams
}

/// Validate common attention preconditions; returns `(n, d)`.
pub fn check_qkv<T: Scalar>(q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> (usize, usize) {
    let (n, d) = q.shape();
    assert_eq!(k.shape(), (n, d), "K shape mismatch");
    assert_eq!(v.rows(), n, "V row mismatch");
    (n, d)
}

/// Batched counterpart of [`check_qkv`]; returns `(batch, n, d)`.
pub fn check_qkv_batched<T: Scalar>(
    q: &BatchedMatrix<T>,
    k: &BatchedMatrix<T>,
    v: &BatchedMatrix<T>,
) -> (usize, usize, usize) {
    let (batch, n, d) = q.shape();
    assert_eq!(k.shape(), (batch, n, d), "K shape mismatch");
    assert_eq!(v.batch(), batch, "V batch mismatch");
    assert_eq!(v.rows(), n, "V row mismatch");
    (batch, n, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Id;
    impl Attention<f32> for Id {
        fn name(&self) -> String {
            "id".into()
        }
        fn forward(
            &self,
            _ctx: &mut GpuCtx,
            _q: &Matrix<f32>,
            _k: &Matrix<f32>,
            v: &Matrix<f32>,
        ) -> Matrix<f32> {
            v.clone()
        }
    }

    #[test]
    fn scale_is_inverse_sqrt_d() {
        let a = Id;
        assert!((a.scale_for(64) - 0.125).abs() < 1e-7);
    }

    /// A mechanism that records a fixed two-kernel sequence per forward —
    /// stand-in for the baselines that go through the default
    /// `forward_batched` loop.
    struct TwoKernel;
    impl Attention<f32> for TwoKernel {
        fn name(&self) -> String {
            "two".into()
        }
        fn forward(
            &self,
            ctx: &mut GpuCtx,
            _q: &Matrix<f32>,
            _k: &Matrix<f32>,
            v: &Matrix<f32>,
        ) -> Matrix<f32> {
            use dfss_gpusim::{KernelProfile, Stage};
            ctx.record(KernelProfile::new("op_a", Stage::Overhead).with_traffic(100, 10));
            ctx.record(
                KernelProfile::new("op_b", Stage::Av)
                    .with_traffic(200, 20)
                    .with_alu(7),
            );
            v.clone()
        }
    }

    #[test]
    fn default_forward_batched_merges_panels_positionally() {
        // 3 panels × 2 ops → 2 batched launches, each charging 3 × the
        // per-panel traffic — exactly the old per-head-loop×B accounting.
        let q = BatchedMatrix::<f32>::zeros(3, 4, 2);
        let mut ctx = GpuCtx::a100();
        let out = TwoKernel.forward_batched(&mut ctx, &q, &q, &q);
        assert_eq!(out.shape(), (3, 4, 2));
        let es = ctx.timeline.entries();
        assert_eq!(es.len(), 2);
        assert_eq!(
            (es[0].name, es[0].bytes_read, es[0].launches),
            ("op_a", 300, 1)
        );
        assert_eq!(
            (es[1].name, es[1].bytes_read, es[1].alu_ops),
            ("op_b", 600, 21)
        );
        assert_eq!(ctx.timeline.launches(), 2);
    }

    /// A mechanism with a per-forward transient allocation (stand-in for a
    /// baseline materialising scratch per head).
    struct Alloc1K;
    impl Attention<f32> for Alloc1K {
        fn name(&self) -> String {
            "alloc1k".into()
        }
        fn forward(
            &self,
            ctx: &mut GpuCtx,
            _q: &Matrix<f32>,
            _k: &Matrix<f32>,
            v: &Matrix<f32>,
        ) -> Matrix<f32> {
            ctx.mem.with_alloc("scratch", 1024, |_| {});
            v.clone()
        }
    }

    #[test]
    fn default_forward_batched_models_concurrent_panel_memory() {
        // A batched launch holds every panel's working set at once: the
        // default loop must peak at batch × the per-panel transient (plus
        // anything already resident), like the native overrides do.
        let q = BatchedMatrix::<f32>::zeros(5, 4, 2);
        let mut ctx = GpuCtx::a100();
        let base = ctx.mem.alloc("resident", 10_000);
        let _ = Alloc1K.forward_batched(&mut ctx, &q, &q, &q);
        ctx.mem.free(base);
        assert_eq!(ctx.mem.peak(), 10_000 + 5 * 1024);
        assert_eq!(ctx.mem.current(), 0);
    }

    #[test]
    fn batch_panel_launches_falls_back_on_heterogeneous_logs() {
        use dfss_gpusim::{KernelProfile, Stage};
        let mut ctx = GpuCtx::a100();
        // Panel 0 records two ops, panel 1 records one — not mergeable
        // positionally; every entry survives with name-collapsed launches.
        ctx.record(KernelProfile::new("op_a", Stage::Overhead).with_traffic(1, 0));
        ctx.record(KernelProfile::new("op_b", Stage::Av).with_traffic(2, 0));
        ctx.record(KernelProfile::new("op_a", Stage::Overhead).with_traffic(4, 0));
        batch_panel_launches(&mut ctx, 0, 2);
        assert_eq!(ctx.timeline.entries().len(), 3);
        assert_eq!(ctx.timeline.total_bytes(), 7);
        assert_eq!(ctx.timeline.launches(), 2); // op_a once + op_b once
    }

    /// Pin the merged-launch latency model: one launch overhead plus
    /// `max(Σ mem_time, Σ compute_time)` across panels — cheaper than the
    /// per-panel sum of maxes when panels straddle the memory/compute
    /// boundary, never cheaper than either pipe's own total.
    #[test]
    fn merged_launch_latency_is_max_of_pipe_totals() {
        use dfss_gpusim::{KernelProfile, Stage, TcClass};
        let mut ctx = GpuCtx::a100();
        // Panel 0: op strongly memory-bound. Panel 1: same op, strongly
        // compute-bound (a heterogeneous serving bucket).
        let mem_heavy = KernelProfile::new("op", Stage::Av)
            .with_traffic(2_000_000_000, 0)
            .with_tc(1_000_000, TcClass::DenseTf32);
        let compute_heavy = KernelProfile::new("op", Stage::Av)
            .with_traffic(1_000, 0)
            .with_tc(400_000_000_000, TcClass::DenseTf32);
        let per_panel_sum_of_maxes = mem_heavy.latency(&ctx.dev) + compute_heavy.latency(&ctx.dev);
        let mem_total = mem_heavy.mem_time(&ctx.dev) + compute_heavy.mem_time(&ctx.dev);
        let compute_total = mem_heavy.compute_time(&ctx.dev) + compute_heavy.compute_time(&ctx.dev);
        ctx.record(mem_heavy);
        ctx.record(compute_heavy);
        batch_panel_launches(&mut ctx, 0, 2);
        assert_eq!(ctx.timeline.entries().len(), 1);
        assert_eq!(ctx.timeline.launches(), 1);
        let merged = ctx.latency();
        let expected = ctx.dev.kernel_launch_sec + mem_total.max(compute_total);
        assert!(
            (merged - expected).abs() < 1e-12,
            "merged {merged} != max(sum-mem, sum-compute) model {expected}"
        );
        // Strictly cheaper than running the panels back to back (the hidden
        // pipe), but not cheaper than the saturated pipe itself.
        assert!(merged < per_panel_sum_of_maxes);
        assert!(merged >= mem_total.max(compute_total));
    }

    #[test]
    fn try_check_qkv_rejects_bad_requests_with_typed_errors() {
        let q = Matrix::<f32>::zeros(8, 4);
        let k_bad = Matrix::<f32>::zeros(4, 4);
        let v_bad = Matrix::<f32>::zeros(6, 4);
        let v = Matrix::<f32>::zeros(8, 4);
        assert_eq!(try_check_qkv(&Id, &q, &q, &v), Ok((8, 4)));
        assert_eq!(
            try_check_qkv(&Id, &q, &k_bad, &v),
            Err(RequestError::KShapeMismatch {
                q: (8, 4),
                k: (4, 4)
            })
        );
        assert_eq!(
            try_check_qkv(&Id, &q, &q, &v_bad),
            Err(RequestError::VRowsMismatch { n: 8, v_rows: 6 })
        );
        let empty = Matrix::<f32>::zeros(0, 4);
        assert_eq!(
            try_check_qkv(&Id, &empty, &empty, &empty),
            Err(RequestError::EmptyRequest)
        );
    }

    #[test]
    fn check_qkv_accepts_valid() {
        let q = Matrix::<f32>::zeros(8, 4);
        let k = Matrix::<f32>::zeros(8, 4);
        let v = Matrix::<f32>::zeros(8, 4);
        assert_eq!(check_qkv(&q, &k, &v), (8, 4));
    }

    #[test]
    #[should_panic(expected = "K shape mismatch")]
    fn check_qkv_rejects_bad_k() {
        let q = Matrix::<f32>::zeros(8, 4);
        let k = Matrix::<f32>::zeros(4, 4);
        let v = Matrix::<f32>::zeros(8, 4);
        check_qkv(&q, &k, &v);
    }
}
