//! The attention-mechanism interface.

use dfss_kernels::GpuCtx;
use dfss_tensor::{Matrix, Scalar};

/// An attention mechanism: `O = attend(Q, K, V)` with `Q, K, V : n×d`.
///
/// Implementations execute on the host and charge the simulated device
/// through `ctx` (kernel timeline + peak-memory ledger), so a single forward
/// call yields the output, the Figure 5 stage breakdown, and the Figure 16
/// footprint at once.
pub trait Attention<T: Scalar> {
    /// Display name as used in the paper's figures (e.g. `"Dfss 1:2"`).
    fn name(&self) -> String;

    /// Compute the attention output.
    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T>;

    /// The `1/√d` standardisation of Equation (1).
    fn scale_for(&self, d: usize) -> f32 {
        1.0 / (d as f32).sqrt()
    }
}

/// Validate common attention preconditions; returns `(n, d)`.
pub fn check_qkv<T: Scalar>(q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> (usize, usize) {
    let (n, d) = q.shape();
    assert_eq!(k.shape(), (n, d), "K shape mismatch");
    assert_eq!(v.rows(), n, "V row mismatch");
    (n, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Id;
    impl Attention<f32> for Id {
        fn name(&self) -> String {
            "id".into()
        }
        fn forward(
            &self,
            _ctx: &mut GpuCtx,
            _q: &Matrix<f32>,
            _k: &Matrix<f32>,
            v: &Matrix<f32>,
        ) -> Matrix<f32> {
            v.clone()
        }
    }

    #[test]
    fn scale_is_inverse_sqrt_d() {
        let a = Id;
        assert!((a.scale_for(64) - 0.125).abs() < 1e-7);
    }

    #[test]
    fn check_qkv_accepts_valid() {
        let q = Matrix::<f32>::zeros(8, 4);
        let k = Matrix::<f32>::zeros(8, 4);
        let v = Matrix::<f32>::zeros(8, 4);
        assert_eq!(check_qkv(&q, &k, &v), (8, 4));
    }

    #[test]
    #[should_panic(expected = "K shape mismatch")]
    fn check_qkv_rejects_bad_k() {
        let q = Matrix::<f32>::zeros(8, 4);
        let k = Matrix::<f32>::zeros(4, 4);
        let v = Matrix::<f32>::zeros(8, 4);
        check_qkv(&q, &k, &v);
    }
}
