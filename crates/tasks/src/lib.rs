//! # dfss-tasks — synthetic datasets mirroring the paper's evaluation
//!
//! The paper evaluates on SQuAD v1.1, WikiText-2/103 and four LRA tasks.
//! Those datasets and the BERT/roBERTa checkpoints behind them are a
//! reproduction gate, so this crate generates synthetic tasks with the same
//! *structure* — labels that depend on long-range token interactions, so the
//! attention mechanism is load-bearing — and the same metrics:
//!
//! | module | substitutes | metric | paper table |
//! |---|---|---|---|
//! | [`qa`] | SQuAD v1.1 span extraction | token-level F1 | Tables 1–2 |
//! | [`mlm`] | WikiText masked-LM | perplexity | Table 3 |
//! | [`listops`] | LRA ListOps (itself synthetic — same grammar) | accuracy | Table 4 |
//! | [`textcls`] | LRA byte-level text classification | accuracy | Table 4 |
//! | [`retrieval`] | LRA document retrieval | accuracy | Table 4 |
//! | [`image`] | LRA pixel-sequence image classification | accuracy | Table 4 |
//!
//! [`protocol`] implements the paper's §5.1 protocol: train dense → swap the
//! attention mechanism (no finetune) → optionally finetune briefly → report
//! mean ± 95% CI over seeds.

pub mod image;
pub mod listops;
pub mod mlm;
pub mod protocol;
pub mod qa;
pub mod retrieval;
pub mod textcls;

/// A sequence-classification example shared by the LRA-style tasks.
#[derive(Clone, Debug)]
pub struct ClsExample {
    pub tokens: Vec<usize>,
    pub label: usize,
}

/// A dataset: examples plus vocabulary/label-space metadata.
#[derive(Clone, Debug)]
pub struct ClsDataset {
    pub train: Vec<ClsExample>,
    pub test: Vec<ClsExample>,
    pub vocab: usize,
    pub classes: usize,
    pub seq_len: usize,
}

impl ClsDataset {
    pub fn sanity_check(&self) {
        for ex in self.train.iter().chain(&self.test) {
            assert_eq!(ex.tokens.len(), self.seq_len);
            assert!(ex.label < self.classes);
            assert!(ex.tokens.iter().all(|&t| t < self.vocab));
        }
    }
}
