//! ListOps (the LRA task is itself synthetic — we implement the same
//! grammar at reduced length).
//!
//! Expressions like `[MAX 2 9 [MIN 4 7 ] 0 ]` evaluate to a digit 0–9;
//! the model classifies the flattened token sequence into 10 classes.
//! Correct evaluation requires matching brackets across long distances,
//! which is exactly why LRA uses it to stress attention.

use crate::{ClsDataset, ClsExample};
use dfss_tensor::Rng;

pub const PAD: usize = 0;
pub const CLS_TOK: usize = 1;
const DIGIT0: usize = 2; // digits 0..9 → tokens 2..11
const OP0: usize = 12; // MAX, MIN, MED, SM → 12..15
pub const CLOSE: usize = 16;
pub const VOCAB: usize = 17;

const OPS: [&str; 4] = ["MAX", "MIN", "MED", "SM"];

/// An expression tree.
#[derive(Clone, Debug)]
pub enum Expr {
    Digit(u8),
    Op(usize, Vec<Expr>),
}

impl Expr {
    /// Evaluate to a digit 0–9.
    pub fn eval(&self) -> u8 {
        match self {
            Expr::Digit(d) => *d,
            Expr::Op(op, args) => {
                let vals: Vec<u8> = args.iter().map(Expr::eval).collect();
                match *op {
                    0 => *vals.iter().max().expect("non-empty"),
                    1 => *vals.iter().min().expect("non-empty"),
                    2 => {
                        let mut s = vals.clone();
                        s.sort_unstable();
                        s[s.len() / 2]
                    }
                    3 => (vals.iter().map(|&v| v as u32).sum::<u32>() % 10) as u8,
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Token length of the flattened expression.
    pub fn token_len(&self) -> usize {
        match self {
            Expr::Digit(_) => 1,
            Expr::Op(_, args) => 2 + args.iter().map(Expr::token_len).sum::<usize>(),
        }
    }

    /// Flatten to tokens.
    pub fn tokens(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Digit(d) => out.push(DIGIT0 + *d as usize),
            Expr::Op(op, args) => {
                out.push(OP0 + op);
                for a in args {
                    a.tokens(out);
                }
                out.push(CLOSE);
            }
        }
    }

    /// Pretty printer (debugging / docs).
    pub fn render(&self) -> String {
        match self {
            Expr::Digit(d) => d.to_string(),
            Expr::Op(op, args) => {
                let inner: Vec<String> = args.iter().map(Expr::render).collect();
                format!("[{} {} ]", OPS[*op], inner.join(" "))
            }
        }
    }
}

/// Sample a random expression with the given depth budget and a soft token
/// budget.
pub fn sample_expr(rng: &mut Rng, depth: usize, budget: usize) -> Expr {
    if depth == 0 || budget < 4 || rng.bernoulli(0.35) {
        return Expr::Digit(rng.below(10) as u8);
    }
    let op = rng.below(4);
    let n_args = 2 + rng.below(3);
    let mut args = Vec::with_capacity(n_args);
    let mut remaining = budget - 2;
    for _ in 0..n_args {
        let child = sample_expr(rng, depth - 1, remaining / 2);
        remaining = remaining.saturating_sub(child.token_len());
        args.push(child);
    }
    Expr::Op(op, args)
}

/// Generate a ListOps dataset at the given sequence length.
pub fn generate(n_train: usize, n_test: usize, seq_len: usize, seed: u64) -> ClsDataset {
    let mut rng = Rng::new(seed);
    let make = |rng: &mut Rng| -> ClsExample {
        loop {
            let expr = sample_expr(rng, 4, seq_len - 2);
            let len = expr.token_len();
            if len + 1 > seq_len {
                continue;
            }
            let mut tokens = vec![CLS_TOK];
            expr.tokens(&mut tokens);
            while tokens.len() < seq_len {
                tokens.push(PAD);
            }
            return ClsExample {
                tokens,
                label: expr.eval() as usize,
            };
        }
    };
    let train = (0..n_train).map(|_| make(&mut rng)).collect();
    let test = (0..n_test).map(|_| make(&mut rng)).collect();
    ClsDataset {
        train,
        test,
        vocab: VOCAB,
        classes: 10,
        seq_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_known_expressions() {
        let e = Expr::Op(
            0,
            vec![
                Expr::Digit(2),
                Expr::Digit(9),
                Expr::Op(1, vec![Expr::Digit(4), Expr::Digit(7)]),
                Expr::Digit(0),
            ],
        );
        // [MAX 2 9 [MIN 4 7] 0] = max(2, 9, 4, 0) = 9.
        assert_eq!(e.eval(), 9);
        assert_eq!(e.render(), "[MAX 2 9 [MIN 4 7 ] 0 ]");
    }

    #[test]
    fn sum_mod_10() {
        let e = Expr::Op(3, vec![Expr::Digit(7), Expr::Digit(8)]);
        assert_eq!(e.eval(), 5);
    }

    #[test]
    fn median_of_odd() {
        let e = Expr::Op(2, vec![Expr::Digit(1), Expr::Digit(9), Expr::Digit(5)]);
        assert_eq!(e.eval(), 5);
    }

    #[test]
    fn tokens_roundtrip_length() {
        let mut rng = Rng::new(1);
        for _ in 0..50 {
            let e = sample_expr(&mut rng, 3, 40);
            let mut toks = Vec::new();
            e.tokens(&mut toks);
            assert_eq!(toks.len(), e.token_len());
            // Balanced brackets: ops == closes.
            let ops = toks
                .iter()
                .filter(|&&t| (OP0..OP0 + 4).contains(&t))
                .count();
            let closes = toks.iter().filter(|&&t| t == CLOSE).count();
            assert_eq!(ops, closes);
        }
    }

    #[test]
    fn dataset_sane_and_balancedish() {
        let ds = generate(300, 50, 48, 3);
        ds.sanity_check();
        // All ten classes should appear in 300 samples.
        let mut seen = [false; 10];
        for e in &ds.train {
            seen[e.label] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 8, "{seen:?}");
    }
}
