//! Synthetic span-extraction QA (the SQuAD v1.1 substitute).
//!
//! Each example is `[CLS] <query-key> [SEP] context…` where the context is a
//! shuffled sequence of key–value records separated by filler tokens. The
//! answer is the value span of the queried key, so the model must attend
//! from the query position to the matching key *anywhere* in the context —
//! a genuinely long-range dependency, like locating an answer span in a
//! SQuAD paragraph. Metric: token-level F1 over the predicted span, SQuAD
//! style.

use dfss_tensor::Rng;

/// Special tokens.
pub const CLS: usize = 0;
pub const SEP: usize = 1;
pub const PAD: usize = 2;
const SPECIALS: usize = 3;

/// One QA example.
#[derive(Clone, Debug)]
pub struct QaExample {
    pub tokens: Vec<usize>,
    /// Answer span `[start, end]`, inclusive, in token positions.
    pub start: usize,
    pub end: usize,
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct QaConfig {
    pub seq_len: usize,
    pub n_keys: usize,
    pub n_values: usize,
    pub n_fillers: usize,
    /// Records (key–value pairs) per context.
    pub records: usize,
    /// Value-span length range (inclusive).
    pub span_min: usize,
    pub span_max: usize,
}

impl Default for QaConfig {
    fn default() -> Self {
        QaConfig {
            seq_len: 64,
            n_keys: 12,
            n_values: 12,
            n_fillers: 20,
            records: 6,
            span_min: 1,
            span_max: 3,
        }
    }
}

impl QaConfig {
    pub fn vocab(&self) -> usize {
        SPECIALS + self.n_keys + self.n_keys * self.n_values + self.n_fillers
    }

    fn key_token(&self, k: usize) -> usize {
        SPECIALS + k
    }

    /// Value tokens live in a per-key region (value `v` of key `k`): the
    /// answer span is recognisable by relating a context position to the
    /// query token — a long-range attention dependency that a two-layer
    /// model can actually learn at a few hundred training examples (the
    /// paper's BERT-scale substitute must be *learnable*, not just posed).
    fn value_token(&self, key: usize, v: usize) -> usize {
        SPECIALS + self.n_keys + key * self.n_values + v
    }

    fn filler_token(&self, f: usize) -> usize {
        SPECIALS + self.n_keys + self.n_keys * self.n_values + f
    }

    /// True if `token` is a value token of `key`.
    pub fn is_value_of(&self, token: usize, key: usize) -> bool {
        let lo = SPECIALS + self.n_keys + key * self.n_values;
        (lo..lo + self.n_values).contains(&token)
    }
}

/// Generate one example.
pub fn generate_example(cfg: &QaConfig, rng: &mut Rng) -> QaExample {
    // Distinct keys for the records.
    let keys = rng.sample_indices(cfg.n_keys, cfg.records.min(cfg.n_keys));
    let target = rng.below(keys.len());

    let mut tokens = vec![CLS, cfg.key_token(keys[target]), SEP];
    let mut answer = (0usize, 0usize);
    for (ri, &key) in keys.iter().enumerate() {
        // Random filler prefix.
        for _ in 0..rng.below(3) {
            if tokens.len() + cfg.span_max + 2 >= cfg.seq_len {
                break;
            }
            tokens.push(cfg.filler_token(rng.below(cfg.n_fillers)));
        }
        if tokens.len() + cfg.span_max + 1 >= cfg.seq_len {
            break;
        }
        tokens.push(cfg.key_token(key));
        let span_len = cfg.span_min + rng.below(cfg.span_max - cfg.span_min + 1);
        let start = tokens.len();
        for _ in 0..span_len {
            tokens.push(cfg.value_token(key, rng.below(cfg.n_values)));
        }
        if ri == target {
            answer = (start, tokens.len() - 1);
        }
    }
    while tokens.len() < cfg.seq_len {
        tokens.push(PAD);
    }
    tokens.truncate(cfg.seq_len);
    let (start, end) = answer;
    assert!(end < cfg.seq_len && start <= end, "answer span degenerate");
    QaExample { tokens, start, end }
}

/// Generate a dataset of `n` examples.
pub fn generate(cfg: &QaConfig, n: usize, seed: u64) -> Vec<QaExample> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| generate_example(cfg, &mut rng)).collect()
}

/// Token-level F1 between a predicted span and the gold span (SQuAD
/// convention: overlap / precision / recall on token positions).
pub fn span_f1(pred: (usize, usize), gold: (usize, usize)) -> f64 {
    let (ps, pe) = pred;
    let (gs, ge) = gold;
    if pe < ps || ge < gs {
        return 0.0;
    }
    let inter_lo = ps.max(gs);
    let inter_hi = pe.min(ge);
    let overlap = inter_hi.saturating_sub(inter_lo) + usize::from(inter_hi >= inter_lo);
    if overlap == 0 {
        return 0.0;
    }
    let p = overlap as f64 / (pe - ps + 1) as f64;
    let r = overlap as f64 / (ge - gs + 1) as f64;
    2.0 * p * r / (p + r)
}

/// Decode the best span from start/end logits (argmax with start ≤ end ≤
/// start + max_len, SQuAD style).
pub fn decode_span(start_logits: &[f32], end_logits: &[f32], max_span: usize) -> (usize, usize) {
    let n = start_logits.len();
    let mut best = (0usize, 0usize, f32::NEG_INFINITY);
    for s in 0..n {
        for e in s..(s + max_span).min(n) {
            let score = start_logits[s] + end_logits[e];
            if score > best.2 {
                best = (s, e, score);
            }
        }
    }
    (best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_well_formed() {
        let cfg = QaConfig::default();
        let data = generate(&cfg, 50, 1);
        for ex in &data {
            assert_eq!(ex.tokens.len(), cfg.seq_len);
            assert!(ex.start <= ex.end);
            assert!(ex.end < cfg.seq_len);
            // The answer span consists of value tokens of the queried key.
            let qkey_tok = ex.tokens[1];
            let qkey = qkey_tok - SPECIALS;
            for p in ex.start..=ex.end {
                assert!(
                    cfg.is_value_of(ex.tokens[p], qkey),
                    "position {p} token {} not a value of key {qkey}",
                    ex.tokens[p]
                );
            }
            // The queried key appears in the context (after SEP).
            let qkey = ex.tokens[1];
            assert!(ex.tokens[3..].contains(&qkey), "query key missing");
        }
    }

    #[test]
    fn generation_deterministic() {
        let cfg = QaConfig::default();
        let a = generate(&cfg, 5, 7);
        let b = generate(&cfg, 5, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!((x.start, x.end), (y.start, y.end));
        }
    }

    #[test]
    fn f1_exact_match_is_one() {
        assert_eq!(span_f1((3, 5), (3, 5)), 1.0);
    }

    #[test]
    fn f1_disjoint_is_zero() {
        assert_eq!(span_f1((0, 2), (5, 7)), 0.0);
    }

    #[test]
    fn f1_partial_overlap() {
        // pred [2,4], gold [3,6]: overlap 2, p=2/3, r=2/4 → F1 = 4/7.
        let f1 = span_f1((2, 4), (3, 6));
        assert!((f1 - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn decode_picks_consistent_span() {
        let start = vec![0.0, 5.0, 0.0, 0.0];
        let end = vec![0.0, 0.0, 5.0, 0.0];
        assert_eq!(decode_span(&start, &end, 4), (1, 2));
        // End before start is never selected.
        let start = vec![0.0, 0.0, 5.0, 0.0];
        let end = vec![0.0, 5.0, 0.0, 4.0];
        let (s, e) = decode_span(&start, &end, 4);
        assert!(s <= e);
    }
}
