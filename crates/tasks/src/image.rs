//! Pixel-sequence image classification (the LRA "Image" substitute).
//!
//! Procedurally generated grayscale images are flattened row-major into a
//! token sequence of quantised intensities (like sCIFAR in LRA). The classes
//! are global geometric patterns — horizontal stripes, vertical stripes,
//! diagonals, checkerboard, centre blob, corner blob — so a vertical-stripe
//! detector, for example, must relate pixels `width` positions apart: a
//! long-range dependency by construction.

use crate::{ClsDataset, ClsExample};
use dfss_tensor::Rng;

/// Intensity quantisation levels (the token vocabulary).
pub const LEVELS: usize = 8;

/// Number of geometric pattern classes the generator knows.
pub const MAX_CLASSES: usize = 6;

/// Typed error for an unsatisfiable [`ImageConfig`] — dataset generation is
/// reachable from serving/benchmark front doors, so a bad request must come
/// back as a `Result`, not abort the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedClasses {
    /// Classes the config asked for.
    pub requested: usize,
    /// Classes the generator supports ([`MAX_CLASSES`]).
    pub supported: usize,
}

impl std::fmt::Display for UnsupportedClasses {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "image task supports at most {} classes, config asked for {}",
            self.supported, self.requested
        )
    }
}

impl std::error::Error for UnsupportedClasses {}

#[derive(Clone, Copy, Debug)]
pub struct ImageConfig {
    /// Image edge; the sequence length is `edge²`.
    pub edge: usize,
    pub classes: usize,
    /// Additive uniform noise amplitude in intensity levels.
    pub noise: f64,
}

impl Default for ImageConfig {
    fn default() -> Self {
        ImageConfig {
            edge: 16,
            classes: 6,
            noise: 1.0,
        }
    }
}

/// Pattern intensity in [0, 1] for class `c < MAX_CLASSES` at pixel
/// (r, col). Infallible: [`generate`] validates the class count once up
/// front (the typed library boundary), so the per-pixel hot loop carries no
/// error plumbing.
fn pattern(c: usize, r: usize, col: usize, edge: usize, phase: usize) -> f64 {
    let stripes = |x: usize| ((x + phase) / 2 % 2) as f64;
    match c {
        0 => stripes(r),                                       // horizontal stripes
        1 => stripes(col),                                     // vertical stripes
        2 => stripes(r + col),                                 // diagonal stripes
        3 => (((r + phase) % 2) ^ ((col + phase) % 2)) as f64, // checkerboard
        4 => {
            // centre blob
            let dr = r as f64 - edge as f64 / 2.0;
            let dc = col as f64 - edge as f64 / 2.0;
            let d2 = dr * dr + dc * dc;
            (-d2 / (edge as f64)).exp()
        }
        5 => {
            // corner blob (phase picks the corner)
            let (cr, cc) = match phase % 4 {
                0 => (0.0, 0.0),
                1 => (0.0, (edge - 1) as f64),
                2 => ((edge - 1) as f64, 0.0),
                _ => ((edge - 1) as f64, (edge - 1) as f64),
            };
            let dr = r as f64 - cr;
            let dc = col as f64 - cc;
            (-(dr * dr + dc * dc) / (edge as f64)).exp()
        }
        _ => unreachable!("generate() validates classes <= MAX_CLASSES"),
    }
}

/// Generate the dataset. Rejects configs asking for more than
/// [`MAX_CLASSES`] classes with a typed error.
pub fn generate(
    cfg: &ImageConfig,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> Result<ClsDataset, UnsupportedClasses> {
    if cfg.classes > MAX_CLASSES {
        return Err(UnsupportedClasses {
            requested: cfg.classes,
            supported: MAX_CLASSES,
        });
    }
    let mut rng = Rng::new(seed);
    let make = |rng: &mut Rng| -> ClsExample {
        let label = rng.below(cfg.classes);
        let phase = rng.below(4);
        let mut tokens = Vec::with_capacity(cfg.edge * cfg.edge);
        for r in 0..cfg.edge {
            for c in 0..cfg.edge {
                let base = pattern(label, r, c, cfg.edge, phase) * (LEVELS - 1) as f64;
                let noisy = base + (rng.uniform() * 2.0 - 1.0) * cfg.noise;
                let level = noisy.round().clamp(0.0, (LEVELS - 1) as f64) as usize;
                tokens.push(level);
            }
        }
        ClsExample { tokens, label }
    };
    let train = (0..n_train).map(|_| make(&mut rng)).collect();
    let test = (0..n_test).map(|_| make(&mut rng)).collect();
    Ok(ClsDataset {
        train,
        test,
        vocab: LEVELS,
        classes: cfg.classes,
        seq_len: cfg.edge * cfg.edge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_sane() {
        let cfg = ImageConfig {
            edge: 8,
            classes: 4,
            noise: 0.5,
        };
        let ds = generate(&cfg, 100, 20, 1).unwrap();
        ds.sanity_check();
        assert_eq!(ds.seq_len, 64);
        assert_eq!(ds.vocab, LEVELS);
    }

    #[test]
    fn stripes_have_periodic_structure() {
        // Horizontal stripes: rows constant; vertical: columns constant.
        let cfg = ImageConfig {
            edge: 8,
            classes: 2,
            noise: 0.0,
        };
        let ds = generate(&cfg, 50, 0, 2).unwrap();
        for ex in &ds.train {
            let edge = 8;
            if ex.label == 0 {
                for r in 0..edge {
                    let row = &ex.tokens[r * edge..(r + 1) * edge];
                    assert!(row.iter().all(|&t| t == row[0]), "h-stripe row varies");
                }
            } else {
                for c in 0..edge {
                    let col: Vec<usize> = (0..edge).map(|r| ex.tokens[r * edge + c]).collect();
                    assert!(col.iter().all(|&t| t == col[0]), "v-stripe col varies");
                }
            }
        }
    }

    #[test]
    fn too_many_classes_is_a_typed_error() {
        let cfg = ImageConfig {
            edge: 4,
            classes: 9,
            noise: 0.0,
        };
        let err = generate(&cfg, 1, 0, 1).unwrap_err();
        assert_eq!(
            err,
            UnsupportedClasses {
                requested: 9,
                supported: MAX_CLASSES
            }
        );
        assert!(err.to_string().contains("at most 6"));
    }

    #[test]
    fn classes_distinguishable_without_noise() {
        let cfg = ImageConfig {
            edge: 8,
            classes: 6,
            noise: 0.0,
        };
        let ds = generate(&cfg, 120, 0, 3).unwrap();
        // Mean-intensity profiles must differ between stripe classes and
        // blob classes.
        let mean =
            |ex: &ClsExample| ex.tokens.iter().sum::<usize>() as f64 / ex.tokens.len() as f64;
        let stripe: Vec<f64> = ds.train.iter().filter(|e| e.label == 0).map(mean).collect();
        let blob: Vec<f64> = ds.train.iter().filter(|e| e.label == 4).map(mean).collect();
        if !stripe.is_empty() && !blob.is_empty() {
            let ms = stripe.iter().sum::<f64>() / stripe.len() as f64;
            let mb = blob.iter().sum::<f64>() / blob.len() as f64;
            assert!((ms - mb).abs() > 0.5, "stripes {ms} vs blob {mb}");
        }
    }
}
