//! Dual-document retrieval (the LRA "Retrieval" substitute).
//!
//! Two documents are concatenated `[CLS] docA [SEP] docB`; the label says
//! whether they were drawn from the same topic. Topics are token
//! distributions; deciding the match requires comparing statistics *across*
//! the `[SEP]`, i.e. attention spanning the two halves — structurally the
//! same demand the byte-level AAN matching task makes.

use crate::{ClsDataset, ClsExample};
use dfss_tensor::Rng;

pub const PAD: usize = 0;
pub const CLS_TOK: usize = 1;
pub const SEP: usize = 2;
const SPECIALS: usize = 3;

#[derive(Clone, Copy, Debug)]
pub struct RetrievalConfig {
    pub topics: usize,
    pub tokens_per_topic: usize,
    pub shared_vocab: usize,
    pub seq_len: usize,
    /// Fraction of document tokens drawn from the topic vocabulary (the
    /// rest is shared noise).
    pub topic_strength: f64,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            topics: 8,
            tokens_per_topic: 6,
            shared_vocab: 30,
            seq_len: 64,
            topic_strength: 0.35,
        }
    }
}

impl RetrievalConfig {
    pub fn vocab(&self) -> usize {
        SPECIALS + self.shared_vocab + self.topics * self.tokens_per_topic
    }

    fn topic_token(&self, topic: usize, i: usize) -> usize {
        SPECIALS + self.shared_vocab + topic * self.tokens_per_topic + i
    }

    fn shared_token(&self, i: usize) -> usize {
        SPECIALS + i
    }
}

fn sample_doc(cfg: &RetrievalConfig, topic: usize, len: usize, rng: &mut Rng) -> Vec<usize> {
    (0..len)
        .map(|_| {
            if rng.bernoulli(cfg.topic_strength) {
                cfg.topic_token(topic, rng.below(cfg.tokens_per_topic))
            } else {
                cfg.shared_token(rng.below(cfg.shared_vocab))
            }
        })
        .collect()
}

/// Generate the dataset (label 1 = same topic, 0 = different).
pub fn generate(cfg: &RetrievalConfig, n_train: usize, n_test: usize, seed: u64) -> ClsDataset {
    let mut rng = Rng::new(seed);
    let doc_len = (cfg.seq_len - 2) / 2;
    let make = |rng: &mut Rng| -> ClsExample {
        let same = rng.bernoulli(0.5);
        let t1 = rng.below(cfg.topics);
        let t2 = if same {
            t1
        } else {
            (t1 + 1 + rng.below(cfg.topics - 1)) % cfg.topics
        };
        let mut tokens = vec![CLS_TOK];
        tokens.extend(sample_doc(cfg, t1, doc_len, rng));
        tokens.push(SEP);
        tokens.extend(sample_doc(cfg, t2, doc_len, rng));
        while tokens.len() < cfg.seq_len {
            tokens.push(PAD);
        }
        tokens.truncate(cfg.seq_len);
        ClsExample {
            tokens,
            label: usize::from(same),
        }
    };
    let train = (0..n_train).map(|_| make(&mut rng)).collect();
    let test = (0..n_test).map(|_| make(&mut rng)).collect();
    ClsDataset {
        train,
        test,
        vocab: cfg.vocab(),
        classes: 2,
        seq_len: cfg.seq_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_sane() {
        let cfg = RetrievalConfig::default();
        let ds = generate(&cfg, 100, 20, 1);
        ds.sanity_check();
    }

    #[test]
    fn labels_roughly_balanced() {
        let cfg = RetrievalConfig::default();
        let ds = generate(&cfg, 400, 0, 2);
        let pos = ds.train.iter().filter(|e| e.label == 1).count();
        assert!(pos > 140 && pos < 260, "positives {pos}");
    }

    #[test]
    fn same_topic_docs_share_topic_tokens() {
        let cfg = RetrievalConfig::default();
        let ds = generate(&cfg, 200, 0, 3);
        let topic_of = |t: usize| -> Option<usize> {
            if t >= SPECIALS + cfg.shared_vocab {
                Some((t - SPECIALS - cfg.shared_vocab) / cfg.tokens_per_topic)
            } else {
                None
            }
        };
        for ex in &ds.train {
            let sep = ex.tokens.iter().position(|&t| t == SEP).expect("sep");
            let ta: Vec<usize> = ex.tokens[1..sep]
                .iter()
                .filter_map(|&t| topic_of(t))
                .collect();
            let tb: Vec<usize> = ex.tokens[sep + 1..]
                .iter()
                .filter_map(|&t| topic_of(t))
                .collect();
            if ta.is_empty() || tb.is_empty() {
                continue; // low-signal sample; allowed
            }
            // Majority topic per half.
            let maj = |v: &[usize]| {
                let mut counts = std::collections::HashMap::new();
                for &t in v {
                    *counts.entry(t).or_insert(0usize) += 1;
                }
                counts.into_iter().max_by_key(|&(_, c)| c).map(|(t, _)| t)
            };
            if let (Some(a), Some(b)) = (maj(&ta), maj(&tb)) {
                if ex.label == 1 {
                    assert_eq!(a, b, "same-topic halves disagree");
                }
            }
        }
    }
}
