//! The §5.1 training / evaluation protocol.
//!
//! Building blocks: training loops and metric evaluation for each task
//! family, plus the paper's pretrain-dense → swap-mechanism → (optionally)
//! finetune recipe. The harness binaries in `dfss-bench` compose these into
//! the exact table rows.

use crate::qa::{decode_span, span_f1, QaExample};
use crate::{mlm::MlmExample, ClsExample};
use dfss_tensor::Rng;
use dfss_transformer::heads::{ClassifierHead, MlmHead, SpanHead};
use dfss_transformer::loss::{cross_entropy_row, cross_entropy_rows};
use dfss_transformer::param::AdamConfig;
use dfss_transformer::trainer::{epoch_batches, optimize, TrainReport};
use dfss_transformer::Encoder;

/// Training specification.
#[derive(Clone, Copy, Debug)]
pub struct TrainSpec {
    pub epochs: usize,
    pub batch: usize,
    pub adam: AdamConfig,
    pub shuffle_seed: u64,
}

impl TrainSpec {
    pub fn quick(epochs: usize, n_examples: usize, batch: usize) -> TrainSpec {
        let steps = (n_examples * epochs).div_ceil(batch.max(1)) + 1;
        TrainSpec {
            epochs,
            batch,
            adam: AdamConfig {
                lr: 1e-3,
                warmup_steps: steps / 10 + 1,
                total_steps: steps,
                ..Default::default()
            },
            shuffle_seed: 0xD_F55,
        }
    }
}

/// Train a classifier (CLS pooling) on a classification dataset.
pub fn train_classifier(
    enc: &mut Encoder,
    head: &mut ClassifierHead,
    data: &[ClsExample],
    spec: &TrainSpec,
) -> TrainReport {
    let mut report = TrainReport::default();
    let mut rng = Rng::new(spec.shuffle_seed);
    let mut step = 0usize;
    for _epoch in 0..spec.epochs {
        for batch in epoch_batches(data.len(), spec.batch, &mut rng) {
            let mut batch_loss = 0.0f64;
            for &i in &batch {
                let ex = &data[i];
                let h = enc.forward(&ex.tokens, true);
                let logits = head.forward(&h, true);
                let (loss, mut dlogits) = cross_entropy_row(&logits, ex.label);
                let inv = 1.0 / batch.len() as f32;
                dlogits.iter_mut().for_each(|d| *d *= inv);
                let dh = head.backward(&dlogits);
                enc.backward(&dh);
                batch_loss += loss as f64;
            }
            step += 1;
            let mut params = enc.params();
            params.extend(head.params());
            optimize(params, &spec.adam, step);
            report.push(batch_loss / batch.len() as f64);
        }
    }
    report
}

/// Classification accuracy.
pub fn eval_classifier(enc: &mut Encoder, head: &mut ClassifierHead, data: &[ClsExample]) -> f64 {
    let mut correct = 0usize;
    for ex in data {
        let h = enc.forward(&ex.tokens, false);
        let logits = head.forward(&h, false);
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty logits");
        correct += usize::from(pred == ex.label);
    }
    correct as f64 / data.len() as f64
}

/// Train a span-extraction model (QA).
pub fn train_qa(
    enc: &mut Encoder,
    head: &mut SpanHead,
    data: &[QaExample],
    spec: &TrainSpec,
) -> TrainReport {
    let mut report = TrainReport::default();
    let mut rng = Rng::new(spec.shuffle_seed);
    let mut step = 0usize;
    for _epoch in 0..spec.epochs {
        for batch in epoch_batches(data.len(), spec.batch, &mut rng) {
            let mut batch_loss = 0.0f64;
            for &i in &batch {
                let ex = &data[i];
                let h = enc.forward(&ex.tokens, true);
                let (s_logits, e_logits) = head.forward(&h, true);
                let (ls, mut ds) = cross_entropy_row(&s_logits, ex.start);
                let (le, mut de) = cross_entropy_row(&e_logits, ex.end);
                let inv = 0.5 / batch.len() as f32;
                ds.iter_mut().for_each(|d| *d *= inv);
                de.iter_mut().for_each(|d| *d *= inv);
                let dh = head.backward(&ds, &de);
                enc.backward(&dh);
                batch_loss += 0.5 * (ls + le) as f64;
            }
            step += 1;
            let mut params = enc.params();
            params.extend(head.params());
            optimize(params, &spec.adam, step);
            report.push(batch_loss / batch.len() as f64);
        }
    }
    report
}

/// Mean token-level F1 over a QA dataset (the paper's SQuAD metric, ×100).
pub fn eval_qa_f1(
    enc: &mut Encoder,
    head: &mut SpanHead,
    data: &[QaExample],
    max_span: usize,
) -> f64 {
    let mut total = 0.0f64;
    for ex in data {
        let h = enc.forward(&ex.tokens, false);
        let (s_logits, e_logits) = head.forward(&h, false);
        let pred = decode_span(&s_logits, &e_logits, max_span);
        total += span_f1(pred, (ex.start, ex.end));
    }
    100.0 * total / data.len() as f64
}

/// Train a masked-LM model.
pub fn train_mlm(
    enc: &mut Encoder,
    head: &mut MlmHead,
    data: &[MlmExample],
    spec: &TrainSpec,
) -> TrainReport {
    let mut report = TrainReport::default();
    let mut rng = Rng::new(spec.shuffle_seed);
    let mut step = 0usize;
    for _epoch in 0..spec.epochs {
        for batch in epoch_batches(data.len(), spec.batch, &mut rng) {
            let mut batch_loss = 0.0f64;
            for &i in &batch {
                let ex = &data[i];
                let h = enc.forward(&ex.tokens, true);
                let logits = head.forward(&h, true);
                let (loss, mut dlogits) = cross_entropy_rows(&logits, &ex.targets);
                let inv = 1.0 / batch.len() as f32;
                dlogits.as_mut_slice().iter_mut().for_each(|d| *d *= inv);
                let dh = head.backward(&dlogits);
                enc.backward(&dh);
                batch_loss += loss as f64;
            }
            step += 1;
            let mut params = enc.params();
            params.extend(head.params());
            optimize(params, &spec.adam, step);
            report.push(batch_loss / batch.len() as f64);
        }
    }
    report
}

/// Masked-LM perplexity over a dataset.
pub fn eval_mlm_ppl(enc: &mut Encoder, head: &mut MlmHead, data: &[MlmExample]) -> f64 {
    let mut total_ce = 0.0f64;
    let mut count = 0usize;
    for ex in data {
        let h = enc.forward(&ex.tokens, false);
        let logits = head.forward(&h, false);
        for &(pos, tok) in &ex.targets {
            let (loss, _) = cross_entropy_row(logits.row(pos), tok);
            total_ce += loss as f64;
            count += 1;
        }
    }
    (total_ce / count as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{listops, qa, textcls};
    use dfss_transformer::{AttnKind, EncoderConfig};

    fn tiny_encoder(vocab: usize, max_len: usize, kind: AttnKind, seed: u64) -> Encoder {
        let mut rng = Rng::new(seed);
        let cfg = EncoderConfig {
            vocab,
            max_len,
            d_model: 32,
            heads: 2,
            d_ffn: 64,
            layers: 2,
            kind,
        };
        Encoder::new(cfg, &mut rng)
    }

    #[test]
    fn classifier_learns_textcls() {
        let cfg = textcls::TextClsConfig {
            seq_len: 32,
            ..Default::default()
        };
        let ds = textcls::generate(&cfg, 240, 80, 1);
        let mut enc = tiny_encoder(ds.vocab, ds.seq_len, AttnKind::Full, 2);
        let mut rng = Rng::new(3);
        let mut head = ClassifierHead::new(32, ds.classes, &mut rng);
        let spec = TrainSpec::quick(6, ds.train.len(), 16);
        let report = train_classifier(&mut enc, &mut head, &ds.train, &spec);
        assert!(
            report.improved(),
            "loss did not improve: {:?}",
            report.recent_mean(5)
        );
        let acc = eval_classifier(&mut enc, &mut head, &ds.test);
        assert!(acc > 0.5, "accuracy {acc} barely above chance (0.25)");
    }

    #[test]
    fn qa_learns_span_extraction() {
        let qcfg = qa::QaConfig {
            seq_len: 32,
            n_keys: 6,
            n_values: 6,
            n_fillers: 8,
            records: 3,
            span_min: 1,
            span_max: 3,
        };
        let train = qa::generate(&qcfg, 500, 10);
        let test = qa::generate(&qcfg, 80, 11);
        let mut enc = tiny_encoder(qcfg.vocab(), qcfg.seq_len, AttnKind::Full, 4);
        let mut rng = Rng::new(5);
        let mut head = SpanHead::new(32, &mut rng);
        let mut spec = TrainSpec::quick(12, train.len(), 16);
        spec.adam.lr = 2e-3;
        let report = train_qa(&mut enc, &mut head, &train, &spec);
        assert!(report.improved());
        let f1 = eval_qa_f1(&mut enc, &mut head, &test, qcfg.span_max);
        // Random span guessing scores < 10 F1; learning must beat it well.
        // (The bench harness trains larger models for the table numbers.)
        assert!(f1 > 25.0, "F1 {f1}");
    }

    #[test]
    fn listops_trains_above_chance() {
        let ds = listops::generate(300, 80, 32, 6);
        let mut enc = tiny_encoder(ds.vocab, ds.seq_len, AttnKind::Full, 7);
        let mut rng = Rng::new(8);
        let mut head = ClassifierHead::new(32, ds.classes, &mut rng);
        let spec = TrainSpec::quick(5, ds.train.len(), 16);
        let _ = train_classifier(&mut enc, &mut head, &ds.train, &spec);
        let acc = eval_classifier(&mut enc, &mut head, &ds.test);
        assert!(acc > 0.15, "accuracy {acc} vs chance 0.10");
    }

    #[test]
    fn dfss_swap_protocol_runs() {
        // Pretrain dense, swap to Dfss without finetuning — accuracy should
        // not collapse (the Table 1 phenomenon, in miniature).
        let cfg = textcls::TextClsConfig {
            seq_len: 32,
            ..Default::default()
        };
        let ds = textcls::generate(&cfg, 240, 60, 21);
        let mut enc = tiny_encoder(ds.vocab, ds.seq_len, AttnKind::Full, 22);
        let mut rng = Rng::new(23);
        let mut head = ClassifierHead::new(32, ds.classes, &mut rng);
        let spec = TrainSpec::quick(6, ds.train.len(), 16);
        let _ = train_classifier(&mut enc, &mut head, &ds.train, &spec);
        let dense_acc = eval_classifier(&mut enc, &mut head, &ds.test);
        enc.set_attention(AttnKind::Nm(dfss_nmsparse::NmPattern::P1_2));
        let sparse_acc = eval_classifier(&mut enc, &mut head, &ds.test);
        assert!(
            sparse_acc > dense_acc - 0.35,
            "swap collapsed: dense {dense_acc} sparse {sparse_acc}"
        );
    }
}
