//! Byte-level text classification (the LRA "Text" substitute).
//!
//! Each class is defined by a pair of signature tokens that must *co-occur*
//! — planted far apart in a stream of shared filler text. A bag-of-words
//! model cannot solve it (individual signature tokens appear in other
//! classes too); the classifier must attend between the two distant
//! positions.

use crate::{ClsDataset, ClsExample};
use dfss_tensor::rng::ZipfTable;
use dfss_tensor::Rng;

pub const PAD: usize = 0;
pub const CLS_TOK: usize = 1;
const SPECIALS: usize = 2;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TextClsConfig {
    pub classes: usize,
    pub seq_len: usize,
    pub filler_vocab: usize,
    pub sig_vocab: usize,
}

impl Default for TextClsConfig {
    fn default() -> Self {
        TextClsConfig {
            classes: 4,
            seq_len: 64,
            filler_vocab: 40,
            sig_vocab: 6,
        }
    }
}

impl TextClsConfig {
    pub fn vocab(&self) -> usize {
        SPECIALS + self.filler_vocab + self.sig_vocab
    }

    fn sig_token(&self, i: usize) -> usize {
        SPECIALS + self.filler_vocab + i
    }

    /// The signature token *pair* of a class: class c ↔ (s_a, s_b) with the
    /// pairs chosen so every token participates in several classes (so
    /// single-token shortcuts fail).
    pub fn class_pair(&self, c: usize) -> (usize, usize) {
        let a = c % self.sig_vocab;
        let b = (c + 1 + c / self.sig_vocab) % self.sig_vocab;
        (self.sig_token(a), self.sig_token(b))
    }
}

/// Generate the dataset.
pub fn generate(cfg: &TextClsConfig, n_train: usize, n_test: usize, seed: u64) -> ClsDataset {
    let mut rng = Rng::new(seed);
    let zipf = ZipfTable::new(cfg.filler_vocab, 1.1);
    let make = |rng: &mut Rng| -> ClsExample {
        let label = rng.below(cfg.classes);
        let (sig_a, sig_b) = cfg.class_pair(label);
        let mut tokens = vec![CLS_TOK];
        while tokens.len() < cfg.seq_len {
            tokens.push(SPECIALS + zipf.sample(rng));
        }
        tokens.truncate(cfg.seq_len);
        // Plant the signature pair far apart (first vs second half), plus a
        // decoy token from a *different* class in the middle so co-occurrence
        // is required.
        let first = 1 + rng.below(cfg.seq_len / 3);
        let second = 2 * cfg.seq_len / 3 + rng.below(cfg.seq_len / 3 - 1);
        tokens[first] = sig_a;
        tokens[second] = sig_b;
        let decoy_class = (label + 1 + rng.below(cfg.classes - 1)) % cfg.classes;
        let (da, _) = cfg.class_pair(decoy_class);
        let mid = cfg.seq_len / 2;
        tokens[mid] = da;
        ClsExample { tokens, label }
    };
    let train = (0..n_train).map(|_| make(&mut rng)).collect();
    let test = (0..n_test).map(|_| make(&mut rng)).collect();
    ClsDataset {
        train,
        test,
        vocab: cfg.vocab(),
        classes: cfg.classes,
        seq_len: cfg.seq_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_sane() {
        let cfg = TextClsConfig::default();
        let ds = generate(&cfg, 200, 40, 1);
        ds.sanity_check();
    }

    #[test]
    fn signature_pair_planted() {
        let cfg = TextClsConfig::default();
        let ds = generate(&cfg, 50, 0, 2);
        for ex in &ds.train {
            let (a, b) = cfg.class_pair(ex.label);
            assert!(ex.tokens.contains(&a), "missing sig_a");
            assert!(ex.tokens.contains(&b), "missing sig_b");
        }
    }

    #[test]
    fn pairs_are_distinct_across_classes() {
        let cfg = TextClsConfig::default();
        let mut pairs = std::collections::HashSet::new();
        for c in 0..cfg.classes {
            pairs.insert(cfg.class_pair(c));
        }
        assert_eq!(pairs.len(), cfg.classes);
    }

    #[test]
    fn signatures_far_apart() {
        let cfg = TextClsConfig::default();
        let ds = generate(&cfg, 50, 0, 3);
        for ex in &ds.train {
            let (a, b) = cfg.class_pair(ex.label);
            let pa = ex.tokens.iter().position(|&t| t == a).expect("sig_a");
            let pb = ex.tokens.iter().rposition(|&t| t == b).expect("sig_b");
            assert!(pb > pa + cfg.seq_len / 4, "pair not long-range: {pa} {pb}");
        }
    }
}
