//! Criterion end-to-end attention benchmarks (real CPU time of the executed
//! simulator kernels) for the headline mechanisms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfss_core::sparse_baselines::TopKAttention;
use dfss_core::{Attention, DfssAttention, FullAttention};
use dfss_kernels::GpuCtx;
use dfss_nmsparse::NmPattern;
use dfss_tensor::{Matrix, Rng};
use std::hint::black_box;

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_e2e");
    for n in [256usize, 1024] {
        let mut rng = Rng::new(n as u64);
        let q = Matrix::<f32>::random_normal(n, 64, 0.0, 1.0, &mut rng);
        let k = Matrix::<f32>::random_normal(n, 64, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(n, 64, 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(FullAttention.forward(&mut ctx, &q, &k, &v))
            })
        });
        group.bench_with_input(BenchmarkId::new("dfss_1_2", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(DfssAttention::new(NmPattern::P1_2).forward(&mut ctx, &q, &k, &v))
            })
        });
        group.bench_with_input(BenchmarkId::new("topk_same_density", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(TopKAttention::with_density(n, 0.5).forward(&mut ctx, &q, &k, &v))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
