//! Criterion micro-benchmarks of the device kernels (real CPU execution
//! time, not simulated latency): GEMM, fused vs unfused SDDMM (the zero-
//! overhead ablation), compressed vs dense softmax, N:M vs CSR SpMM, and
//! the top-k selection the explicit baseline pays for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfss_gpusim::Stage;
use dfss_kernels::{gemm, sddmm, softmax, spmm, topk, GpuCtx};
use dfss_nmsparse::{Csr, NmCompressed, NmPattern};
use dfss_tensor::{Matrix, Rng};
use std::hint::black_box;

fn inputs(n: usize, d: usize) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    let mut rng = Rng::new(n as u64);
    (
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
    )
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nt_qk");
    for n in [256usize, 1024] {
        let (q, k, _) = inputs(n, 64);
        group.throughput(Throughput::Elements((n * n * 64) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(gemm::gemm_nt(&mut ctx, Stage::Qk, &q, &k, 0.125))
            })
        });
    }
    group.finish();
}

fn bench_sddmm_fused_vs_unfused(c: &mut Criterion) {
    let mut group = c.benchmark_group("sddmm_prune");
    for n in [256usize, 1024] {
        let (q, k, _) = inputs(n, 64);
        group.throughput(Throughput::Elements((n * n * 64) as u64));
        group.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(sddmm::sddmm_nm_fused(
                    &mut ctx,
                    &q,
                    &k,
                    0.125,
                    NmPattern::P1_2,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("unfused", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(sddmm::sddmm_nm_unfused(
                    &mut ctx,
                    &q,
                    &k,
                    0.125,
                    NmPattern::P1_2,
                ))
            })
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    for n in [256usize, 1024] {
        let mut rng = Rng::new(9);
        let scores = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&scores, NmPattern::P1_2);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(softmax::softmax_dense(&mut ctx, &scores))
            })
        });
        group.throughput(Throughput::Elements((n * n / 2) as u64));
        group.bench_with_input(BenchmarkId::new("nm_compressed", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                let mut c = comp.clone();
                softmax::softmax_nm(&mut ctx, &mut c);
                black_box(c)
            })
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_av");
    for n in [256usize, 1024] {
        let mut rng = Rng::new(11);
        let scores = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(n, 64, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&scores, NmPattern::P1_2);
        let csr = Csr::from_dense_topk(&scores, n / 2);
        group.throughput(Throughput::Elements((n * n / 2 * 64) as u64));
        group.bench_with_input(BenchmarkId::new("nm_sparse_tc", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(spmm::spmm_nm(&mut ctx, &comp, &v))
            })
        });
        group.bench_with_input(BenchmarkId::new("csr_same_density", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(spmm::spmm_csr(&mut ctx, &csr, &v))
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_gemm", n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(gemm::gemm_nn(&mut ctx, Stage::Av, &scores, &v))
            })
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_select_encode");
    for n in [256usize, 1024] {
        let mut rng = Rng::new(13);
        let scores = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut ctx = GpuCtx::a100();
                black_box(topk::topk_csr(&mut ctx, &scores, n / 20))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_sddmm_fused_vs_unfused,
    bench_softmax,
    bench_spmm,
    bench_topk
);
criterion_main!(benches);
