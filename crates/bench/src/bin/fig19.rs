//! Figure 19 (A.8): visualise first-layer attention weights of the same
//! input under dense, 1:2 and 2:4 attention.
//!
//! Run: `cargo run -p dfss-bench --release --bin fig19`

use dfss_bench::train::pretrain_qa;
use dfss_core::visualize::{ascii_heatmap, to_csv, zero_fraction};
use dfss_nmsparse::NmPattern;
use dfss_tensor::Matrix;
use dfss_transformer::AttnKind;

fn main() {
    let quick = dfss_bench::quick();
    let (mut model, _train, test) = pretrain_qa(9, quick);
    let ex = &test[0];

    let mut grab = |kind: AttnKind| -> Vec<Matrix<f32>> {
        model.enc.set_attention(kind);
        let _ = model.enc.forward(&ex.tokens, true);
        model.enc.layers[0]
            .mha
            .last_attention_maps()
            .into_iter()
            .cloned()
            .collect()
    };

    let dense = grab(AttnKind::Full);
    let nm12 = grab(AttnKind::Nm(NmPattern::P1_2));
    let nm24 = grab(AttnKind::Nm(NmPattern::P2_4));

    for (head, ((d, s12), s24)) in dense.iter().zip(&nm12).zip(&nm24).enumerate() {
        println!("=== layer 0, head {head} ===");
        println!(
            "Dense (zero fraction {:.2}):\n{}",
            zero_fraction(d),
            ascii_heatmap(d, 32)
        );
        println!(
            "Dfss 1:2 (zero fraction {:.2}):\n{}",
            zero_fraction(s12),
            ascii_heatmap(s12, 32)
        );
        println!(
            "Dfss 2:4 (zero fraction {:.2}):\n{}",
            zero_fraction(s24),
            ascii_heatmap(s24, 32)
        );
        let dir = dfss_bench::results_dir();
        std::fs::write(dir.join(format!("fig19_head{head}_dense.csv")), to_csv(d)).unwrap();
        std::fs::write(dir.join(format!("fig19_head{head}_1_2.csv")), to_csv(s12)).unwrap();
        std::fs::write(dir.join(format!("fig19_head{head}_2_4.csv")), to_csv(s24)).unwrap();
    }

    // The quantitative claim behind the picture: the sparse weights track
    // the dense ones on the kept entries (slightly amplified by the
    // halved softmax denominator).
    let mut cos_acc = 0.0;
    for (d, s) in dense.iter().zip(&nm12) {
        let dot: f64 = d
            .as_slice()
            .iter()
            .zip(s.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        cos_acc += dot / (d.frobenius_norm() * s.frobenius_norm()).max(1e-12);
    }
    println!(
        "mean cosine similarity dense vs 1:2 attention maps: {:.4}",
        cos_acc / dense.len() as f64
    );
    println!("[saved results/fig19_head*.csv]");
}
