//! Figure 15: end-to-end latency breakdown (Attention vs Others) under
//! bfloat16, dense vs Dfss.
//!
//! Run: `cargo run -p dfss-bench --release --bin fig15`

use dfss_bench::Report;
use dfss_core::model::{simulate_encoder, SimModelConfig};
use dfss_core::{Attention, DfssAttention, FullAttention};
use dfss_gpusim::Stage;
use dfss_kernels::GpuCtx;
use dfss_tensor::Bf16;

fn main() {
    if dfss_bench::handle_report_check("fig15_e2e_breakdown") {
        return;
    }
    let (heads_list, hiddens, seqs): (Vec<usize>, Vec<usize>, Vec<usize>) = if dfss_bench::quick() {
        (vec![4], vec![256], vec![512, 2048])
    } else {
        (
            vec![4, 8],
            vec![256, 512, 1024],
            vec![512, 1024, 2048, 4096],
        )
    };
    let mut report = Report::new(
        "Figure 15 — end-to-end latency breakdown, bfloat16 (normalised to dense total)",
        &[
            "heads",
            "hidden",
            "seq",
            "model",
            "attention",
            "others",
            "total",
            "speedup",
        ],
    );
    for &heads in &heads_list {
        for &hidden in &hiddens {
            for &n in &seqs {
                let cfg = SimModelConfig::lra_text(heads, hidden, n);
                let mut dense_ctx = GpuCtx::a100_charge_only();
                let _ = simulate_encoder::<Bf16>(&mut dense_ctx, &cfg, &FullAttention, 1);
                let dense_total = dense_ctx.latency();
                for (name, mech) in [
                    ("Dense", Box::new(FullAttention) as Box<dyn Attention<Bf16>>),
                    ("Ours", Box::new(DfssAttention::for_dtype::<Bf16>())),
                ] {
                    let mut ctx = GpuCtx::a100_charge_only();
                    let _ = simulate_encoder::<Bf16>(&mut ctx, &cfg, mech.as_ref(), 1);
                    let dev = ctx.dev.clone();
                    let attn: f64 = [Stage::Qk, Stage::Softmax, Stage::Av, Stage::Overhead]
                        .iter()
                        .map(|&s| ctx.timeline.stage_latency(s, &dev))
                        .sum();
                    let others = ctx.timeline.stage_latency(Stage::NonAttention, &dev);
                    let total = ctx.latency();
                    report.row(vec![
                        heads.to_string(),
                        hidden.to_string(),
                        n.to_string(),
                        name.into(),
                        format!("{:.4}", attn / dense_total),
                        format!("{:.4}", others / dense_total),
                        format!("{:.4}", total / dense_total),
                        format!("{:.2}x", dense_total / total),
                    ]);
                }
            }
        }
    }
    report.emit("fig15_e2e_breakdown");
    println!("paper: at seq ≤ 1024 'Others' contributes over 70% of total latency;");
    println!("       Ours yields 1.08–1.47x end-to-end under bfloat16.");
}
