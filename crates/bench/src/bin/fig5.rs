//! Figure 5: latency breakdown of attention mechanisms, normalised to the
//! full-attention Transformer, across sequence lengths and data types.
//!
//! Run: `cargo run -p dfss-bench --release --bin fig5`
//! Validate the JSON artifact: `fig5 --check results/fig5_latency_breakdown.json`

use dfss_bench::Report;
use dfss_core::cluster_baselines::{ReformerAttention, RoutingAttention, SinkhornAttention};
use dfss_core::linear_baselines::{NystromAttention, PerformerAttention};
use dfss_core::{Attention, DfssAttention, FullAttention};
use dfss_gpusim::Stage;
use dfss_kernels::GpuCtx;
use dfss_tensor::{BatchedMatrix, Bf16, Matrix, Rng, Scalar};

fn mechanisms<T: Scalar>(n: usize) -> Vec<(&'static str, Box<dyn Attention<T>>)> {
    vec![
        ("Transformer", Box::new(FullAttention)),
        ("Ours", Box::new(DfssAttention::for_dtype::<T>())),
        ("Performer", Box::new(PerformerAttention::new(11))),
        (
            "Reformer",
            Box::new(ReformerAttention::new(64.min(n / 4).max(8), 12)),
        ),
        (
            "Routing",
            Box::new(RoutingAttention::new((n / 128).clamp(4, 16), 13)),
        ),
        (
            "Sinkhorn",
            Box::new(SinkhornAttention::new(64.min(n / 2).max(8))),
        ),
        (
            "Nystrom",
            Box::new(NystromAttention::new(64.min(n / 4).max(8))),
        ),
    ]
}

fn run_dtype<T: Scalar>(report: &mut Report, seq_lens: &[usize]) {
    let d = 64;
    for &n in seq_lens {
        // "Batch size large enough to keep the GPU busy" (§5.2): every
        // kernel processes the whole B-sequence volume in one real batched
        // launch. Keep total tokens fixed across sequence lengths.
        let batch = ((1usize << 17) / n).max(1);
        let mut rng = Rng::new(n as u64);
        let q: Matrix<T> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let k: Matrix<T> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let v: Matrix<T> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let qb = BatchedMatrix::broadcast(&q, batch);
        let kb = BatchedMatrix::broadcast(&k, batch);
        let vb = BatchedMatrix::broadcast(&v, batch);

        // Baseline latency for normalisation.
        let mut base_ctx = GpuCtx::a100_charge_only();
        let _ = FullAttention.forward_batched(&mut base_ctx, &qb, &kb, &vb);
        let base = base_ctx.latency();

        for (name, mech) in mechanisms::<T>(n) {
            let mut ctx = GpuCtx::a100_charge_only();
            let _ = mech.forward_batched(&mut ctx, &qb, &kb, &vb);
            let dev = ctx.dev.clone();
            let get = |s: Stage| (ctx.timeline.stage_latency(s, &dev) / base).max(0.0);
            let total = ctx.latency() / base;
            report.row(vec![
                T::NAME.into(),
                n.to_string(),
                name.into(),
                format!("{:.4}", get(Stage::Qk)),
                format!("{:.4}", get(Stage::Softmax)),
                format!("{:.4}", get(Stage::Av)),
                format!("{:.4}", get(Stage::Overhead)),
                format!("{total:.4}"),
                format!("{:.3}x", 1.0 / total),
            ]);
        }
    }
}

fn main() {
    if dfss_bench::handle_report_check("fig5_latency_breakdown") {
        return;
    }
    let seq_lens: Vec<usize> = if dfss_bench::quick() {
        vec![256, 1024]
    } else {
        vec![256, 512, 1024, 2048, 4096]
    };
    let mut report = Report::new(
        "Figure 5 — attention latency breakdown (normalised to Transformer; simulated A100)",
        &[
            "dtype",
            "seq",
            "mechanism",
            "QK^T",
            "Softmax",
            "AV",
            "Overhead",
            "total",
            "speedup",
        ],
    );
    run_dtype::<f32>(&mut report, &seq_lens);
    run_dtype::<Bf16>(&mut report, &seq_lens);
    report.emit("fig5_latency_breakdown");

    // Headline check: Dfss speedup band across all lengths.
    println!("note: paper reports 1.27-1.89x attention speedup for Dfss across 256-4096.");
}
