//! Table 5 (Appendix A.3): memory-access counts of each attention stage —
//! executed simulator counters vs the paper's closed forms. The counters
//! come from the batched kernel entry points (B = 1 here — the closed
//! forms are per sequence; the batched charge is exactly B × these).
//!
//! Run: `cargo run -p dfss-bench --release --bin table5_traffic`
//! Validate the JSON artifact: `table5_traffic --check results/table5.json`

use dfss_bench::Report;
use dfss_core::theory::table5;
use dfss_core::{Attention, DfssAttention, FullAttention};
use dfss_kernels::GpuCtx;
use dfss_nmsparse::NmPattern;
use dfss_tensor::{BatchedMatrix, Matrix, Rng};

fn main() {
    if dfss_bench::handle_report_check("table5") {
        return;
    }
    let d = 64usize;
    let t = 128.0;
    let mut report = Report::new(
        "Table 5 — memory accesses (bytes): executed counters vs closed forms",
        &[
            "n",
            "full_executed",
            "full_closed_form",
            "full_err%",
            "dfss_executed",
            "dfss_closed_form",
            "dfss_err%",
        ],
    );
    for n in [512usize, 1024, 2048, 4096] {
        let mut rng = Rng::new(n as u64);
        let q: Matrix<f32> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let k: Matrix<f32> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let v: Matrix<f32> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);

        let qb = BatchedMatrix::broadcast(&q, 1);
        let kb = BatchedMatrix::broadcast(&k, 1);
        let vb = BatchedMatrix::broadcast(&v, 1);
        let mut cf = GpuCtx::a100_charge_only();
        let _ = FullAttention.forward_batched(&mut cf, &qb, &kb, &vb);
        let full_exec = cf.timeline.total_bytes() as f64;
        // Closed form counts elements; softmax term assumes the streaming
        // (3-read) regime only above the cache threshold, so evaluate both
        // regimes like the device does.
        let softmax_passes = cf.dev.softmax_read_passes(n) as f64;
        let nf = n as f64;
        let df = d as f64;
        let full_theory = (nf * nf * (2.0 * df / t + 1.0)
            + (softmax_passes + 1.0) * nf * nf
            + nf * df * (2.0 * nf / t + 1.0))
            * 4.0;
        let _ = table5::full_attention(nf, df, t); // exported closed form (2-pass variant)

        let mut cd = GpuCtx::a100_charge_only();
        let _ = DfssAttention::new(NmPattern::P1_2).forward_batched(&mut cd, &qb, &kb, &vb);
        let dfss_exec = cd.timeline.total_bytes() as f64;
        let kept = nf / 2.0;
        let sm_passes_dfss = cd.dev.softmax_read_passes(n / 2) as f64;
        let dfss_theory = (nf * nf * (2.0 * df / t)
            + nf * (kept + nf / 8.0 / 4.0) // fused writes: nonzeros + meta (elems of 4B)
            + (sm_passes_dfss + 1.0) * nf * kept
            + nf * (kept + nf / 32.0) // SpMM A panel: nonzeros + meta
            + nf * df * (nf / t)      // SpMM V panels
            + nf * df)                // SpMM output
            * 4.0;

        report.row(vec![
            n.to_string(),
            format!("{full_exec:.3e}"),
            format!("{full_theory:.3e}"),
            format!("{:+.2}", 100.0 * (full_exec - full_theory) / full_theory),
            format!("{dfss_exec:.3e}"),
            format!("{dfss_theory:.3e}"),
            format!("{:+.2}", 100.0 * (dfss_exec - dfss_theory) / dfss_theory),
        ]);
    }
    report.emit("table5");
    println!("executed counters track the closed forms: ~2% high for Dfss (metadata");
    println!("byte rounding), ~10% high for full attention — the paper's A·V count");
    println!("nd(2n/T+1) assumes square T×T output tiles, but with d = 64 < T the");
    println!("executed kernel's A-panels enjoy less reuse (tn = d), costing 1.5n²");
    println!("instead of n² reads. The *ratio* (speedup) is what Figure 11 checks.");
}
