//! Figure 16: peak memory allocation normalised to the dense transformer.
//!
//! Run: `cargo run -p dfss-bench --release --bin fig16`

use dfss_bench::Report;
use dfss_core::cluster_baselines::{ReformerAttention, RoutingAttention, SinkhornAttention};
use dfss_core::linear_baselines::{NystromAttention, PerformerAttention};
use dfss_core::model::{simulate_encoder, SimModelConfig};
use dfss_core::{Attention, DfssAttention, FullAttention};
use dfss_kernels::GpuCtx;
use dfss_tensor::{Bf16, Scalar};

fn mechanisms<T: Scalar>(n: usize) -> Vec<(&'static str, Box<dyn Attention<T>>)> {
    vec![
        ("Ours", Box::new(DfssAttention::for_dtype::<T>())),
        ("Performer", Box::new(PerformerAttention::new(11))),
        (
            "Reformer",
            Box::new(ReformerAttention::new(64.min(n / 4).max(8), 12)),
        ),
        (
            "Routing",
            Box::new(RoutingAttention::new((n / 128).clamp(4, 16), 13)),
        ),
        (
            "Sinkhorn",
            Box::new(SinkhornAttention::new(64.min(n / 2).max(8))),
        ),
        (
            "Nystrom",
            Box::new(NystromAttention::new(64.min(n / 4).max(8))),
        ),
    ]
}

fn run_dtype<T: Scalar>(
    report: &mut Report,
    heads_list: &[usize],
    hiddens: &[usize],
    seqs: &[usize],
) {
    for &heads in heads_list {
        for &hidden in hiddens {
            for &n in seqs {
                let cfg = SimModelConfig::lra_text(heads, hidden, n);
                let mut dense_ctx = GpuCtx::a100_charge_only();
                let _ = simulate_encoder::<T>(&mut dense_ctx, &cfg, &FullAttention, 1);
                let dense_peak = dense_ctx.mem.peak() as f64;
                let mut cells = vec![
                    T::NAME.to_string(),
                    heads.to_string(),
                    hidden.to_string(),
                    n.to_string(),
                ];
                for (_, mech) in mechanisms::<T>(n) {
                    let mut ctx = GpuCtx::a100_charge_only();
                    let _ = simulate_encoder::<T>(&mut ctx, &cfg, mech.as_ref(), 1);
                    cells.push(format!("{:.3}", ctx.mem.peak() as f64 / dense_peak));
                }
                report.row(cells);
            }
        }
    }
}

fn main() {
    if dfss_bench::handle_report_check("fig16_peak_memory") {
        return;
    }
    let (heads, hiddens, seqs): (Vec<usize>, Vec<usize>, Vec<usize>) = if dfss_bench::quick() {
        (vec![4], vec![256], vec![512, 2048])
    } else {
        (
            vec![4, 8],
            vec![256, 512, 1024],
            vec![512, 1024, 2048, 4096],
        )
    };
    let mut report = Report::new(
        "Figure 16 — peak memory normalised to dense transformer (lower is better)",
        &[
            "dtype",
            "heads",
            "hidden",
            "seq",
            "Ours",
            "Performer",
            "Reformer",
            "Routing",
            "Sinkhorn",
            "Nystrom",
        ],
    );
    run_dtype::<f32>(&mut report, &heads, &hiddens, &seqs);
    run_dtype::<Bf16>(&mut report, &heads, &hiddens, &seqs);
    report.emit("fig16_peak_memory");
    println!("paper: Ours achieves a 1.41–1.82x memory reduction (ratio 0.55–0.71).");
}
