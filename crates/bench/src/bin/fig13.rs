//! Figure 13: `Q^p` at p = 6.5 orders task accuracy monotonically across
//! sparse patterns, while the F-norm retention metric cannot explain the
//! N:M results.
//!
//! A dense QA model is evaluated under many masks (Top-K sweep, Fixed
//! sweep, 1:2, 2:4); each point reports the mask's mean `Q^p` on the
//! model's attention and the resulting F1.
//!
//! Run: `cargo run -p dfss-bench --release --bin fig13`

use dfss_bench::train::{eval_qa, pretrain_qa};
use dfss_bench::Report;
use dfss_core::quality::{fixed_mask, fnorm_retention, nm_mask, qp_quality, topk_mask};
use dfss_nmsparse::NmPattern;
use dfss_tensor::Matrix;
use dfss_transformer::{AttnKind, Precision};

fn main() {
    let quick = dfss_bench::quick();
    let (mut model, _train, test) = pretrain_qa(5, quick);
    let p = 6.5;

    // Attention maps of the dense model over a few eval samples.
    let mut heads_a: Vec<Matrix<f32>> = Vec::new();
    for ex in test.iter().take(6) {
        let _ = model.enc.forward(&ex.tokens, true);
        for layer in &model.enc.layers {
            for a in layer.mha.last_attention_maps() {
                heads_a.push(a.clone());
            }
        }
    }
    let qp_of = |mask_fn: &dyn Fn(&Matrix<f32>) -> Matrix<f32>| -> (f64, f64) {
        let mut q_acc = 0.0;
        let mut f_acc = 0.0;
        for a in &heads_a {
            let m = mask_fn(a);
            q_acc += qp_quality(a, &m, p);
            f_acc += fnorm_retention(a, &m);
        }
        (q_acc / heads_a.len() as f64, f_acc / heads_a.len() as f64)
    };

    let n = test[0].tokens.len();
    let mut report = Report::new(
        format!("Figure 13 — Q^p (p={p}) and F-norm retention vs F1 on synthetic QA"),
        &["mask", "density", "Qp(6.5)", "fnorm_retention", "F1"],
    );

    // Top-K sweep.
    for &s in &[0.05, 0.1, 0.2, 0.3, 0.5] {
        let k = ((n as f64 * s).round() as usize).max(1);
        let (qp, fr) = qp_of(&|a| topk_mask(a, k));
        let f1 = eval_qa(&mut model, AttnKind::TopK(k), Precision::F32, &test);
        report.row(vec![
            format!("TopK({k})"),
            format!("{s:.2}"),
            format!("{qp:.4}"),
            format!("{fr:.4}"),
            format!("{f1:.2}"),
        ]);
    }
    // Fixed sweep.
    for &s in &[0.25, 0.5, 0.63, 0.8] {
        let (qp, fr) = qp_of(&|a| fixed_mask(a.rows(), a.cols(), s));
        let f1 = eval_qa(&mut model, AttnKind::FixedPrefix(s), Precision::F32, &test);
        report.row(vec![
            format!("Fixed({s})"),
            format!("{s:.2}"),
            format!("{qp:.4}"),
            format!("{fr:.4}"),
            format!("{f1:.2}"),
        ]);
    }
    // N:M.
    for (name, pat, kind) in [
        ("1:2", NmPattern::P1_2, AttnKind::Nm(NmPattern::P1_2)),
        ("2:4", NmPattern::P2_4, AttnKind::Nm(NmPattern::P2_4)),
    ] {
        let (qp, fr) = qp_of(&|a| nm_mask(a, pat));
        let f1 = eval_qa(&mut model, kind, Precision::F32, &test);
        report.row(vec![
            name.into(),
            "0.50".into(),
            format!("{qp:.4}"),
            format!("{fr:.4}"),
            format!("{f1:.2}"),
        ]);
    }
    // Dense reference.
    let f1_dense = eval_qa(&mut model, AttnKind::Full, Precision::F32, &test);
    report.row(vec![
        "Full".into(),
        "1.00".into(),
        "1.0000".into(),
        "1.0000".into(),
        format!("{f1_dense:.2}"),
    ]);

    report.emit("fig13_qp_vs_f1");
    println!("check: F1 increases monotonically with Q^p(6.5) across all mask families,");
    println!("       while F-norm retention would mis-order the 1:2/2:4 points against");
    println!("       fixed masks of higher retention but lower F1.");
}
