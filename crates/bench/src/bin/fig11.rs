//! Figure 11: theoretical vs executed speedup of Top-K / Fixed / 1:2
//! sparsity over full attention, as a function of density.
//!
//! Run: `cargo run -p dfss-bench --release --bin fig11`
//! Validate the JSON artifact: `fig11 --check results/fig11_speedup_vs_density.json`

use dfss_bench::Report;
use dfss_core::sparse_baselines::{FixedColumnsAttention, TopKAttention};
use dfss_core::theory;
use dfss_core::{Attention, DfssAttention, FullAttention};
use dfss_kernels::GpuCtx;
use dfss_nmsparse::NmPattern;
use dfss_tensor::{BatchedMatrix, Matrix, Rng};

fn main() {
    if dfss_bench::handle_report_check("fig11_speedup_vs_density") {
        return;
    }
    let n = if dfss_bench::quick() { 1024 } else { 2048 };
    let d = 64usize;
    let t = 128.0;
    let batch = ((1usize << 17) / n).max(1);
    let mut rng = Rng::new(42);
    let q: Matrix<f32> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k: Matrix<f32> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v: Matrix<f32> = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
    // Real batched launches over the §5.2 batch volume.
    let qb = BatchedMatrix::broadcast(&q, batch);
    let kb = BatchedMatrix::broadcast(&k, batch);
    let vb = BatchedMatrix::broadcast(&v, batch);

    let mut full_ctx = GpuCtx::a100_charge_only();
    let _ = FullAttention.forward_batched(&mut full_ctx, &qb, &kb, &vb);
    let full = full_ctx.latency();

    let run = |mech: &dyn Attention<f32>| -> f64 {
        let mut ctx = GpuCtx::a100_charge_only();
        let _ = mech.forward_batched(&mut ctx, &qb, &kb, &vb);
        full / ctx.latency()
    };

    let mut report = Report::new(
        format!("Figure 11 — speedup vs density (n={n}, d={d}, T=128; simulated A100)"),
        &[
            "density",
            "topk_theory",
            "topk_actual",
            "fixed_theory",
            "fixed_actual",
            "dfss_theory",
            "dfss_actual",
        ],
    );

    let densities = [
        0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.63, 0.7,
    ];
    let dfss_actual = run(&DfssAttention::new(NmPattern::P1_2));
    for &s in &densities {
        let topk_actual = run(&TopKAttention::with_density(n, s));
        let fixed_actual = run(&FixedColumnsAttention::new(s));
        report.row(vec![
            format!("{s:.2}"),
            format!("{:.3}", theory::speedup_topk_bound(d as f64, t, s)),
            format!("{topk_actual:.3}"),
            format!("{:.3}", theory::speedup_fixed(d as f64, t, s)),
            format!("{fixed_actual:.3}"),
            format!("{:.3}", theory::speedup_dfss(d as f64, t)),
            format!("{dfss_actual:.3}"),
        ]);
    }
    report.emit("fig11_speedup_vs_density");

    println!(
        "equal-efficiency densities (Eqs 7-8): topk s = {:.4}, fixed s = {:.4}",
        theory::topk_equal_efficiency_density(d as f64, t),
        theory::fixed_equal_efficiency_density(d as f64, t),
    );
    println!("paper: top-k actual is far below its oracle bound (selection+CSR cost);");
    println!("       fixed crosses Dfss near s = 0.63; Dfss actual ~ its theory value.");
}
