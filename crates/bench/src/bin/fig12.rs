//! Figure 12: `Q^p` quality vs density for Top-K / Fixed / 1:2 / 2:4 —
//! Prop 4.2 closed forms (solid lines) plus empirical box plots over
//! Gaussian scores and over a trained QA model's attention heads.
//!
//! Run: `cargo run -p dfss-bench --release --bin fig12`

use dfss_bench::train::pretrain_qa;
use dfss_bench::Report;
use dfss_core::quality::{fixed_mask, nm_mask, qp_quality, qp_quality_from_scores, topk_mask};
use dfss_core::theory;
use dfss_nmsparse::NmPattern;
use dfss_tensor::stats::BoxStats;
use dfss_tensor::{Matrix, Rng};

fn main() {
    let ps = [1.0, 2.0, 3.0, 7.0];
    let densities = [0.02, 0.1, 0.2, 0.3, 0.4, 0.5, 0.63];
    let n = 256;
    let sigma = 1.0f64;

    // --- Theory lines + Gaussian-score empirical boxes --------------------
    let mut report = Report::new(
        "Figure 12 — Q^p vs density: Prop 4.2 theory and empirical (Gaussian scores)",
        &["p", "density", "strategy", "theory", "empirical_box"],
    );
    let mut rng = Rng::new(3);
    let samples: Vec<Matrix<f32>> = (0..8)
        .map(|_| Matrix::random_normal(n, n, 0.0, sigma as f32, &mut rng))
        .collect();

    for &p in &ps {
        for &s in &densities {
            let k = ((n as f64 * s).round() as usize).max(1);
            let emp: Vec<f64> = samples
                .iter()
                .map(|m| qp_quality_from_scores(m, &topk_mask(m, k), p))
                .collect();
            report.row(vec![
                p.to_string(),
                format!("{s:.2}"),
                "Top-K".into(),
                format!("{:.4}", theory::qp_topk(p, sigma, s)),
                format!("{}", BoxStats::from_sample(&emp)),
            ]);
            let emp: Vec<f64> = samples
                .iter()
                .map(|m| qp_quality_from_scores(m, &fixed_mask(n, n, s), p))
                .collect();
            report.row(vec![
                p.to_string(),
                format!("{s:.2}"),
                "Fixed".into(),
                format!("{:.4}", theory::qp_fixed(s)),
                format!("{}", BoxStats::from_sample(&emp)),
            ]);
        }
        // N:M strategies sit at fixed density 0.5.
        for (name, pattern) in [("1:2", NmPattern::P1_2), ("2:4", NmPattern::P2_4)] {
            let emp: Vec<f64> = samples
                .iter()
                .map(|m| qp_quality_from_scores(m, &nm_mask(m, pattern), p))
                .collect();
            report.row(vec![
                p.to_string(),
                "0.50".into(),
                name.into(),
                format!("{:.4}", theory::qp_one_two(p, sigma)),
                format!("{}", BoxStats::from_sample(&emp)),
            ]);
        }
    }
    report.emit("fig12_qp_theory_gaussian");

    // --- Empirical boxes over a trained QA model's attention -------------
    let quick = dfss_bench::quick();
    let (mut model, _train, test) = pretrain_qa(1, quick);
    let mut heads_a: Vec<Matrix<f32>> = Vec::new();
    for ex in test.iter().take(4) {
        let _ = model.enc.forward(&ex.tokens, true);
        for layer in &model.enc.layers {
            for a in layer.mha.last_attention_maps() {
                heads_a.push(a.clone());
            }
        }
    }
    let mut report2 = Report::new(
        "Figure 12 (right) — Q^p boxes from trained QA model attention heads",
        &["p", "strategy", "density", "empirical_box"],
    );
    for &p in &ps {
        for &s in &[0.1, 0.3, 0.5] {
            let vals: Vec<f64> = heads_a
                .iter()
                .map(|a| {
                    let k = ((a.cols() as f64 * s).round() as usize).max(1);
                    qp_quality(a, &topk_mask(a, k), p)
                })
                .collect();
            report2.row(vec![
                p.to_string(),
                "Top-K".into(),
                format!("{s:.2}"),
                format!("{}", BoxStats::from_sample(&vals)),
            ]);
        }
        for (name, pattern) in [("1:2", NmPattern::P1_2), ("2:4", NmPattern::P2_4)] {
            let vals: Vec<f64> = heads_a
                .iter()
                .map(|a| qp_quality(a, &nm_mask(a, pattern), p))
                .collect();
            report2.row(vec![
                p.to_string(),
                name.into(),
                "0.50".into(),
                format!("{}", BoxStats::from_sample(&vals)),
            ]);
        }
    }
    report2.emit("fig12_qp_trained_model");
    println!("check: boxes straddle the theory lines; Q^p_2:4 ≥ Q^p_1:2 > Q^p_fix(0.5);");
    println!("       at p = 7 the 1:2 quality is ≈ 1 (paper: 0.9999996).");
}
