//! `serving` — open-loop load generator for the attention serving layer.
//!
//! Sweeps offered load × batch policy against `dfss-serve`: requests with
//! heterogeneous shapes arrive on a Poisson schedule, the server coalesces
//! them per policy, and every response's latency breakdown feeds the tail
//! statistics. Two policies run on the *same* arrival schedule per load:
//!
//! * **baseline** — the per-request loop a deployment without a batcher
//!   runs: a FIFO worker serving each request as one solo
//!   `Attention::forward` with a fresh context, no coalescing;
//! * **batched** — `dfss-serve` with shape-bucketed coalescing and a
//!   max-batch + deadline close policy, one batched launch per op per
//!   closed bucket through the `AttentionEngine`.
//!
//! Reported per (load, policy): host wall-clock p50/p95/p99, simulated-
//! device p50 (the device latency of the batch each request rode in), mean
//! batch size and sustained throughput. Served outputs are asserted
//! bit-identical to solo `Attention::forward` calls on a deterministic
//! subset of requests.
//!
//! A second sweep covers **decode**: `streams` concurrent sessions, each
//! with a (ragged, deliberately misaligned) cached K/V length around a base
//! `cached_len`, take decode steps either through the per-stream **solo
//! loop** (`Attention::decode` with a fresh context per step — the
//! deployment without ragged batching) or through
//! `AttentionEngine::flush_decode` (**one ragged launch per op** across all
//! streams). Outputs are asserted bit-identical.
//!
//! The headline decode metric is **simulated-device tokens/sec**: a decode
//! step moves so little data that the fixed per-launch overhead dominates
//! its device time, so the ragged launch's 3-launches-for-B-streams
//! amortisation is the whole story (A.1.2) — and it is deterministic, so
//! even quick-mode artifacts gate on it. Host wall-clock tokens/sec rides
//! along un-gated: the host fan-out only pays off with worker threads, and
//! a single-core CI runner cannot parallelise it.
//!
//! A third sweep covers **memory pressure**: a fixed decode fleet
//! (`sessions` concurrent streams growing to `target_len` cached rows,
//! decoding every few appends) runs against shrinking KV byte budgets —
//! multiples of the fleet's exact working-set page count — with LRU
//! eviction on. Reported per budget point: decode tokens/sec, the typed
//! rejection rate (`KvBudgetExhausted` at admission plus `Evicted` steps),
//! and the server's page/eviction counters. Every artifact must show zero
//! rejections at funded budgets (multiplier ≥ 1) and a non-zero rejection
//! rate at the starved point — both deterministic, the op order is
//! single-threaded — so the gate holds in quick mode too.
//!
//! A fourth sweep covers **overload**: the same Poisson generator drives
//! the batched server at 0.6/1.0/1.5/2.0× its own saturated-burst
//! capacity with `max_queue_depth` bounding the unlaunched backlog.
//! Reported per load: goodput, the typed-shed rate
//! (`ServeError::Overloaded` at admission) and p50/p99 of the served
//! requests. The artifact must show **zero** sheds at the sub-capacity
//! point and a **non-zero** shed count at 2.0× — load shedding engages
//! exactly when the queue can no longer drain.
//!
//! A fifth **chaos** row drives the server through an injected
//! mid-flush kernel panic (`FaultPlan` → `FaultKind::PanicInBatch` at a
//! fixed request ordinal): the artifact must show every request resolving
//! typed (`served + panicked == requests`), at least one `BatchPanicked`
//! failure, and requests submitted after the poisoned batch being served
//! normally — the recovery story, measured.
//!
//! A sixth sweep covers **shard scaling**: one fixed saturating prefill
//! burst (every request submitted up front) runs through a `ShardedServer`
//! at 1, 2 and 4 continuous-batching engines with work stealing on. The
//! headline metric is **simulated-device tokens/sec** — total rows over
//! the *slowest shard's* accumulated device time — the same deterministic
//! device-side story the decode sweep gates on (wall-clock rides along
//! un-gated: the host kernels already fan out over one shared worker pool,
//! so OS-thread sharding cannot show clean host-side scaling on a small
//! CI box). Per-shard lanes (served requests, chunks executed, chunks
//! stolen, device seconds, wall goodput) ride in the artifact; full-mode
//! artifacts must show the headline tokens/sec increasing monotonically
//! 1 → 2 → 4. Served outputs are bit-compared to unchunked solo forwards
//! on the reference subset, and `--check` re-proves that parity claim
//! live on a fresh 2-shard server.
//!
//! `--check` also gates **p99** (not just p50) on the overload and HTTP
//! sweeps: every row with served traffic must report a positive p50 and a
//! p99 at or above it — a tail inversion means the percentile pipeline
//! broke, and a zero tail under load means the row never measured.
//!
//! Emits schema-stable `results/bench_serving.json`. In full mode the
//! artifact must show the batched policy beating the baseline on p50 at
//! ≥ 3 offered loads; every artifact must show batched decode beating the
//! solo loop on (simulated) tokens/sec at ≥ 2 stream counts (asserted at
//! generation time and re-validated by `serving --check`, which CI runs
//! against the checked-in artifact; quick mode validates the wall-clock
//! p50 schema only — CI smoke runners are too noisy to gate on host time).
//!
//! Knobs: `DFSS_QUICK=1` (small shapes, short run), `DFSS_RESULTS=<dir>`.

use dfss_bench::json::Json;
use dfss_bench::{quick, results_dir};
use dfss_core::engine::{AttentionEngine, DecodeStep};
use dfss_core::{Attention, DfssAttention};
use dfss_kernels::GpuCtx;
use dfss_nmsparse::NmPattern;
use dfss_serve::http::{HttpConfig, HttpServer};
use dfss_serve::wire::{self, Json as WireJson, RequestReader, WireLimits};
use dfss_serve::{
    AttentionServer, BatchPolicy, DecodeRequest, FaultKind, FaultPlan, KvConfig, SchedPolicy,
    ServeError, ServeStats, Served, SessionError, SessionId, ShardedServer,
};
use dfss_tensor::{Matrix, Rng};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SCHEMA_VERSION: f64 = 6.0;

/// Offered-load multipliers of the measured per-request capacity. The
/// first is deliberately sub-capacity (the regime where a deadline policy
/// pays for batches that never fill); the rest saturate the per-request
/// loop so the batcher's higher throughput shows up in the tails.
const LOAD_MULTS: [f64; 4] = [0.6, 1.05, 1.2, 1.4];
/// How many of the swept loads the batched policy must win on p50 for a
/// full-mode artifact to be acceptable.
const MIN_P50_WINS: usize = 3;
/// How many distinct concurrent-stream counts batched decode must win on
/// tokens/sec (at every cached length) for a full-mode artifact.
const MIN_DECODE_WINS: usize = 2;
/// Overload sweep: offered load as multiples of the batched server's own
/// saturated-burst capacity. The first point is comfortably sub-capacity
/// (zero sheds expected), the last is a 2× overload (sheds required).
const OVERLOAD_MULTS: [f64; 4] = [0.6, 1.0, 1.5, 2.0];
/// Queue bound for the overload sweep, in units of `max_batch`.
const OVERLOAD_DEPTH_BATCHES: usize = 4;
/// Shard-scaling sweep: engine counts to run the fixed saturating prefill
/// burst across. The artifact must show simulated-device tokens/sec
/// increasing monotonically along this sequence.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct WorkloadSpec {
    shapes: Vec<(usize, usize)>,
    requests_per_load: usize,
    max_batch: usize,
    max_delay: Duration,
}

fn workload() -> WorkloadSpec {
    if quick() {
        WorkloadSpec {
            shapes: vec![(64, 32), (128, 32)],
            requests_per_load: 32,
            max_batch: 8,
            max_delay: Duration::from_micros(500),
        }
    } else {
        WorkloadSpec {
            shapes: vec![(256, 64), (512, 64)],
            requests_per_load: 96,
            max_batch: 16,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// One pre-generated request with its solo-forward reference (computed for
/// a deterministic subset; `None` elsewhere).
struct Request {
    q: Matrix<f32>,
    k: Matrix<f32>,
    v: Matrix<f32>,
    reference: Option<Matrix<f32>>,
    /// Offset from the run start at which the request is offered.
    arrival: Duration,
}

/// Build one load point's request stream: shapes round-robin, Poisson
/// interarrivals at `rate` requests/sec, references every 4th request.
fn build_requests(
    spec: &WorkloadSpec,
    mech: &dyn Attention<f32>,
    rate: f64,
    seed: u64,
) -> Vec<Request> {
    let mut rng = Rng::new(seed);
    let mut at = 0.0f64;
    (0..spec.requests_per_load)
        .map(|i| {
            let (n, d) = spec.shapes[i % spec.shapes.len()];
            let q = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let k = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let v = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let reference = (i % 4 == 0).then(|| {
                let mut ctx = GpuCtx::a100();
                mech.forward(&mut ctx, &q, &k, &v)
            });
            // Exponential interarrival: -ln(U)/rate.
            let u: f64 = rng.uniform().max(1e-12);
            at += -u.ln() / rate;
            Request {
                q,
                k,
                v,
                reference,
                arrival: Duration::from_secs_f64(at),
            }
        })
        .collect()
}

/// Saturated throughput of the per-request loop: a warm back-to-back burst
/// of solo `forward` calls over the shape mix — exactly the work the
/// baseline runner does per request. Offered loads are scaled against this
/// honest capacity.
fn measure_capacity(spec: &WorkloadSpec, mech: &dyn Attention<f32>) -> f64 {
    let burst = if quick() { 16 } else { 48 };
    let mut rng = Rng::new(0xCA11B);
    let reqs: Vec<(Matrix<f32>, Matrix<f32>, Matrix<f32>)> = (0..burst + 1)
        .map(|i| {
            let (n, d) = spec.shapes[i % spec.shapes.len()];
            (
                Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
                Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
                Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            )
        })
        .collect();
    // Warm-up call (pool spawn, allocator, caches) before the timed burst.
    let mut ctx = GpuCtx::a100();
    std::hint::black_box(mech.forward(&mut ctx, &reqs[0].0, &reqs[0].1, &reqs[0].2));
    let t0 = Instant::now();
    for (q, k, v) in &reqs[1..] {
        let mut ctx = GpuCtx::a100();
        std::hint::black_box(mech.forward(&mut ctx, q, k, v));
    }
    burst as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Tail statistics of one (load, policy) run.
struct PolicyResult {
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    sim_p50_ms: f64,
    mean_batch: f64,
    throughput_rps: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarize(
    mut host_ms: Vec<f64>,
    mut sim_ms: Vec<f64>,
    mean_batch: f64,
    makespan_s: f64,
) -> PolicyResult {
    let n = host_ms.len();
    host_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sim_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PolicyResult {
        p50_ms: percentile(&host_ms, 50.0),
        p95_ms: percentile(&host_ms, 95.0),
        p99_ms: percentile(&host_ms, 99.0),
        sim_p50_ms: percentile(&sim_ms, 50.0),
        mean_batch,
        throughput_rps: n as f64 / makespan_s.max(1e-9),
    }
}

fn assert_bit_identical(reference: &Matrix<f32>, got: &Matrix<f32>, i: usize, side: &str) {
    let same = got
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "{side} output {i} diverged from solo forward");
}

/// The per-request-loop baseline: the deployment a batcher replaces. A
/// worker thread serves the same arrival stream FIFO, one solo `forward`
/// with a fresh context per request — no coalescing, no engine.
fn run_baseline(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    requests: &[Request],
) -> PolicyResult {
    type Job = (usize, Matrix<f32>, Matrix<f32>, Matrix<f32>, Instant);
    let (tx, rx) = std::sync::mpsc::channel::<Job>();
    let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, Matrix<f32>, Duration, f64)>();
    let worker_mech = Arc::clone(mech);
    let worker = std::thread::spawn(move || {
        while let Ok((i, q, k, v, submitted)) = rx.recv() {
            let mut ctx = GpuCtx::a100();
            let out = worker_mech.forward(&mut ctx, &q, &k, &v);
            let _ = res_tx.send((i, out, submitted.elapsed(), ctx.latency()));
        }
    });
    let start = Instant::now();
    for (i, req) in requests.iter().enumerate() {
        if let Some(wait) = req.arrival.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        tx.send((
            i,
            req.q.clone(),
            req.k.clone(),
            req.v.clone(),
            Instant::now(),
        ))
        .expect("baseline worker alive");
    }
    drop(tx);
    let mut host_ms = vec![0.0f64; requests.len()];
    let mut sim_ms = vec![0.0f64; requests.len()];
    for _ in 0..requests.len() {
        let (i, out, latency, sim_s) = res_rx.recv().expect("baseline worker alive");
        if let Some(reference) = &requests[i].reference {
            assert_bit_identical(reference, &out, i, "baseline");
        }
        host_ms[i] = latency.as_secs_f64() * 1e3;
        sim_ms[i] = sim_s * 1e3;
    }
    let makespan = start.elapsed().as_secs_f64();
    worker.join().expect("baseline worker");
    summarize(host_ms, sim_ms, 1.0, makespan)
}

/// Offer one request stream to the batched server and collect tails.
/// Outputs on the reference subset are asserted bit-identical to solo
/// forward.
fn run_batched(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    policy: BatchPolicy,
    requests: &[Request],
) -> PolicyResult {
    let server = AttentionServer::start(Arc::clone(mech), policy);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests.len());
    for req in requests {
        if let Some(wait) = req.arrival.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let handle = server
            .submit(req.q.clone(), req.k.clone(), req.v.clone())
            .expect("generated requests are servable");
        handles.push(handle);
    }
    let served: Vec<Served<f32>> = handles
        .into_iter()
        .map(|h| h.wait().expect("server alive"))
        .collect();
    let makespan = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.served as usize, requests.len());

    for (i, (req, out)) in requests.iter().zip(&served).enumerate() {
        if let Some(reference) = &req.reference {
            assert_bit_identical(reference, &out.output, i, "batched");
        }
    }
    let host_ms: Vec<f64> = served
        .iter()
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    let sim_ms: Vec<f64> = served.iter().map(|s| s.sim_latency_s * 1e3).collect();
    summarize(host_ms, sim_ms, stats.mean_batch(), makespan)
}

/// Decode sweep grid: base cached lengths × concurrent stream counts.
struct DecodeSpec {
    cached_lens: Vec<usize>,
    streams: Vec<usize>,
    rounds: usize,
    head_dim: usize,
}

fn decode_workload() -> DecodeSpec {
    if quick() {
        DecodeSpec {
            cached_lens: vec![64],
            streams: vec![2, 4],
            rounds: 4,
            head_dim: 32,
        }
    } else {
        DecodeSpec {
            cached_lens: vec![256, 1024],
            streams: vec![1, 4, 8, 16],
            rounds: 24,
            head_dim: 64,
        }
    }
}

/// One decode sweep point: tokens/sec of the per-stream solo loop vs the
/// ragged batched flush over the same sessions and query rows.
/// `solo_tok_s` / `batched_tok_s` are tokens per second of **simulated
/// device time** (the gated metric); `host_*` are host wall-clock
/// tokens/sec, reported for reference.
struct DecodePoint {
    cached_len: usize,
    streams: usize,
    solo_tok_s: f64,
    batched_tok_s: f64,
    host_solo_tok_s: f64,
    host_batched_tok_s: f64,
}

/// Run one (cached_len, streams) decode point. Caches get ragged lengths
/// around the base (`len - (s % 4)`, exercising the dense-tail format);
/// both sides serve the same pre-generated query rows, and outputs are
/// asserted bit-identical on the first round.
fn run_decode_point(
    mech: &DfssAttention,
    spec: &DecodeSpec,
    cached_len: usize,
    streams: usize,
    seed: u64,
) -> DecodePoint {
    let d = spec.head_dim;
    let mut rng = Rng::new(seed);
    let lens: Vec<usize> = (0..streams).map(|s| cached_len - (s % 4)).collect();
    let ks: Vec<Matrix<f32>> = lens
        .iter()
        .map(|&l| Matrix::random_normal(l, d, 0.0, 1.0, &mut rng))
        .collect();
    let vs: Vec<Matrix<f32>> = lens
        .iter()
        .map(|&l| Matrix::random_normal(l, d, 0.0, 1.0, &mut rng))
        .collect();
    let q_rounds: Vec<Matrix<f32>> = (0..spec.rounds)
        .map(|_| Matrix::random_normal(streams, d, 0.0, 1.0, &mut rng))
        .collect();

    let mut engine = AttentionEngine::new(mech);
    fn steps_of<'a>(
        q: &'a Matrix<f32>,
        ks: &'a [Matrix<f32>],
        vs: &'a [Matrix<f32>],
        lens: &'a [usize],
        d: usize,
    ) -> Vec<DecodeStep<'a, f32>> {
        (0..ks.len())
            .map(|s| {
                DecodeStep::contiguous(q.row(s), ks[s].as_slice(), vs[s].as_slice(), lens[s], d, d)
            })
            .collect()
    }

    // Parity gate: the ragged flush must be bit-identical to the solo
    // loop. Simulated latencies (shape-deterministic, identical across
    // rounds) are read off this same pass: the batched flush's one ragged
    // launch per op vs the solo loop's three launches per stream.
    let (solo_sim_s, batched_sim_s);
    {
        let q = &q_rounds[0];
        let results = engine
            .flush_decode(&steps_of(q, &ks, &vs, &lens, d))
            .expect("valid steps");
        batched_sim_s = engine.last_decode().sim_latency_s();
        assert_eq!(
            engine.last_decode().launches(),
            3,
            "ragged decode must be one launch per op"
        );
        engine.reset_timeline();
        let mut solo_total = 0.0f64;
        for (s, res) in results.iter().enumerate() {
            let mut sctx = GpuCtx::a100();
            let q_row = Matrix::from_vec(1, d, q.row(s).to_vec());
            let want = mech.decode(&mut sctx, &q_row, &ks[s], &vs[s]);
            solo_total += sctx.latency();
            let same = res
                .output
                .as_ref()
                .expect("exec mode")
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "decode stream {s} diverged from the solo loop");
        }
        solo_sim_s = solo_total;
    }

    // Interleave the two sides (two passes each, take the faster pass) so
    // host drift cannot bias the comparison.
    let (mut solo_best, mut batched_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..2 {
        let t0 = Instant::now();
        for q in &q_rounds {
            for s in 0..streams {
                let mut ctx = GpuCtx::a100();
                let q_row = Matrix::from_vec(1, d, q.row(s).to_vec());
                std::hint::black_box(mech.decode(&mut ctx, &q_row, &ks[s], &vs[s]));
            }
        }
        solo_best = solo_best.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        for q in &q_rounds {
            std::hint::black_box(
                engine
                    .flush_decode(&steps_of(q, &ks, &vs, &lens, d))
                    .expect("valid steps"),
            );
            engine.reset_timeline();
        }
        batched_best = batched_best.min(t1.elapsed().as_secs_f64());
    }
    let tokens = (spec.rounds * streams) as f64;
    DecodePoint {
        cached_len,
        streams,
        solo_tok_s: streams as f64 / solo_sim_s.max(1e-12),
        batched_tok_s: streams as f64 / batched_sim_s.max(1e-12),
        host_solo_tok_s: tokens / solo_best.max(1e-9),
        host_batched_tok_s: tokens / batched_best.max(1e-9),
    }
}

/// Sweep the decode grid; returns the points and the number of distinct
/// stream counts where batched wins at **every** cached length.
fn run_decode_sweep(mech: &DfssAttention, spec: &DecodeSpec) -> (Vec<DecodePoint>, usize) {
    let mut points = Vec::new();
    println!(
        "{:>10}  {:>8}  {:>14}  {:>16}  {:>8}  {:>14}",
        "cached", "streams", "solo sim tok/s", "batched sim tok/s", "speedup", "host batch tok/s"
    );
    for (i, &len) in spec.cached_lens.iter().enumerate() {
        for (j, &streams) in spec.streams.iter().enumerate() {
            let p = run_decode_point(mech, spec, len, streams, 7000 + (i * 16 + j) as u64);
            println!(
                "{:>10}  {:>8}  {:>14.1}  {:>16.1}  {:>7.2}x  {:>14.1}",
                p.cached_len,
                p.streams,
                p.solo_tok_s,
                p.batched_tok_s,
                p.batched_tok_s / p.solo_tok_s.max(1e-9),
                p.host_batched_tok_s
            );
            points.push(p);
        }
    }
    let wins = spec
        .streams
        .iter()
        .filter(|&&sc| {
            points
                .iter()
                .filter(|p| p.streams == sc)
                .all(|p| p.batched_tok_s > p.solo_tok_s)
        })
        .count();
    (points, wins)
}

/// Memory-pressure sweep: one decode fleet against shrinking KV budgets.
struct MemorySpec {
    /// Concurrent decode sessions.
    sessions: usize,
    /// Cached rows each session grows to (one append round per row).
    target_len: usize,
    /// Decode once per session every this many append rounds.
    decode_every: usize,
    head_dim: usize,
    page_elems: usize,
    /// Budget as multiples of the fleet's working-set page count, funded
    /// first, starved last.
    budget_mults: Vec<f64>,
}

fn memory_workload() -> MemorySpec {
    if quick() {
        MemorySpec {
            sessions: 3,
            target_len: 16,
            decode_every: 4,
            head_dim: 32,
            page_elems: 128,
            budget_mults: vec![1.5, 1.0, 0.5, 0.25],
        }
    } else {
        MemorySpec {
            sessions: 8,
            target_len: 64,
            decode_every: 8,
            head_dim: 64,
            page_elems: 256,
            budget_mults: vec![1.5, 1.0, 0.5, 0.25],
        }
    }
}

impl MemorySpec {
    /// Pool pages the whole fleet needs at `target_len` (K + V sides).
    fn working_set_pages(&self) -> u64 {
        let rows_per_page = self.page_elems / self.head_dim;
        (self.sessions * 2 * self.target_len.div_ceil(rows_per_page)) as u64
    }
}

/// One budget point of the memory sweep.
struct MemoryPoint {
    budget_mult: f64,
    budget_pages: u64,
    /// Session operations offered (opens + appends + decode submissions).
    attempts: u64,
    /// Operations refused with typed back-pressure (`KvBudgetExhausted`
    /// at admission, `Evicted` on a reclaimed session's later steps).
    rejections: u64,
    /// Decode steps served.
    tokens: u64,
    tok_s: f64,
    stats: ServeStats,
}

/// Run one budget point: `sessions` slots each growing toward
/// `target_len`, decoding every `decode_every` rounds. A slot whose
/// session is evicted closes it and re-opens from scratch — the retry
/// path a real client runs — and every typed refusal counts against the
/// rejection rate. The op order is single-threaded, so rejections and
/// evictions are deterministic.
fn run_memory_point(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    spec: &MemorySpec,
    mult: f64,
    seed: u64,
) -> MemoryPoint {
    let d = spec.head_dim;
    let budget_pages = ((mult * spec.working_set_pages() as f64).ceil() as u64).max(2);
    // Express the budget through the config's own storage accounting —
    // a hard-coded `* 4` here would silently misprice the budget the day
    // this sweep runs with a bf16 KV store or a non-f32 compute dtype.
    let geometry = KvConfig {
        page_elems: spec.page_elems,
        evict_idle: true,
        ..KvConfig::default()
    };
    let kv = KvConfig {
        budget_bytes: budget_pages * geometry.storage_page_bytes::<f32>(),
        ..geometry
    };
    let server = AttentionServer::start_with_kv(
        Arc::clone(mech),
        BatchPolicy::batched(spec.sessions.max(1), Duration::from_micros(200)),
        kv,
    );
    let mut rng = Rng::new(seed);
    // Per slot: the open session and the rows it has cached so far.
    let mut slots: Vec<Option<(SessionId, usize)>> = vec![None; spec.sessions];
    let (mut attempts, mut rejections, mut tokens) = (0u64, 0u64, 0u64);
    let t0 = Instant::now();
    for round in 0..spec.target_len {
        for slot in slots.iter_mut() {
            if slot.is_none() {
                attempts += 1;
                match server.open_session(d, d) {
                    Ok(id) => *slot = Some((id, 0)),
                    Err(_) => {
                        rejections += 1;
                        continue;
                    }
                }
            }
            let (id, len) = slot.expect("slot just filled");
            let k_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
            let v_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
            attempts += 1;
            match server.append(id, k_row, v_row) {
                Ok(()) => *slot = Some((id, len + 1)),
                Err(SessionError::Evicted(_)) => {
                    rejections += 1;
                    server
                        .close_session(id)
                        .expect("evicted sessions still close");
                    *slot = None;
                }
                Err(_) => rejections += 1,
            }
        }
        if (round + 1) % spec.decode_every == 0 {
            let mut handles = Vec::new();
            for slot in slots.iter_mut() {
                let Some((id, len)) = *slot else { continue };
                if len == 0 {
                    continue;
                }
                let q_row: Vec<f32> = (0..d).map(|_| rng.normal(0.0, 1.0)).collect();
                attempts += 1;
                match server.submit_decode(DecodeRequest { session: id, q_row }) {
                    Ok(h) => handles.push(h),
                    Err(SessionError::Evicted(_)) => {
                        rejections += 1;
                        server
                            .close_session(id)
                            .expect("evicted sessions still close");
                        *slot = None;
                    }
                    Err(_) => rejections += 1,
                }
            }
            for h in handles {
                h.wait().expect("admitted decode steps are served");
                tokens += 1;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    for (id, _) in slots.into_iter().flatten() {
        server.close_session(id).expect("close");
    }
    let stats = server.shutdown();
    assert_eq!(
        stats.kv_pages_allocated, stats.kv_pages_freed,
        "every session closed — the pool must drain completely"
    );
    MemoryPoint {
        budget_mult: mult,
        budget_pages,
        attempts,
        rejections,
        tokens,
        tok_s: tokens as f64 / elapsed.max(1e-9),
        stats,
    }
}

fn run_memory_sweep(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    spec: &MemorySpec,
) -> Vec<MemoryPoint> {
    println!(
        "{:>8}  {:>7}  {:>8}  {:>10}  {:>9}  {:>9}  {:>10}",
        "budget", "pages", "tok/s", "rejected", "rej rate", "evicted", "attempts"
    );
    spec.budget_mults
        .iter()
        .enumerate()
        .map(|(i, &mult)| {
            let p = run_memory_point(mech, spec, mult, 9000 + i as u64);
            println!(
                "{:>7.2}x  {:>7}  {:>8.1}  {:>10}  {:>8.1}%  {:>9}  {:>10}",
                p.budget_mult,
                p.budget_pages,
                p.tok_s,
                p.rejections,
                100.0 * p.rejections as f64 / p.attempts.max(1) as f64,
                p.stats.evictions,
                p.attempts
            );
            p
        })
        .collect()
}

/// Saturated throughput of the **batched** server itself: a warm
/// back-to-back burst through `submit`, full buckets all the way down.
/// This is the rate the server cannot exceed, so offered overloads are
/// scaled against it — 2× this rate *must* grow the queue.
fn measure_batched_capacity(
    spec: &WorkloadSpec,
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
) -> f64 {
    let burst = 8 * spec.max_batch;
    let warm = spec.max_batch;
    let mut rng = Rng::new(0xBCA11B);
    let reqs: Vec<(Matrix<f32>, Matrix<f32>, Matrix<f32>)> = (0..warm + burst)
        .map(|i| {
            let (n, d) = spec.shapes[i % spec.shapes.len()];
            (
                Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
                Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
                Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            )
        })
        .collect();
    let server = AttentionServer::start(
        Arc::clone(mech),
        BatchPolicy::batched(spec.max_batch, spec.max_delay),
    );
    let submit_all = |range: std::ops::Range<usize>| {
        let handles: Vec<_> = range
            .map(|i| {
                let (q, k, v) = &reqs[i];
                server
                    .submit(q.clone(), k.clone(), v.clone())
                    .expect("capacity burst has no queue bound")
            })
            .collect();
        for h in handles {
            h.wait().expect("server alive");
        }
    };
    submit_all(0..warm);
    let t0 = Instant::now();
    submit_all(warm..warm + burst);
    let capacity = burst as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();
    capacity
}

/// One overload point: goodput, typed sheds, and served-request tails.
struct OverloadPoint {
    load_mult: f64,
    offered_rps: f64,
    requests: usize,
    served: u64,
    shed: u64,
    goodput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Offer one Poisson stream to a **depth-bounded** batched server. Every
/// submission either returns a handle or the typed `Overloaded` shed —
/// nothing blocks, nothing is silently dropped — and every admitted
/// request is served (references stay bit-identical under overload).
fn run_overload_point(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    policy: BatchPolicy,
    mult: f64,
    rate: f64,
    requests: &[Request],
) -> OverloadPoint {
    let server = AttentionServer::start(Arc::clone(mech), policy);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(requests.len());
    let mut shed = 0u64;
    for (i, req) in requests.iter().enumerate() {
        if let Some(wait) = req.arrival.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        match server.submit(req.q.clone(), req.k.clone(), req.v.clone()) {
            Ok(h) => handles.push((i, h)),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("overload submit {i} failed with non-shed error: {e}"),
        }
    }
    let mut host_ms = Vec::with_capacity(handles.len());
    for (i, h) in handles {
        let out = h.wait().expect("admitted requests are served");
        if let Some(reference) = &requests[i].reference {
            assert_bit_identical(reference, &out.output, i, "overload");
        }
        host_ms.push(out.latency.as_secs_f64() * 1e3);
    }
    let makespan = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(
        stats.overload_sheds, shed,
        "the server's shed counter must agree with the submit-side count"
    );
    let served = requests.len() as u64 - shed;
    assert_eq!(stats.served, served);
    host_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    OverloadPoint {
        load_mult: mult,
        offered_rps: rate,
        requests: requests.len(),
        served,
        shed,
        goodput_rps: served as f64 / makespan.max(1e-9),
        p50_ms: percentile(&host_ms, 50.0),
        p99_ms: percentile(&host_ms, 99.0),
    }
}

fn run_overload_sweep(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    spec: &WorkloadSpec,
    batched_capacity_rps: f64,
) -> Vec<OverloadPoint> {
    let depth = OVERLOAD_DEPTH_BATCHES * spec.max_batch;
    let policy = BatchPolicy::batched(spec.max_batch, spec.max_delay).with_queue_depth(depth);
    // 3× the latency sweep's request count: a 2× overload must outrun the
    // queue bound (backlog grows ~half the offered count), and the longer
    // stream keeps the sub-capacity point honest about steady state.
    let ospec = WorkloadSpec {
        shapes: spec.shapes.clone(),
        requests_per_load: 3 * spec.requests_per_load,
        max_batch: spec.max_batch,
        max_delay: spec.max_delay,
    };
    println!(
        "{:>6}  {:>9}  {:>8}  {:>6}  {:>9}  {:>10}  {:>10}",
        "load", "rps", "served", "shed", "shed rate", "goodput", "p99 ms"
    );
    OVERLOAD_MULTS
        .iter()
        .enumerate()
        .map(|(i, &mult)| {
            let rate = mult * batched_capacity_rps;
            let requests = build_requests(&ospec, mech.as_ref(), rate, 3000 + i as u64);
            let p = run_overload_point(mech, policy, mult, rate, &requests);
            println!(
                "{:>6.2}  {:>9.1}  {:>8}  {:>6}  {:>8.1}%  {:>10.1}  {:>10.3}",
                p.load_mult,
                p.offered_rps,
                p.served,
                p.shed,
                100.0 * p.shed as f64 / p.requests.max(1) as f64,
                p.goodput_rps,
                p.p99_ms
            );
            p
        })
        .collect()
}

/// The chaos row: a batch panic injected mid-run, measured end to end.
struct ChaosRow {
    requests: usize,
    fault_at: usize,
    served: u64,
    panicked: u64,
    post_fault_served: u64,
    batch_panics: u64,
}

/// Drive the server through an injected mid-flush kernel panic at a fixed
/// front-door ordinal: the poisoned batch fails typed, everything after it
/// is served — and the served outputs stay bit-identical on the reference
/// subset even across the recovery.
fn run_chaos_row(mech: &Arc<dyn Attention<f32> + Send + Sync>, spec: &WorkloadSpec) -> ChaosRow {
    let total = spec.requests_per_load;
    let fault_at = total / 4;
    let plan = FaultPlan::new().inject(fault_at as u64, FaultKind::PanicInBatch);
    let server = AttentionServer::start_with_faults(
        Arc::clone(mech),
        BatchPolicy::batched(spec.max_batch, spec.max_delay),
        plan,
    );
    let mut rng = Rng::new(0xC4A05);
    let mut handles = Vec::with_capacity(total);
    for i in 0..total {
        let (n, d) = spec.shapes[i % spec.shapes.len()];
        let q = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
        let reference = (i % 4 == 0).then(|| {
            let mut ctx = GpuCtx::a100();
            mech.forward(&mut ctx, &q, &k, &v)
        });
        let handle = server.submit(q, k, v).expect("no queue bound in chaos row");
        handles.push((i, handle, reference));
    }
    let (mut served, mut panicked, mut post_fault_served) = (0u64, 0u64, 0u64);
    for (i, h, reference) in handles {
        match h.wait() {
            Ok(out) => {
                served += 1;
                if i > fault_at {
                    post_fault_served += 1;
                }
                if let Some(reference) = &reference {
                    assert_bit_identical(reference, &out.output, i, "chaos");
                }
            }
            Err(ServeError::BatchPanicked { payload }) => {
                assert!(
                    payload.contains("injected kernel panic"),
                    "panic payload must carry the injected message, got: {payload}"
                );
                panicked += 1;
            }
            Err(e) => panic!("chaos request {i} failed with a non-panic error: {e}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(
        served + panicked,
        total as u64,
        "every chaos request must resolve typed"
    );
    assert!(panicked >= 1, "the injected panic must fail its batch");
    assert!(
        post_fault_served > 0,
        "requests after the poisoned batch must be served — the batcher recovered"
    );
    assert!(stats.batch_panics >= 1);
    ChaosRow {
        requests: total,
        fault_at,
        served,
        panicked,
        post_fault_served,
        batch_panics: stats.batch_panics,
    }
}

/// Socket-level sweep shape: one fixed prefill shape through the HTTP
/// front door, batched behind a bounded queue.
struct HttpSpec {
    shape: (usize, usize),
    requests_per_load: usize,
    max_batch: usize,
    max_delay: Duration,
    queue_depth: usize,
    max_connections: usize,
}

fn http_workload() -> HttpSpec {
    if quick() {
        HttpSpec {
            shape: (32, 16),
            requests_per_load: 96,
            max_batch: 8,
            max_delay: Duration::from_micros(500),
            queue_depth: 16,
            max_connections: 256,
        }
    } else {
        HttpSpec {
            shape: (64, 32),
            requests_per_load: 192,
            max_batch: 16,
            max_delay: Duration::from_millis(1),
            queue_depth: 32,
            max_connections: 256,
        }
    }
}

/// One pre-rendered wire request: raw bytes, Poisson arrival offset, and
/// (on the reference subset) the solo-forward output to bit-compare.
struct HttpRequest {
    bytes: Vec<u8>,
    arrival: Duration,
    reference: Option<Matrix<f32>>,
}

fn wire_matrix(m: &Matrix<f32>) -> WireJson {
    WireJson::Arr(
        (0..m.rows())
            .map(|i| WireJson::f32_row(&m.as_slice()[i * m.cols()..(i + 1) * m.cols()]))
            .collect(),
    )
}

/// Render one `POST` as raw HTTP/1.1 bytes. `connection: close` keeps the
/// load generator honest: every request is a full connect/serve/teardown,
/// so the server's accept counter equals the offered request count.
fn http_request_bytes(path: &str, body: &WireJson) -> Vec<u8> {
    let payload = body.render();
    let mut out = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

fn build_http_requests(
    spec: &HttpSpec,
    mech: &dyn Attention<f32>,
    rate: f64,
    seed: u64,
) -> Vec<HttpRequest> {
    let mut rng = Rng::new(seed);
    let (n, d) = spec.shape;
    let mut at = 0.0f64;
    (0..spec.requests_per_load)
        .map(|i| {
            let q = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let k = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let v = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let reference = (i % 8 == 0).then(|| {
                let mut ctx = GpuCtx::a100();
                mech.forward(&mut ctx, &q, &k, &v)
            });
            let body = WireJson::obj(vec![
                ("q", wire_matrix(&q)),
                ("k", wire_matrix(&k)),
                ("v", wire_matrix(&v)),
            ]);
            let u: f64 = rng.uniform().max(1e-12);
            at += -u.ln() / rate;
            HttpRequest {
                bytes: http_request_bytes("/v1/prefill", &body),
                arrival: Duration::from_secs_f64(at),
                reference,
            }
        })
        .collect()
}

/// One blocking wire exchange: connect, send the pre-rendered request,
/// read the typed response. Any transport failure is a bench bug, not a
/// measurement — the server must always answer typed.
fn http_exchange(addr: SocketAddr, bytes: &[u8]) -> wire::Response {
    use std::io::Write;
    let stream = TcpStream::connect(addr).expect("connect loopback");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .expect("write timeout");
    stream.set_nodelay(true).ok();
    (&stream).write_all(bytes).expect("send request");
    let mut reader = RequestReader::new(&stream);
    wire::read_response(&mut reader, &WireLimits::default()).expect("typed response")
}

/// Saturated throughput of the whole front door — parse, batch, serve,
/// render — measured with `2 × max_batch` closed-loop clients so batching
/// is fully engaged. Offered wire loads are scaled against this rate:
/// 2× of it *must* grow the bounded queue.
fn measure_http_capacity(mech: &Arc<dyn Attention<f32> + Send + Sync>, spec: &HttpSpec) -> f64 {
    let att = AttentionServer::start(
        Arc::clone(mech),
        BatchPolicy::batched(spec.max_batch, spec.max_delay),
    );
    let http = HttpServer::bind(
        att,
        HttpConfig {
            max_connections: spec.max_connections,
            ..HttpConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = http.local_addr();
    let clients = 2 * spec.max_batch;
    let per_client = 6usize;
    let mut rng = Rng::new(0x117CAB);
    let (n, d) = spec.shape;
    let bodies: Vec<Vec<u8>> = (0..clients)
        .map(|_| {
            let body = WireJson::obj(vec![
                (
                    "q",
                    wire_matrix(&Matrix::random_normal(n, d, 0.0, 1.0, &mut rng)),
                ),
                (
                    "k",
                    wire_matrix(&Matrix::random_normal(n, d, 0.0, 1.0, &mut rng)),
                ),
                (
                    "v",
                    wire_matrix(&Matrix::random_normal(n, d, 0.0, 1.0, &mut rng)),
                ),
            ]);
            http_request_bytes("/v1/prefill", &body)
        })
        .collect();
    let run_round = |reps: usize| {
        let threads: Vec<_> = bodies
            .iter()
            .map(|b| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..reps {
                        let resp = http_exchange(addr, &b);
                        assert_eq!(resp.status, 200, "capacity burst has no queue bound");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("capacity client");
        }
    };
    run_round(1); // warm: listener, threads, allocator, batcher
    let t0 = Instant::now();
    run_round(per_client);
    let capacity = (clients * per_client) as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    http.shutdown();
    capacity
}

/// One wire overload point: goodput, client-observed tails, typed 503s.
struct HttpPoint {
    load_mult: f64,
    offered_rps: f64,
    requests: usize,
    ok: u64,
    shed: u64,
    goodput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    overload_sheds: u64,
    conn_sheds: u64,
    accepted: u64,
}

/// Offer one Poisson stream over loopback sockets, one connection per
/// request. Every exchange resolves to `200` (latency recorded, reference
/// subset bit-compared) or a typed `503 Retry-After` — any other status
/// for a valid request is a front-door bug and panics the bench.
fn run_http_point(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    spec: &HttpSpec,
    mult: f64,
    rate: f64,
    requests: Vec<HttpRequest>,
) -> HttpPoint {
    let policy =
        BatchPolicy::batched(spec.max_batch, spec.max_delay).with_queue_depth(spec.queue_depth);
    let att = AttentionServer::start(Arc::clone(mech), policy);
    let http = HttpServer::bind(
        att,
        HttpConfig {
            max_connections: spec.max_connections,
            ..HttpConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = http.local_addr();
    let total = requests.len();
    let start = Instant::now();
    let mut workers = Vec::with_capacity(total);
    for req in requests {
        if let Some(wait) = req.arrival.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        workers.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let resp = http_exchange(addr, &req.bytes);
            (resp, t0.elapsed(), req.reference)
        }));
    }
    let (mut ok, mut shed) = (0u64, 0u64);
    let mut client_ms = Vec::with_capacity(total);
    for w in workers {
        let (resp, latency, reference) = w.join().expect("load-gen worker");
        match resp.status {
            200 => {
                ok += 1;
                client_ms.push(latency.as_secs_f64() * 1e3);
                if let Some(reference) = &reference {
                    let doc = WireJson::parse(&resp.body).expect("served body is JSON");
                    let rows = doc
                        .get("output")
                        .and_then(WireJson::as_arr)
                        .expect("served body carries the output matrix");
                    let got: Vec<f32> = rows
                        .iter()
                        .flat_map(|r| r.to_f32_row().expect("float rows"))
                        .collect();
                    assert_eq!(got.len(), reference.as_slice().len());
                    for (a, b) in got.iter().zip(reference.as_slice()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "HTTP prefill must stay bit-identical under load"
                        );
                    }
                }
            }
            503 => {
                assert!(
                    resp.retry_after().is_some(),
                    "typed sheds must carry Retry-After"
                );
                shed += 1;
            }
            other => panic!(
                "wire sweep answered {other}; valid requests resolve only to 200 or a typed 503"
            ),
        }
    }
    let makespan = start.elapsed().as_secs_f64();
    let stats = http.shutdown();
    assert_eq!(ok + shed, total as u64);
    assert_eq!(
        stats.overload_sheds + stats.http_connections_shed,
        shed,
        "every 503 on the wire must map to a typed shed counter"
    );
    assert_eq!(
        stats.served, ok,
        "the batcher's served count must agree with the 200s on the wire"
    );
    client_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50_ms, p99_ms) = if client_ms.is_empty() {
        (0.0, 0.0)
    } else {
        (percentile(&client_ms, 50.0), percentile(&client_ms, 99.0))
    };
    HttpPoint {
        load_mult: mult,
        offered_rps: rate,
        requests: total,
        ok,
        shed,
        goodput_rps: ok as f64 / makespan.max(1e-9),
        p50_ms,
        p99_ms,
        overload_sheds: stats.overload_sheds,
        conn_sheds: stats.http_connections_shed,
        accepted: stats.http_connections_accepted,
    }
}

fn run_http_sweep(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    spec: &HttpSpec,
    wire_capacity_rps: f64,
) -> Vec<HttpPoint> {
    println!(
        "{:>6}  {:>9}  {:>6}  {:>6}  {:>9}  {:>10}  {:>10}  {:>10}",
        "load", "rps", "ok", "shed", "shed rate", "goodput", "p50 ms", "p99 ms"
    );
    OVERLOAD_MULTS
        .iter()
        .enumerate()
        .map(|(i, &mult)| {
            let rate = mult * wire_capacity_rps;
            let requests = build_http_requests(spec, mech.as_ref(), rate, 7000 + i as u64);
            let p = run_http_point(mech, spec, mult, rate, requests);
            println!(
                "{:>6.2}  {:>9.1}  {:>6}  {:>6}  {:>8.1}%  {:>10.1}  {:>10.3}  {:>10.3}",
                p.load_mult,
                p.offered_rps,
                p.ok,
                p.shed,
                100.0 * p.shed as f64 / p.requests.max(1) as f64,
                p.goodput_rps,
                p.p50_ms,
                p.p99_ms
            );
            p
        })
        .collect()
}

/// Shard-scaling shape: request count, prefill shape, and the continuous
/// scheduler's chunk policy shared by every shard count.
struct ShardSpec {
    requests: usize,
    shape: (usize, usize),
    sched: SchedPolicy,
}

fn shard_workload() -> ShardSpec {
    if quick() {
        ShardSpec {
            requests: 16,
            shape: (96, 32),
            sched: SchedPolicy::new(24, 48),
        }
    } else {
        ShardSpec {
            requests: 32,
            shape: (256, 64),
            sched: SchedPolicy::new(64, 128),
        }
    }
}

/// What one engine actually executed in a shard-scaling point.
struct ShardLane {
    served: u64,
    prefill_chunks: u64,
    chunks_stolen: u64,
    sim_s: f64,
    goodput_rps: f64,
}

/// One shard count's measurement of the fixed saturating burst.
struct ShardPoint {
    shards: usize,
    requests: usize,
    rows_total: u64,
    wall_s: f64,
    wall_tok_s: f64,
    /// The slowest shard's accumulated simulated-device time — the
    /// fleet's device-side makespan under perfect overlap.
    sim_makespan_s: f64,
    /// `rows_total / sim_makespan_s`: the deterministic headline the
    /// monotone scaling gate runs on.
    sim_tok_s: f64,
    lanes: Vec<ShardLane>,
}

/// Drive the fixed burst through `shards` continuous engines: submit
/// everything up front (saturating — the pool is never empty until the
/// end), wait for all of it, bit-compare the reference subset against
/// unchunked solo forwards, and reconcile the per-shard counters.
fn run_shard_point(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    spec: &ShardSpec,
    shards: usize,
    requests: &[Request],
) -> ShardPoint {
    let server = ShardedServer::start(
        Arc::clone(mech),
        BatchPolicy::per_request(),
        spec.sched,
        KvConfig::default(),
        shards,
    );
    let start = Instant::now();
    let handles: Vec<_> = requests
        .iter()
        .map(|r| {
            server
                .submit(r.q.clone(), r.k.clone(), r.v.clone())
                .expect("shard sweep has no queue bound")
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let out = h.wait().expect("saturating burst requests are served");
        if let Some(reference) = &requests[i].reference {
            assert_bit_identical(reference, &out.output, i, "shards");
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    let served: u64 = stats.iter().map(|s| s.served).sum();
    assert_eq!(served, requests.len() as u64);
    let (n, _) = spec.shape;
    let min_chunks = requests.len() as u64 * (n as u64).div_ceil(spec.sched.prefill_chunk as u64);
    let chunks: u64 = stats.iter().map(|s| s.prefill_chunks).sum();
    assert!(
        chunks >= min_chunks,
        "{chunks} chunks executed for a burst needing at least {min_chunks} — chunking never engaged"
    );
    let rows_total = requests.len() as u64 * n as u64;
    let sim_makespan_s = stats
        .iter()
        .map(|s| s.total_sim_latency_s)
        .fold(0.0f64, f64::max);
    assert!(sim_makespan_s > 0.0);
    let lanes = stats
        .iter()
        .map(|s| ShardLane {
            served: s.served,
            prefill_chunks: s.prefill_chunks,
            chunks_stolen: s.chunks_stolen,
            sim_s: s.total_sim_latency_s,
            goodput_rps: s.served as f64 / wall_s.max(1e-9),
        })
        .collect();
    ShardPoint {
        shards,
        requests: requests.len(),
        rows_total,
        wall_s,
        wall_tok_s: rows_total as f64 / wall_s.max(1e-9),
        sim_makespan_s,
        sim_tok_s: rows_total as f64 / sim_makespan_s,
        lanes,
    }
}

fn run_shard_sweep(
    mech: &Arc<dyn Attention<f32> + Send + Sync>,
    spec: &ShardSpec,
) -> Vec<ShardPoint> {
    // One fixed burst, reused verbatim at every shard count.
    let mut rng = Rng::new(0x5CA1E);
    let (n, d) = spec.shape;
    let requests: Vec<Request> = (0..spec.requests)
        .map(|i| {
            let q = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let k = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let v = Matrix::random_normal(n, d, 0.0, 1.0, &mut rng);
            let reference = (i % 4 == 0).then(|| {
                let mut ctx = GpuCtx::a100();
                mech.forward(&mut ctx, &q, &k, &v)
            });
            Request {
                q,
                k,
                v,
                arrival: Duration::ZERO,
                reference,
            }
        })
        .collect();
    println!(
        "{:>7}  {:>9}  {:>12}  {:>12}  {:>12}  {:>8}",
        "shards", "requests", "sim tok/s", "wall tok/s", "makespan s", "stolen"
    );
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let p = run_shard_point(mech, spec, shards, &requests);
            println!(
                "{:>7}  {:>9}  {:>12.1}  {:>12.1}  {:>12.4}  {:>8}",
                p.shards,
                p.requests,
                p.sim_tok_s,
                p.wall_tok_s,
                p.sim_makespan_s,
                p.lanes.iter().map(|l| l.chunks_stolen).sum::<u64>()
            );
            p
        })
        .collect()
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn policy_json(r: &PolicyResult) -> Json {
    Json::obj(vec![
        ("p50_ms", Json::Num(round3(r.p50_ms))),
        ("p95_ms", Json::Num(round3(r.p95_ms))),
        ("p99_ms", Json::Num(round3(r.p99_ms))),
        ("sim_p50_ms", Json::Num(round3(r.sim_p50_ms))),
        ("mean_batch", Json::Num(round3(r.mean_batch))),
        ("throughput_rps", Json::Num(round3(r.throughput_rps))),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() > 1 {
        if args.len() != 3 || args[1] != "--check" {
            eprintln!("usage: serving [--check <artifact.json>]");
            std::process::exit(2);
        }
        if let Err(e) = check(&args[2]) {
            eprintln!("schema validation failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let spec = workload();
    let mech_concrete = DfssAttention::new(NmPattern::P1_2);
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(mech_concrete);
    let capacity_rps = measure_capacity(&spec, mech.as_ref());
    eprintln!(
        "[serving] {} mode, per-request capacity ~{capacity_rps:.1} req/s",
        if quick() { "quick" } else { "full" }
    );

    let batched_policy = BatchPolicy::batched(spec.max_batch, spec.max_delay);
    let mut rows = Vec::new();
    let mut wins = 0usize;
    println!(
        "{:>6}  {:>9}  {:>12}  {:>12}  {:>8}  {:>10}",
        "load", "rps", "base p50 ms", "batch p50 ms", "speedup", "mean batch"
    );
    for (li, &mult) in LOAD_MULTS.iter().enumerate() {
        let rate = mult * capacity_rps;
        let requests = build_requests(&spec, mech.as_ref(), rate, 1000 + li as u64);
        let baseline = run_baseline(&mech, &requests);
        let batched = run_batched(&mech, batched_policy, &requests);
        let speedup = baseline.p50_ms / batched.p50_ms.max(1e-9);
        if batched.p50_ms < baseline.p50_ms {
            wins += 1;
        }
        println!(
            "{mult:>6.2}  {rate:>9.1}  {:>12.3}  {:>12.3}  {speedup:>7.2}x  {:>10.2}",
            baseline.p50_ms, batched.p50_ms, batched.mean_batch
        );
        rows.push(Json::obj(vec![
            ("load_mult", Json::Num(mult)),
            ("offered_rps", Json::Num(round3(rate))),
            ("requests", Json::Num(requests.len() as f64)),
            ("baseline", policy_json(&baseline)),
            ("batched", policy_json(&batched)),
            ("p50_speedup", Json::Num(round3(speedup))),
        ]));
    }

    if !quick() {
        assert!(
            wins >= MIN_P50_WINS,
            "batched serving won p50 at only {wins}/{} loads (need {MIN_P50_WINS})",
            LOAD_MULTS.len()
        );
    }

    // Decode sweep: tokens/sec vs concurrent streams at several cached
    // lengths, ragged batched flush vs the per-stream solo loop.
    let dspec = decode_workload();
    eprintln!(
        "[serving] decode sweep ({} points)",
        dspec.cached_lens.len() * dspec.streams.len()
    );
    let (decode_points, decode_wins) = run_decode_sweep(&mech_concrete, &dspec);
    // The simulated-device metric is deterministic, so the gate holds in
    // both modes.
    assert!(
        decode_wins >= MIN_DECODE_WINS,
        "batched decode won tokens/sec at only {decode_wins} stream counts (need {MIN_DECODE_WINS})"
    );
    let decode_rows: Vec<Json> = decode_points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("cached_len", Json::Num(p.cached_len as f64)),
                ("streams", Json::Num(p.streams as f64)),
                ("solo_tok_s", Json::Num(round3(p.solo_tok_s))),
                ("batched_tok_s", Json::Num(round3(p.batched_tok_s))),
                (
                    "speedup",
                    Json::Num(round3(p.batched_tok_s / p.solo_tok_s.max(1e-9))),
                ),
                ("host_solo_tok_s", Json::Num(round3(p.host_solo_tok_s))),
                (
                    "host_batched_tok_s",
                    Json::Num(round3(p.host_batched_tok_s)),
                ),
            ])
        })
        .collect();

    // Memory-pressure sweep: tokens/sec and typed rejection rate against
    // shrinking KV budgets. Deterministic (single-threaded op order), so
    // the funded/starved gates hold in both modes.
    let mspec = memory_workload();
    eprintln!(
        "[serving] memory sweep ({} sessions x {} rows, working set {} pages)",
        mspec.sessions,
        mspec.target_len,
        mspec.working_set_pages()
    );
    let memory_points = run_memory_sweep(&mech, &mspec);
    for p in &memory_points {
        if p.budget_mult >= 1.0 {
            assert_eq!(
                p.rejections, 0,
                "a funded budget ({}x working set) must serve without rejections",
                p.budget_mult
            );
        }
    }
    let starved = memory_points
        .iter()
        .min_by(|a, b| a.budget_mult.partial_cmp(&b.budget_mult).unwrap())
        .expect("at least one budget point");
    assert!(
        starved.rejections > 0,
        "the starved budget ({}x working set) must surface typed back-pressure",
        starved.budget_mult
    );
    let memory_rows: Vec<Json> = memory_points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("budget_mult", Json::Num(p.budget_mult)),
                ("budget_pages", Json::Num(p.budget_pages as f64)),
                ("attempts", Json::Num(p.attempts as f64)),
                ("rejections", Json::Num(p.rejections as f64)),
                (
                    "rejection_rate",
                    Json::Num(round3(p.rejections as f64 / p.attempts.max(1) as f64)),
                ),
                ("tokens", Json::Num(p.tokens as f64)),
                ("tok_s", Json::Num(round3(p.tok_s))),
                ("evictions", Json::Num(p.stats.evictions as f64)),
                (
                    "admission_rejections",
                    Json::Num(p.stats.admission_rejections as f64),
                ),
                (
                    "kv_pages_allocated",
                    Json::Num(p.stats.kv_pages_allocated as f64),
                ),
                ("kv_pages_freed", Json::Num(p.stats.kv_pages_freed as f64)),
                ("kv_bytes_peak", Json::Num(p.stats.kv_bytes_peak as f64)),
            ])
        })
        .collect();

    // Overload sweep: the depth-bounded server against its own saturated
    // capacity. The shed gates are effectively deterministic — 0.6× of a
    // just-measured capacity drains, 2.0× cannot — so both modes assert.
    let batched_capacity_rps = measure_batched_capacity(&spec, &mech);
    eprintln!("[serving] overload sweep, batched capacity ~{batched_capacity_rps:.1} req/s");
    let overload_points = run_overload_sweep(&mech, &spec, batched_capacity_rps);
    for p in &overload_points {
        if p.load_mult < 1.0 {
            assert_eq!(
                p.shed, 0,
                "a sub-capacity load ({}x) must be served without shedding",
                p.load_mult
            );
        }
    }
    let worst = overload_points
        .iter()
        .max_by(|a, b| a.load_mult.partial_cmp(&b.load_mult).unwrap())
        .expect("at least one overload point");
    assert!(
        worst.shed > 0,
        "the {}x overload must engage the typed queue bound",
        worst.load_mult
    );
    let overload_rows: Vec<Json> = overload_points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("load_mult", Json::Num(p.load_mult)),
                ("offered_rps", Json::Num(round3(p.offered_rps))),
                ("requests", Json::Num(p.requests as f64)),
                ("served", Json::Num(p.served as f64)),
                ("shed", Json::Num(p.shed as f64)),
                (
                    "shed_rate",
                    Json::Num(round3(p.shed as f64 / p.requests.max(1) as f64)),
                ),
                ("goodput_rps", Json::Num(round3(p.goodput_rps))),
                ("p50_ms", Json::Num(round3(p.p50_ms))),
                ("p99_ms", Json::Num(round3(p.p99_ms))),
            ])
        })
        .collect();

    // Chaos row: one injected mid-flush panic; the default hook would spray
    // a "thread panicked" banner into the bench output, so silence it for
    // the duration (the panic is expected and asserted on).
    eprintln!("[serving] chaos row (injected batch panic)");
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let chaos = run_chaos_row(&mech, &spec);
    drop(std::panic::take_hook());
    std::panic::set_hook(default_hook);
    println!(
        "chaos: {} requests, fault at #{}, {} served ({} after the fault), {} failed typed, {} batch panic(s)",
        chaos.requests,
        chaos.fault_at,
        chaos.served,
        chaos.post_fault_served,
        chaos.panicked,
        chaos.batch_panics
    );

    // Shard-scaling sweep: the fixed saturating burst across 1/2/4
    // continuous engines. The monotone gate runs on the deterministic
    // simulated-device tokens/sec, full mode only (quick mode's burst is
    // small enough that a single straggler chunk can flatten a step).
    let sspec = shard_workload();
    eprintln!(
        "[serving] shard sweep ({} requests of {}x{}, chunk {} rows)",
        sspec.requests, sspec.shape.0, sspec.shape.1, sspec.sched.prefill_chunk
    );
    let shard_points = run_shard_sweep(&mech, &sspec);
    if !quick() {
        for pair in shard_points.windows(2) {
            assert!(
                pair[1].sim_tok_s > pair[0].sim_tok_s,
                "tokens/sec did not scale monotonically: {} shards -> {:.1}, {} shards -> {:.1}",
                pair[0].shards,
                pair[0].sim_tok_s,
                pair[1].shards,
                pair[1].sim_tok_s
            );
        }
    }
    let shard_rows: Vec<Json> = shard_points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("shards", Json::Num(p.shards as f64)),
                ("requests", Json::Num(p.requests as f64)),
                ("rows_total", Json::Num(p.rows_total as f64)),
                ("wall_s", Json::Num(round3(p.wall_s))),
                ("wall_tok_s", Json::Num(round3(p.wall_tok_s))),
                ("sim_makespan_s", Json::Num(p.sim_makespan_s)),
                ("sim_tok_s", Json::Num(round3(p.sim_tok_s))),
                (
                    "lanes",
                    Json::Arr(
                        p.lanes
                            .iter()
                            .enumerate()
                            .map(|(i, l)| {
                                Json::obj(vec![
                                    ("shard", Json::Num(i as f64)),
                                    ("served", Json::Num(l.served as f64)),
                                    ("prefill_chunks", Json::Num(l.prefill_chunks as f64)),
                                    ("chunks_stolen", Json::Num(l.chunks_stolen as f64)),
                                    ("sim_s", Json::Num(l.sim_s)),
                                    ("goodput_rps", Json::Num(round3(l.goodput_rps))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();

    // HTTP front-door sweep: the overload story again, measured at the
    // socket — goodput, client-observed tails, and the typed 503 shed
    // rate over loopback against the wire-measured capacity.
    let hspec = http_workload();
    let wire_capacity_rps = measure_http_capacity(&mech, &hspec);
    eprintln!("[serving] http sweep, wire capacity ~{wire_capacity_rps:.1} req/s");
    let http_points = run_http_sweep(&mech, &hspec, wire_capacity_rps);
    for p in &http_points {
        if p.load_mult < 1.0 {
            assert_eq!(
                p.shed, 0,
                "a sub-capacity wire load ({}x) must be served without 503s",
                p.load_mult
            );
        }
    }
    let worst_http = http_points
        .iter()
        .max_by(|a, b| a.load_mult.partial_cmp(&b.load_mult).unwrap())
        .expect("at least one http point");
    assert!(
        worst_http.shed > 0,
        "the {}x wire overload must shed typed 503s",
        worst_http.load_mult
    );
    let http_rows: Vec<Json> = http_points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("load_mult", Json::Num(p.load_mult)),
                ("offered_rps", Json::Num(round3(p.offered_rps))),
                ("requests", Json::Num(p.requests as f64)),
                ("ok", Json::Num(p.ok as f64)),
                ("shed", Json::Num(p.shed as f64)),
                (
                    "shed_rate",
                    Json::Num(round3(p.shed as f64 / p.requests.max(1) as f64)),
                ),
                ("goodput_rps", Json::Num(round3(p.goodput_rps))),
                ("p50_ms", Json::Num(round3(p.p50_ms))),
                ("p99_ms", Json::Num(round3(p.p99_ms))),
                ("overload_sheds", Json::Num(p.overload_sheds as f64)),
                ("conn_sheds", Json::Num(p.conn_sheds as f64)),
                ("accepted", Json::Num(p.accepted as f64)),
            ])
        })
        .collect();

    let doc = Json::obj(vec![
        ("schema_version", Json::Num(SCHEMA_VERSION)),
        ("artifact", Json::Str("bench_serving".into())),
        (
            "mode",
            Json::Str(if quick() { "quick" } else { "full" }.into()),
        ),
        ("threads", Json::Num(rayon::current_num_threads() as f64)),
        (
            "mechanism",
            Json::Str(Attention::<f32>::name(&mech_concrete)),
        ),
        ("capacity_rps", Json::Num(round3(capacity_rps))),
        (
            "policy",
            Json::obj(vec![
                ("max_batch", Json::Num(spec.max_batch as f64)),
                (
                    "max_delay_ms",
                    Json::Num(round3(spec.max_delay.as_secs_f64() * 1e3)),
                ),
            ]),
        ),
        ("p50_wins", Json::Num(wins as f64)),
        ("loads", Json::Arr(rows)),
        (
            "decode",
            Json::obj(vec![
                ("head_dim", Json::Num(dspec.head_dim as f64)),
                ("rounds", Json::Num(dspec.rounds as f64)),
                ("winning_stream_counts", Json::Num(decode_wins as f64)),
                ("rows", Json::Arr(decode_rows)),
            ]),
        ),
        (
            "memory",
            Json::obj(vec![
                ("page_elems", Json::Num(mspec.page_elems as f64)),
                ("sessions", Json::Num(mspec.sessions as f64)),
                ("target_len", Json::Num(mspec.target_len as f64)),
                ("decode_every", Json::Num(mspec.decode_every as f64)),
                ("head_dim", Json::Num(mspec.head_dim as f64)),
                (
                    "working_set_pages",
                    Json::Num(mspec.working_set_pages() as f64),
                ),
                ("rows", Json::Arr(memory_rows)),
            ]),
        ),
        (
            "overload",
            Json::obj(vec![
                (
                    "max_queue_depth",
                    Json::Num((OVERLOAD_DEPTH_BATCHES * spec.max_batch) as f64),
                ),
                (
                    "batched_capacity_rps",
                    Json::Num(round3(batched_capacity_rps)),
                ),
                ("rows", Json::Arr(overload_rows)),
            ]),
        ),
        (
            "chaos",
            Json::obj(vec![
                ("requests", Json::Num(chaos.requests as f64)),
                ("fault_at", Json::Num(chaos.fault_at as f64)),
                ("served", Json::Num(chaos.served as f64)),
                ("panicked", Json::Num(chaos.panicked as f64)),
                (
                    "post_fault_served",
                    Json::Num(chaos.post_fault_served as f64),
                ),
                ("batch_panics", Json::Num(chaos.batch_panics as f64)),
            ]),
        ),
        (
            "shards",
            Json::obj(vec![
                ("shape_n", Json::Num(sspec.shape.0 as f64)),
                ("shape_d", Json::Num(sspec.shape.1 as f64)),
                ("requests", Json::Num(sspec.requests as f64)),
                ("prefill_chunk", Json::Num(sspec.sched.prefill_chunk as f64)),
                (
                    "iter_budget_rows",
                    Json::Num(sspec.sched.iter_budget_rows as f64),
                ),
                ("rows", Json::Arr(shard_rows)),
            ]),
        ),
        (
            "http",
            Json::obj(vec![
                ("shape_n", Json::Num(hspec.shape.0 as f64)),
                ("shape_d", Json::Num(hspec.shape.1 as f64)),
                ("max_batch", Json::Num(hspec.max_batch as f64)),
                ("max_queue_depth", Json::Num(hspec.queue_depth as f64)),
                ("max_connections", Json::Num(hspec.max_connections as f64)),
                ("wire_capacity_rps", Json::Num(round3(wire_capacity_rps))),
                ("rows", Json::Arr(http_rows)),
            ]),
        ),
    ]);
    let path = results_dir().join("bench_serving.json");
    std::fs::write(&path, doc.render()).expect("write bench_serving.json");
    println!("[saved {}]", path.display());
}

/// Schema validation (`serving --check <path>`): structure always; the
/// "batched beats the per-request loop on p50 at ≥ 3 loads" acceptance gate
/// on full-mode artifacts.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} != {SCHEMA_VERSION}"));
    }
    match doc.get("artifact").and_then(Json::as_str) {
        Some("bench_serving") => {}
        other => return Err(format!("artifact {other:?} != \"bench_serving\"")),
    }
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing mode")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode `{mode}` not in {{quick, full}}"));
    }
    for field in ["threads", "capacity_rps", "p50_wins"] {
        doc.get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric {field}"))?;
    }
    doc.get("mechanism")
        .and_then(Json::as_str)
        .ok_or("missing mechanism")?;
    let policy = doc.get("policy").ok_or("missing policy")?;
    for field in ["max_batch", "max_delay_ms"] {
        policy
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric policy.{field}"))?;
    }
    let loads = doc
        .get("loads")
        .and_then(Json::as_arr)
        .ok_or("missing loads array")?;
    if loads.len() < 3 {
        return Err(format!("need >= 3 offered loads, got {}", loads.len()));
    }
    let mut wins = 0usize;
    for (i, l) in loads.iter().enumerate() {
        for field in ["load_mult", "offered_rps", "requests", "p50_speedup"] {
            let x = l
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("load {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!("load {i}: {field} = {x} not finite non-negative"));
            }
        }
        let mut p50 = [0.0f64; 2];
        for (slot, side) in ["baseline", "batched"].iter().enumerate() {
            let s = l.get(side).ok_or(format!("load {i}: missing {side}"))?;
            for field in [
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "sim_p50_ms",
                "mean_batch",
                "throughput_rps",
            ] {
                let x = s
                    .get(field)
                    .and_then(Json::as_f64)
                    .ok_or(format!("load {i}: missing numeric {side}.{field}"))?;
                if !x.is_finite() || x < 0.0 {
                    return Err(format!(
                        "load {i}: {side}.{field} = {x} not finite non-negative"
                    ));
                }
            }
            p50[slot] = s.get("p50_ms").and_then(Json::as_f64).unwrap_or(0.0);
        }
        if p50[1] < p50[0] {
            wins += 1;
        }
    }
    if mode == "full" && wins < MIN_P50_WINS {
        return Err(format!(
            "full-mode artifact: batched p50 beats baseline at only {wins}/{} loads (need {MIN_P50_WINS})",
            loads.len()
        ));
    }

    // Decode sweep section: structure always; the "batched decode beats the
    // solo loop at >= 2 stream counts" gate on full-mode artifacts.
    let decode = doc.get("decode").ok_or("missing decode section")?;
    for field in ["head_dim", "rounds", "winning_stream_counts"] {
        decode
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric decode.{field}"))?;
    }
    let drows = decode
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing decode.rows array")?;
    if drows.is_empty() {
        return Err("decode.rows is empty".into());
    }
    let mut stream_counts: Vec<u64> = Vec::new();
    for (i, r) in drows.iter().enumerate() {
        for field in [
            "cached_len",
            "streams",
            "solo_tok_s",
            "batched_tok_s",
            "speedup",
            "host_solo_tok_s",
            "host_batched_tok_s",
        ] {
            let x = r
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("decode row {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "decode row {i}: {field} = {x} not finite non-negative"
                ));
            }
        }
        let sc = r.get("streams").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        if !stream_counts.contains(&sc) {
            stream_counts.push(sc);
        }
    }
    // Recompute the winning stream counts (batched > solo at every cached
    // length of that stream count). The metric is simulated-device
    // tokens/sec — deterministic — so the gate holds for both modes.
    let decode_wins = stream_counts
        .iter()
        .filter(|&&sc| {
            drows
                .iter()
                .filter(|r| r.get("streams").and_then(Json::as_f64).unwrap_or(0.0) as u64 == sc)
                .all(|r| {
                    r.get("batched_tok_s").and_then(Json::as_f64).unwrap_or(0.0)
                        > r.get("solo_tok_s").and_then(Json::as_f64).unwrap_or(0.0)
                })
        })
        .count();
    if decode_wins < MIN_DECODE_WINS {
        return Err(format!(
            "artifact: batched decode wins tokens/sec at only {decode_wins} stream counts (need {MIN_DECODE_WINS})"
        ));
    }

    // Memory-pressure section: structure, counter reconciliation, and the
    // deterministic back-pressure gates — zero typed rejections at funded
    // budgets (multiplier >= 1), a non-zero rejection rate at the starved
    // point. Holds for both modes: the sweep's op order is single-threaded.
    let memory = doc.get("memory").ok_or("missing memory section")?;
    for field in [
        "page_elems",
        "sessions",
        "target_len",
        "decode_every",
        "head_dim",
        "working_set_pages",
    ] {
        memory
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric memory.{field}"))?;
    }
    let mrows = memory
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing memory.rows array")?;
    if mrows.len() < 2 {
        return Err(format!(
            "need >= 2 memory budget points, got {}",
            mrows.len()
        ));
    }
    let mut funded_points = 0usize;
    let mut starved: Option<(f64, f64)> = None;
    for (i, r) in mrows.iter().enumerate() {
        for field in [
            "budget_mult",
            "budget_pages",
            "attempts",
            "rejections",
            "rejection_rate",
            "tokens",
            "tok_s",
            "evictions",
            "admission_rejections",
            "kv_pages_allocated",
            "kv_pages_freed",
            "kv_bytes_peak",
        ] {
            let x = r
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("memory row {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "memory row {i}: {field} = {x} not finite non-negative"
                ));
            }
        }
        let get = |f: &str| r.get(f).and_then(Json::as_f64).unwrap_or(0.0);
        if get("kv_pages_allocated") != get("kv_pages_freed") {
            return Err(format!(
                "memory row {i}: {} pages allocated but {} freed — the sweep closes every session, the pool must drain",
                get("kv_pages_allocated"),
                get("kv_pages_freed")
            ));
        }
        let (mult, rejections) = (get("budget_mult"), get("rejections"));
        if mult >= 1.0 {
            funded_points += 1;
            if rejections > 0.0 {
                return Err(format!(
                    "memory row {i}: {rejections} rejections at a funded budget ({mult}x working set)"
                ));
            }
        }
        if starved.is_none_or(|(m, _)| mult < m) {
            starved = Some((mult, rejections));
        }
    }
    if funded_points == 0 {
        return Err("memory sweep has no funded (>= 1x working set) budget point".into());
    }
    let (starved_mult, starved_rejections) = starved.expect("rows checked non-empty");
    if starved_rejections == 0.0 {
        return Err(format!(
            "memory sweep: the starved budget ({starved_mult}x working set) shows no typed rejections"
        ));
    }

    // Overload section: structure, shed/served reconciliation, and the
    // load-shedding gates — zero typed sheds at the sub-capacity point,
    // a non-zero shed count at the heaviest (>= 2×-capacity) overload.
    let overload = doc.get("overload").ok_or("missing overload section")?;
    for field in ["max_queue_depth", "batched_capacity_rps"] {
        let x = overload
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric overload.{field}"))?;
        if !x.is_finite() || x <= 0.0 {
            return Err(format!("overload.{field} = {x} not finite positive"));
        }
    }
    let orows = overload
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing overload.rows array")?;
    if orows.len() < 3 {
        return Err(format!("need >= 3 overload points, got {}", orows.len()));
    }
    let mut lightest: Option<(f64, f64)> = None;
    let mut heaviest: Option<(f64, f64)> = None;
    for (i, r) in orows.iter().enumerate() {
        for field in [
            "load_mult",
            "offered_rps",
            "requests",
            "served",
            "shed",
            "shed_rate",
            "goodput_rps",
            "p50_ms",
            "p99_ms",
        ] {
            let x = r
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("overload row {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "overload row {i}: {field} = {x} not finite non-negative"
                ));
            }
        }
        let get = |f: &str| r.get(f).and_then(Json::as_f64).unwrap_or(0.0);
        if get("served") + get("shed") != get("requests") {
            return Err(format!(
                "overload row {i}: served {} + shed {} != requests {} — every submission resolves typed",
                get("served"),
                get("shed"),
                get("requests")
            ));
        }
        // The p99 gate: a row that served traffic must report a positive
        // p50 and a tail at or above it — a zero tail under load means
        // the row never measured, an inverted tail means the percentile
        // pipeline broke.
        if get("served") > 0.0 {
            let (p50, p99) = (get("p50_ms"), get("p99_ms"));
            if p50 <= 0.0 {
                return Err(format!(
                    "overload row {i}: served {} requests but p50_ms = {p50}",
                    get("served")
                ));
            }
            if p99 < p50 {
                return Err(format!(
                    "overload row {i}: p99_ms {p99} < p50_ms {p50} — tail inversion"
                ));
            }
        }
        let (mult, shed) = (get("load_mult"), get("shed"));
        if lightest.is_none_or(|(m, _)| mult < m) {
            lightest = Some((mult, shed));
        }
        if heaviest.is_none_or(|(m, _)| mult > m) {
            heaviest = Some((mult, shed));
        }
    }
    let (light_mult, light_shed) = lightest.expect("rows checked non-empty");
    if light_mult >= 1.0 {
        return Err(format!(
            "overload sweep has no sub-capacity point (lightest load is {light_mult}x)"
        ));
    }
    if light_shed > 0.0 {
        return Err(format!(
            "overload sweep: {light_shed} sheds at the sub-capacity ({light_mult}x) point"
        ));
    }
    let (heavy_mult, heavy_shed) = heaviest.expect("rows checked non-empty");
    if heavy_mult < 2.0 {
        return Err(format!(
            "overload sweep must reach a 2x overload (heaviest load is {heavy_mult}x)"
        ));
    }
    if heavy_shed == 0.0 {
        return Err(format!(
            "overload sweep: the {heavy_mult}x overload shows no typed sheds — the queue bound never engaged"
        ));
    }

    // Chaos section: the injected-panic row must reconcile (every request
    // resolved typed), show at least one poisoned batch, and show requests
    // served *after* the fault — recovery, not survival by luck.
    let chaos = doc.get("chaos").ok_or("missing chaos section")?;
    let cget = |f: &str| -> Result<f64, String> {
        let x = chaos
            .get(f)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric chaos.{f}"))?;
        if !x.is_finite() || x < 0.0 {
            return Err(format!("chaos.{f} = {x} not finite non-negative"));
        }
        Ok(x)
    };
    let (c_requests, c_served, c_panicked) =
        (cget("requests")?, cget("served")?, cget("panicked")?);
    let (c_post, c_batch_panics, _c_fault_at) = (
        cget("post_fault_served")?,
        cget("batch_panics")?,
        cget("fault_at")?,
    );
    if c_served + c_panicked != c_requests {
        return Err(format!(
            "chaos: served {c_served} + panicked {c_panicked} != requests {c_requests}"
        ));
    }
    if c_panicked < 1.0 || c_batch_panics < 1.0 {
        return Err(format!(
            "chaos: injected panic left no trace (panicked {c_panicked}, batch_panics {c_batch_panics})"
        ));
    }
    if c_post < 1.0 {
        return Err("chaos: nothing served after the injected panic — no recovery shown".into());
    }

    // Shard-scaling section: structure, per-lane reconciliation (every
    // request served exactly once across the fleet), and — on full-mode
    // artifacts — the monotone simulated tokens/sec gate along the
    // swept shard counts.
    let shards = doc.get("shards").ok_or("missing shards section")?;
    for field in [
        "shape_n",
        "shape_d",
        "requests",
        "prefill_chunk",
        "iter_budget_rows",
    ] {
        let x = shards
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric shards.{field}"))?;
        if !x.is_finite() || x <= 0.0 {
            return Err(format!("shards.{field} = {x} not finite positive"));
        }
    }
    let srows = shards
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing shards.rows array")?;
    if srows.len() < 2 {
        return Err(format!(
            "need >= 2 shard-scaling points, got {}",
            srows.len()
        ));
    }
    let mut scaling: Vec<(f64, f64)> = Vec::new();
    for (i, r) in srows.iter().enumerate() {
        for field in [
            "shards",
            "requests",
            "rows_total",
            "wall_s",
            "wall_tok_s",
            "sim_makespan_s",
            "sim_tok_s",
        ] {
            let x = r
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("shard row {i}: missing numeric {field}"))?;
            if !x.is_finite() || x <= 0.0 {
                return Err(format!("shard row {i}: {field} = {x} not finite positive"));
            }
        }
        let get = |f: &str| r.get(f).and_then(Json::as_f64).unwrap_or(0.0);
        let lanes = r
            .get("lanes")
            .and_then(Json::as_arr)
            .ok_or(format!("shard row {i}: missing lanes array"))?;
        if lanes.len() != get("shards") as usize {
            return Err(format!(
                "shard row {i}: {} lanes for {} shards",
                lanes.len(),
                get("shards")
            ));
        }
        let mut lane_served = 0.0;
        for (j, lane) in lanes.iter().enumerate() {
            for field in [
                "shard",
                "served",
                "prefill_chunks",
                "chunks_stolen",
                "sim_s",
                "goodput_rps",
            ] {
                let x = lane
                    .get(field)
                    .and_then(Json::as_f64)
                    .ok_or(format!("shard row {i} lane {j}: missing numeric {field}"))?;
                if !x.is_finite() || x < 0.0 {
                    return Err(format!(
                        "shard row {i} lane {j}: {field} = {x} not finite non-negative"
                    ));
                }
            }
            lane_served += lane.get("served").and_then(Json::as_f64).unwrap_or(0.0);
        }
        if lane_served != get("requests") {
            return Err(format!(
                "shard row {i}: lanes served {lane_served} != requests {} — the fleet lost or double-served a request",
                get("requests")
            ));
        }
        scaling.push((get("shards"), get("sim_tok_s")));
    }
    scaling.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    if mode == "full" {
        for pair in scaling.windows(2) {
            if pair[1].1 <= pair[0].1 {
                return Err(format!(
                    "full-mode artifact: tokens/sec not monotone over shard counts ({} shards -> {:.1}, {} shards -> {:.1})",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                ));
            }
        }
    }

    // HTTP section: the same back-pressure gates, but measured at the
    // socket — and every wire 503 must reconcile against a typed shed
    // counter (queue bound or connection cap), nothing unaccounted.
    let http = doc.get("http").ok_or("missing http section")?;
    for field in [
        "shape_n",
        "shape_d",
        "max_batch",
        "max_queue_depth",
        "max_connections",
        "wire_capacity_rps",
    ] {
        let x = http
            .get(field)
            .and_then(Json::as_f64)
            .ok_or(format!("missing numeric http.{field}"))?;
        if !x.is_finite() || x <= 0.0 {
            return Err(format!("http.{field} = {x} not finite positive"));
        }
    }
    let hrows = http
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing http.rows array")?;
    if hrows.len() < 3 {
        return Err(format!("need >= 3 http points, got {}", hrows.len()));
    }
    let mut h_lightest: Option<(f64, f64)> = None;
    let mut h_heaviest: Option<(f64, f64)> = None;
    for (i, r) in hrows.iter().enumerate() {
        for field in [
            "load_mult",
            "offered_rps",
            "requests",
            "ok",
            "shed",
            "shed_rate",
            "goodput_rps",
            "p50_ms",
            "p99_ms",
            "overload_sheds",
            "conn_sheds",
            "accepted",
        ] {
            let x = r
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("http row {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "http row {i}: {field} = {x} not finite non-negative"
                ));
            }
        }
        let get = |f: &str| r.get(f).and_then(Json::as_f64).unwrap_or(0.0);
        if get("ok") + get("shed") != get("requests") {
            return Err(format!(
                "http row {i}: ok {} + shed {} != requests {} — every exchange resolves typed",
                get("ok"),
                get("shed"),
                get("requests")
            ));
        }
        if get("overload_sheds") + get("conn_sheds") != get("shed") {
            return Err(format!(
                "http row {i}: overload_sheds {} + conn_sheds {} != shed {} — a 503 left no typed trace",
                get("overload_sheds"),
                get("conn_sheds"),
                get("shed")
            ));
        }
        // The same p99 gate as the in-process overload sweep, measured
        // at the socket.
        if get("ok") > 0.0 {
            let (p50, p99) = (get("p50_ms"), get("p99_ms"));
            if p50 <= 0.0 {
                return Err(format!(
                    "http row {i}: {} exchanges returned 200 but p50_ms = {p50}",
                    get("ok")
                ));
            }
            if p99 < p50 {
                return Err(format!(
                    "http row {i}: p99_ms {p99} < p50_ms {p50} — tail inversion"
                ));
            }
        }
        let (mult, shed) = (get("load_mult"), get("shed"));
        if h_lightest.is_none_or(|(m, _)| mult < m) {
            h_lightest = Some((mult, shed));
        }
        if h_heaviest.is_none_or(|(m, _)| mult > m) {
            h_heaviest = Some((mult, shed));
        }
    }
    let (h_light_mult, h_light_shed) = h_lightest.expect("rows checked non-empty");
    if h_light_mult >= 1.0 {
        return Err(format!(
            "http sweep has no sub-capacity point (lightest load is {h_light_mult}x)"
        ));
    }
    if h_light_shed > 0.0 {
        return Err(format!(
            "http sweep: {h_light_shed} wire sheds at the sub-capacity ({h_light_mult}x) point"
        ));
    }
    let (h_heavy_mult, h_heavy_shed) = h_heaviest.expect("rows checked non-empty");
    if h_heavy_mult < 2.0 {
        return Err(format!(
            "http sweep must reach a 2x overload (heaviest load is {h_heavy_mult}x)"
        ));
    }
    if h_heavy_shed == 0.0 {
        return Err(format!(
            "http sweep: the {h_heavy_mult}x wire overload shows no typed 503s — back-pressure never reached the socket"
        ));
    }

    // Beyond schema: re-prove the continuous path's core bit-parity
    // claim live. This is cheap, deterministic, and catches a broken
    // chunked kernel even when the checked-in artifact predates it.
    verify_chunk_parity()?;

    println!(
        "{path}: schema OK (bench_serving {mode} mode, {} loads, {wins} p50 wins, {} decode points, {decode_wins} decode stream-count wins, {} memory budgets, {starved_rejections} rejections at {starved_mult}x, {heavy_shed} sheds at {heavy_mult}x overload, {c_panicked} panicked/{c_post} served post-fault in chaos, {} shard points, {h_heavy_shed} wire 503s at {h_heavy_mult}x over http, chunk parity re-proven)",
        loads.len(),
        drows.len(),
        mrows.len(),
        srows.len()
    );
    Ok(())
}

/// `--check` side recompute: chunked, interleaved, possibly stolen
/// execution on a fresh 2-shard continuous server must reproduce the
/// unchunked solo forward bit for bit — the acceptance claim of the
/// continuous scheduler, proven live rather than trusted from the
/// artifact.
fn verify_chunk_parity() -> Result<(), String> {
    let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(DfssAttention::new(NmPattern::P1_2));
    let server = ShardedServer::start(
        Arc::clone(&mech),
        BatchPolicy::per_request(),
        // Chunks far smaller than the rows: every request is split and
        // interleaved, and with two engines over one pool some chunks
        // run stolen.
        SchedPolicy::new(16, 32),
        KvConfig::default(),
        2,
    );
    let mut rng = Rng::new(0x5EED);
    let (n, d) = (48usize, 32usize);
    let pending: Vec<_> = (0..6)
        .map(|_| {
            let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
            let handle = server
                .submit(q.clone(), k.clone(), v.clone())
                .map_err(|e| format!("chunk-parity submit failed: {e}"));
            (q, k, v, handle)
        })
        .collect();
    for (i, (q, k, v, handle)) in pending.into_iter().enumerate() {
        let served = handle?
            .wait()
            .map_err(|e| format!("chunk-parity request {i} failed: {e}"))?;
        let solo = {
            let mut ctx = GpuCtx::a100();
            mech.forward(&mut ctx, &q, &k, &v)
        };
        for (a, b) in served.output.as_slice().iter().zip(solo.as_slice()) {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "chunk-parity request {i}: chunked-interleaved output diverged from the unchunked solo forward"
                ));
            }
        }
    }
    let stats = server.shutdown();
    let chunks: u64 = stats.iter().map(|s| s.prefill_chunks).sum();
    let min_chunks = 6 * (n as u64).div_ceil(16);
    if chunks < min_chunks {
        return Err(format!(
            "chunk-parity run executed {chunks} chunks (need >= {min_chunks}) — chunking never engaged"
        ));
    }
    Ok(())
}
