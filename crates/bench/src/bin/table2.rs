//! Table 2: F1 on synthetic span-QA with and without finetuning, for
//! Transformer (float/bf16) and Dfss (1:2 float, 2:4 bf16), reproducing the
//! paper's cross-checkpoint protocol:
//!
//! * `Dfss w/o finetune`   — dense checkpoint, sparse attention.
//! * `Dfss w/ finetune`    — dense checkpoint + 2 sparse finetune epochs.
//! * `Transformer w/o ft`  — the *sparse-finetuned* checkpoint evaluated
//!   with dense attention (exactly the paper's footnote).
//! * `Transformer w/ ft`   — the dense checkpoint itself.
//!
//! Run: `cargo run -p dfss-bench --release --bin table2`

use dfss_bench::train::{eval_qa, finetune_qa, pretrain_qa};
use dfss_bench::Report;
use dfss_nmsparse::NmPattern;
use dfss_tensor::stats::MeanCi;
use dfss_transformer::{AttnKind, Precision};
use rayon::prelude::*;

#[derive(Default, Clone)]
struct Run {
    tf_float: [f64; 2], // w/o ft, w/ ft
    tf_bf16: [f64; 2],
    dfss12: [f64; 2],
    dfss24: [f64; 2],
}

fn main() {
    let quick = dfss_bench::quick();
    let seeds = dfss_bench::n_seeds(8);
    let runs: Vec<Run> = (0..seeds as u64)
        .into_par_iter()
        .map(|seed| {
            let (model, train, test) = pretrain_qa(seed, quick);
            let mut run = Run::default();

            // Dense checkpoint D evaluated everywhere.
            let mut d = model;
            run.tf_float[1] = eval_qa(&mut d, AttnKind::Full, Precision::F32, &test);
            run.dfss12[0] = eval_qa(&mut d, AttnKind::Nm(NmPattern::P1_2), Precision::F32, &test);
            run.tf_bf16[1] = eval_qa(&mut d, AttnKind::Full, Precision::Bf16, &test);
            run.dfss24[0] = eval_qa(
                &mut d,
                AttnKind::Nm(NmPattern::P2_4),
                Precision::Bf16,
                &test,
            );
            // NOTE: set_precision(Bf16) rounds the weights permanently, so
            // finetuned checkpoints fork fresh from a reloaded pretrain.
            let (mut s12, _, _) = pretrain_qa(seed, quick);
            finetune_qa(&mut s12, AttnKind::Nm(NmPattern::P1_2), &train, seed);
            run.dfss12[1] = eval_qa(
                &mut s12,
                AttnKind::Nm(NmPattern::P1_2),
                Precision::F32,
                &test,
            );
            // Paper footnote: Transformer w/o finetune = sparse checkpoint,
            // dense attention.
            run.tf_float[0] = eval_qa(&mut s12, AttnKind::Full, Precision::F32, &test);

            let (mut s24, _, _) = pretrain_qa(seed, quick);
            finetune_qa(&mut s24, AttnKind::Nm(NmPattern::P2_4), &train, seed + 100);
            run.dfss24[1] = eval_qa(
                &mut s24,
                AttnKind::Nm(NmPattern::P2_4),
                Precision::Bf16,
                &test,
            );
            run.tf_bf16[0] = eval_qa(&mut s24, AttnKind::Full, Precision::Bf16, &test);
            run
        })
        .collect();

    let col = |f: &dyn Fn(&Run) -> f64| -> MeanCi {
        let xs: Vec<f64> = runs.iter().map(f).collect();
        MeanCi::from_sample(&xs)
    };

    let mut report = Report::new(
        format!("Table 2 — F1 on synthetic span-QA (Cl=95%, {seeds} seeds)"),
        &["Model", "w/o finetune", "w/ finetune"],
    );
    report.row(vec![
        "Transformer (float)".into(),
        format!("{}", col(&|r| r.tf_float[0])),
        format!("{}", col(&|r| r.tf_float[1])),
    ]);
    report.row(vec![
        "Transformer (bfloat16)".into(),
        format!("{}", col(&|r| r.tf_bf16[0])),
        format!("{}", col(&|r| r.tf_bf16[1])),
    ]);
    report.row(vec![
        "Dfss 1:2 (float)".into(),
        format!("{}", col(&|r| r.dfss12[0])),
        format!("{}", col(&|r| r.dfss12[1])),
    ]);
    report.row(vec![
        "Dfss 2:4 (bfloat16)".into(),
        format!("{}", col(&|r| r.dfss24[0])),
        format!("{}", col(&|r| r.dfss24[1])),
    ]);
    report.emit("table2_qa_finetune");
    println!("paper shape: finetuned Dfss within one CI of the dense transformer;");
    println!("             2:4 can slightly exceed dense (attention-dropout effect).");
}
