//! Table 4: accuracy of attention mechanisms on the four LRA-style tasks
//! (ListOps / Text / Retrieval / Image), each model trained from scratch.
//!
//! Synthesizer and Linear Transformer from the paper's table are omitted
//! (no mask-equivalent; documented in EXPERIMENTS.md); Longformer, BigBird,
//! Reformer, Routing, Sinkhorn, Local, Sparse(fixed), Linformer, Performer,
//! Nyströmformer and both Dfss variants are covered.
//!
//! Run: `cargo run -p dfss-bench --release --bin table4`

use dfss_bench::train::train_eval_lra;
use dfss_bench::Report;
use dfss_nmsparse::NmPattern;
use dfss_tasks::{image, listops, retrieval, textcls, ClsDataset};
use dfss_transformer::{AttnKind, Precision};
use rayon::prelude::*;

fn mechanisms() -> Vec<(&'static str, AttnKind, Precision)> {
    vec![
        ("Transformer (float)", AttnKind::Full, Precision::F32),
        ("Transformer (bfloat16)", AttnKind::Full, Precision::Bf16),
        ("Local Attention", AttnKind::Local(16), Precision::F32),
        (
            "Sparse Trans. (fixed)",
            AttnKind::FixedPrefix(0.35),
            Precision::F32,
        ),
        (
            "Longformer",
            AttnKind::Longformer {
                window: 16,
                global_tokens: 2,
            },
            Precision::F32,
        ),
        (
            "Linformer",
            AttnKind::Linformer { proj: 16 },
            Precision::F32,
        ),
        (
            "Reformer",
            AttnKind::LshChunks {
                chunk: 16,
                buckets: 8,
                seed: 11,
            },
            Precision::F32,
        ),
        (
            "Sinkhorn Trans.",
            AttnKind::SinkhornBlocks { block: 16 },
            Precision::F32,
        ),
        (
            "BigBird",
            AttnKind::BigBird { block: 8, seed: 13 },
            Precision::F32,
        ),
        (
            "Performer",
            AttnKind::Performer {
                features: 64,
                seed: 17,
            },
            Precision::F32,
        ),
        (
            "Routing Trans.",
            AttnKind::Cluster {
                clusters: 8,
                seed: 19,
            },
            Precision::F32,
        ),
        (
            "Nystromformer",
            AttnKind::Nystrom { landmarks: 16 },
            Precision::F32,
        ),
        (
            "Dfss 1:2 (float)",
            AttnKind::Nm(NmPattern::P1_2),
            Precision::F32,
        ),
        (
            "Dfss 2:4 (bfloat16)",
            AttnKind::Nm(NmPattern::P2_4),
            Precision::Bf16,
        ),
    ]
}

fn main() {
    let quick = dfss_bench::quick();
    let (n_train, n_test, epochs, d_model) = if quick {
        (200, 60, 4, 32)
    } else {
        (500, 150, 8, 48)
    };

    // Scaled-down LRA suite (lengths reduced for CPU training; DESIGN.md §2).
    let tasks: Vec<(&'static str, ClsDataset)> = vec![
        ("ListOps", listops::generate(n_train, n_test, 48, 100)),
        (
            "Text",
            textcls::generate(
                &textcls::TextClsConfig {
                    seq_len: 64,
                    ..Default::default()
                },
                n_train,
                n_test,
                101,
            ),
        ),
        (
            "Retrieval",
            retrieval::generate(
                &retrieval::RetrievalConfig {
                    seq_len: 96,
                    ..Default::default()
                },
                n_train,
                n_test,
                102,
            ),
        ),
        (
            "Image",
            image::generate(
                &image::ImageConfig {
                    edge: 12,
                    classes: 6,
                    noise: 0.8,
                },
                n_train,
                n_test,
                103,
            )
            .expect("static config within MAX_CLASSES"),
        ),
    ];

    // All (mechanism, task) runs are independent → parallel fan-out.
    let mech_list = mechanisms();
    let jobs: Vec<(usize, usize)> = (0..mech_list.len())
        .flat_map(|m| (0..tasks.len()).map(move |t| (m, t)))
        .collect();
    let results: Vec<((usize, usize), f64)> = jobs
        .par_iter()
        .map(|&(m, t)| {
            let (_, kind, prec) = mech_list[m];
            let acc = train_eval_lra(&tasks[t].1, kind, prec, d_model, epochs, 7 + m as u64);
            ((m, t), acc)
        })
        .collect();

    let mut table = vec![vec![0.0f64; tasks.len()]; mech_list.len()];
    for ((m, t), acc) in results {
        table[m][t] = acc;
    }

    let mut report = Report::new(
        "Table 4 — accuracy on the scaled LRA-style suite (trained from scratch)",
        &["Model", "ListOps", "Text", "Retrieval", "Image", "Avg"],
    );
    for (m, (name, _, _)) in mech_list.iter().enumerate() {
        let avg: f64 = table[m].iter().sum::<f64>() / tasks.len() as f64;
        report.row(vec![
            name.to_string(),
            format!("{:.2}", table[m][0]),
            format!("{:.2}", table[m][1]),
            format!("{:.2}", table[m][2]),
            format!("{:.2}", table[m][3]),
            format!("{avg:.2}"),
        ]);
    }
    report.emit("table4_lra_accuracy");
    println!("paper shape: Dfss 1:2/2:4 match or beat the dense transformer's average");
    println!("             (51.41/51.67 vs 51.21) while most efficient baselines trail it.");
}
