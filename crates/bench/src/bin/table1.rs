//! Table 1: F1 without finetuning on the synthetic span-QA task (the SQuAD
//! v1.1 stand-in): a dense-trained model evaluated with full, 1:2 and 2:4
//! attention, mean ± 95% CI over seeds.
//!
//! Run: `cargo run -p dfss-bench --release --bin table1`

use dfss_bench::train::{eval_qa, pretrain_qa};
use dfss_bench::Report;
use dfss_nmsparse::NmPattern;
use dfss_tensor::stats::MeanCi;
use dfss_transformer::{AttnKind, Precision};
use rayon::prelude::*;

fn main() {
    let quick = dfss_bench::quick();
    let seeds = dfss_bench::n_seeds(8);
    let runs: Vec<(f64, f64, f64)> = (0..seeds as u64)
        .into_par_iter()
        .map(|seed| {
            let (mut model, _train, test) = pretrain_qa(seed, quick);
            let full = eval_qa(&mut model, AttnKind::Full, Precision::F32, &test);
            let s12 = eval_qa(
                &mut model,
                AttnKind::Nm(NmPattern::P1_2),
                Precision::F32,
                &test,
            );
            let s24 = eval_qa(
                &mut model,
                AttnKind::Nm(NmPattern::P2_4),
                Precision::F32,
                &test,
            );
            (full, s12, s24)
        })
        .collect();

    let full: Vec<f64> = runs.iter().map(|r| r.0).collect();
    let s12: Vec<f64> = runs.iter().map(|r| r.1).collect();
    let s24: Vec<f64> = runs.iter().map(|r| r.2).collect();

    let mut report = Report::new(
        format!("Table 1 — F1 w/o finetune on synthetic span-QA (Cl=95%, {seeds} seeds)"),
        &["Full", "1:2", "2:4"],
    );
    report.row(vec![
        format!("{}", MeanCi::from_sample(&full)),
        format!("{}", MeanCi::from_sample(&s12)),
        format!("{}", MeanCi::from_sample(&s24)),
    ]);
    report.emit("table1_qa_no_finetune");

    let f = MeanCi::from_sample(&full);
    let drop12 = f.mean - MeanCi::from_sample(&s12).mean;
    let drop24 = f.mean - MeanCi::from_sample(&s24).mean;
    println!("F1 drop vs dense: 1:2 {drop12:+.2}, 2:4 {drop24:+.2}");
    println!("paper: the no-finetune loss is within about one CI of the dense model");
    println!("       (93.17±0.27 → 92.86±0.22 / 93.00±0.16), with 2:4 ≥ 1:2.");
}
