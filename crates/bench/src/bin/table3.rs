//! Table 3: masked-LM perplexity on the two synthetic corpora (WikiText-2 /
//! WikiText-103 stand-ins), with and without finetuning.
//!
//! Run: `cargo run -p dfss-bench --release --bin table3`

use dfss_bench::train::{eval_mlm, finetune_mlm, pretrain_mlm};
use dfss_bench::Report;
use dfss_nmsparse::NmPattern;
use dfss_tasks::mlm;
use dfss_tensor::stats::MeanCi;
use dfss_transformer::{AttnKind, Precision};
use rayon::prelude::*;

#[derive(Default, Clone)]
struct Run {
    tf_float: [f64; 2],
    tf_bf16: [f64; 2],
    dfss12: [f64; 2],
    dfss24: [f64; 2],
}

fn corpus_rows(cfg: mlm::MlmConfig, label: &str, report: &mut Report, seeds: usize, quick: bool) {
    let runs: Vec<Run> = (0..seeds as u64)
        .into_par_iter()
        .map(|seed| {
            let lang = mlm::Language::new(cfg, 500 + seed);
            let (mut d, train, test) = pretrain_mlm(&lang, seed, quick);
            let mut run = Run::default();
            run.tf_float[1] = eval_mlm(&mut d, AttnKind::Full, Precision::F32, &test);
            run.dfss12[0] = eval_mlm(&mut d, AttnKind::Nm(NmPattern::P1_2), Precision::F32, &test);
            run.tf_bf16[1] = eval_mlm(&mut d, AttnKind::Full, Precision::Bf16, &test);
            run.dfss24[0] = eval_mlm(
                &mut d,
                AttnKind::Nm(NmPattern::P2_4),
                Precision::Bf16,
                &test,
            );

            let (mut s12, _, _) = pretrain_mlm(&lang, seed, quick);
            finetune_mlm(&mut s12, AttnKind::Nm(NmPattern::P1_2), &train, seed);
            run.dfss12[1] = eval_mlm(
                &mut s12,
                AttnKind::Nm(NmPattern::P1_2),
                Precision::F32,
                &test,
            );
            run.tf_float[0] = eval_mlm(&mut s12, AttnKind::Full, Precision::F32, &test);

            let (mut s24, _, _) = pretrain_mlm(&lang, seed, quick);
            finetune_mlm(&mut s24, AttnKind::Nm(NmPattern::P2_4), &train, seed + 50);
            run.dfss24[1] = eval_mlm(
                &mut s24,
                AttnKind::Nm(NmPattern::P2_4),
                Precision::Bf16,
                &test,
            );
            run.tf_bf16[0] = eval_mlm(&mut s24, AttnKind::Full, Precision::Bf16, &test);
            run
        })
        .collect();

    let col = |f: &dyn Fn(&Run) -> f64| -> MeanCi {
        let xs: Vec<f64> = runs.iter().map(f).collect();
        MeanCi::from_sample(&xs)
    };
    for (model, wo, w) in [
        (
            "Transformer (float)",
            col(&|r| r.tf_float[0]),
            col(&|r| r.tf_float[1]),
        ),
        (
            "Transformer (bfloat16)",
            col(&|r| r.tf_bf16[0]),
            col(&|r| r.tf_bf16[1]),
        ),
        (
            "Dfss 1:2 (float)",
            col(&|r| r.dfss12[0]),
            col(&|r| r.dfss12[1]),
        ),
        (
            "Dfss 2:4 (bfloat16)",
            col(&|r| r.dfss24[0]),
            col(&|r| r.dfss24[1]),
        ),
    ] {
        report.row(vec![
            label.into(),
            model.into(),
            format!("{wo}"),
            format!("{w}"),
        ]);
    }
}

fn main() {
    let quick = dfss_bench::quick();
    let seeds = dfss_bench::n_seeds(8);
    let mut report = Report::new(
        format!("Table 3 — masked-LM perplexity (Cl=95%, {seeds} seeds)"),
        &["corpus", "Model", "w/o finetune", "w/ finetune"],
    );
    corpus_rows(
        mlm::MlmConfig::wikitext2_like(),
        "synthetic-wiki2",
        &mut report,
        seeds,
        quick,
    );
    corpus_rows(
        mlm::MlmConfig::wikitext103_like(),
        "synthetic-wiki103",
        &mut report,
        seeds,
        quick,
    );
    report.emit("table3_mlm_perplexity");
    println!("paper shape: Dfss perplexities on par with the dense transformer");
    println!("             (2.88 vs 2.85 on WikiText-2; 2.63-2.64 on WikiText-103).");
}
