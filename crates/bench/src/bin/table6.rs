//! Table 6 (A.7): combining Dfss with Nyströmformer on the Image task —
//! pretrain a standard Nyströmformer, then finetune for 1/10 of the
//! training budget under {Nyström, Nyström+Dfss 1:2, Nyström+Dfss 2:4}.
//!
//! Run: `cargo run -p dfss-bench --release --bin table6`

use dfss_bench::Report;
use dfss_nmsparse::NmPattern;
use dfss_tasks::protocol::{eval_classifier, train_classifier, TrainSpec};
use dfss_tasks::retrieval;
use dfss_tensor::Rng;
use dfss_transformer::heads::ClassifierHead;
use dfss_transformer::{AttnKind, Encoder, EncoderConfig, Precision};
use rayon::prelude::*;

fn main() {
    let quick = dfss_bench::quick();
    let (n_train, n_test, epochs, d_model) = if quick {
        (200, 60, 4, 32)
    } else {
        (500, 200, 8, 48)
    };
    // The paper runs this on LRA-Image; our procedural image task saturates
    // at ~100% for every mechanism (no contrast), so we use the Retrieval
    // task, which sits in the paper's unsaturated ~40–70% regime
    // (substitution documented in EXPERIMENTS.md).
    let ds = retrieval::generate(
        &retrieval::RetrievalConfig {
            seq_len: 96,
            topic_strength: 0.25,
            ..Default::default()
        },
        n_train,
        n_test,
        300,
    );

    let base = AttnKind::Nystrom { landmarks: 16 };
    let cfg = EncoderConfig {
        vocab: ds.vocab,
        max_len: ds.seq_len,
        d_model,
        heads: 2,
        d_ffn: d_model * 2,
        layers: 2,
        kind: base,
    };

    // Pretrain the standard Nyströmformer.
    let mut rng = Rng::new(1);
    let mut enc = Encoder::new(cfg.clone(), &mut rng);
    let mut head = ClassifierHead::new(d_model, ds.classes, &mut rng);
    let mut spec = TrainSpec::quick(epochs, ds.train.len(), 16);
    spec.adam.lr = 1.5e-3;
    let _ = train_classifier(&mut enc, &mut head, &ds.train, &spec);
    let pretrain_acc = 100.0 * eval_classifier(&mut enc, &mut head, &ds.test);

    // Finetune for ~1/4 of the budget under each combination (the paper's
    // 3,500-of-35,000-iteration protocol, scaled to our epoch counts).
    let ft_epochs = (epochs / 4).max(2);
    let mut report = Report::new(
        "Table 6 — Nystromformer ± Dfss on the Retrieval task (accuracy, %)",
        &["Model", "Pretraining", "Finetuning"],
    );
    let variants: Vec<(&str, AttnKind, Precision)> = vec![
        ("Nystromformer (float)", base, Precision::F32),
        ("Nystromformer (bfloat16)", base, Precision::Bf16),
        (
            "Nystromformer + Dfss 1:2 (float)",
            AttnKind::NystromNm {
                landmarks: 16,
                pattern: NmPattern::P1_2,
            },
            Precision::F32,
        ),
        (
            "Nystromformer + Dfss 2:4 (bfloat16)",
            AttnKind::NystromNm {
                landmarks: 16,
                pattern: NmPattern::P2_4,
            },
            Precision::Bf16,
        ),
    ];

    let rows: Vec<(usize, &str, f64)> = variants
        .into_par_iter()
        .enumerate()
        .map(|(i, (name, kind, prec))| {
            // Re-train the pretrain phase deterministically (cheap
            // substitute for checkpoint serialisation), then finetune under
            // the variant.
            let mut rng = Rng::new(1);
            let mut enc_i = Encoder::new(
                EncoderConfig {
                    kind: base,
                    ..cfg.clone()
                },
                &mut rng,
            );
            let mut head_i = ClassifierHead::new(d_model, ds.classes, &mut rng);
            let mut spec_i = TrainSpec::quick(epochs, ds.train.len(), 16);
            spec_i.adam.lr = 1.5e-3;
            let _ = train_classifier(&mut enc_i, &mut head_i, &ds.train, &spec_i);

            enc_i.set_attention(kind);
            let mut ft_spec = TrainSpec::quick(ft_epochs, ds.train.len(), 16);
            ft_spec.adam.lr = 5e-4;
            ft_spec.shuffle_seed = 77 + i as u64;
            let _ = train_classifier(&mut enc_i, &mut head_i, &ds.train, &ft_spec);
            enc_i.set_precision(prec);
            let acc = 100.0 * eval_classifier(&mut enc_i, &mut head_i, &ds.test);
            (i, name, acc)
        })
        .collect();
    for (i, name, acc) in rows {
        report.row(vec![
            name.into(),
            if i == 0 {
                format!("{pretrain_acc:.2}")
            } else {
                "-".into()
            },
            format!("{acc:.2}"),
        ]);
    }
    report.emit("table6_nystrom_dfss");
    println!("paper shape: Nystrom + Dfss finetunes to ≥ the plain Nystromformer");
    println!("             (41.52 → 41.91 / 42.54 on LRA Image).");
}
