//! Appendix A.5: MSE of the Dfss-masked softmax kernel vs Performer's
//! positive softmax kernel — closed forms (Eqs 30–31) plus a Monte-Carlo
//! check of the Dfss expression.
//!
//! Run: `cargo run -p dfss-bench --release --bin mse_performer`

use dfss_bench::Report;
use dfss_core::theory::{mse_dfss_1_2, mse_performer_bound, speedup_performer};
use dfss_tensor::Rng;

/// Monte-Carlo estimate of MSE(SM̂₁:₂): draw k' ~ N(0, I_d); the estimator
/// zeroes SM(q,k) whenever qᵀk < qᵀk', i.e. the adjacent key wins the 1:2
/// comparison (Equation 28).
fn mc_mse_dfss(sm: f64, q_norm: f64, d: f64, samples: usize, rng: &mut Rng) -> f64 {
    // qᵀk is fixed by sm: qᵀk = √d · ln(sm). qᵀk' ~ N(0, ‖q‖²).
    let qk = d.sqrt() * sm.ln();
    let mut acc = 0.0f64;
    for _ in 0..samples {
        let qk2 = rng.gaussian() * q_norm;
        if qk2 > qk {
            acc += sm * sm; // estimator returns 0, error = SM².
        }
    }
    acc / samples as f64
}

fn main() {
    let d = 64.0f64;
    let m = 266.0;
    let q_norm = d.sqrt(); // E‖q‖ for q ~ N(0, I_d)
    let k_norm = d.sqrt();
    let mut rng = Rng::new(7);

    let mut report = Report::new(
        "A.5 — normalised MSE of kernel approximations (d=64, m=266)",
        &[
            "SM(q,k)",
            "dfss_mse/SM^2 (closed)",
            "dfss_mse/SM^2 (monte-carlo)",
            "performer_bound/SM^2",
        ],
    );
    for sm in [0.01f64, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0] {
        let closed = mse_dfss_1_2(sm, q_norm, d) / (sm * sm);
        let mc = mc_mse_dfss(sm, q_norm, d, 200_000, &mut rng) / (sm * sm);
        let perf = mse_performer_bound(sm, q_norm, k_norm, d, m) / (sm * sm);
        report.row(vec![
            format!("{sm}"),
            format!("{closed:.6}"),
            format!("{mc:.6}"),
            format!("{perf:.3e}"),
        ]);
    }
    report.emit("a5_mse_comparison");

    let mut sp = Report::new(
        "A.5 — Performer speedup crossovers (Eq 33)",
        &["n", "performer_speedup", "note"],
    );
    for n in [512.0, 672.0, 700.0, 1002.0, 1100.0, 2048.0, 4096.0] {
        let s = speedup_performer(n, d, 128.0, m);
        let note = if s < 1.0 {
            "slower than dense"
        } else if s < 1.4953 {
            "faster than dense, slower than Dfss"
        } else {
            "faster than Dfss"
        };
        sp.row(vec![format!("{n}"), format!("{s:.3}"), note.into()]);
    }
    sp.emit("a5_performer_speedup");
    println!("paper: Performer speedup > 1 needs n > 672; it passes Dfss only at n > 1002.");
    println!("       Dfss's normalised MSE *shrinks* on large kernel values; Performer's grows.");
}
