//! `speedup` — exec-mode kernel wall-clock benchmark.
//!
//! Unlike the figure/table binaries (which report *simulated device* latency),
//! this measures the real CPU time of the executed kernels across the paper's
//! size grid and emits a stable JSON artifact, `results/bench_kernels.json`,
//! that perf PRs are diffed against.
//!
//! Modes and knobs:
//! * `DFSS_QUICK=1` — small grid + short sampling (the CI smoke mode).
//! * `DFSS_BENCH_BASELINE=<path>` — a previous `bench_kernels.json`; each
//!   entry gains `baseline_mean_ms` and `speedup` fields computed against it.
//! * `DFSS_RESULTS=<dir>` — output directory (default `results/`).
//! * `DFSS_BENCH_PASSES=<n>` — full passes over the grid (default 3; quick
//!   mode 1); samples accumulate per kernel across passes.
//! * `DFSS_BENCH_SAMPLE_CACHE=<path>` — persist raw samples across
//!   *invocations*: previous samples are loaded and merged before stats are
//!   computed, and the union is written back. This is how the checked-in
//!   artifact pair is produced — alternating seed-build and current-build
//!   invocations so host-load drift hits both sides equally (see README
//!   "Performance").
//! * `speedup --check <path>` — validate an artifact against its schema
//!   (`bench_kernels` or `bench_attention`, dispatched on the `artifact`
//!   field) and exit non-zero on violation (used by the CI bench-smoke job).
//!
//! Besides the kernel grid, the run measures a **batched-attention
//! section**: exec-mode Dfss multi-head forward over the §5.2 B×H grid,
//! batched (one launch per op across the whole stack) vs the per-head loop,
//! emitted as `results/bench_attention.json` so the trajectory tooling can
//! track batched-vs-looped speedups across PRs.
//!
//! Schema 2.0 adds a **`simd` section** to `bench_kernels.json`: each kernel
//! family timed under the forced-scalar backend vs the runtime-dispatched
//! one (interleaved, min-based speedup), plus decode tokens/sec against
//! cache length for f32 vs bf16-quantised KV. In full mode `--check` gates
//! on it: no family may regress past the noise floor, at least one family
//! must clear 1.3x, and bf16 decode must beat f32 at the longest cache.

use dfss_bench::json::Json;
use dfss_bench::{quick, results_dir, Report};
use dfss_core::{Attention, DfssAttention};
use dfss_gpusim::Stage;
use dfss_kernels::simd::{self, Backend};
use dfss_kernels::{gemm, sddmm, softmax, spmm, GpuCtx};
use dfss_nmsparse::{NmCompressed, NmPattern};
use dfss_tensor::{BatchedMatrix, Bf16, Matrix, RaggedBatch, Rng};
use std::hint::black_box;
use std::time::Instant;

const SCHEMA_VERSION: f64 = 2.0;
const HEAD_DIM: usize = 64;

/// One measured configuration.
struct Measurement {
    kernel: &'static str,
    n: usize,
    d: usize,
    samples: Vec<f64>, // seconds per call
    work_elems: u64,   // logical elements processed per call (throughput unit)
}

impl Measurement {
    /// (min, mean, p50, p95, p99) in seconds per call.
    fn stats(&self) -> (f64, f64, f64, f64, f64) {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        (sorted[0], mean, pct(50.0), pct(95.0), pct(99.0))
    }
}

/// Time one kernel closure: warm-up call doubles as the pilot that sizes the
/// sample count to a wall-clock budget.
/// `DFSS_BENCH_ONLY=<kernel>` restricts measurement to one kernel (A/B
/// investigation aid); unset measures everything.
fn kernel_enabled(kernel: &str) -> bool {
    match std::env::var("DFSS_BENCH_ONLY") {
        Ok(only) => only == kernel,
        Err(_) => true,
    }
}

fn measure(
    kernel: &'static str,
    n: usize,
    d: usize,
    work_elems: u64,
    mut f: impl FnMut(),
) -> Measurement {
    if !kernel_enabled(kernel) {
        return Measurement {
            kernel,
            n,
            d,
            samples: Vec::new(),
            work_elems,
        };
    }
    let budget_s = if quick() { 0.15 } else { 0.6 };
    let t0 = Instant::now();
    f(); // warm-up + pilot
    let pilot = t0.elapsed().as_secs_f64().max(1e-9);
    let target = ((budget_s / pilot) as usize).clamp(3, if quick() { 8 } else { 30 });
    let mut samples = Vec::with_capacity(target);
    for _ in 0..target {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    Measurement {
        kernel,
        n,
        d,
        samples,
        work_elems,
    }
}

/// Number of full passes over the size grid; samples accumulate per kernel
/// across passes. Spreading a kernel's samples over several minutes keeps
/// the per-entry p50 (the statistic speedups are computed on) robust against
/// sustained interference on shared hosts (a bad minute can no longer cover
/// one kernel's whole window).
fn passes() -> usize {
    std::env::var("DFSS_BENCH_PASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick() { 1 } else { 3 })
        .max(1)
}

/// Load previously cached raw samples (see `DFSS_BENCH_SAMPLE_CACHE`).
fn load_sample_cache(path: &str) -> Vec<Measurement> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        eprintln!("[speedup] ignoring unparseable sample cache {path}");
        return Vec::new();
    };
    let mut out = Vec::new();
    let Some(entries) = doc.get("entries").and_then(Json::as_arr) else {
        return Vec::new();
    };
    for e in entries {
        let (Some(kernel), Some(n), Some(d), Some(work), Some(samples)) = (
            e.get("kernel").and_then(Json::as_str),
            e.get("n").and_then(Json::as_f64),
            e.get("d").and_then(Json::as_f64),
            e.get("work_elems").and_then(Json::as_f64),
            e.get("samples_s").and_then(Json::as_arr),
        ) else {
            continue;
        };
        // Interned kernel names: samples only merge into configs the current
        // grid also measures, so leaking the &'static str is bounded.
        let kernel: &'static str = match kernel {
            "gemm_nt" => "gemm_nt",
            "gemm_nn" => "gemm_nn",
            "sddmm_nm_fused" => "sddmm_nm_fused",
            "softmax_dense" => "softmax_dense",
            "softmax_nm" => "softmax_nm",
            "spmm_nm" => "spmm_nm",
            _ => continue,
        };
        out.push(Measurement {
            kernel,
            n: n as usize,
            d: d as usize,
            samples: samples.iter().filter_map(Json::as_f64).collect(),
            work_elems: work as u64,
        });
    }
    out
}

/// Write the union of raw samples back to the cache.
fn save_sample_cache(path: &str, measurements: &[Measurement]) {
    let entries: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("kernel", Json::Str(m.kernel.into())),
                ("n", Json::Num(m.n as f64)),
                ("d", Json::Num(m.d as f64)),
                ("work_elems", Json::Num(m.work_elems as f64)),
                (
                    "samples_s",
                    Json::Arr(m.samples.iter().map(|&x| Json::Num(x)).collect()),
                ),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("artifact", Json::Str("bench_samples".into())),
        ("entries", Json::Arr(entries)),
    ]);
    if let Err(e) = std::fs::write(path, doc.render()) {
        eprintln!("[speedup] could not write sample cache {path}: {e}");
    }
}

fn run_grid() -> Vec<Measurement> {
    let sizes: &[usize] = if quick() {
        &[128, 256]
    } else {
        &[256, 512, 1024, 2048]
    };
    let d = HEAD_DIM;
    let mut out: Vec<Measurement> = Vec::new();
    let passes = passes();
    for pass in 0..passes {
        let mut pass_out = run_grid_pass(sizes, d, pass, passes);
        for m in pass_out.drain(..) {
            match out
                .iter_mut()
                .find(|o| o.kernel == m.kernel && o.n == m.n && o.d == m.d)
            {
                Some(existing) => existing.samples.extend(m.samples),
                None => out.push(m),
            }
        }
    }
    out
}

fn run_grid_pass(sizes: &[usize], d: usize, pass: usize, passes: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &n in sizes {
        let mut rng = Rng::new(n as u64);
        let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let scores = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&scores, NmPattern::P1_2);

        eprintln!("[speedup] pass {}/{passes}: n = {n} ...", pass + 1);
        out.push(measure("gemm_nt", n, d, (n * n * d) as u64, || {
            let mut ctx = GpuCtx::a100();
            black_box(gemm::gemm_nt(&mut ctx, Stage::Qk, &q, &k, 0.125));
        }));
        out.push(measure("gemm_nn", n, d, (n * n * d) as u64, || {
            let mut ctx = GpuCtx::a100();
            black_box(gemm::gemm_nn(&mut ctx, Stage::Av, &scores, &v));
        }));
        out.push(measure("sddmm_nm_fused", n, d, (n * n * d) as u64, || {
            let mut ctx = GpuCtx::a100();
            black_box(sddmm::sddmm_nm_fused(
                &mut ctx,
                &q,
                &k,
                0.125,
                NmPattern::P1_2,
            ));
        }));
        out.push(measure("softmax_dense", n, d, (n * n) as u64, || {
            let mut ctx = GpuCtx::a100();
            black_box(softmax::softmax_dense(&mut ctx, &scores));
        }));
        // Clone once outside the timed closure: re-normalising the same
        // buffer runs the identical per-row work (max/exp/sum/scale over the
        // same lengths) without timing an 8 MB memcpy alongside the kernel.
        let mut softmax_comp = comp.clone();
        out.push(measure("softmax_nm", n, d, (n * n / 2) as u64, || {
            let mut ctx = GpuCtx::a100();
            softmax::softmax_nm(&mut ctx, &mut softmax_comp);
            black_box(&mut softmax_comp);
        }));
        out.push(measure("spmm_nm", n, d, (n * n / 2 * d) as u64, || {
            let mut ctx = GpuCtx::a100();
            black_box(spmm::spmm_nm(&mut ctx, &comp, &v));
        }));
    }
    out
}

/// One batched-attention configuration: interleaved samples of the
/// per-head-looped and natively batched exec-mode Dfss forward.
struct AttnMeasurement {
    n: usize,
    d: usize,
    bh: usize,
    looped_s: Vec<f64>,
    batched_s: Vec<f64>,
}

fn stats_of(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = sorted[(sorted.len() - 1) / 2];
    (sorted[0], p50)
}

/// Measure the batched-attention section over the §5.2 B×H grid: the same
/// B×H panel stack runs through `forward_batched` (one launch per op) and
/// through a per-head `forward` loop, alternating so host-load drift hits
/// both sides equally. Outputs are bit-identical (asserted once per
/// config); only wall-clock differs.
fn run_attention_grid() -> Vec<AttnMeasurement> {
    let d = HEAD_DIM;
    let grid: &[(usize, usize)] = if quick() {
        &[(256, 8)]
    } else {
        // (n, B×H): the acceptance gate shape (512, 64) plus a longer
        // sequence at the same batch volume.
        &[(512, 64), (1024, 64)]
    };
    let samples = if quick() { 3 } else { 7 };
    let mech = DfssAttention::new(NmPattern::P1_2);
    let mut out = Vec::new();
    for &(n, bh) in grid {
        let mut rng = Rng::new((n + bh) as u64);
        let qb = BatchedMatrix::<f32>::random_normal(bh, n, d, 0.0, 1.0, &mut rng);
        let kb = BatchedMatrix::<f32>::random_normal(bh, n, d, 0.0, 1.0, &mut rng);
        let vb = BatchedMatrix::<f32>::random_normal(bh, n, d, 0.0, 1.0, &mut rng);
        let panels: Vec<(Matrix<f32>, Matrix<f32>, Matrix<f32>)> = (0..bh)
            .map(|b| (qb.to_panel(b), kb.to_panel(b), vb.to_panel(b)))
            .collect();

        let run_looped = || {
            let mut outs = Vec::with_capacity(bh);
            for (q, k, v) in &panels {
                let mut ctx = GpuCtx::a100();
                outs.push(mech.forward(&mut ctx, q, k, v));
            }
            outs
        };
        let run_batched = || {
            let mut ctx = GpuCtx::a100();
            mech.forward_batched(&mut ctx, &qb, &kb, &vb)
        };

        // Warm-up doubles as the bit-parity assertion.
        let looped = run_looped();
        let batched = run_batched();
        for (b, m) in looped.iter().enumerate() {
            let equal = m
                .as_slice()
                .iter()
                .zip(batched.panel(b))
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                equal,
                "batched forward diverged from per-head loop (panel {b})"
            );
        }

        eprintln!("[speedup] attention n = {n}, BxH = {bh} ...");
        let mut m = AttnMeasurement {
            n,
            d,
            bh,
            looped_s: Vec::new(),
            batched_s: Vec::new(),
        };
        for _ in 0..samples {
            let t = Instant::now();
            black_box(run_looped());
            m.looped_s.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            black_box(run_batched());
            m.batched_s.push(t.elapsed().as_secs_f64());
        }
        out.push(m);
    }
    out
}

fn emit_attention(measurements: &[AttnMeasurement]) {
    let mut report = Report::new(
        "batched vs per-head-looped Dfss forward (exec mode wall-clock)",
        &[
            "n",
            "d",
            "BxH",
            "looped_min_ms",
            "looped_p50_ms",
            "batched_min_ms",
            "batched_p50_ms",
            "speedup",
        ],
    );
    let mut entries = Vec::new();
    for m in measurements {
        let (lmin, lp50) = stats_of(&m.looped_s);
        let (bmin, bp50) = stats_of(&m.batched_s);
        let speedup = lmin / bmin.max(1e-12);
        entries.push(Json::obj(vec![
            ("n", Json::Num(m.n as f64)),
            ("d", Json::Num(m.d as f64)),
            ("bh", Json::Num(m.bh as f64)),
            ("samples", Json::Num(m.looped_s.len() as f64)),
            ("looped_min_ms", Json::Num(round3(lmin * 1e3))),
            ("looped_p50_ms", Json::Num(round3(lp50 * 1e3))),
            ("batched_min_ms", Json::Num(round3(bmin * 1e3))),
            ("batched_p50_ms", Json::Num(round3(bp50 * 1e3))),
            ("speedup", Json::Num(round3(speedup))),
            ("work_elems", Json::Num((m.bh * m.n * m.n * m.d) as f64)),
        ]));
        report.row(vec![
            m.n.to_string(),
            m.d.to_string(),
            m.bh.to_string(),
            format!("{:.3}", lmin * 1e3),
            format!("{:.3}", lp50 * 1e3),
            format!("{:.3}", bmin * 1e3),
            format!("{:.3}", bp50 * 1e3),
            format!("{speedup:.2}x"),
        ]);
    }
    let doc = Json::obj(vec![
        ("schema_version", Json::Num(SCHEMA_VERSION)),
        ("artifact", Json::Str("bench_attention".into())),
        (
            "mode",
            Json::Str(if quick() { "quick" } else { "full" }.into()),
        ),
        ("threads", Json::Num(rayon::current_num_threads() as f64)),
        ("dtype", Json::Str("float".into())),
        ("pattern", Json::Str("1:2".into())),
        ("entries", Json::Arr(entries)),
    ]);
    println!("{}", report.render());
    let path = results_dir().join("bench_attention.json");
    std::fs::write(&path, doc.render()).expect("write bench_attention.json");
    println!("[saved {}]", path.display());
}

/// One scalar-vs-dispatched comparison for a kernel family: the same inputs
/// timed under `simd::force(Scalar)` and under the runtime-detected backend,
/// interleaved so host-load drift hits both sides equally.
struct SimdMeasurement {
    family: &'static str,
    n: usize,
    scalar_s: Vec<f64>,
    simd_s: Vec<f64>,
}

/// One decode throughput point: tokens/sec for a fixed stream batch at one
/// cache length, f32 KV vs bf16-quantised KV (both under the dispatched
/// backend — this isolates the storage dtype, not the instruction set).
struct DecodeMeasurement {
    cache_len: usize,
    streams: usize,
    f32_s: Vec<f64>,
    bf16_s: Vec<f64>,
}

/// Time `f` once under each forced backend, alternating per sample.
fn measure_forced(
    family: &'static str,
    n: usize,
    dispatched: Backend,
    samples: usize,
    mut f: impl FnMut(),
) -> SimdMeasurement {
    let mut m = SimdMeasurement {
        family,
        n,
        scalar_s: Vec::with_capacity(samples),
        simd_s: Vec::with_capacity(samples),
    };
    // Warm up each backend once before timing.
    simd::force(Some(Backend::Scalar));
    f();
    simd::force(Some(dispatched));
    f();
    for _ in 0..samples {
        simd::force(Some(Backend::Scalar));
        let t = Instant::now();
        f();
        m.scalar_s.push(t.elapsed().as_secs_f64());
        simd::force(Some(dispatched));
        let t = Instant::now();
        f();
        m.simd_s.push(t.elapsed().as_secs_f64());
    }
    simd::force(None);
    m
}

/// Measure the `simd` section: every kernel family scalar-vs-dispatched at
/// one representative size, then decode tokens/sec against cache length for
/// f32 vs bf16-quantised KV.
fn run_simd_grid() -> (Vec<SimdMeasurement>, Vec<DecodeMeasurement>) {
    let dispatched = simd::active();
    let n = if quick() { 128 } else { 512 };
    let d = HEAD_DIM;
    let samples = if quick() { 3 } else { 11 };
    let mut rng = Rng::new(0x51D);
    let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
    let scores = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);
    let comp = NmCompressed::compress(&scores, NmPattern::P1_2);
    let mut softmax_comp = comp.clone();

    eprintln!(
        "[speedup] simd section: {} vs scalar, n = {n} ...",
        dispatched.name()
    );
    let mut kernels = Vec::new();
    kernels.push(measure_forced("gemm_nt", n, dispatched, samples, || {
        let mut ctx = GpuCtx::a100();
        black_box(gemm::gemm_nt(&mut ctx, Stage::Qk, &q, &k, 0.125));
    }));
    kernels.push(measure_forced("gemm_nn", n, dispatched, samples, || {
        let mut ctx = GpuCtx::a100();
        black_box(gemm::gemm_nn(&mut ctx, Stage::Av, &scores, &v));
    }));
    kernels.push(measure_forced(
        "sddmm_nm_fused",
        n,
        dispatched,
        samples,
        || {
            let mut ctx = GpuCtx::a100();
            black_box(sddmm::sddmm_nm_fused(
                &mut ctx,
                &q,
                &k,
                0.125,
                NmPattern::P1_2,
            ));
        },
    ));
    kernels.push(measure_forced(
        "softmax_dense",
        n,
        dispatched,
        samples,
        || {
            let mut ctx = GpuCtx::a100();
            black_box(softmax::softmax_dense(&mut ctx, &scores));
        },
    ));
    kernels.push(measure_forced("softmax_nm", n, dispatched, samples, || {
        let mut ctx = GpuCtx::a100();
        softmax::softmax_nm(&mut ctx, &mut softmax_comp);
        black_box(&mut softmax_comp);
    }));
    kernels.push(measure_forced("spmm_nm", n, dispatched, samples, || {
        let mut ctx = GpuCtx::a100();
        black_box(spmm::spmm_nm(&mut ctx, &comp, &v));
    }));

    // Decode throughput vs cache length, f32 vs bf16 KV. One call = one
    // decode step for the whole stream batch, so tokens/call = streams.
    let cache_lens: &[usize] = if quick() { &[256] } else { &[256, 1024, 4096] };
    let streams = 8;
    let decode_samples = if quick() { 3 } else { 9 };
    let mech = DfssAttention::new(NmPattern::P1_2);
    let mut decode = Vec::new();
    for &len in cache_lens {
        let mut rng = Rng::new(len as u64);
        let q = Matrix::<f32>::random_normal(streams, d, 0.0, 1.0, &mut rng);
        let lens = vec![len; streams];
        let mut kf = RaggedBatch::<f32>::zeros(d, &lens);
        let mut vf = RaggedBatch::<f32>::zeros(d, &lens);
        for x in kf.as_mut_slice() {
            *x = rng.normal(0.0, 1.0);
        }
        for x in vf.as_mut_slice() {
            *x = rng.normal(0.0, 1.0);
        }
        // The bf16 side holds the same cache, narrowed once at build time —
        // exactly what `KvStore::Quant` stores after narrow-on-write.
        let mut kb = RaggedBatch::<Bf16>::zeros(d, &lens);
        let mut vb = RaggedBatch::<Bf16>::zeros(d, &lens);
        for (o, x) in kb.as_mut_slice().iter_mut().zip(kf.as_slice()) {
            *o = Bf16::from_f32(*x);
        }
        for (o, x) in vb.as_mut_slice().iter_mut().zip(vf.as_slice()) {
            *o = Bf16::from_f32(*x);
        }

        eprintln!("[speedup] simd decode: cache_len = {len} ...");
        let mut m = DecodeMeasurement {
            cache_len: len,
            streams,
            f32_s: Vec::with_capacity(decode_samples),
            bf16_s: Vec::with_capacity(decode_samples),
        };
        // Warm-up.
        let mut ctx = GpuCtx::a100();
        black_box(mech.decode_ragged(&mut ctx, &q, &kf, &vf));
        black_box(mech.decode_ragged_bf16(&mut ctx, &q, &kb, &vb));
        for _ in 0..decode_samples {
            let mut ctx = GpuCtx::a100();
            let t = Instant::now();
            black_box(mech.decode_ragged(&mut ctx, &q, &kf, &vf));
            m.f32_s.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            black_box(mech.decode_ragged_bf16(&mut ctx, &q, &kb, &vb));
            m.bf16_s.push(t.elapsed().as_secs_f64());
        }
        decode.push(m);
    }
    (kernels, decode)
}

/// Render the `simd` section object and print its human-readable tables.
fn emit_simd(kernels: &[SimdMeasurement], decode: &[DecodeMeasurement]) -> Json {
    let mut kernel_report = Report::new(
        "scalar vs dispatched SIMD backend (exec mode wall-clock)",
        &["family", "n", "scalar_min_ms", "simd_min_ms", "speedup"],
    );
    let kernel_entries: Vec<Json> = kernels
        .iter()
        .map(|m| {
            let (smin, sp50) = stats_of(&m.scalar_s);
            let (dmin, dp50) = stats_of(&m.simd_s);
            let speedup = smin / dmin.max(1e-12);
            kernel_report.row(vec![
                m.family.to_string(),
                m.n.to_string(),
                format!("{:.3}", smin * 1e3),
                format!("{:.3}", dmin * 1e3),
                format!("{speedup:.2}x"),
            ]);
            Json::obj(vec![
                ("family", Json::Str(m.family.into())),
                ("n", Json::Num(m.n as f64)),
                ("samples", Json::Num(m.scalar_s.len() as f64)),
                ("scalar_min_ms", Json::Num(round3(smin * 1e3))),
                ("scalar_p50_ms", Json::Num(round3(sp50 * 1e3))),
                ("simd_min_ms", Json::Num(round3(dmin * 1e3))),
                ("simd_p50_ms", Json::Num(round3(dp50 * 1e3))),
                ("speedup", Json::Num(round3(speedup))),
            ])
        })
        .collect();

    let mut decode_report = Report::new(
        "decode tokens/sec vs cache length, f32 vs bf16 KV",
        &[
            "cache_len",
            "streams",
            "f32 tok/s",
            "bf16 tok/s",
            "bf16 speedup",
        ],
    );
    let decode_entries: Vec<Json> = decode
        .iter()
        .map(|m| {
            let (fmin, _) = stats_of(&m.f32_s);
            let (bmin, _) = stats_of(&m.bf16_s);
            let f_tps = m.streams as f64 / fmin.max(1e-12);
            let b_tps = m.streams as f64 / bmin.max(1e-12);
            decode_report.row(vec![
                m.cache_len.to_string(),
                m.streams.to_string(),
                format!("{f_tps:.0}"),
                format!("{b_tps:.0}"),
                format!("{:.2}x", fmin / bmin.max(1e-12)),
            ]);
            Json::obj(vec![
                ("cache_len", Json::Num(m.cache_len as f64)),
                ("streams", Json::Num(m.streams as f64)),
                ("d", Json::Num(HEAD_DIM as f64)),
                ("samples", Json::Num(m.f32_s.len() as f64)),
                ("f32_min_ms", Json::Num(round3(fmin * 1e3))),
                ("f32_tokens_per_sec", Json::Num(f_tps.round())),
                ("bf16_min_ms", Json::Num(round3(bmin * 1e3))),
                ("bf16_tokens_per_sec", Json::Num(b_tps.round())),
                ("bf16_speedup", Json::Num(round3(fmin / bmin.max(1e-12)))),
            ])
        })
        .collect();

    println!("{}", kernel_report.render());
    println!("{}", decode_report.render());
    Json::obj(vec![
        ("backend", Json::Str(simd::active().name().into())),
        ("kernels", Json::Arr(kernel_entries)),
        ("decode", Json::Arr(decode_entries)),
    ])
}

/// Load a baseline artifact: `(kernel, n, d, min_ms, p50_ms)` per entry.
fn load_baseline(path: &str) -> Vec<(String, usize, usize, f64, f64)> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("parse baseline {path}: {e}"));
    let mut out = Vec::new();
    if let Some(entries) = doc.get("entries").and_then(Json::as_arr) {
        for e in entries {
            let (Some(kernel), Some(n), Some(d), Some(min), Some(p50)) = (
                e.get("kernel").and_then(Json::as_str),
                e.get("n").and_then(Json::as_f64),
                e.get("d").and_then(Json::as_f64),
                e.get("min_ms").and_then(Json::as_f64),
                e.get("p50_ms").and_then(Json::as_f64),
            ) else {
                continue;
            };
            out.push((kernel.to_string(), n as usize, d as usize, min, p50));
        }
    }
    out
}

fn emit(measurements: &[Measurement], simd_section: Json) {
    let baseline = std::env::var("DFSS_BENCH_BASELINE")
        .ok()
        .map(|p| load_baseline(&p));

    let mut report = Report::new(
        "exec-mode kernel wall-clock",
        &[
            "kernel", "n", "d", "min_ms", "p50_ms", "p95_ms", "p99_ms", "Melem/s", "speedup",
        ],
    );
    let mut entries = Vec::new();
    for m in measurements {
        if m.samples.is_empty() {
            continue;
        }
        let (min, mean, p50, p95, p99) = m.stats();
        let elems_per_sec = m.work_elems as f64 / p50;
        let base = baseline.as_ref().and_then(|b| {
            b.iter()
                .find(|(k, n, d, _, _)| k == m.kernel && *n == m.n && *d == m.d)
                .map(|&(_, _, _, min_ms, p50_ms)| (min_ms, p50_ms))
        });
        // Speedup is defined on the per-config minimum: interference on a
        // shared/virtualised host is strictly additive, so the minimum over
        // many interleaved samples is the robust estimate of a kernel's
        // intrinsic wall-clock (medians of two builds measured minutes apart
        // drift by several percent with the host's phase).
        let speedup = base.map(|(bmin, _)| bmin / (min * 1e3).max(1e-6));
        let mut fields = vec![
            ("kernel", Json::Str(m.kernel.into())),
            ("n", Json::Num(m.n as f64)),
            ("d", Json::Num(m.d as f64)),
            ("samples", Json::Num(m.samples.len() as f64)),
            ("min_ms", Json::Num(round3(min * 1e3))),
            ("mean_ms", Json::Num(round3(mean * 1e3))),
            ("p50_ms", Json::Num(round3(p50 * 1e3))),
            ("p95_ms", Json::Num(round3(p95 * 1e3))),
            ("p99_ms", Json::Num(round3(p99 * 1e3))),
            ("work_elems", Json::Num(m.work_elems as f64)),
            ("elems_per_sec", Json::Num(elems_per_sec.round())),
        ];
        if let Some((bmin, bp50)) = base {
            fields.push(("baseline_min_ms", Json::Num(round3(bmin))));
            fields.push(("baseline_p50_ms", Json::Num(round3(bp50))));
        }
        if let Some(s) = speedup {
            fields.push(("speedup", Json::Num(round3(s))));
        }
        entries.push(Json::obj(fields));
        report.row(vec![
            m.kernel.to_string(),
            m.n.to_string(),
            m.d.to_string(),
            format!("{:.3}", min * 1e3),
            format!("{:.3}", p50 * 1e3),
            format!("{:.3}", p95 * 1e3),
            format!("{:.3}", p99 * 1e3),
            format!("{:.1}", elems_per_sec / 1e6),
            speedup.map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
        ]);
    }

    if entries.is_empty() {
        // DFSS_BENCH_ONLY skipped the whole kernel grid: keep the existing
        // artifact instead of overwriting it with an empty document.
        eprintln!("[speedup] no kernel samples; leaving bench_kernels.json untouched");
        return;
    }
    let mut doc_fields = vec![
        ("schema_version", Json::Num(SCHEMA_VERSION)),
        ("artifact", Json::Str("bench_kernels".into())),
        (
            "mode",
            Json::Str(if quick() { "quick" } else { "full" }.into()),
        ),
        ("threads", Json::Num(rayon::current_num_threads() as f64)),
        ("dtype", Json::Str("float".into())),
        ("pattern", Json::Str("1:2".into())),
        ("entries", Json::Arr(entries)),
    ];
    // `DFSS_BENCH_ONLY` pinned to another kernel skips the simd section;
    // the resulting artifact is an A/B aid and won't pass `--check`.
    if !matches!(simd_section, Json::Null) {
        doc_fields.push(("simd", simd_section));
    }
    let doc = Json::obj(doc_fields);
    println!("{}", report.render());
    let path = results_dir().join("bench_kernels.json");
    std::fs::write(&path, doc.render()).expect("write bench_kernels.json");
    println!("[saved {}]", path.display());
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Schema validation for the CI smoke job, dispatched on the document's
/// `artifact` field (`bench_kernels` or `bench_attention`).
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version} != {SCHEMA_VERSION}"));
    }
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing mode")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode `{mode}` not in {{quick, full}}"));
    }
    doc.get("threads")
        .and_then(Json::as_f64)
        .ok_or("missing threads")?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries array")?;
    if entries.is_empty() {
        return Err("entries array is empty".into());
    }
    let artifact = doc.get("artifact").and_then(Json::as_str);
    let n_entries = entries.len();
    match artifact {
        Some("bench_kernels") => {
            check_kernel_entries(entries, mode)?;
            check_simd_section(&doc, mode)?;
        }
        Some("bench_attention") => check_attention_entries(entries, mode)?,
        other => {
            return Err(format!(
                "artifact {other:?} not in {{bench_kernels, bench_attention}}"
            ))
        }
    }
    println!(
        "{path}: schema OK ({} {mode} mode, {n_entries} entries)",
        artifact.unwrap_or("?"),
    );
    Ok(())
}

fn check_kernel_entries(entries: &[Json], mode: &str) -> Result<(), String> {
    for (i, e) in entries.iter().enumerate() {
        e.get("kernel")
            .and_then(Json::as_str)
            .ok_or(format!("entry {i}: missing kernel"))?;
        for field in [
            "n",
            "d",
            "samples",
            "min_ms",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "work_elems",
            "elems_per_sec",
        ] {
            let x = e
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("entry {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "entry {i}: {field} = {x} not a finite non-negative"
                ));
            }
        }
    }
    // A full-mode artifact must cover the acceptance-gate shape.
    if mode == "full"
        && !entries.iter().any(|e| {
            e.get("kernel").and_then(Json::as_str) == Some("gemm_nt")
                && e.get("n").and_then(Json::as_f64) == Some(1024.0)
        })
    {
        return Err("full-mode artifact lacks the gemm_nt n=1024 entry".into());
    }
    Ok(())
}

/// Allowed wall-clock regression for the scalar-vs-dispatched comparison:
/// min-of-interleaved-samples on a shared host still jitters by a few
/// percent, so "no family regresses" means `speedup >= 0.95`, not `>= 1.0`.
const SIMD_NOISE_FLOOR: f64 = 0.95;
/// At least one family must clear this under the dispatched backend.
const SIMD_WIN_GATE: f64 = 1.3;

/// Validate the schema-2.0 `simd` section and, in full mode, its perf
/// gates: no kernel family regresses past the noise floor, at least one
/// clears [`SIMD_WIN_GATE`], and bf16-quantised KV decode beats f32 at the
/// longest measured cache length (which must reach 1024 rows).
fn check_simd_section(doc: &Json, mode: &str) -> Result<(), String> {
    let simd = doc.get("simd").ok_or("missing simd section")?;
    let backend = simd
        .get("backend")
        .and_then(Json::as_str)
        .ok_or("simd: missing backend")?;
    if !["scalar", "avx2", "avx512", "neon"].contains(&backend) {
        return Err(format!("simd: unknown backend `{backend}`"));
    }
    let kernels = simd
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or("simd: missing kernels array")?;
    if kernels.is_empty() {
        return Err("simd: kernels array is empty".into());
    }
    let mut best = 0.0f64;
    for (i, e) in kernels.iter().enumerate() {
        let family = e
            .get("family")
            .and_then(Json::as_str)
            .ok_or(format!("simd kernel {i}: missing family"))?;
        for field in [
            "n",
            "samples",
            "scalar_min_ms",
            "scalar_p50_ms",
            "simd_min_ms",
            "simd_p50_ms",
            "speedup",
        ] {
            let x = e
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("simd kernel {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "simd kernel {i}: {field} = {x} not a finite non-negative"
                ));
            }
        }
        let speedup = e.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
        best = best.max(speedup);
        if mode == "full" && speedup < SIMD_NOISE_FLOOR {
            return Err(format!(
                "simd: family {family} regressed under the dispatched backend \
                 (speedup {speedup} < {SIMD_NOISE_FLOOR})"
            ));
        }
    }
    if mode == "full" && best < SIMD_WIN_GATE {
        return Err(format!(
            "simd: no kernel family clears {SIMD_WIN_GATE}x (best {best})"
        ));
    }
    let decode = simd
        .get("decode")
        .and_then(Json::as_arr)
        .ok_or("simd: missing decode array")?;
    if decode.is_empty() {
        return Err("simd: decode array is empty".into());
    }
    let mut longest: Option<(f64, f64, f64)> = None; // (cache_len, f32 tok/s, bf16 tok/s)
    for (i, e) in decode.iter().enumerate() {
        for field in [
            "cache_len",
            "streams",
            "d",
            "samples",
            "f32_min_ms",
            "f32_tokens_per_sec",
            "bf16_min_ms",
            "bf16_tokens_per_sec",
            "bf16_speedup",
        ] {
            let x = e
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("simd decode {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "simd decode {i}: {field} = {x} not a finite non-negative"
                ));
            }
        }
        let len = e.get("cache_len").and_then(Json::as_f64).unwrap_or(0.0);
        if longest.is_none_or(|(l, _, _)| len > l) {
            longest = Some((
                len,
                e.get("f32_tokens_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                e.get("bf16_tokens_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            ));
        }
    }
    if mode == "full" {
        let (len, f_tps, b_tps) = longest.unwrap();
        if len < 1024.0 {
            return Err(format!(
                "simd: full-mode decode sweep must reach cache_len >= 1024 (longest {len})"
            ));
        }
        if b_tps <= f_tps {
            return Err(format!(
                "simd: bf16 KV decode does not beat f32 at cache_len {len} \
                 ({b_tps} <= {f_tps} tokens/sec)"
            ));
        }
    }
    Ok(())
}

fn check_attention_entries(entries: &[Json], mode: &str) -> Result<(), String> {
    for (i, e) in entries.iter().enumerate() {
        for field in [
            "n",
            "d",
            "bh",
            "samples",
            "looped_min_ms",
            "looped_p50_ms",
            "batched_min_ms",
            "batched_p50_ms",
            "speedup",
            "work_elems",
        ] {
            let x = e
                .get(field)
                .and_then(Json::as_f64)
                .ok_or(format!("entry {i}: missing numeric {field}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "entry {i}: {field} = {x} not a finite non-negative"
                ));
            }
        }
    }
    // A full-mode artifact must cover the acceptance-gate shape
    // (B×H ≥ 64 at n ≥ 512).
    if mode == "full"
        && !entries.iter().any(|e| {
            e.get("n").and_then(Json::as_f64).unwrap_or(0.0) >= 512.0
                && e.get("bh").and_then(Json::as_f64).unwrap_or(0.0) >= 64.0
        })
    {
        return Err("full-mode artifact lacks a (n >= 512, BxH >= 64) entry".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() > 1 {
        // Any argument must be a well-formed `--check <path>`; never fall
        // through to a full benchmark run (which would overwrite the
        // checked-in artifact) on a malformed command line.
        if args.len() != 3 || args[1] != "--check" {
            eprintln!("usage: speedup [--check <artifact.json>]");
            std::process::exit(2);
        }
        if let Err(e) = check(&args[2]) {
            eprintln!("schema validation failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    eprintln!(
        "[speedup] {} mode, {} thread(s)",
        if quick() { "quick" } else { "full" },
        rayon::current_num_threads()
    );
    let mut measurements = run_grid();
    if let Ok(cache) = std::env::var("DFSS_BENCH_SAMPLE_CACHE") {
        for cached in load_sample_cache(&cache) {
            if let Some(m) = measurements
                .iter_mut()
                .find(|m| m.kernel == cached.kernel && m.n == cached.n && m.d == cached.d)
            {
                m.samples.extend(cached.samples);
            }
        }
        save_sample_cache(&cache, &measurements);
        let total: usize = measurements.iter().map(|m| m.samples.len()).sum();
        eprintln!("[speedup] sample cache {cache}: {total} samples total");
    }
    // Scalar-vs-dispatched comparison + bf16-KV decode sweep (skipped when
    // DFSS_BENCH_ONLY pins another kernel).
    let simd_section = if kernel_enabled("simd") {
        let (kernels, decode) = run_simd_grid();
        emit_simd(&kernels, &decode)
    } else {
        Json::Null
    };
    emit(&measurements, simd_section);
    // Batched-attention section (skipped when DFSS_BENCH_ONLY pins another
    // kernel).
    if kernel_enabled("attention") {
        emit_attention(&run_attention_grid());
    }
}
