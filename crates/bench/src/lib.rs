//! # dfss-bench — the experiment harness
//!
//! One binary per table and figure of the paper (see DESIGN.md §4 for the
//! index). This library holds the shared plumbing: aligned text tables, CSV
//! output under `results/`, and the common model-training helpers the
//! accuracy experiments reuse.
//!
//! Environment knobs:
//! * `DFSS_QUICK=1` — shrink grids/seeds for a fast smoke run.
//! * `DFSS_SEEDS=<n>` — override the number of seeds for the ± CI tables.

use json::Json;
use std::fmt::Write as _;
use std::path::PathBuf;

pub mod json;
pub mod train;

/// Schema version of the `results/*.json` report artifacts.
pub const REPORT_SCHEMA_VERSION: f64 = 1.0;

/// Directory for CSV artifacts (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DFSS_RESULTS").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Quick-mode flag.
pub fn quick() -> bool {
    std::env::var("DFSS_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Seed count for mean ± CI tables (paper: 8 runs).
pub fn n_seeds(default: usize) -> usize {
    std::env::var("DFSS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick() { 2 } else { default })
}

/// An aligned text table that also serialises to CSV.
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Report {
        Report {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Print to stdout and save CSV + schema-stable JSON under
    /// `results/<name>.{csv,json}` (the JSON is what trajectory tooling
    /// diffs across PRs; validate with the binary's `--check` flag).
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.columns.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') {
                        format!("\"{c}\"")
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(csv, "{}", escaped.join(","));
        }
        let path = results_dir().join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        println!("[saved {}]", path.display());

        let doc = self.to_json(name);
        let jpath = results_dir().join(format!("{name}.json"));
        std::fs::write(&jpath, doc.render()).expect("write report json");
        println!("[saved {}]", jpath.display());
    }

    /// The report as its JSON artifact document.
    pub fn to_json(&self, name: &str) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(REPORT_SCHEMA_VERSION)),
            ("artifact", Json::Str(name.into())),
            ("title", Json::Str(self.title.clone())),
            (
                "columns",
                Json::Arr(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Validate a `results/<artifact>.json` report document against the shared
/// schema: version, matching artifact name, string columns, and every row
/// exactly as wide as the header.
pub fn check_report(path: &str, artifact: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != REPORT_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != {REPORT_SCHEMA_VERSION}"
        ));
    }
    match doc.get("artifact").and_then(Json::as_str) {
        Some(a) if a == artifact => {}
        other => return Err(format!("artifact {other:?} != {artifact:?}")),
    }
    doc.get("title")
        .and_then(Json::as_str)
        .ok_or("missing title")?;
    let columns = doc
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("missing columns array")?;
    if columns.is_empty() || !columns.iter().all(|c| c.as_str().is_some()) {
        return Err("columns must be a non-empty string array".into());
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows array is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_arr().ok_or(format!("row {i} is not an array"))?;
        if cells.len() != columns.len() || !cells.iter().all(|c| c.as_str().is_some()) {
            return Err(format!(
                "row {i}: expected {} string cells, got {}",
                columns.len(),
                cells.len()
            ));
        }
    }
    Ok(rows.len())
}

/// Handle a figure/table binary's `--check <path>` invocation: validates
/// the named report artifact and exits the process on failure. Returns
/// `true` when the invocation was a check (the caller should return without
/// running the experiment); malformed command lines abort with usage.
pub fn handle_report_check(artifact: &str) -> bool {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 1 {
        return false;
    }
    if args.len() != 3 || args[1] != "--check" {
        eprintln!("usage: {} [--check <artifact.json>]", args[0]);
        std::process::exit(2);
    }
    match check_report(&args[2], artifact) {
        Ok(rows) => {
            println!("{}: schema OK ({rows} rows)", args[2]);
            true
        }
        Err(e) => {
            eprintln!("schema validation failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("t", &["a", "bbbb"]);
        r.row(vec!["x".into(), "y".into()]);
        r.row(vec!["long".into(), "z".into()]);
        let s = r.render();
        assert!(s.contains("== t =="));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn report_checks_columns() {
        let mut r = Report::new("t", &["a"]);
        r.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn report_json_round_trips_through_check() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("dfss_report_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figX.json");
        std::fs::write(&path, r.to_json("figX").render()).unwrap();
        let p = path.to_str().unwrap();
        assert_eq!(check_report(p, "figX"), Ok(1));
        // Wrong artifact name must fail.
        assert!(check_report(p, "figY").is_err());
    }

    #[test]
    fn check_report_rejects_ragged_rows() {
        let doc = Json::obj(vec![
            ("schema_version", Json::Num(REPORT_SCHEMA_VERSION)),
            ("artifact", Json::Str("t".into())),
            ("title", Json::Str("t".into())),
            (
                "columns",
                Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())]),
            ),
            (
                "rows",
                Json::Arr(vec![Json::Arr(vec![Json::Str("1".into())])]),
            ),
        ]);
        let dir = std::env::temp_dir().join("dfss_report_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.json");
        std::fs::write(&path, doc.render()).unwrap();
        let err = check_report(path.to_str().unwrap(), "t").unwrap_err();
        assert!(err.contains("row 0"), "{err}");
    }
}
