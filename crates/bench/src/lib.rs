//! # dfss-bench — the experiment harness
//!
//! One binary per table and figure of the paper (see DESIGN.md §4 for the
//! index). This library holds the shared plumbing: aligned text tables, CSV
//! output under `results/`, and the common model-training helpers the
//! accuracy experiments reuse.
//!
//! Environment knobs:
//! * `DFSS_QUICK=1` — shrink grids/seeds for a fast smoke run.
//! * `DFSS_SEEDS=<n>` — override the number of seeds for the ± CI tables.

use std::fmt::Write as _;
use std::path::PathBuf;

pub mod json;
pub mod train;

/// Scale a context's recorded kernel work by a batch factor, keeping the
/// launch counts — the paper's batched kernels process the whole
/// batch × heads volume in one launch per op ("The batch size is set to be
/// large enough to keep the GPU busy", §5.2).
pub fn batch_scale(ctx: &mut dfss_kernels::GpuCtx, b: u64) {
    for e in ctx.timeline.entries_mut() {
        e.bytes_read *= b;
        e.bytes_written *= b;
        e.tc_macs *= b;
        e.alu_ops *= b;
    }
}

/// Directory for CSV artifacts (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DFSS_RESULTS").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Quick-mode flag.
pub fn quick() -> bool {
    std::env::var("DFSS_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Seed count for mean ± CI tables (paper: 8 runs).
pub fn n_seeds(default: usize) -> usize {
    std::env::var("DFSS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick() { 2 } else { default })
}

/// An aligned text table that also serialises to CSV.
pub struct Report {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Report {
        Report {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Print to stdout and save CSV under `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.columns.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') {
                        format!("\"{c}\"")
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(csv, "{}", escaped.join(","));
        }
        let path = results_dir().join(format!("{name}.csv"));
        std::fs::write(&path, csv).expect("write csv");
        println!("[saved {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("t", &["a", "bbbb"]);
        r.row(vec!["x".into(), "y".into()]);
        r.row(vec!["long".into(), "z".into()]);
        let s = r.render();
        assert!(s.contains("== t =="));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn report_checks_columns() {
        let mut r = Report::new("t", &["a"]);
        r.row(vec!["x".into(), "y".into()]);
    }
}
