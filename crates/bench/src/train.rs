//! Shared model-training helpers for the accuracy experiments.
//!
//! The §5.1 protocol, concretely: pretrain a dense-attention model on the
//! task, then (a) swap in a sparse mechanism without finetuning, and/or
//! (b) finetune briefly with the mechanism active, and evaluate. bf16 rows
//! cast the finished model to bf16 before evaluation.

use dfss_nmsparse::NmPattern;
use dfss_tasks::protocol::{
    eval_classifier, eval_mlm_ppl, eval_qa_f1, train_classifier, train_mlm, train_qa, TrainSpec,
};
use dfss_tasks::{mlm, qa, ClsDataset};
use dfss_tensor::Rng;
use dfss_transformer::heads::{ClassifierHead, MlmHead, SpanHead};
use dfss_transformer::{AttnKind, Encoder, EncoderConfig, Precision};

/// Standard QA benchmark shape (the SQuAD stand-in of Tables 1–2).
pub fn qa_config(quick: bool) -> (qa::QaConfig, EncoderConfig) {
    let qcfg = qa::QaConfig {
        seq_len: 48,
        n_keys: 8,
        n_values: 8,
        n_fillers: 10,
        records: if quick { 4 } else { 5 },
        span_min: 1,
        span_max: 3,
    };
    let ecfg = EncoderConfig {
        vocab: qcfg.vocab(),
        max_len: qcfg.seq_len,
        d_model: 64,
        heads: 2,
        d_ffn: 128,
        layers: 2,
        kind: AttnKind::Full,
    };
    (qcfg, ecfg)
}

/// Train set size / epochs for the QA runs.
pub fn qa_budget(quick: bool) -> (usize, usize, usize) {
    if quick {
        (700, 10, 60) // train, epochs, test
    } else {
        (1000, 14, 150)
    }
}

/// A trained QA model.
pub struct QaModel {
    pub enc: Encoder,
    pub head: SpanHead,
    pub qcfg: qa::QaConfig,
}

/// Pretrain a dense QA model from scratch with the given seed.
pub fn pretrain_qa(seed: u64, quick: bool) -> (QaModel, Vec<qa::QaExample>, Vec<qa::QaExample>) {
    let (qcfg, ecfg) = qa_config(quick);
    let (n_train, epochs, n_test) = qa_budget(quick);
    let train = qa::generate(&qcfg, n_train, 1000 + seed);
    let test = qa::generate(&qcfg, n_test, 9000 + seed);
    let mut rng = Rng::new(seed);
    let mut enc = Encoder::new(ecfg, &mut rng);
    let mut head = SpanHead::new(64, &mut rng);
    let mut spec = TrainSpec::quick(epochs, train.len(), 16);
    spec.adam.lr = 1e-3;
    spec.shuffle_seed = seed.wrapping_mul(31) + 7;
    let _ = train_qa(&mut enc, &mut head, &train, &spec);
    (QaModel { enc, head, qcfg }, train, test)
}

/// Finetune an existing QA model under a (possibly sparse) mechanism for a
/// couple of epochs ("It only takes a couple of finetuning epochs", §1).
pub fn finetune_qa(model: &mut QaModel, kind: AttnKind, train: &[qa::QaExample], seed: u64) {
    model.enc.set_attention(kind);
    let mut spec = TrainSpec::quick(2, train.len(), 16);
    spec.adam.lr = 5e-4;
    spec.shuffle_seed = seed.wrapping_mul(17) + 3;
    let _ = train_qa(&mut model.enc, &mut model.head, train, &spec);
}

/// Evaluate F1 under a mechanism and precision (restores nothing).
pub fn eval_qa(
    model: &mut QaModel,
    kind: AttnKind,
    precision: Precision,
    test: &[qa::QaExample],
) -> f64 {
    model.enc.set_attention(kind);
    model.enc.set_precision(precision);
    eval_qa_f1(&mut model.enc, &mut model.head, test, model.qcfg.span_max)
}

/// A trained MLM model.
pub struct MlmModel {
    pub enc: Encoder,
    pub head: MlmHead,
}

/// Pretrain a dense MLM model on a synthetic language.
pub fn pretrain_mlm(
    lang: &mlm::Language,
    seed: u64,
    quick: bool,
) -> (MlmModel, Vec<mlm::MlmExample>, Vec<mlm::MlmExample>) {
    let (n_train, epochs, n_test) = if quick { (300, 4, 60) } else { (600, 8, 150) };
    let train = lang.generate(n_train, 3000 + seed);
    let test = lang.generate(n_test, 8000 + seed);
    let cfg = EncoderConfig {
        vocab: lang.cfg().vocab,
        max_len: lang.cfg().seq_len,
        d_model: 64,
        heads: 2,
        d_ffn: 128,
        layers: 2,
        kind: AttnKind::Full,
    };
    let mut rng = Rng::new(seed);
    let mut enc = Encoder::new(cfg, &mut rng);
    let mut head = MlmHead::new(64, lang.cfg().vocab, &mut rng);
    let mut spec = TrainSpec::quick(epochs, train.len(), 16);
    spec.adam.lr = 2e-3;
    spec.shuffle_seed = seed.wrapping_mul(29) + 11;
    let _ = train_mlm(&mut enc, &mut head, &train, &spec);
    (MlmModel { enc, head }, train, test)
}

/// Finetune an MLM model under a mechanism.
pub fn finetune_mlm(model: &mut MlmModel, kind: AttnKind, train: &[mlm::MlmExample], seed: u64) {
    model.enc.set_attention(kind);
    let mut spec = TrainSpec::quick(2, train.len(), 16);
    spec.adam.lr = 5e-4;
    spec.shuffle_seed = seed.wrapping_mul(13) + 1;
    let _ = train_mlm(&mut model.enc, &mut model.head, train, &spec);
}

/// Evaluate perplexity under a mechanism and precision.
pub fn eval_mlm(
    model: &mut MlmModel,
    kind: AttnKind,
    precision: Precision,
    test: &[mlm::MlmExample],
) -> f64 {
    model.enc.set_attention(kind);
    model.enc.set_precision(precision);
    eval_mlm_ppl(&mut model.enc, &mut model.head, test)
}

/// Train a classifier from scratch under `kind` on an LRA-style dataset and
/// return test accuracy (×100, like the paper's Table 4).
pub fn train_eval_lra(
    ds: &ClsDataset,
    kind: AttnKind,
    precision: Precision,
    d_model: usize,
    epochs: usize,
    seed: u64,
) -> f64 {
    let cfg = EncoderConfig {
        vocab: ds.vocab,
        max_len: ds.seq_len,
        d_model,
        heads: 2,
        d_ffn: d_model * 2,
        layers: 2,
        kind,
    };
    let mut rng = Rng::new(seed);
    let mut enc = Encoder::new(cfg, &mut rng);
    let mut head = ClassifierHead::new(d_model, ds.classes, &mut rng);
    let mut spec = TrainSpec::quick(epochs, ds.train.len(), 16);
    spec.adam.lr = 1.5e-3;
    spec.shuffle_seed = seed.wrapping_mul(41) + 5;
    let _ = train_classifier(&mut enc, &mut head, &ds.train, &spec);
    enc.set_precision(precision);
    100.0 * eval_classifier(&mut enc, &mut head, &ds.test)
}

/// The Dfss mechanisms as AttnKind values.
pub fn dfss_1_2() -> AttnKind {
    AttnKind::Nm(NmPattern::P1_2)
}

pub fn dfss_2_4() -> AttnKind {
    AttnKind::Nm(NmPattern::P2_4)
}
