//! Minimal JSON value type with emit + parse.
//!
//! The build environment is offline (no serde), and the bench artifacts need
//! a *stable, diffable* JSON schema (`results/bench_kernels.json`, the
//! per-bench criterion reports). This module implements exactly the JSON
//! subset those artifacts use: objects, arrays, strings, finite f64 numbers,
//! booleans and null. Emission is deterministic (object keys keep insertion
//! order); parsing accepts any whitespace and round-trips everything the
//! emitter produces.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (the artifact schemas are small; linear key
    /// lookup is fine and keeps emission deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    item.write(out, indent + 1);
                }
                let _ = write!(out, "\n{close}]");
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{}{pad}", if i == 0 { "\n" } else { ",\n" });
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                let _ = write!(out, "\n{close}}}");
            }
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no inf/NaN literal; emit null rather than corrupting the
        // document (parsers treat the field as absent).
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive intact
                // because the input is a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::obj(vec![
            ("schema", Json::Num(1.0)),
            ("name", Json::Str("gemm_nt".into())),
            ("quick", Json::Bool(false)),
            (
                "entries",
                Json::Arr(vec![Json::obj(vec![
                    ("n", Json::Num(1024.0)),
                    ("mean_ms", Json::Num(1.5)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(1024.0).render(), "1024\n");
        assert_eq!(Json::Num(1.25).render(), "1.25\n");
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        // The document stays parseable.
        let doc = Json::obj(vec![("x", Json::Num(f64::NAN))]);
        assert!(Json::parse(&doc.render()).is_ok());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = Json::Str("a\"b\\c\nd\te".into());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn get_walks_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2, 3]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_f64(), Some(3.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
