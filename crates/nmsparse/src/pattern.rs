//! N:M group selection.
//!
//! An `N:M` pattern keeps the N largest-magnitude entries out of every M
//! consecutive entries of a row (paper §2.3 / Figure 1). Selection is purely
//! local to the M-group, which is what makes it embarrassingly parallel and
//! implementable as a GEMM epilogue (§3.2: "the N:M selection is performed
//! locally so that it is easy to be executed in parallel").
//!
//! Ties are broken toward the *lower index*, deterministically, so that
//! compress → decompress round trips are exact and runs are reproducible.

use dfss_tensor::{Matrix, Scalar};

/// Largest M representable by the u8 bitmask metadata codes; the
/// allocation-free selection path is sized to it.
pub const MAX_M: usize = 8;

/// An N:M fine-grained structured sparsity pattern (N kept out of M).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NmPattern {
    n: usize,
    m: usize,
}

impl NmPattern {
    /// The pattern the A100 supports for `float` inputs.
    pub const P1_2: NmPattern = NmPattern { n: 1, m: 2 };
    /// The pattern the A100 supports for `bfloat16`/`float16` inputs.
    pub const P2_4: NmPattern = NmPattern { n: 2, m: 4 };

    /// A general pattern; requires `0 < n < m ≤ 8` (the metadata codes every
    /// compressed format uses are u8 bitmasks, one bit per group lane).
    pub fn new(n: usize, m: usize) -> NmPattern {
        assert!(n > 0 && n < m, "N:M requires 0 < N < M, got {n}:{m}");
        assert!(m <= MAX_M, "bitmask codes support M ≤ {MAX_M}, got M = {m}");
        NmPattern { n, m }
    }

    /// The hardware pattern associated with a scalar type (1:2 for f32,
    /// 2:4 for bf16), as in the paper's float/bfloat16 split.
    pub fn for_dtype<T: Scalar>() -> NmPattern {
        NmPattern::new(T::NM_N, T::NM_M)
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Fraction of entries kept (`density s = N/M`).
    #[inline]
    pub fn density(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Human-readable name matching the paper's notation, e.g. `"2:4"`.
    pub fn name(&self) -> String {
        format!("{}:{}", self.n, self.m)
    }

    /// Number of kept values in a row of `cols` dense entries.
    #[inline]
    pub fn kept_per_row(&self, cols: usize) -> usize {
        assert_eq!(
            cols % self.m,
            0,
            "cols {cols} not a multiple of M={}",
            self.m
        );
        cols / self.m * self.n
    }

    /// Select the kept indices (sorted ascending) within one M-group of
    /// scores. Keeps the N largest by value; ties prefer the earlier index.
    pub fn select_group(&self, group: &[f32]) -> Vec<usize> {
        let mut buf = [0usize; MAX_M];
        let n = self.select_group_into(group, &mut buf);
        buf[..n].to_vec()
    }

    /// Allocation-free [`select_group`](Self::select_group) for the prune
    /// epilogue hot loop: writes the kept indices (sorted ascending) into
    /// `kept[..N]` and returns N. Selection semantics are identical (N
    /// largest by value, ties to the earlier index). Requires `M ≤ 8`, the
    /// bitmask-code domain every compressed format uses.
    #[inline]
    pub fn select_group_into(&self, group: &[f32], kept: &mut [usize; MAX_M]) -> usize {
        debug_assert_eq!(group.len(), self.m);
        // `m ≤ MAX_M` is enforced by the constructor.
        debug_assert!(self.m <= MAX_M);
        let mut idx = [0usize; MAX_M];
        for (i, slot) in idx[..self.m].iter_mut().enumerate() {
            *slot = i;
        }
        // Stable insertion sort, descending by value: an element moves left
        // only past *strictly smaller* values, which reproduces the stable
        // sort's lower-index tie-break.
        for i in 1..self.m {
            let mut j = i;
            while j > 0 && group[idx[j]] > group[idx[j - 1]] {
                idx.swap(j, j - 1);
                j -= 1;
            }
        }
        kept[..self.n].copy_from_slice(&idx[..self.n]);
        kept[..self.n].sort_unstable();
        self.n
    }

    /// Boolean keep-mask over a full row (`row.len()` must be a multiple of
    /// M).
    pub fn mask_row(&self, row: &[f32], mask: &mut [bool]) {
        assert_eq!(row.len() % self.m, 0);
        assert_eq!(row.len(), mask.len());
        for (g, (chunk, mchunk)) in row
            .chunks_exact(self.m)
            .zip(mask.chunks_exact_mut(self.m))
            .enumerate()
        {
            let _ = g;
            mchunk.iter_mut().for_each(|b| *b = false);
            for k in self.select_group(chunk) {
                mchunk[k] = true;
            }
        }
    }

    /// Keep-mask for a whole matrix, as 0.0/1.0 entries (handy for the
    /// quality metric `Q^p` which works on `m ⊙ A`).
    pub fn mask_matrix<T: Scalar>(&self, scores: &Matrix<T>) -> Matrix<f32> {
        let (rows, cols) = scores.shape();
        assert_eq!(cols % self.m, 0);
        let mut out = Matrix::zeros(rows, cols);
        let mut mask = vec![false; cols];
        let mut rowbuf = vec![0.0f32; cols];
        for r in 0..rows {
            for (dst, src) in rowbuf.iter_mut().zip(scores.row(r)) {
                *dst = src.to_f32();
            }
            self.mask_row(&rowbuf, &mut mask);
            let orow = out.row_mut(r);
            for (o, &keep) in orow.iter_mut().zip(&mask) {
                *o = if keep { 1.0 } else { 0.0 };
            }
        }
        out
    }

    /// Prune a dense matrix in place: non-kept entries become zero.
    pub fn prune_matrix<T: Scalar>(&self, dense: &mut Matrix<T>) {
        let (rows, cols) = dense.shape();
        assert_eq!(cols % self.m, 0);
        let mut mask = vec![false; cols];
        let mut rowbuf = vec![0.0f32; cols];
        for r in 0..rows {
            for (dst, src) in rowbuf.iter_mut().zip(dense.row(r)) {
                *dst = src.to_f32();
            }
            self.mask_row(&rowbuf, &mut mask);
            let row = dense.row_mut(r);
            for (v, &keep) in row.iter_mut().zip(&mask) {
                if !keep {
                    *v = T::zero();
                }
            }
        }
    }
}

impl std::fmt::Display for NmPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    #[test]
    fn constants_match_paper() {
        assert_eq!(NmPattern::P1_2.density(), 0.5);
        assert_eq!(NmPattern::P2_4.density(), 0.5);
        assert_eq!(NmPattern::for_dtype::<f32>(), NmPattern::P1_2);
        assert_eq!(NmPattern::for_dtype::<dfss_tensor::Bf16>(), NmPattern::P2_4);
    }

    #[test]
    #[should_panic(expected = "0 < N < M")]
    fn rejects_degenerate_pattern() {
        let _ = NmPattern::new(2, 2);
    }

    #[test]
    #[should_panic(expected = "bitmask codes support M ≤ 8")]
    fn rejects_m_wider_than_code_domain() {
        let _ = NmPattern::new(3, 16);
    }

    #[test]
    fn select_group_picks_largest() {
        let p = NmPattern::P2_4;
        assert_eq!(p.select_group(&[0.1, 0.9, 0.5, 0.2]), vec![1, 2]);
        assert_eq!(p.select_group(&[9.0, -8.0, 7.0, 6.0]), vec![0, 2]);
        let q = NmPattern::P1_2;
        assert_eq!(q.select_group(&[0.0, 3.0]), vec![1]);
        assert_eq!(q.select_group(&[3.0, 0.0]), vec![0]);
    }

    #[test]
    fn select_group_value_not_magnitude() {
        // The paper selects "larger ones" of the attention *scores* — softmax
        // is monotone, so larger score = more important. -5 loses to 1.
        let p = NmPattern::P1_2;
        assert_eq!(p.select_group(&[-5.0, 1.0]), vec![1]);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let p = NmPattern::P2_4;
        assert_eq!(p.select_group(&[1.0, 1.0, 1.0, 1.0]), vec![0, 1]);
        let q = NmPattern::P1_2;
        assert_eq!(q.select_group(&[2.0, 2.0]), vec![0]);
    }

    #[test]
    fn select_group_into_matches_stable_sort_reference() {
        // Reference: the stable-descending-sort formulation of the
        // selection semantics (what `select_group` historically did).
        fn reference(n: usize, group: &[f32]) -> Vec<usize> {
            let mut idx: Vec<usize> = (0..group.len()).collect();
            idx.sort_by(|&a, &b| {
                group[b]
                    .partial_cmp(&group[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut kept = idx[..n].to_vec();
            kept.sort_unstable();
            kept
        }
        let mut rng = Rng::new(11);
        for &(n, m) in &[(1usize, 2usize), (2, 4), (1, 4), (3, 4), (3, 8)] {
            let p = NmPattern::new(n, m);
            for _ in 0..200 {
                let group: Vec<f32> = (0..m).map(|_| rng.normal(0.0, 1.0)).collect();
                let mut buf = [0usize; MAX_M];
                let k = p.select_group_into(&group, &mut buf);
                assert_eq!(&buf[..k], &reference(n, &group)[..], "{p} {group:?}");
                assert_eq!(&buf[..k], &p.select_group(&group)[..], "{p} wrapper");
            }
            // Tie-heavy groups exercise the stability contract.
            let ties: Vec<f32> = (0..m).map(|i| (i % 2) as f32).collect();
            let mut buf = [0usize; MAX_M];
            let k = p.select_group_into(&ties, &mut buf);
            assert_eq!(&buf[..k], &reference(n, &ties)[..], "{p} ties");
        }
    }

    #[test]
    fn mask_row_density() {
        let p = NmPattern::P2_4;
        let mut rng = Rng::new(1);
        let row: Vec<f32> = (0..64).map(|_| rng.normal(0.0, 1.0)).collect();
        let mut mask = vec![false; 64];
        p.mask_row(&row, &mut mask);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 32);
        // Every group has exactly two survivors.
        for chunk in mask.chunks_exact(4) {
            assert_eq!(chunk.iter().filter(|&&b| b).count(), 2);
        }
    }

    #[test]
    fn prune_matrix_zeroes_non_kept() {
        let mut m = Matrix::<f32>::from_vec(2, 4, vec![1., 2., 3., 4., 8., 7., 6., 5.]);
        NmPattern::P2_4.prune_matrix(&mut m);
        assert_eq!(m.row(0), &[0., 0., 3., 4.]);
        assert_eq!(m.row(1), &[8., 7., 0., 0.]);
    }

    #[test]
    fn mask_matrix_matches_prune() {
        let mut rng = Rng::new(3);
        let m = Matrix::<f32>::random_normal(8, 16, 0.0, 1.0, &mut rng);
        let mask = NmPattern::P2_4.mask_matrix(&m);
        let mut pruned = m.clone();
        NmPattern::P2_4.prune_matrix(&mut pruned);
        for r in 0..8 {
            for c in 0..16 {
                let expect = m.get(r, c) * mask.get(r, c);
                assert_eq!(pruned.get(r, c), expect);
            }
        }
    }

    #[test]
    fn general_patterns() {
        let p = NmPattern::new(1, 4);
        assert_eq!(p.density(), 0.25);
        assert_eq!(p.select_group(&[0.0, 0.0, 5.0, 0.0]), vec![2]);
        let p = NmPattern::new(3, 4);
        assert_eq!(p.select_group(&[1.0, 2.0, 3.0, 4.0]), vec![1, 2, 3]);
        assert_eq!(p.kept_per_row(16), 12);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn kept_per_row_requires_multiple() {
        NmPattern::P2_4.kept_per_row(10);
    }
}
