//! Batched compressed N:M stacks — the metadata view the batched kernels
//! produce and consume.
//!
//! An [`NmBatch`] is `batch` same-shape [`NmCompressed`] panels stored in
//! two contiguous buffers (nonzeros and selection codes, panel-major). The
//! fused batched SDDMM writes straight into the stacked buffers, the batched
//! compressed softmax normalises all `batch × rows` nonzero rows in one
//! launch, and the batched SpMM reads per-panel views without any copying.
//!
//! Like `BatchedMatrix`, an `NmBatch` can be a charge-only placeholder
//! (shape + pattern with empty buffers) so latency experiments never
//! materialise `batch × n²/2` values nobody reads.

use crate::compressed::NmCompressed;
use crate::pattern::NmPattern;
use dfss_tensor::Scalar;

/// A stack of `batch` same-shape N:M-compressed panels.
#[derive(Clone, Debug, PartialEq)]
pub struct NmBatch<T> {
    pattern: NmPattern,
    batch: usize,
    rows: usize,
    cols: usize,
    /// Panel-major kept values; `batch × rows × kept_per_row` entries, or
    /// empty for a charge-only placeholder.
    nonzeros: Vec<T>,
    /// Panel-major selection bitmasks; `batch × rows × cols/M` entries, or
    /// empty for a charge-only placeholder.
    codes: Vec<u8>,
}

impl<T: Scalar> NmBatch<T> {
    /// Assemble from stacked parts (the fused batched SDDMM epilogue).
    pub fn from_parts(
        pattern: NmPattern,
        batch: usize,
        rows: usize,
        cols: usize,
        nonzeros: Vec<T>,
        codes: Vec<u8>,
    ) -> NmBatch<T> {
        assert_eq!(cols % pattern.m(), 0);
        assert_eq!(nonzeros.len(), batch * rows * pattern.kept_per_row(cols));
        assert_eq!(codes.len(), batch * rows * cols / pattern.m());
        debug_assert!(codes.iter().all(|c| c.count_ones() as usize == pattern.n()));
        NmBatch {
            pattern,
            batch,
            rows,
            cols,
            nonzeros,
            codes,
        }
    }

    /// Stack copies of same-shape compressed panels.
    pub fn from_panels(panels: &[NmCompressed<T>]) -> NmBatch<T> {
        assert!(!panels.is_empty(), "empty panel list");
        let (pattern, rows, cols) = (panels[0].pattern(), panels[0].rows(), panels[0].cols());
        let mut nonzeros = Vec::with_capacity(panels.len() * rows * pattern.kept_per_row(cols));
        let mut codes = Vec::with_capacity(panels.len() * rows * cols / pattern.m());
        for p in panels {
            assert_eq!(
                (p.pattern(), p.rows(), p.cols()),
                (pattern, rows, cols),
                "panel shape/pattern mismatch"
            );
            nonzeros.extend_from_slice(p.nonzeros());
            codes.extend_from_slice(p.codes());
        }
        NmBatch {
            pattern,
            batch: panels.len(),
            rows,
            cols,
            nonzeros,
            codes,
        }
    }

    /// Gather borrowed same-shape compressed panels into one stack — the
    /// serving path's *pack* step for mechanisms that exchange compressed
    /// weights (mirrors [`BatchedMatrix::gather`]). Inverse of
    /// [`into_panels`](Self::into_panels) up to the copy.
    ///
    /// [`BatchedMatrix::gather`]: dfss_tensor::BatchedMatrix
    pub fn gather(panels: &[&NmCompressed<T>]) -> NmBatch<T> {
        assert!(!panels.is_empty(), "empty panel list");
        let (pattern, rows, cols) = (panels[0].pattern(), panels[0].rows(), panels[0].cols());
        let mut nonzeros = Vec::with_capacity(panels.len() * rows * pattern.kept_per_row(cols));
        let mut codes = Vec::with_capacity(panels.len() * rows * cols / pattern.m());
        for p in panels {
            assert_eq!(
                (p.pattern(), p.rows(), p.cols()),
                (pattern, rows, cols),
                "panel shape/pattern mismatch"
            );
            nonzeros.extend_from_slice(p.nonzeros());
            codes.extend_from_slice(p.codes());
        }
        NmBatch {
            pattern,
            batch: panels.len(),
            rows,
            cols,
            nonzeros,
            codes,
        }
    }

    /// Scatter the stack back into standalone compressed panels (the
    /// serving path's *unpack* step). Bit-preserving.
    pub fn into_panels(self) -> Vec<NmCompressed<T>> {
        self.assert_materialized();
        (0..self.batch).map(|b| self.to_compressed(b)).collect()
    }

    /// Shape-only placeholder for charge-only (`!ctx.exec`) kernel results.
    pub fn charge_only(pattern: NmPattern, batch: usize, rows: usize, cols: usize) -> NmBatch<T> {
        assert_eq!(cols % pattern.m(), 0);
        NmBatch {
            pattern,
            batch,
            rows,
            cols,
            nonzeros: Vec::new(),
            codes: Vec::new(),
        }
    }

    /// Whether the backing buffers are populated.
    #[inline]
    pub fn is_materialized(&self) -> bool {
        self.nonzeros.len() == self.batch * self.rows * self.kept_per_row()
    }

    fn assert_materialized(&self) {
        assert!(
            self.is_materialized(),
            "charge-only NmBatch placeholder has no panel data"
        );
    }

    #[inline]
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dense (uncompressed) column count of each panel.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Kept values per row.
    #[inline]
    pub fn kept_per_row(&self) -> usize {
        self.pattern.kept_per_row(self.cols)
    }

    #[inline]
    pub fn groups_per_row(&self) -> usize {
        self.cols / self.pattern.m()
    }

    /// Kept values of panel `b` (row-major).
    #[inline]
    pub fn panel_nonzeros(&self, b: usize) -> &[T] {
        self.assert_materialized();
        let pl = self.rows * self.kept_per_row();
        &self.nonzeros[b * pl..(b + 1) * pl]
    }

    /// Selection codes of panel `b` (row-major, one byte per group).
    #[inline]
    pub fn panel_codes(&self, b: usize) -> &[u8] {
        self.assert_materialized();
        let pl = self.rows * self.groups_per_row();
        &self.codes[b * pl..(b + 1) * pl]
    }

    /// All nonzeros (panel-major).
    #[inline]
    pub fn nonzeros(&self) -> &[T] {
        &self.nonzeros
    }

    /// All nonzeros, mutable (the batched softmax normalises in place).
    #[inline]
    pub fn nonzeros_mut(&mut self) -> &mut [T] {
        &mut self.nonzeros
    }

    /// All selection codes (panel-major).
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Copy panel `b` out as a standalone [`NmCompressed`].
    pub fn to_compressed(&self, b: usize) -> NmCompressed<T> {
        NmCompressed::from_parts(
            self.pattern,
            self.rows,
            self.cols,
            self.panel_nonzeros(b).to_vec(),
            self.panel_codes(b).to_vec(),
        )
    }

    /// Call `f(dense_col, value)` for every kept entry of row `r` of panel
    /// `b`, ascending column order (the batched SpMM hot path).
    #[inline]
    pub fn scan_row(&self, b: usize, r: usize, mut f: impl FnMut(usize, T)) {
        let m = self.pattern.m();
        let kept = self.kept_per_row();
        let gpr = self.groups_per_row();
        let nz_start = (b * self.rows + r) * kept;
        let code_start = (b * self.rows + r) * gpr;
        let row_nz = &self.nonzeros[nz_start..nz_start + kept];
        let row_codes = &self.codes[code_start..code_start + gpr];
        let mut nz_pos = 0usize;
        for (g, &code) in row_codes.iter().enumerate() {
            let base = g * m;
            let mut bits = code;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(base + bit, row_nz[nz_pos]);
                nz_pos += 1;
                bits &= bits - 1;
            }
        }
    }

    /// Nonzero storage footprint in bytes for the whole stack (placeholders
    /// report the footprint the materialised stack would have).
    #[inline]
    pub fn nonzeros_bytes(&self) -> usize {
        self.batch * self.rows * self.kept_per_row() * T::BYTES
    }

    /// Logical metadata footprint in bytes (4 bits per group).
    #[inline]
    pub fn meta_bytes(&self) -> usize {
        (self.batch * self.rows * self.groups_per_row() * 4).div_ceil(8)
    }

    /// Total compressed footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.nonzeros_bytes() + self.meta_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::{Matrix, Rng};

    fn stack(batch: usize, n: usize, seed: u64) -> (Vec<NmCompressed<f32>>, NmBatch<f32>) {
        let mut rng = Rng::new(seed);
        let panels: Vec<NmCompressed<f32>> = (0..batch)
            .map(|_| {
                let dense = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);
                NmCompressed::compress(&dense, NmPattern::P1_2)
            })
            .collect();
        let batch = NmBatch::from_panels(&panels);
        (panels, batch)
    }

    #[test]
    fn from_panels_round_trips() {
        let (panels, stack) = stack(3, 16, 1);
        assert_eq!(stack.batch(), 3);
        for (b, p) in panels.iter().enumerate() {
            assert_eq!(&stack.to_compressed(b), p);
            assert_eq!(stack.panel_nonzeros(b), p.nonzeros());
            assert_eq!(stack.panel_codes(b), p.codes());
        }
    }

    #[test]
    fn scan_row_matches_panel_scan() {
        let (panels, stack) = stack(2, 16, 2);
        for (b, p) in panels.iter().enumerate() {
            for r in 0..16 {
                let mut got = Vec::new();
                stack.scan_row(b, r, |c, v| got.push((c, v)));
                let mut expect = Vec::new();
                p.scan_row(r, |c, v| expect.push((c, v)));
                assert_eq!(got, expect, "panel {b} row {r}");
            }
        }
    }

    #[test]
    fn bytes_scale_with_batch() {
        let (panels, stack) = stack(4, 32, 3);
        assert_eq!(stack.nonzeros_bytes(), 4 * panels[0].nonzeros_bytes());
        assert_eq!(stack.meta_bytes(), 4 * panels[0].meta_bytes());
    }

    #[test]
    fn gather_then_into_panels_is_identity() {
        let (panels, _) = stack(3, 16, 5);
        let refs: Vec<&NmCompressed<f32>> = panels.iter().collect();
        let gathered = NmBatch::gather(&refs);
        assert_eq!(gathered.batch(), 3);
        let back = gathered.into_panels();
        assert_eq!(back, panels);
    }

    #[test]
    fn charge_only_carries_shape() {
        let p = NmBatch::<f32>::charge_only(NmPattern::P1_2, 8, 64, 64);
        assert!(!p.is_materialized());
        assert_eq!(p.kept_per_row(), 32);
        assert_eq!(p.bytes(), 8 * (64 * 32 * 4 + 64 * 32 / 2));
    }

    #[test]
    #[should_panic(expected = "charge-only")]
    fn charge_only_panel_access_panics() {
        let p = NmBatch::<f32>::charge_only(NmPattern::P1_2, 2, 8, 8);
        let _ = p.panel_nonzeros(0);
    }
}
