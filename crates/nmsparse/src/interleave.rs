//! The bf16 column interleave of Figure 9.
//!
//! Under the tensor-core output layout, the four bf16 entries of a 2:4 group
//! are split across two threads' registers; selecting the two largest would
//! need cross-lane warp shuffles in the pruning epilogue. The paper fixes
//! this by interleaving the columns of matrix B **when loading it to shared
//! memory** ("simply manipulating the pointer to the global memory at the
//! beginning"), which permutes the GEMM output columns such that each
//! consecutive group of four logical columns lands in one thread.
//!
//! The permutation (per 16-column window, from Figure 9(b)'s explicit column
//! listing `0 1 4 5 8 9 12 13 | 2 3 6 7 10 11 14 15`):
//!
//! ```text
//! dst = (⌊col/2⌋ mod 2)·8 + (col mod 2) + (⌊col/4⌋ mod 4)·2 + ⌊col/16⌋·16
//! ```
//!
//! In this reproduction the interleave is functionally a no-op (our epilogue
//! can see the whole tile), but we implement it faithfully so that (a) the
//! register-layout tests of the fused kernel match the paper and (b) the
//! ablation bench can count the warp shuffles it eliminates.

use dfss_tensor::{Matrix, Scalar};

/// Destination column of logical column `col` after the Figure 9 interleave.
#[inline]
pub fn interleave_col(col: usize) -> usize {
    ((col / 2) % 2) * 8 + (col % 2) + ((col / 4) % 4) * 2 + (col / 16) * 16
}

/// Inverse permutation of [`interleave_col`].
#[inline]
pub fn deinterleave_col(dst: usize) -> usize {
    // Within a 16-wide window: window position d maps back to
    // col = (d mod 2) + (⌊d/8⌋)·2 + (⌊d/2⌋ mod 4)·4.
    let base = (dst / 16) * 16;
    let d = dst % 16;
    base + (d % 2) + (d / 8) * 2 + ((d / 2) % 4) * 4
}

/// Permute the columns of a matrix with the interleave (what the kernel does
/// to `B = Kᵀ` while loading it to shared memory).
pub fn interleave_columns<T: Scalar>(mat: &Matrix<T>) -> Matrix<T> {
    let (rows, cols) = mat.shape();
    assert_eq!(cols % 16, 0, "interleave works on 16-column windows");
    Matrix::from_fn(rows, cols, |r, c| mat.get(r, deinterleave_col(c)))
}

/// Undo [`interleave_columns`] (what the epilogue conceptually does when
/// mapping register contents back to logical output columns).
pub fn deinterleave_columns<T: Scalar>(mat: &Matrix<T>) -> Matrix<T> {
    let (rows, cols) = mat.shape();
    assert_eq!(cols % 16, 0);
    Matrix::from_fn(rows, cols, |r, c| mat.get(r, interleave_col(c)))
}

/// Number of cross-lane shuffle operations a 2:4 selection over `cols`
/// output columns would need **without** the interleave: under the naive
/// Figure 9(a) mapping, each 4-wide group straddles two threads and needs
/// two shuffles to gather its four values into one lane.
#[inline]
pub fn shuffles_without_interleave(rows: usize, cols: usize) -> usize {
    rows * (cols / 4) * 2
}

/// With the interleave the gather cost is zero (paper: "consecutive four
/// data are naturally held by the same thread").
#[inline]
pub fn shuffles_with_interleave(_rows: usize, _cols: usize) -> usize {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    #[test]
    fn matches_figure_9b_listing() {
        // Figure 9(b) column header: positions 0..16 hold original columns
        // 0 1 4 5 8 9 12 13 2 3 6 7 10 11 14 15.
        let expect = [0, 1, 4, 5, 8, 9, 12, 13, 2, 3, 6, 7, 10, 11, 14, 15];
        for (pos, &orig) in expect.iter().enumerate() {
            assert_eq!(deinterleave_col(pos), orig, "position {pos}");
            assert_eq!(interleave_col(orig), pos, "column {orig}");
        }
    }

    #[test]
    fn bijection_over_multiple_windows() {
        let mut seen = [false; 64];
        for c in 0..64 {
            let d = interleave_col(c);
            assert!(d < 64);
            assert!(!seen[d]);
            seen[d] = true;
            assert_eq!(deinterleave_col(d), c);
        }
    }

    #[test]
    fn window_locality() {
        // The permutation never crosses a 16-column window (it's a pointer
        // trick within the 32-byte load granularity).
        for c in 0..128 {
            assert_eq!(interleave_col(c) / 16, c / 16);
        }
    }

    #[test]
    fn interleave_then_deinterleave_is_identity() {
        let mut rng = Rng::new(3);
        let m = Matrix::<f32>::random_normal(8, 32, 0.0, 1.0, &mut rng);
        let round = deinterleave_columns(&interleave_columns(&m));
        assert_eq!(round, m);
    }

    #[test]
    fn groups_land_in_single_thread_slots() {
        // In the wmma output layout, thread t of a quad owns positions
        // {2t, 2t+1, 2t+8, 2t+9} of each 16-column window (two 32-bit
        // registers of two bf16 each, Figure 9(a)). After interleaving,
        // every logical 2:4 group {4g..4g+3} must land entirely in one
        // thread's slots — that is the whole point of the transform.
        for g in 0..8 {
            let window = (4 * g / 16) * 16;
            let mut dsts: Vec<usize> = (0..4).map(|i| interleave_col(4 * g + i) - window).collect();
            dsts.sort_unstable();
            let t = dsts[0] / 2;
            assert_eq!(
                dsts,
                vec![2 * t, 2 * t + 1, 2 * t + 8, 2 * t + 9],
                "group {g} not thread-local: {dsts:?}"
            );
        }
    }

    #[test]
    fn shuffle_counts() {
        assert_eq!(shuffles_without_interleave(32, 64), 32 * 16 * 2);
        assert_eq!(shuffles_with_interleave(32, 64), 0);
    }
}
