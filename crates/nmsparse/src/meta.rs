//! The device metadata layout of Appendix A.1.1 (Figure 6).
//!
//! On Ampere, every 8 bytes of dense data (four 2-byte lanes) is pruned to
//! 50% and described by one 4-bit code naming the two surviving lanes. With
//! `bfloat16` the four lanes are four values (2:4 selection); with `float`
//! each value spans two lanes, so only the codes `0x4` (first value) and
//! `0xE` (second value) occur — exactly the paper's observation.
//!
//! The codes then undergo three layout transforms before hitting global
//! memory, reproduced bit-for-bit here and inverted for decoding:
//!
//! 1. **Pack** — four consecutive codes concatenate LSB-first into a 2-byte
//!    *metadata block* (code *k* occupies bits `[4k, 4k+3]`).
//! 2. **Row interleave** (Equation 9) —
//!    `dst_row = ⌊row/32⌋·32 + (row%8)·4 + ⌊(row%32)/8⌋`.
//! 3. **Sub-diagonal swap** — in every 2×2 grid of blocks, the upper-right
//!    and lower-left blocks exchange places.
//! 4. **Interleaved column-major store** — each row's block pairs are
//!    reinterpreted as little-endian `u32` words and written column-major
//!    (stride 4 bytes).
//!
//! The whole pipeline is a bijection on (position, bits); a proptest
//! verifies `decode(encode(x)) == x` for random inputs.

/// Typed error for the device-metadata conversions. A serving front door
/// decodes metadata from untrusted requests, so the decode path must reject
/// malformed input with a `Result` instead of aborting the process; the
/// panicking `*_unchecked` variants remain for hot paths that already
/// validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaError {
    /// The N:M pattern has no Ampere device-metadata layout (only 1:2 float
    /// and 2:4 bfloat16 do, Appendix A.1.1).
    UnsupportedPattern { n: usize, m: usize },
    /// A metadata code outside the float 1:2 alphabet `{0x4, 0xE}`.
    BadFloatCode(u8),
    /// A metadata code outside the 2:4 alphabet of Figure 6(b).
    BadBf16Code(u8),
    /// The shape does not tile into 32-row × 8-code prune tiles.
    BadTile { rows: usize, codes_per_row: usize },
    /// The dense column count does not split into M-groups.
    BadShape { rows: usize, cols: usize, m: usize },
    /// A buffer's length disagrees with the `rows × cols` shape.
    LengthMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::UnsupportedPattern { n, m } => {
                write!(
                    f,
                    "device metadata only defined for 1:2 and 2:4, not {n}:{m}"
                )
            }
            MetaError::BadFloatCode(c) => write!(f, "code {c:#x} is not a float 1:2 code"),
            MetaError::BadBf16Code(c) => write!(f, "code {c:#x} is not a 2:4 lane-pair code"),
            MetaError::BadTile {
                rows,
                codes_per_row,
            } => write!(
                f,
                "shape {rows}x{codes_per_row} does not tile into 32-row x 8-code prune tiles"
            ),
            MetaError::BadShape { rows, cols, m } => {
                write!(f, "shape {rows}x{cols} does not split into M={m} groups")
            }
            MetaError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected} entries, got {got}"),
        }
    }
}

impl std::error::Error for MetaError {}

/// The 4-bit code for keeping lanes `(i0, i1)` with `i0 < i1`:
/// `code = i0 | (i1 << 2)`.
///
/// Enumerated over all six pairs this yields exactly Figure 6(b):
/// `0x4, 0x8, 0xC, 0x9, 0xD, 0xE`.
#[inline]
pub fn lanes_to_code(i0: usize, i1: usize) -> u8 {
    debug_assert!(i0 < i1 && i1 < 4, "invalid lane pair ({i0},{i1})");
    (i0 as u8) | ((i1 as u8) << 2)
}

/// Invert [`lanes_to_code`].
#[inline]
pub fn code_to_lanes(code: u8) -> (usize, usize) {
    let i0 = (code & 0x3) as usize;
    let i1 = ((code >> 2) & 0x3) as usize;
    debug_assert!(i0 < i1, "invalid code {code:#x}");
    (i0, i1)
}

/// Checked variant of [`code_to_lanes`]: rejects codes outside Figure
/// 6(b)'s six-value alphabet with a typed error (the decode path for
/// untrusted metadata).
#[inline]
pub fn try_code_to_lanes(code: u8) -> Result<(usize, usize), MetaError> {
    let i0 = (code & 0x3) as usize;
    let i1 = ((code >> 2) & 0x3) as usize;
    if code >= 16 || i0 >= i1 {
        return Err(MetaError::BadBf16Code(code));
    }
    Ok((i0, i1))
}

/// All valid 2:4 codes in Figure 6(b)'s enumeration order.
pub const BF16_CODES: [u8; 6] = [0x4, 0x8, 0xC, 0x9, 0xD, 0xE];

/// The two codes reachable with `float` data (value 0 = lanes {0,1}, value 1
/// = lanes {2,3}).
pub const FLOAT_CODES: [u8; 2] = [0x4, 0xE];

/// Code for keeping float value `i` (0 or 1) of a 1:2 group.
#[inline]
pub fn float_keep_code(i: usize) -> u8 {
    FLOAT_CODES[i]
}

/// Which float value a code keeps (inverse of [`float_keep_code`]).
/// Rejects codes outside `{0x4, 0xE}` with a typed error.
#[inline]
pub fn float_kept_index(code: u8) -> Result<usize, MetaError> {
    match code {
        0x4 => Ok(0),
        0xE => Ok(1),
        _ => Err(MetaError::BadFloatCode(code)),
    }
}

/// Panicking variant of [`float_kept_index`] for hot decode loops that have
/// already validated their code stream.
#[inline]
pub fn float_kept_index_unchecked(code: u8) -> usize {
    match code {
        0x4 => 0,
        0xE => 1,
        _ => panic!("code {code:#x} is not a float 1:2 code"),
    }
}

/// Equation (9): the destination row of metadata row `row` after the
/// interleave.
#[inline]
pub fn interleave_row(row: usize) -> usize {
    (row / 32) * 32 + (row % 8) * 4 + (row % 32) / 8
}

/// Inverse of [`interleave_row`].
#[inline]
pub fn deinterleave_row(dst: usize) -> usize {
    (dst / 32) * 32 + (dst % 4) * 8 + (dst % 32) / 4
}

/// Metadata for a pruned dense region, stored in the exact device layout.
///
/// `rows` must be a multiple of 32 and `codes_per_row` a multiple of 8
/// (= one 32×64-byte prune tile, the paper's "basic tile to prune").
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceMeta {
    rows: usize,
    codes_per_row: usize,
    /// Little-endian u32 words in interleaved column-major order.
    words: Vec<u32>,
}

impl DeviceMeta {
    /// Blocks (u16 units) per row.
    #[inline]
    fn blocks_per_row(codes_per_row: usize) -> usize {
        codes_per_row / 4
    }

    /// Whether a `(rows, codes_per_row)` shape tiles into the 32-row ×
    /// 64-byte (= 8-code) prune tiles the layout is defined on.
    #[inline]
    pub fn tileable(rows: usize, codes_per_row: usize) -> bool {
        rows.is_multiple_of(32) && codes_per_row.is_multiple_of(8) && codes_per_row > 0
    }

    /// [`encode`](Self::encode) with the tile precondition checked as a
    /// typed error instead of a panic.
    pub fn try_encode(
        rows: usize,
        codes_per_row: usize,
        codes: &[u8],
    ) -> Result<DeviceMeta, MetaError> {
        if !Self::tileable(rows, codes_per_row) {
            return Err(MetaError::BadTile {
                rows,
                codes_per_row,
            });
        }
        Ok(Self::encode(rows, codes_per_row, codes))
    }

    /// Encode logical codes (row-major, one 4-bit code per 8 dense bytes)
    /// into the swizzled device layout.
    pub fn encode(rows: usize, codes_per_row: usize, codes: &[u8]) -> DeviceMeta {
        assert_eq!(rows % 32, 0, "prune tile height is 32 rows, got {rows}");
        assert_eq!(
            codes_per_row % 8,
            0,
            "prune tile width is 64 bytes = 8 codes, got {codes_per_row}"
        );
        assert_eq!(codes.len(), rows * codes_per_row);
        let bpr = Self::blocks_per_row(codes_per_row);

        // Step 1: pack codes into u16 blocks, LSB-first.
        let mut blocks = vec![0u16; rows * bpr];
        for r in 0..rows {
            for b in 0..bpr {
                let mut word = 0u16;
                for k in 0..4 {
                    let code = codes[r * codes_per_row + b * 4 + k];
                    debug_assert!(code < 16);
                    word |= (code as u16) << (4 * k);
                }
                blocks[r * bpr + b] = word;
            }
        }

        // Step 2: interleave rows (Equation 9).
        let mut inter = vec![0u16; rows * bpr];
        for r in 0..rows {
            let dst = interleave_row(r);
            inter[dst * bpr..(dst + 1) * bpr].copy_from_slice(&blocks[r * bpr..(r + 1) * bpr]);
        }

        // Step 3: sub-diagonal swap in every 2x2 grid of blocks.
        for gr in (0..rows).step_by(2) {
            for gb in (0..bpr).step_by(2) {
                inter.swap(gr * bpr + gb + 1, (gr + 1) * bpr + gb);
            }
        }

        // Step 4: pair consecutive blocks into u32 words, store column-major.
        let wcols = bpr / 2;
        let mut words = vec![0u32; rows * wcols];
        for r in 0..rows {
            for w in 0..wcols {
                let lo = inter[r * bpr + 2 * w] as u32;
                let hi = inter[r * bpr + 2 * w + 1] as u32;
                words[w * rows + r] = lo | (hi << 16);
            }
        }

        DeviceMeta {
            rows,
            codes_per_row,
            words,
        }
    }

    /// Decode back to logical row-major codes (inverse of [`Self::encode`]).
    pub fn decode(&self) -> Vec<u8> {
        let rows = self.rows;
        let bpr = Self::blocks_per_row(self.codes_per_row);
        let wcols = bpr / 2;

        // Undo step 4.
        let mut inter = vec![0u16; rows * bpr];
        for r in 0..rows {
            for w in 0..wcols {
                let word = self.words[w * rows + r];
                inter[r * bpr + 2 * w] = (word & 0xFFFF) as u16;
                inter[r * bpr + 2 * w + 1] = (word >> 16) as u16;
            }
        }

        // Undo step 3 (self-inverse).
        for gr in (0..rows).step_by(2) {
            for gb in (0..bpr).step_by(2) {
                inter.swap(gr * bpr + gb + 1, (gr + 1) * bpr + gb);
            }
        }

        // Undo step 2.
        let mut blocks = vec![0u16; rows * bpr];
        for r in 0..rows {
            let dst = interleave_row(r);
            blocks[r * bpr..(r + 1) * bpr].copy_from_slice(&inter[dst * bpr..(dst + 1) * bpr]);
        }

        // Undo step 1.
        let mut codes = vec![0u8; rows * self.codes_per_row];
        for r in 0..rows {
            for b in 0..bpr {
                let word = blocks[r * bpr + b];
                for k in 0..4 {
                    codes[r * self.codes_per_row + b * 4 + k] = ((word >> (4 * k)) & 0xF) as u8;
                }
            }
        }
        codes
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn codes_per_row(&self) -> usize {
        self.codes_per_row
    }

    /// Raw swizzled words (what the SpMM kernel and traffic counter see).
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Storage footprint in bytes. For an n×n dense f32 matrix this is
    /// n²·4/16 bytes — the paper's "metadata is only 1/16 of the original
    /// dense matrix in terms of bits".
    #[inline]
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_figure_6b() {
        // All six (i0, i1) pairs, in the figure's enumeration order.
        let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for (&(i0, i1), &expect) in pairs.iter().zip(BF16_CODES.iter()) {
            assert_eq!(lanes_to_code(i0, i1), expect, "pair ({i0},{i1})");
            assert_eq!(code_to_lanes(expect), (i0, i1));
        }
    }

    #[test]
    fn float_codes_are_0x4_and_0xe() {
        assert_eq!(float_keep_code(0), 0x4);
        assert_eq!(float_keep_code(1), 0xE);
        assert_eq!(float_kept_index(0x4), Ok(0));
        assert_eq!(float_kept_index(0xE), Ok(1));
        assert_eq!(float_kept_index_unchecked(0x4), 0);
        assert_eq!(float_kept_index_unchecked(0xE), 1);
    }

    #[test]
    fn float_kept_index_rejects_bf16_only_codes() {
        assert_eq!(float_kept_index(0x9), Err(MetaError::BadFloatCode(0x9)));
    }

    #[test]
    #[should_panic(expected = "not a float")]
    fn float_kept_index_unchecked_panics_on_bad_code() {
        float_kept_index_unchecked(0x9);
    }

    #[test]
    fn try_encode_rejects_bad_tiles_with_typed_error() {
        assert_eq!(
            DeviceMeta::try_encode(16, 8, &[0u8; 16 * 8]),
            Err(MetaError::BadTile {
                rows: 16,
                codes_per_row: 8
            })
        );
        assert!(DeviceMeta::try_encode(32, 8, &[0x4u8; 32 * 8]).is_ok());
    }

    #[test]
    fn interleave_row_matches_equation_9() {
        // Spot values from the formula.
        assert_eq!(interleave_row(0), 0);
        assert_eq!(interleave_row(1), 4);
        assert_eq!(interleave_row(7), 28);
        assert_eq!(interleave_row(8), 1);
        assert_eq!(interleave_row(15), 29);
        assert_eq!(interleave_row(16), 2);
        assert_eq!(interleave_row(24), 3);
        assert_eq!(interleave_row(31), 31);
        // Second 32-row window shifts by 32.
        assert_eq!(interleave_row(33), 36);
    }

    #[test]
    fn interleave_is_bijection_on_window() {
        let mut seen = [false; 64];
        for r in 0..64 {
            let d = interleave_row(r);
            assert!(!seen[d], "collision at {d}");
            seen[d] = true;
            assert_eq!(deinterleave_row(d), r);
        }
    }

    fn random_codes(rows: usize, cpr: usize, seed: u64) -> Vec<u8> {
        let mut rng = dfss_tensor::Rng::new(seed);
        (0..rows * cpr).map(|_| BF16_CODES[rng.below(6)]).collect()
    }

    #[test]
    fn encode_decode_roundtrip_min_tile() {
        let codes = random_codes(32, 8, 7);
        let dm = DeviceMeta::encode(32, 8, &codes);
        assert_eq!(dm.decode(), codes);
    }

    #[test]
    fn encode_decode_roundtrip_large() {
        let codes = random_codes(128, 32, 9);
        let dm = DeviceMeta::encode(128, 32, &codes);
        assert_eq!(dm.decode(), codes);
    }

    #[test]
    fn meta_is_one_sixteenth_of_dense_f32() {
        // 64x64 dense f32 = 64*64*4 bytes. codes_per_row = 64/2 = 32.
        let codes = vec![0x4u8; 64 * 32];
        let dm = DeviceMeta::encode(64, 32, &codes);
        assert_eq!(dm.bytes(), 64 * 64 * 4 / 16);
    }

    #[test]
    fn swizzle_actually_moves_blocks() {
        // One distinguishable code; everything else zero... use two values so
        // the swizzled buffer differs from the packed one.
        let mut codes = vec![0x4u8; 32 * 8];
        codes[9 * 8 + 3] = 0xE;
        let dm = DeviceMeta::encode(32, 8, &codes);
        // The word holding row 9's data must not be at the naive location
        // (row 9, first word) because row 9 interleaves to row 5... merely
        // assert round trip plus non-identity of the words layout.
        let naive = DeviceMeta {
            rows: 32,
            codes_per_row: 8,
            words: {
                let mut w = vec![0u32; 32];
                for r in 0..32 {
                    let mut lo = 0u16;
                    let mut hi = 0u16;
                    for k in 0..4 {
                        lo |= (codes[r * 8 + k] as u16) << (4 * k);
                        hi |= (codes[r * 8 + 4 + k] as u16) << (4 * k);
                    }
                    w[r] = lo as u32 | ((hi as u32) << 16);
                }
                w
            },
        };
        assert_ne!(dm.words(), naive.words());
        assert_eq!(dm.decode(), codes);
    }

    #[test]
    #[should_panic(expected = "prune tile height")]
    fn rejects_non_tile_rows() {
        DeviceMeta::encode(16, 8, &[0u8; 16 * 8]);
    }

    #[test]
    #[should_panic(expected = "prune tile width")]
    fn rejects_non_tile_cols() {
        DeviceMeta::encode(32, 4, &[0u8; 32 * 4]);
    }
}
