//! Compressed sparse row — the encoding the explicit top-k baseline must
//! build at runtime.
//!
//! Section 4.3 argues that even with an oracle top-k mask, explicit top-k
//! attention loses because (a) gathering the k largest per row and (b)
//! sorting them into CSR are expensive and serial. We implement both honestly
//! so the executed-simulator curve in Figure 11 includes that overhead.

use dfss_tensor::{Matrix, Scalar};

/// A CSR matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    rows: usize,
    cols: usize,
    /// `rows + 1` prefix offsets into `col_idx`/`vals`.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Build from a dense matrix, keeping entries where `keep` is true.
    pub fn from_dense_where(dense: &Matrix<T>, keep: impl Fn(usize, usize, T) -> bool) -> Csr<T> {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if keep(r, c, v) {
                    col_idx.push(c as u32);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build by keeping the `k` largest entries of each row (the explicit
    /// sparse transformer of Zhao et al., §4.3). Ties keep the earlier
    /// column; columns within a row end up sorted ascending, which is the
    /// sort step the paper charges the baseline for.
    pub fn from_dense_topk(dense: &Matrix<T>, k: usize) -> Csr<T> {
        let (rows, cols) = dense.shape();
        let k = k.min(cols);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(rows * k);
        let mut vals = Vec::with_capacity(rows * k);
        row_ptr.push(0);
        let mut order: Vec<usize> = Vec::with_capacity(cols);
        for r in 0..rows {
            let row = dense.row(r);
            order.clear();
            order.extend(0..cols);
            // Stable descending selection of the k largest.
            order.sort_by(|&a, &b| {
                row[b]
                    .to_f32()
                    .partial_cmp(&row[a].to_f32())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut kept: Vec<usize> = order[..k].to_vec();
            kept.sort_unstable();
            for c in kept {
                col_idx.push(c as u32);
                vals.push(row[c]);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of entries stored.
    #[inline]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// `(columns, values)` of one row.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[T]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Mutable values of one row (softmax normalises in place).
    #[inline]
    pub fn row_vals_mut(&mut self, r: usize) -> &mut [T] {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        &mut self.vals[lo..hi]
    }

    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Reconstruct the dense matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cis, vs) = self.row(r);
            let pairs: Vec<(u32, T)> = cis.iter().copied().zip(vs.iter().copied()).collect();
            let orow = out.row_mut(r);
            for (c, v) in pairs {
                orow[c as usize] = v;
            }
        }
        out
    }

    /// Storage footprint in bytes: values + 4-byte column indices + 8-byte
    /// row pointers (what the top-k baseline must write to memory).
    pub fn bytes(&self) -> usize {
        self.vals.len() * T::BYTES + self.col_idx.len() * 4 + self.row_ptr.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    #[test]
    fn from_dense_where_roundtrip() {
        let mut rng = Rng::new(1);
        let m = Matrix::<f32>::random_normal(10, 12, 0.0, 1.0, &mut rng);
        let csr = Csr::from_dense_where(&m, |_, _, v| v > 0.0);
        let dense = csr.to_dense();
        for r in 0..10 {
            for c in 0..12 {
                let v = m.get(r, c);
                assert_eq!(dense.get(r, c), if v > 0.0 { v } else { 0.0 });
            }
        }
    }

    #[test]
    fn topk_keeps_k_largest_sorted() {
        let m = Matrix::<f32>::from_vec(2, 5, vec![5., 1., 4., 2., 3., -1., -5., -2., -4., -3.]);
        let csr = Csr::from_dense_topk(&m, 2);
        let (c0, v0) = csr.row(0);
        assert_eq!(c0, &[0, 2]);
        assert_eq!(v0, &[5.0, 4.0]);
        let (c1, v1) = csr.row(1);
        assert_eq!(c1, &[0, 2]);
        assert_eq!(v1, &[-1.0, -2.0]);
        assert_eq!(csr.nnz(), 4);
        assert!((csr.density() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn topk_k_larger_than_cols_keeps_all() {
        let m = Matrix::<f32>::from_vec(1, 3, vec![1., 2., 3.]);
        let csr = Csr::from_dense_topk(&m, 10);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), m);
    }

    #[test]
    fn columns_sorted_ascending_per_row() {
        let mut rng = Rng::new(2);
        let m = Matrix::<f32>::random_normal(16, 64, 0.0, 1.0, &mut rng);
        let csr = Csr::from_dense_topk(&m, 7);
        for r in 0..16 {
            let (cs, _) = csr.row(r);
            assert!(cs.windows(2).all(|w| w[0] < w[1]), "row {r}: {cs:?}");
            assert_eq!(cs.len(), 7);
        }
    }

    #[test]
    fn empty_rows_allowed() {
        let m = Matrix::<f32>::zeros(3, 4);
        let csr = Csr::from_dense_where(&m, |_, _, v| v > 0.0);
        assert_eq!(csr.nnz(), 0);
        for r in 0..3 {
            assert_eq!(csr.row(r).0.len(), 0);
        }
    }

    #[test]
    fn bytes_accounts_indices_and_ptrs() {
        let m = Matrix::<f32>::from_vec(1, 4, vec![1., 2., 3., 4.]);
        let csr = Csr::from_dense_topk(&m, 2);
        assert_eq!(csr.bytes(), 2 * 4 + 2 * 4 + 2 * 8);
    }
}
