//! # dfss-nmsparse — N:M fine-grained structured sparse formats
//!
//! The storage substrate for Dfss. The paper prunes the attention score
//! matrix to the Ampere-supported patterns (1:2 for `float`, 2:4 for
//! `bfloat16`) and stores it as CUTLASS-format *nonzeros + metadata* so the
//! sparse tensor core can consume it directly. This crate implements:
//!
//! * [`pattern`] — N:M group selection (keep the N largest of every M
//!   consecutive entries) for arbitrary N < M, plus mask generation.
//! * [`compressed`] — the logical compressed format
//!   ([`NmCompressed`]): nonzeros (`n/m` of the dense row) + one 4-bit
//!   selection code per group, with compress / decompress / masked-dense.
//! * [`batch`] — [`NmBatch`], a contiguous stack of same-shape compressed
//!   panels with per-panel metadata views, produced and consumed by the
//!   batched B×H kernels in one launch.
//! * [`meta`] — the *device* metadata layout of Appendix A.1.1 / Figure 6:
//!   4-bit codes (`0x4, 0x8, 0xC, 0x9, 0xD, 0xE`), concatenation into 2-byte
//!   blocks, the row interleave of Equation (9), the sub-diagonal 2×2 swap,
//!   and the interleaved column-major store — all invertible and property
//!   tested as a bijection.
//! * [`interleave`] — the bf16 column interleave of Figure 9 that keeps each
//!   2:4 group inside one "thread" during the fused pruning epilogue.
//! * [`csr`] — compressed sparse row, the encoding the explicit top-k
//!   baseline (§4.3) must build at runtime.
//! * [`blocked_ell`] — blocked-ELL sparsity and the hybrid
//!   blocked-ELL × N:M layout the kernel supports for long sequences.

pub mod batch;
pub mod blocked_ell;
pub mod compressed;
pub mod csr;
pub mod interleave;
pub mod meta;
pub mod pattern;
pub mod ragged;

pub use batch::NmBatch;
pub use blocked_ell::BlockedEll;
pub use compressed::NmCompressed;
pub use csr::Csr;
pub use meta::MetaError;
pub use pattern::{NmPattern, MAX_M};
pub use ragged::NmRagged;
