//! Per-row compressed N:M score rows with ragged lengths — the decode-path
//! metadata format.
//!
//! A decode step computes **one new score row per stream**: stream `i`'s new
//! query row against its `len(i)` cached keys. [`NmRagged`] stores those B
//! compressed rows contiguously (values + selection codes, row-major per
//! stream) with per-row dense lengths.
//!
//! ## The dense tail
//!
//! Prefill requires the score width to be a multiple of M; a decode cache
//! grows by one position per step, so its length is usually *not* M-aligned.
//! The decode format prunes N:M over the row's **full M-groups only** and
//! keeps the trailing `len mod M` positions **dense** (always kept, identity
//! selection, no metadata). A pleasant consequence: the most recently cached
//! positions are never pruned until their group fills — recency is preserved
//! exactly while the steady-state density stays N/M.
//!
//! Kept values of row `i` are therefore laid out as
//! `[group 0 kept … group G-1 kept, tail values]` with
//! `kept(i) = ⌊len/M⌋·N + len mod M` values and one code byte per full
//! group.

use crate::pattern::NmPattern;
use dfss_tensor::Scalar;

/// A stack of per-stream N:M-compressed score rows with ragged dense
/// lengths and dense tails (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct NmRagged<T> {
    pattern: NmPattern,
    /// Dense score-row length per stream.
    lens: Vec<usize>,
    /// Prefix offsets into `nonzeros`; `streams + 1` entries.
    nz_offsets: Vec<usize>,
    /// Prefix offsets into `codes`; `streams + 1` entries.
    code_offsets: Vec<usize>,
    /// Kept values, row-major per stream (group kept values then the tail).
    nonzeros: Vec<T>,
    /// Selection bitmasks, one byte per **full** M-group.
    codes: Vec<u8>,
}

impl<T: Scalar> NmRagged<T> {
    /// Kept values of a dense row of `len` under `pattern` (full groups
    /// pruned to N, tail kept dense).
    #[inline]
    pub fn kept_for(pattern: NmPattern, len: usize) -> usize {
        len / pattern.m() * pattern.n() + len % pattern.m()
    }

    /// Full M-groups of a dense row of `len` (the tail has no group).
    #[inline]
    pub fn groups_for(pattern: NmPattern, len: usize) -> usize {
        len / pattern.m()
    }

    /// Assemble from stacked parts (the decode kernels' epilogue output).
    pub fn from_parts(
        pattern: NmPattern,
        lens: Vec<usize>,
        nonzeros: Vec<T>,
        codes: Vec<u8>,
    ) -> NmRagged<T> {
        let (nz_offsets, code_offsets) = Self::offsets(pattern, &lens);
        assert_eq!(nonzeros.len(), nz_offsets[lens.len()], "nonzero length");
        assert_eq!(codes.len(), code_offsets[lens.len()], "code length");
        debug_assert!(codes.iter().all(|c| c.count_ones() as usize == pattern.n()));
        NmRagged {
            pattern,
            lens,
            nz_offsets,
            code_offsets,
            nonzeros,
            codes,
        }
    }

    /// Structurally valid all-zero stack (first-N selection per group) —
    /// what charge-only (`!exec`) decode kernels return.
    pub fn zeros(pattern: NmPattern, lens: &[usize]) -> NmRagged<T> {
        let (nz_offsets, code_offsets) = Self::offsets(pattern, lens);
        let code = (0..pattern.n()).fold(0u8, |acc, i| acc | (1 << i));
        NmRagged {
            pattern,
            lens: lens.to_vec(),
            nonzeros: vec![T::zero(); nz_offsets[lens.len()]],
            codes: vec![code; code_offsets[lens.len()]],
            nz_offsets,
            code_offsets,
        }
    }

    fn offsets(pattern: NmPattern, lens: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mut nz = Vec::with_capacity(lens.len() + 1);
        let mut code = Vec::with_capacity(lens.len() + 1);
        let (mut a, mut b) = (0usize, 0usize);
        nz.push(0);
        code.push(0);
        for &l in lens {
            a += Self::kept_for(pattern, l);
            b += Self::groups_for(pattern, l);
            nz.push(a);
            code.push(b);
        }
        (nz, code)
    }

    /// The N:M pattern of the full groups.
    #[inline]
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    /// Number of compressed rows (streams).
    #[inline]
    pub fn streams(&self) -> usize {
        self.lens.len()
    }

    /// Dense length of row `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i]
    }

    /// Per-stream dense lengths.
    #[inline]
    pub fn lens(&self) -> &[usize] {
        &self.lens
    }

    /// Kept values of row `i` (see [`kept_for`](Self::kept_for)).
    #[inline]
    pub fn kept_of(&self, i: usize) -> usize {
        self.nz_offsets[i + 1] - self.nz_offsets[i]
    }

    /// Full M-groups of row `i`.
    #[inline]
    pub fn groups_of(&self, i: usize) -> usize {
        self.code_offsets[i + 1] - self.code_offsets[i]
    }

    /// Dense-tail length of row `i` (`len mod M` always-kept values).
    #[inline]
    pub fn tail_of(&self, i: usize) -> usize {
        self.lens[i] % self.pattern.m()
    }

    /// Kept values of row `i` (group kept values then the dense tail).
    #[inline]
    pub fn row_nonzeros(&self, i: usize) -> &[T] {
        &self.nonzeros[self.nz_offsets[i]..self.nz_offsets[i + 1]]
    }

    /// Mutable kept values of row `i` (the decode softmax normalises in
    /// place).
    #[inline]
    pub fn row_nonzeros_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.nonzeros[self.nz_offsets[i]..self.nz_offsets[i + 1]]
    }

    /// Selection codes of row `i`, one byte per full group.
    #[inline]
    pub fn row_codes(&self, i: usize) -> &[u8] {
        &self.codes[self.code_offsets[i]..self.code_offsets[i + 1]]
    }

    /// All kept values (row-major across streams).
    #[inline]
    pub fn nonzeros(&self) -> &[T] {
        &self.nonzeros
    }

    /// Split the kept values into per-row mutable slices, in stream order.
    pub fn rows_mut(&mut self) -> Vec<&mut [T]> {
        let mut rest: &mut [T] = &mut self.nonzeros;
        let mut out = Vec::with_capacity(self.lens.len());
        for i in 0..self.lens.len() {
            let (head, tail) = rest.split_at_mut(self.nz_offsets[i + 1] - self.nz_offsets[i]);
            out.push(head);
            rest = tail;
        }
        out
    }

    /// Call `f(dense_col, value)` for every kept entry of row `i`, ascending
    /// column order: full groups by their code bits, then the dense tail.
    #[inline]
    pub fn scan_row(&self, i: usize, mut f: impl FnMut(usize, T)) {
        let m = self.pattern.m();
        let row_nz = self.row_nonzeros(i);
        let row_codes = self.row_codes(i);
        let mut nz_pos = 0usize;
        for (g, &code) in row_codes.iter().enumerate() {
            let base = g * m;
            let mut bits = code;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(base + bit, row_nz[nz_pos]);
                nz_pos += 1;
                bits &= bits - 1;
            }
        }
        let tail_base = row_codes.len() * m;
        for (t, &v) in row_nz[nz_pos..].iter().enumerate() {
            f(tail_base + t, v);
        }
    }

    /// Expand row `i` back to a dense length-`len` vector (pruned slots are
    /// zero).
    pub fn decompress_row(&self, i: usize) -> Vec<T> {
        let mut out = vec![T::zero(); self.lens[i]];
        self.scan_row(i, |c, v| out[c] = v);
        out
    }

    /// Kept-value storage bytes for the whole stack.
    #[inline]
    pub fn nonzeros_bytes(&self) -> usize {
        self.nonzeros.len() * T::BYTES
    }

    /// Logical metadata footprint in bytes (4 bits per full group).
    #[inline]
    pub fn meta_bytes(&self) -> usize {
        (self.codes.len() * 4).div_ceil(8)
    }

    /// Total compressed footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.nonzeros_bytes() + self.meta_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kept_counts_full_groups_plus_dense_tail() {
        let p = NmPattern::P1_2;
        assert_eq!(NmRagged::<f32>::kept_for(p, 8), 4);
        assert_eq!(NmRagged::<f32>::kept_for(p, 9), 5); // 4 groups + 1 tail
        assert_eq!(NmRagged::<f32>::groups_for(p, 9), 4);
        let q = NmPattern::P2_4;
        assert_eq!(NmRagged::<f32>::kept_for(q, 10), 6); // 2 groups×2 + 2 tail
    }

    #[test]
    fn from_parts_offsets_and_accessors() {
        // Rows of dense length 5 and 2 under 1:2 → kept 3 (2 groups + tail 1)
        // and 1 (1 group).
        let r = NmRagged::from_parts(
            NmPattern::P1_2,
            vec![5, 2],
            vec![1.0f32, 2.0, 3.0, 4.0],
            vec![0b01, 0b10, 0b01],
        );
        assert_eq!(r.streams(), 2);
        assert_eq!((r.kept_of(0), r.groups_of(0), r.tail_of(0)), (3, 2, 1));
        assert_eq!((r.kept_of(1), r.groups_of(1), r.tail_of(1)), (1, 1, 0));
        assert_eq!(r.row_nonzeros(0), &[1.0, 2.0, 3.0]);
        assert_eq!(r.row_nonzeros(1), &[4.0]);
        assert_eq!(r.row_codes(1), &[0b01]);
    }

    #[test]
    fn scan_row_visits_groups_then_tail_in_column_order() {
        let r = NmRagged::from_parts(
            NmPattern::P1_2,
            vec![5],
            vec![1.0f32, 2.0, 3.0],
            vec![0b01, 0b10],
        );
        let mut got = Vec::new();
        r.scan_row(0, |c, v| got.push((c, v)));
        // Group 0 keeps col 0, group 1 keeps col 3, tail is col 4.
        assert_eq!(got, vec![(0, 1.0), (3, 2.0), (4, 3.0)]);
        assert_eq!(r.decompress_row(0), vec![1.0, 0.0, 0.0, 2.0, 3.0]);
    }

    #[test]
    fn zeros_is_structurally_valid() {
        let r = NmRagged::<f32>::zeros(NmPattern::P2_4, &[9, 4, 1]);
        assert_eq!(r.streams(), 3);
        assert_eq!(r.kept_of(0), 5); // 2 groups×2 + tail 1
        assert_eq!(r.kept_of(2), 1); // all-tail row: no groups
        assert_eq!(r.groups_of(2), 0);
        let mut cols = Vec::new();
        r.scan_row(0, |c, _| cols.push(c));
        assert_eq!(cols, vec![0, 1, 4, 5, 8]);
    }

    #[test]
    fn bytes_account_values_and_half_byte_metadata() {
        let r = NmRagged::<f32>::zeros(NmPattern::P1_2, &[8, 6]);
        assert_eq!(r.nonzeros_bytes(), (4 + 3) * 4);
        assert_eq!(r.meta_bytes(), (7 * 4usize).div_ceil(8));
        assert_eq!(r.bytes(), r.nonzeros_bytes() + r.meta_bytes());
    }

    #[test]
    fn rows_mut_partitions_the_value_buffer() {
        let mut r = NmRagged::<f32>::zeros(NmPattern::P1_2, &[4, 3]);
        {
            let rows = r.rows_mut();
            assert_eq!(rows.len(), 2);
            assert_eq!((rows[0].len(), rows[1].len()), (2, 2)); // 2 | 1+1 tail
            for (i, row) in rows.into_iter().enumerate() {
                row.iter_mut().for_each(|v| *v = (i + 1) as f32);
            }
        }
        assert_eq!(r.row_nonzeros(0), &[1.0, 1.0]);
        assert_eq!(r.row_nonzeros(1), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "nonzero length")]
    fn from_parts_checks_value_count() {
        let _ = NmRagged::from_parts(NmPattern::P1_2, vec![4], vec![0.0f32], vec![1, 1]);
    }
}
