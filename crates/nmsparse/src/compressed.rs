//! The logical compressed N:M format: nonzeros + per-group selection codes.
//!
//! Nonzeros are stored row-major with `N/M · cols` entries per row (the
//! paper's "the nonzeros contain the value of reserved data that is 50%
//! smaller than the original one" for N/M = 1/2). Selection codes are one
//! byte per M-group holding a bitmask of kept positions; for the hardware
//! patterns (1:2 float, 2:4 bf16) the codes convert losslessly to and from
//! the swizzled [`DeviceMeta`] layout.
//!
//! [`DeviceMeta`]: crate::meta::DeviceMeta

use crate::meta::{self, DeviceMeta, MetaError};
use crate::pattern::NmPattern;
use dfss_tensor::{Matrix, Scalar};

/// A matrix pruned to an N:M pattern and stored compressed.
#[derive(Clone, Debug, PartialEq)]
pub struct NmCompressed<T> {
    pattern: NmPattern,
    rows: usize,
    cols: usize,
    /// Row-major kept values; `rows × kept_per_row` entries.
    nonzeros: Vec<T>,
    /// One bitmask byte per M-group (bit i ⇔ dense position i kept),
    /// row-major; `rows × cols/M` entries. Supports M ≤ 8.
    codes: Vec<u8>,
}

impl<T: Scalar> NmCompressed<T> {
    /// Compress a dense matrix by pruning each M-group to its N largest
    /// entries (by value — softmax is monotone, paper §3.1).
    pub fn compress(dense: &Matrix<T>, pattern: NmPattern) -> NmCompressed<T> {
        let (rows, cols) = dense.shape();
        assert!(pattern.m() <= 8, "bitmask codes support M ≤ 8");
        assert_eq!(cols % pattern.m(), 0);
        let kept_per_row = pattern.kept_per_row(cols);
        let groups_per_row = cols / pattern.m();

        let mut nonzeros = Vec::with_capacity(rows * kept_per_row);
        let mut codes = Vec::with_capacity(rows * groups_per_row);
        let mut scores = vec![0.0f32; pattern.m()];
        let mut kept = [0usize; crate::MAX_M];
        for r in 0..rows {
            let row = dense.row(r);
            for chunk in row.chunks_exact(pattern.m()) {
                for (s, v) in scores.iter_mut().zip(chunk) {
                    *s = v.to_f32();
                }
                let n_kept = pattern.select_group_into(&scores, &mut kept);
                let mut code = 0u8;
                for &k in &kept[..n_kept] {
                    code |= 1 << k;
                    nonzeros.push(chunk[k]);
                }
                codes.push(code);
            }
        }
        NmCompressed {
            pattern,
            rows,
            cols,
            nonzeros,
            codes,
        }
    }

    /// Assemble directly from parts (used by the fused SDDMM epilogue, which
    /// produces nonzeros and codes without ever materialising the dense
    /// matrix).
    pub fn from_parts(
        pattern: NmPattern,
        rows: usize,
        cols: usize,
        nonzeros: Vec<T>,
        codes: Vec<u8>,
    ) -> NmCompressed<T> {
        assert_eq!(cols % pattern.m(), 0);
        assert_eq!(nonzeros.len(), rows * pattern.kept_per_row(cols));
        assert_eq!(codes.len(), rows * cols / pattern.m());
        debug_assert!(codes.iter().all(|c| c.count_ones() as usize == pattern.n()));
        NmCompressed {
            pattern,
            rows,
            cols,
            nonzeros,
            codes,
        }
    }

    #[inline]
    pub fn pattern(&self) -> NmPattern {
        self.pattern
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dense (uncompressed) column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Kept values per row.
    #[inline]
    pub fn kept_per_row(&self) -> usize {
        self.pattern.kept_per_row(self.cols)
    }

    #[inline]
    pub fn groups_per_row(&self) -> usize {
        self.cols / self.pattern.m()
    }

    /// Kept values of one row, compressed order.
    #[inline]
    pub fn row_nonzeros(&self, r: usize) -> &[T] {
        let k = self.kept_per_row();
        &self.nonzeros[r * k..(r + 1) * k]
    }

    /// Mutable kept values of one row (softmax normalises these in place).
    #[inline]
    pub fn row_nonzeros_mut(&mut self, r: usize) -> &mut [T] {
        let k = self.kept_per_row();
        &mut self.nonzeros[r * k..(r + 1) * k]
    }

    /// All nonzeros (row-major).
    #[inline]
    pub fn nonzeros(&self) -> &[T] {
        &self.nonzeros
    }

    #[inline]
    pub fn nonzeros_mut(&mut self) -> &mut [T] {
        &mut self.nonzeros
    }

    /// Selection bitmask codes (row-major, one per group).
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Iterate `(dense_col, value)` pairs of a row in ascending column
    /// order.
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let m = self.pattern.m();
        let gpr = self.groups_per_row();
        let row_nz = self.row_nonzeros(r);
        let row_codes = &self.codes[r * gpr..(r + 1) * gpr];
        let mut nz_pos = 0usize;
        row_codes.iter().enumerate().flat_map(move |(g, &code)| {
            let base = g * m;
            let mut out = Vec::with_capacity(self.pattern.n());
            for bit in 0..m {
                if code & (1 << bit) != 0 {
                    out.push((base + bit, row_nz[nz_pos]));
                    nz_pos += 1;
                }
            }
            out
        })
    }

    /// Allocation-free row scan: calls `f(dense_col, value)` for every kept
    /// entry of row `r` in ascending column order. This is the hot path of
    /// the SpMM kernel.
    #[inline]
    pub fn scan_row(&self, r: usize, mut f: impl FnMut(usize, T)) {
        let m = self.pattern.m();
        let gpr = self.groups_per_row();
        let row_nz = self.row_nonzeros(r);
        let row_codes = &self.codes[r * gpr..(r + 1) * gpr];
        let mut nz_pos = 0usize;
        for (g, &code) in row_codes.iter().enumerate() {
            let base = g * m;
            let mut bits = code;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(base + bit, row_nz[nz_pos]);
                nz_pos += 1;
                bits &= bits - 1;
            }
        }
    }

    /// Reconstruct the dense matrix (zeros at pruned positions).
    pub fn decompress(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            // Collect first to release the immutable borrow of `self`.
            let entries: Vec<(usize, T)> = self.iter_row(r).collect();
            let row = out.row_mut(r);
            for (c, v) in entries {
                row[c] = v;
            }
        }
        out
    }

    /// Nonzero storage footprint in bytes.
    #[inline]
    pub fn nonzeros_bytes(&self) -> usize {
        self.nonzeros.len() * T::BYTES
    }

    /// Logical metadata footprint in bytes (4 bits per group for the
    /// hardware patterns — the 1/16-of-dense figure from §2.3).
    #[inline]
    pub fn meta_bytes(&self) -> usize {
        // 4 bits per group, rounded up to whole bytes per matrix.
        (self.codes.len() * 4).div_ceil(8)
    }

    /// Total compressed footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.nonzeros_bytes() + self.meta_bytes()
    }

    /// Convert the selection codes to the swizzled device metadata layout.
    ///
    /// Only the hardware patterns qualify: with 2:4 each group is one 4-lane
    /// code; with 1:2 each *pair of float values* is one 4-lane code, so two
    /// logical 1:2 groups fuse into one device code. Requires `rows % 32 == 0`
    /// and the device code count per row to be a multiple of 8 (the 32×64-byte
    /// prune tile).
    ///
    /// General patterns and non-tileable shapes are rejected with a typed
    /// [`MetaError`] — the serving front door converts formats on behalf of
    /// untrusted requests and must not abort the process.
    pub fn to_device_meta(&self) -> Result<DeviceMeta, MetaError> {
        match (self.pattern.n(), self.pattern.m()) {
            (2, 4) => {
                let mut device = Vec::with_capacity(self.codes.len());
                for &bm in &self.codes {
                    let lanes = bitmask_to_lanes(bm);
                    device.push(meta::lanes_to_code(lanes.0, lanes.1));
                }
                DeviceMeta::try_encode(self.rows, self.groups_per_row(), &device)
            }
            (1, 2) => {
                // With float data each 32-bit value spans two 2-byte lanes,
                // so one 1:2 group (two floats = 8 bytes) is one device code
                // restricted to {0x4, 0xE}.
                let mut device = Vec::with_capacity(self.codes.len());
                for &bm in &self.codes {
                    device.push(meta::float_keep_code(bit_index(bm)));
                }
                DeviceMeta::try_encode(self.rows, self.groups_per_row(), &device)
            }
            _ => Err(MetaError::UnsupportedPattern {
                n: self.pattern.n(),
                m: self.pattern.m(),
            }),
        }
    }

    /// Rebuild from device metadata + nonzeros (inverse of
    /// [`Self::to_device_meta`] plus the row-major nonzero store). Rejects
    /// unsupported patterns and malformed code streams with a typed
    /// [`MetaError`].
    pub fn from_device_meta(
        pattern: NmPattern,
        rows: usize,
        cols: usize,
        nonzeros: Vec<T>,
        dm: &DeviceMeta,
    ) -> Result<NmCompressed<T>, MetaError> {
        // Everything `from_parts` would assert is pre-checked here as a
        // typed error: the inputs come from untrusted requests.
        if cols == 0 || !cols.is_multiple_of(pattern.m()) {
            return Err(MetaError::BadShape {
                rows,
                cols,
                m: pattern.m(),
            });
        }
        let expected_nz = rows * pattern.kept_per_row(cols);
        if nonzeros.len() != expected_nz {
            return Err(MetaError::LengthMismatch {
                what: "nonzeros",
                expected: expected_nz,
                got: nonzeros.len(),
            });
        }
        let groups = rows * cols / pattern.m();
        let device_codes = dm.decode();
        if device_codes.len() != groups {
            return Err(MetaError::LengthMismatch {
                what: "device metadata codes",
                expected: groups,
                got: device_codes.len(),
            });
        }
        let mut codes = Vec::with_capacity(groups);
        match (pattern.n(), pattern.m()) {
            (2, 4) => {
                for &c in &device_codes {
                    let (i0, i1) = meta::try_code_to_lanes(c)?;
                    codes.push((1u8 << i0) | (1u8 << i1));
                }
            }
            (1, 2) => {
                for &c in &device_codes {
                    codes.push(1u8 << meta::float_kept_index(c)?);
                }
            }
            _ => {
                return Err(MetaError::UnsupportedPattern {
                    n: pattern.n(),
                    m: pattern.m(),
                })
            }
        }
        Ok(NmCompressed::from_parts(
            pattern, rows, cols, nonzeros, codes,
        ))
    }
}

/// Position of the single set bit of a 1:2 bitmask code.
#[inline]
fn bit_index(code: u8) -> usize {
    debug_assert_eq!(code.count_ones(), 1);
    code.trailing_zeros() as usize
}

/// The two set-bit positions of a 2:4 bitmask code.
#[inline]
fn bitmask_to_lanes(code: u8) -> (usize, usize) {
    debug_assert_eq!(code.count_ones(), 2);
    let i0 = code.trailing_zeros() as usize;
    let rest = code & !(1 << i0);
    let i1 = rest.trailing_zeros() as usize;
    (i0, i1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::{Bf16, Rng};

    #[test]
    fn compress_decompress_equals_prune() {
        let mut rng = Rng::new(2);
        let dense = Matrix::<f32>::random_normal(32, 64, 0.0, 1.0, &mut rng);
        for pattern in [NmPattern::P1_2, NmPattern::P2_4, NmPattern::new(1, 4)] {
            let comp = NmCompressed::compress(&dense, pattern);
            let mut pruned = dense.clone();
            pattern.prune_matrix(&mut pruned);
            assert_eq!(comp.decompress(), pruned, "pattern {pattern}");
        }
    }

    #[test]
    fn nonzeros_are_half_for_hardware_patterns() {
        let mut rng = Rng::new(4);
        let dense = Matrix::<f32>::random_normal(32, 32, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&dense, NmPattern::P1_2);
        assert_eq!(comp.nonzeros().len(), 32 * 16);
        assert_eq!(comp.nonzeros_bytes(), dense.bytes() / 2);
    }

    #[test]
    fn meta_bytes_is_one_sixteenth_of_dense_float() {
        let mut rng = Rng::new(4);
        let dense = Matrix::<f32>::random_normal(64, 64, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&dense, NmPattern::P1_2);
        // n² × 32-bit dense → n²/16 × 32-bit metadata (paper §3.4).
        assert_eq!(comp.meta_bytes(), dense.bytes() / 16);
    }

    #[test]
    fn iter_row_ascending_columns() {
        let dense = Matrix::<f32>::from_vec(1, 8, vec![5., 1., 2., 6., 0., 9., 8., 7.]);
        let comp = NmCompressed::compress(&dense, NmPattern::P2_4);
        let entries: Vec<(usize, f32)> = comp.iter_row(0).collect();
        assert_eq!(entries, vec![(0, 5.0), (3, 6.0), (5, 9.0), (6, 8.0)]);
    }

    #[test]
    fn row_nonzeros_mut_supports_softmax_in_place() {
        let dense = Matrix::<f32>::from_vec(1, 4, vec![1., 2., 3., 4.]);
        let mut comp = NmCompressed::compress(&dense, NmPattern::P2_4);
        dfss_tensor::math::softmax_row(comp.row_nonzeros_mut(0));
        let s: f32 = comp.row_nonzeros(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn device_meta_roundtrip_bf16_2_4() {
        let mut rng = Rng::new(6);
        let dense = Matrix::<Bf16>::random_normal(32, 32, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&dense, NmPattern::P2_4);
        let dm = comp.to_device_meta().unwrap();
        let back =
            NmCompressed::from_device_meta(NmPattern::P2_4, 32, 32, comp.nonzeros().to_vec(), &dm)
                .unwrap();
        assert_eq!(back, comp);
        assert_eq!(back.decompress().max_abs_diff(&comp.decompress()), 0.0);
    }

    #[test]
    fn device_meta_roundtrip_float_1_2() {
        let mut rng = Rng::new(8);
        let dense = Matrix::<f32>::random_normal(64, 32, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&dense, NmPattern::P1_2);
        let dm = comp.to_device_meta().unwrap();
        let back =
            NmCompressed::from_device_meta(NmPattern::P1_2, 64, 32, comp.nonzeros().to_vec(), &dm)
                .unwrap();
        assert_eq!(back, comp);
    }

    #[test]
    fn device_meta_rejects_general_patterns_with_typed_error() {
        let dense = Matrix::<f32>::zeros(32, 32);
        let comp = NmCompressed::compress(&dense, NmPattern::new(1, 4));
        assert_eq!(
            comp.to_device_meta(),
            Err(MetaError::UnsupportedPattern { n: 1, m: 4 })
        );
        let dm = DeviceMeta::encode(32, 8, &[0x4u8; 32 * 8]);
        let err = NmCompressed::<f32>::from_device_meta(
            NmPattern::new(1, 4),
            32,
            32,
            vec![0.0; 32 * 8],
            &dm,
        )
        .unwrap_err();
        assert_eq!(err, MetaError::UnsupportedPattern { n: 1, m: 4 });
    }

    #[test]
    fn from_device_meta_rejects_malformed_streams_with_typed_errors() {
        // A 2:4 metadata stream containing a code outside Figure 6(b)'s
        // alphabet (0x0 = "keep lane 0 twice") must be a typed rejection,
        // not a silent popcount-1 bitmask.
        let mut codes = vec![0x4u8; 32 * 8];
        codes[17] = 0x0;
        let dm = DeviceMeta::encode(32, 8, &codes);
        let err = NmCompressed::<Bf16>::from_device_meta(
            NmPattern::P2_4,
            32,
            32,
            vec![Bf16::from_f32(0.0); 32 * 16],
            &dm,
        )
        .unwrap_err();
        assert_eq!(err, MetaError::BadBf16Code(0x0));
        // Wrong nonzero count.
        let dm = DeviceMeta::encode(32, 8, &[0x4u8; 32 * 8]);
        let err = NmCompressed::<f32>::from_device_meta(NmPattern::P1_2, 32, 32, vec![0.0; 7], &dm)
            .unwrap_err();
        assert_eq!(
            err,
            MetaError::LengthMismatch {
                what: "nonzeros",
                expected: 32 * 16,
                got: 7
            }
        );
        // Metadata stream sized for a different shape.
        let err =
            NmCompressed::<f32>::from_device_meta(NmPattern::P1_2, 32, 64, vec![0.0; 32 * 32], &dm)
                .unwrap_err();
        assert_eq!(
            err,
            MetaError::LengthMismatch {
                what: "device metadata codes",
                expected: 32 * 32,
                got: 32 * 8
            }
        );
        // Columns that do not split into M-groups.
        let err = NmCompressed::<f32>::from_device_meta(NmPattern::P1_2, 32, 33, vec![0.0; 1], &dm)
            .unwrap_err();
        assert_eq!(
            err,
            MetaError::BadShape {
                rows: 32,
                cols: 33,
                m: 2
            }
        );
    }

    #[test]
    fn device_meta_rejects_non_tile_shapes_with_typed_error() {
        // 16 rows do not fill a 32-row prune tile.
        let dense = Matrix::<f32>::zeros(16, 32);
        let comp = NmCompressed::compress(&dense, NmPattern::P1_2);
        assert_eq!(
            comp.to_device_meta(),
            Err(MetaError::BadTile {
                rows: 16,
                codes_per_row: 16
            })
        );
    }

    #[test]
    fn from_parts_validates() {
        let nz = vec![1.0f32; 4];
        let codes = vec![0b01u8, 0b10, 0b01, 0b10];
        let c = NmCompressed::from_parts(NmPattern::P1_2, 2, 4, nz, codes);
        assert_eq!(c.kept_per_row(), 2);
    }

    #[test]
    fn bf16_compress_halves_bytes() {
        let mut rng = Rng::new(5);
        let dense = Matrix::<Bf16>::random_normal(32, 64, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&dense, NmPattern::P2_4);
        assert_eq!(comp.nonzeros_bytes(), dense.bytes() / 2);
        // Check every group kept the two largest.
        let dec = comp.decompress();
        for r in 0..32 {
            for g in 0..16 {
                let vals: Vec<f32> = (0..4).map(|i| dense.get(r, g * 4 + i).to_f32()).collect();
                let kept: Vec<f32> = (0..4)
                    .map(|i| dec.get(r, g * 4 + i).to_f32())
                    .filter(|&v| v != 0.0)
                    .collect();
                let mut sorted = vals.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
                for k in kept {
                    assert!(k >= sorted[1] - 1e-6, "row {r} group {g}");
                }
            }
        }
    }
}
