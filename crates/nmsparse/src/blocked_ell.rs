//! Blocked-ELL sparsity and the hybrid blocked-ELL × N:M layout.
//!
//! For long sequences the paper combines coarse block sparsity (à la BigBird)
//! with the fine-grained 50% pattern: "Our kernel supports hybrid blocked-ELL
//! sparsity and 50% structured sparsity. … we set the block size in
//! blocked-ELL to the thread block tile size of the GEMM. Therefore, we can
//! simply skip those pruned blocks during the execution" (A.1.2).
//!
//! [`BlockedEll`] describes *which* column blocks are active in each row
//! block; every row block stores the same number of active blocks (the ELL
//! width), which is what makes the format load-balanced on a GPU.

use dfss_tensor::Rng;

/// A blocked-ELL sparsity pattern over an `n × n`-ish matrix partitioned
/// into `block × block` tiles.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockedEll {
    rows: usize,
    cols: usize,
    block: usize,
    /// Active column-block indices per row block: `row_blocks × ell_width`,
    /// row-major, each row's entries strictly ascending.
    active: Vec<u32>,
    ell_width: usize,
}

impl BlockedEll {
    /// Build from an explicit active-block table.
    pub fn new(rows: usize, cols: usize, block: usize, active: Vec<Vec<u32>>) -> BlockedEll {
        assert!(block > 0 && rows.is_multiple_of(block) && cols.is_multiple_of(block));
        let row_blocks = rows / block;
        assert_eq!(active.len(), row_blocks);
        let ell_width = active.first().map_or(0, |a| a.len());
        let col_blocks = cols / block;
        let mut flat = Vec::with_capacity(row_blocks * ell_width);
        for (rb, blocks) in active.iter().enumerate() {
            assert_eq!(
                blocks.len(),
                ell_width,
                "ELL requires equal active-block count per row block (row block {rb})"
            );
            assert!(
                blocks.windows(2).all(|w| w[0] < w[1]),
                "active blocks must be strictly ascending"
            );
            assert!(blocks.iter().all(|&b| (b as usize) < col_blocks));
            flat.extend_from_slice(blocks);
        }
        BlockedEll {
            rows,
            cols,
            block,
            active: flat,
            ell_width,
        }
    }

    /// Dense pattern: every block active (useful as a baseline).
    pub fn dense(rows: usize, cols: usize, block: usize) -> BlockedEll {
        let col_blocks = cols / block;
        let all: Vec<u32> = (0..col_blocks as u32).collect();
        BlockedEll::new(rows, cols, block, vec![all; rows / block])
    }

    /// Sliding-window pattern: each row block attends to the `width` nearest
    /// diagonal blocks (clamped at the edges so every row keeps exactly
    /// `width` blocks — the ELL property).
    pub fn sliding_window(rows: usize, cols: usize, block: usize, width: usize) -> BlockedEll {
        let row_blocks = rows / block;
        let col_blocks = cols / block;
        let width = width.min(col_blocks);
        let mut active = Vec::with_capacity(row_blocks);
        for rb in 0..row_blocks {
            let center = rb.min(col_blocks - 1);
            let lo = center.saturating_sub(width / 2).min(col_blocks - width);
            active.push(((lo as u32)..(lo + width) as u32).collect());
        }
        BlockedEll::new(rows, cols, block, active)
    }

    /// BigBird-style pattern: `global` leading blocks, a diagonal window of
    /// `window` blocks, and `random` seeded random blocks per row block —
    /// padded to a uniform ELL width with extra random blocks.
    pub fn bigbird(
        rows: usize,
        cols: usize,
        block: usize,
        global: usize,
        window: usize,
        random: usize,
        rng: &mut Rng,
    ) -> BlockedEll {
        let row_blocks = rows / block;
        let col_blocks = cols / block;
        let width = (global + window + random).min(col_blocks);
        let mut active = Vec::with_capacity(row_blocks);
        for rb in 0..row_blocks {
            let mut set: Vec<u32> = Vec::new();
            for g in 0..global.min(col_blocks) {
                set.push(g as u32);
            }
            let center = rb.min(col_blocks - 1);
            let lo = center
                .saturating_sub(window / 2)
                .min(col_blocks.saturating_sub(window));
            for w in lo..(lo + window).min(col_blocks) {
                set.push(w as u32);
            }
            set.sort_unstable();
            set.dedup();
            // Top up with random distinct blocks until we reach the width.
            while set.len() < width {
                let cand = rng.below(col_blocks) as u32;
                if !set.contains(&cand) {
                    set.push(cand);
                    set.sort_unstable();
                }
            }
            set.truncate(width);
            active.push(set);
        }
        BlockedEll::new(rows, cols, block, active)
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    #[inline]
    pub fn row_blocks(&self) -> usize {
        self.rows / self.block
    }

    #[inline]
    pub fn col_blocks(&self) -> usize {
        self.cols / self.block
    }

    /// Active blocks per row block.
    #[inline]
    pub fn ell_width(&self) -> usize {
        self.ell_width
    }

    /// Active column-block indices of one row block (ascending).
    #[inline]
    pub fn row_active(&self, rb: usize) -> &[u32] {
        &self.active[rb * self.ell_width..(rb + 1) * self.ell_width]
    }

    /// Is block (rb, cb) active?
    pub fn is_active(&self, rb: usize, cb: usize) -> bool {
        self.row_active(rb).binary_search(&(cb as u32)).is_ok()
    }

    /// Fraction of blocks (hence of entries, pre-N:M) that are active.
    pub fn block_density(&self) -> f64 {
        self.ell_width as f64 / self.col_blocks() as f64
    }

    /// Overall element density when each active block is additionally pruned
    /// to an N:M pattern of density `nm_density` (the hybrid layout).
    pub fn hybrid_density(&self, nm_density: f64) -> f64 {
        self.block_density() * nm_density
    }

    /// Dense 0/1 mask of the pattern (for quality metrics and tests).
    pub fn to_mask(&self) -> dfss_tensor::Matrix<f32> {
        let mut mask = dfss_tensor::Matrix::zeros(self.rows, self.cols);
        for rb in 0..self.row_blocks() {
            for &cb in self.row_active(rb) {
                for r in rb * self.block..(rb + 1) * self.block {
                    let row = mask.row_mut(r);
                    for c in (cb as usize) * self.block..(cb as usize + 1) * self.block {
                        row[c] = 1.0;
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_pattern_all_active() {
        let p = BlockedEll::dense(64, 64, 16);
        assert_eq!(p.ell_width(), 4);
        assert_eq!(p.block_density(), 1.0);
        for rb in 0..4 {
            for cb in 0..4 {
                assert!(p.is_active(rb, cb));
            }
        }
    }

    #[test]
    fn sliding_window_has_uniform_width() {
        let p = BlockedEll::sliding_window(128, 128, 16, 3);
        assert_eq!(p.ell_width(), 3);
        // Diagonal block always active (window centred on the diagonal).
        for rb in 0..8 {
            assert!(p.is_active(rb, rb), "row block {rb}");
        }
        assert!((p.block_density() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_clamps_edges() {
        let p = BlockedEll::sliding_window(64, 64, 16, 3);
        // First row block: window clamped to [0,3).
        assert_eq!(p.row_active(0), &[0, 1, 2]);
        // Last row block: clamped to [1,4).
        assert_eq!(p.row_active(3), &[1, 2, 3]);
    }

    #[test]
    fn bigbird_contains_global_and_diagonal() {
        let mut rng = Rng::new(1);
        let p = BlockedEll::bigbird(256, 256, 32, 1, 3, 2, &mut rng);
        assert_eq!(p.ell_width(), 6);
        for rb in 0..8 {
            assert!(p.is_active(rb, 0), "global block row {rb}");
            assert!(p.is_active(rb, rb), "diag block row {rb}");
        }
    }

    #[test]
    fn hybrid_density_multiplies() {
        let p = BlockedEll::sliding_window(128, 128, 16, 4);
        assert!((p.hybrid_density(0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mask_matches_is_active() {
        let p = BlockedEll::sliding_window(64, 64, 16, 2);
        let mask = p.to_mask();
        for r in 0..64 {
            for c in 0..64 {
                let expect = p.is_active(r / 16, c / 16);
                assert_eq!(mask.get(r, c) == 1.0, expect, "({r},{c})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal active-block count")]
    fn rejects_ragged_rows() {
        BlockedEll::new(32, 32, 16, vec![vec![0, 1], vec![0]]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_blocks() {
        BlockedEll::new(32, 32, 16, vec![vec![1, 0], vec![0, 1]]);
    }
}
