//! Format-level invariants of the N:M sparse substrate, pinned as the
//! crate's own contract (the workspace integration tests in
//! `tests/proptests.rs` only reach these through the kernel pipeline).

use dfss_nmsparse::{NmCompressed, NmPattern};
use dfss_tensor::{Bf16, Matrix, Rng};
use proptest::prelude::*;

/// `from_device_meta ∘ to_device_meta` must be the identity for every
/// pattern that has a device metadata layout (the two Ampere hardware
/// patterns — generic N:M is rejected with a typed error, see below).
#[test]
fn device_meta_roundtrip_identity_all_hardware_patterns() {
    let mut rng = Rng::new(0xD0D0);
    for pattern in [NmPattern::P1_2, NmPattern::P2_4] {
        for (rows, cols) in [(32, 32), (32, 64), (64, 64), (96, 32)] {
            let m = Matrix::<f32>::random_normal(rows, cols, 0.0, 1.0, &mut rng);
            let comp = NmCompressed::compress(&m, pattern);
            let dm = comp.to_device_meta().expect("hardware pattern");
            let back =
                NmCompressed::from_device_meta(pattern, rows, cols, comp.nonzeros().to_vec(), &dm)
                    .expect("hardware pattern");
            assert_eq!(back, comp, "{} at {rows}x{cols}", pattern.name());
        }
    }
}

#[test]
fn device_meta_roundtrip_identity_bf16() {
    let mut rng = Rng::new(0xBF16);
    let m = Matrix::<Bf16>::random_normal(32, 64, 0.0, 1.0, &mut rng);
    let comp = NmCompressed::compress(&m, NmPattern::P2_4);
    let dm = comp.to_device_meta().expect("hardware pattern");
    let back =
        NmCompressed::from_device_meta(NmPattern::P2_4, 32, 64, comp.nonzeros().to_vec(), &dm)
            .expect("hardware pattern");
    assert_eq!(back, comp);
}

#[test]
fn device_meta_rejects_generic_patterns() {
    let mut rng = Rng::new(1);
    let m = Matrix::<f32>::random_normal(32, 32, 0.0, 1.0, &mut rng);
    let comp = NmCompressed::compress(&m, NmPattern::new(2, 8));
    assert_eq!(
        comp.to_device_meta(),
        Err(dfss_nmsparse::MetaError::UnsupportedPattern { n: 2, m: 8 })
    );
}

/// For one dense row and a pattern, check every M-group of the compressed
/// form keeps exactly the top-N entries (ties broken toward lower index).
fn assert_keeps_top_n(dense: &Matrix<f32>, pattern: NmPattern) {
    let comp = NmCompressed::compress(dense, pattern);
    let dec = comp.decompress();
    let (n, m) = (pattern.n(), pattern.m());
    for r in 0..dense.rows() {
        for (g, group) in dense.row(r).chunks_exact(m).enumerate() {
            // Expected kept indices: stable sort descending by value.
            let mut idx: Vec<usize> = (0..m).collect();
            idx.sort_by(|&a, &b| group[b].partial_cmp(&group[a]).unwrap());
            let mut expect: Vec<usize> = idx[..n].to_vec();
            expect.sort_unstable();
            // Actual kept indices: nonzero positions of the decompressed
            // group — except that a kept *value* of exactly 0.0 is invisible
            // in the decompressed form, so compare via the selection codes.
            let code = comp.codes()[r * dense.cols() / m + g];
            let actual: Vec<usize> = (0..m).filter(|&i| code & (1 << i) != 0).collect();
            assert_eq!(actual.len(), n, "group keeps exactly N");
            assert_eq!(actual, expect, "row {r} group {g} of {}", pattern.name());
            // And the decompressed values at kept positions match the dense
            // input exactly.
            for &i in &actual {
                assert_eq!(dec.get(r, g * m + i), group[i]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prune_keeps_exactly_top_n_of_every_group(seed in 0u64..10_000, pat in 0usize..6) {
        let pattern = [
            NmPattern::P1_2,
            NmPattern::P2_4,
            NmPattern::new(1, 4),
            NmPattern::new(3, 4),
            NmPattern::new(2, 8),
            NmPattern::new(4, 8),
        ][pat];
        let mut rng = Rng::new(seed);
        let dense = Matrix::<f32>::random_normal(16, 32, 0.0, 1.0, &mut rng);
        assert_keeps_top_n(&dense, pattern);
    }

    #[test]
    fn prune_keeps_top_n_with_ties(seed in 0u64..10_000) {
        // Quantise hard so M-groups contain duplicated values; the
        // lower-index tie-break must still hold.
        let mut rng = Rng::new(seed);
        let dense = Matrix::<f32>::from_fn(8, 16, |_, _| {
            (rng.next_u64() % 3) as f32 - 1.0
        });
        for pattern in [NmPattern::P1_2, NmPattern::P2_4, NmPattern::new(2, 8)] {
            assert_keeps_top_n(&dense, pattern);
        }
    }

    #[test]
    fn device_meta_roundtrip_randomized(seed in 0u64..10_000, pat in 0usize..2) {
        let pattern = [NmPattern::P1_2, NmPattern::P2_4][pat];
        let mut rng = Rng::new(seed);
        let m = Matrix::<f32>::random_normal(32, 64, 0.0, 3.0, &mut rng);
        let comp = NmCompressed::compress(&m, pattern);
        let back = NmCompressed::from_device_meta(
            pattern, 32, 64, comp.nonzeros().to_vec(),
            &comp.to_device_meta().expect("hardware pattern"))
            .expect("hardware pattern");
        prop_assert_eq!(back, comp);
    }
}
